//! Figure 10 — per-application speedup of timed circuits with slack and
//! delay of 1 cycle/hop, on the 64-core chip.
//!
//! Run with `RC_APPS=all` to sweep all 21 applications plus the mix, as
//! the paper does.

use rcsim_bench::{
    bench_row, experiment_apps, run_points, save_bench_summary, save_json, BenchSummary, PointSpec,
};
use rcsim_core::MechanismConfig;
use rcsim_stats::geometric_mean;

fn main() {
    println!("Figure 10 — per-application speedup (SlackDelay_1_NoAck, 64 cores)\n");
    println!("Paper landmarks: half the applications gain over 4.5%, a few gain");
    println!("more than 10%, at most two show a sub-2% slowdown.\n");
    println!(
        "{:<18} {:>9} {:>11} {:>9}",
        "application", "speedup", "circuit%", "load"
    );

    let mechanism = MechanismConfig::slack_delay(1);
    // One (baseline, slack) pair per application, submitted as one flat
    // job list so the sweep runner fans the whole figure across workers.
    let specs: Vec<PointSpec> = experiment_apps()
        .iter()
        .flat_map(|app| {
            [
                PointSpec::new(64, MechanismConfig::baseline(), app, 1),
                PointSpec::new(64, mechanism, app, 1),
            ]
        })
        .collect();
    let all = run_points(&specs);

    let mut speedups = Vec::new();
    let mut raw = Vec::new();
    let mut summary = BenchSummary::new("fig10");
    for (app, pair) in experiment_apps().iter().zip(all.chunks(2)) {
        let (base, r) = (&pair[0], &pair[1]);
        let s = r.speedup_over(base);
        println!(
            "{:<18} {:>9.3} {:>10.1}% {:>9.2}",
            app,
            s,
            100.0 * r.outcomes["circuit"],
            r.load
        );
        speedups.push(s);
        let mut row = bench_row(app, 64, std::slice::from_ref(r));
        row.extra.insert("speedup".into(), s);
        row.extra.insert("load".into(), r.load);
        summary.push(row);
        raw.push((app.clone(), s));
    }
    save_bench_summary(&mut summary);
    if let Some(g) = geometric_mean(speedups.iter().copied()) {
        println!("\ngeometric mean speedup: {g:.3} (paper average: 1.060)");
    }
    save_json("fig10", &raw);
}
