//! Input-port state: per-VC buffers and the pipeline state machine.

use crate::flit::Flit;
use rcsim_core::Cycle;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Pipeline state of one input virtual channel (the `G` field of the
/// paper's Figure 2 router diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VcState {
    /// No packet in flight.
    Idle,
    /// Head buffered, route computed; waiting for VC allocation.
    WaitVa,
    /// Output VC granted; waiting for the head's switch allocation.
    WaitSa,
    /// Head has been granted the switch; body/tail flits streaming.
    Active,
}

/// One input virtual channel: flit buffer plus control state
/// (`G`/`R`/`O` of Figure 2; the credit count lives at the output side).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InputVc {
    /// Pipeline state.
    pub state: VcState,
    /// Cycle the current state was entered (stages take one cycle each, so
    /// a stage may only fire when `state_since < now`).
    pub state_since: Cycle,
    /// Buffered flits, in arrival order.
    pub buffer: VecDeque<Flit>,
    /// Computed output port index (`R`).
    pub route: Option<usize>,
    /// Allocated output VC (`O`).
    pub out_vc: Option<usize>,
    /// Whether the circuit reservation for the buffered request head has
    /// already been attempted at this router (reservations are attempted
    /// once, in parallel with the first VC-allocation try).
    pub circuit_attempted: bool,
}

impl InputVc {
    /// A fresh idle VC.
    pub fn new() -> Self {
        Self {
            state: VcState::Idle,
            state_since: 0,
            buffer: VecDeque::new(),
            route: None,
            out_vc: None,
            circuit_attempted: false,
        }
    }

    /// Resets control state after a tail flit departs.
    pub fn reset(&mut self, now: Cycle) {
        self.state = VcState::Idle;
        self.state_since = now;
        self.route = None;
        self.out_vc = None;
        self.circuit_attempted = false;
    }

    /// `true` when a new head may be accepted (wormhole: one packet at a
    /// time per VC).
    pub fn is_idle(&self) -> bool {
        self.state == VcState::Idle && self.buffer.is_empty()
    }
}

impl Default for InputVc {
    fn default() -> Self {
        Self::new()
    }
}

/// One input port: its VCs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InputPort {
    /// Virtual channels, indexed by global VC id.
    pub vcs: Vec<InputVc>,
}

impl InputPort {
    /// An input port with `vcs` virtual channels.
    pub fn new(vcs: usize) -> Self {
        Self {
            vcs: (0..vcs).map(|_| InputVc::new()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vc_lifecycle() {
        let mut vc = InputVc::new();
        assert!(vc.is_idle());
        vc.state = VcState::WaitVa;
        assert!(!vc.is_idle());
        vc.route = Some(1);
        vc.out_vc = Some(2);
        vc.circuit_attempted = true;
        vc.reset(42);
        assert_eq!(vc.state, VcState::Idle);
        assert_eq!(vc.state_since, 42);
        assert_eq!(vc.route, None);
        assert_eq!(vc.out_vc, None);
        assert!(!vc.circuit_attempted);
    }

    #[test]
    fn port_has_requested_vcs() {
        let p = InputPort::new(4);
        assert_eq!(p.vcs.len(), 4);
        assert!(p.vcs.iter().all(InputVc::is_idle));
    }
}
