//! Warm-up convergence diagnostic: how the Table 1 message mix approaches
//! its steady state as the warm-up window grows. The paper warms for
//! 200 M cycles; this shows where our synthetic workloads converge and
//! which components of the mix are still settling at the harness default.
//!
//! `RC_APPS` picks the workload (first entry; default canneal).

use rcsim_bench::{
    bench_row, max_cycles, run_configs, save_bench_summary, save_json, BenchSummary,
};
use rcsim_core::MechanismConfig;
use rcsim_system::SimConfig;

fn main() {
    let app = std::env::var("RC_APPS")
        .ok()
        .and_then(|s| s.split(',').next().map(str::to_owned))
        .unwrap_or_else(|| "canneal".to_owned());
    println!("Message-mix convergence vs warm-up ({app}, 64 cores, baseline)\n");
    println!(
        "{:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8}",
        "warmup", "L2_Reply", "DATA_ACK", "WB_ACK", "INV_ACK", "MEMORY", "load"
    );

    // These points differ only in their warm-up window, so they are
    // custom SimConfigs rather than harness PointSpecs; the sweep runner
    // takes labelled configs directly.
    let warmups: Vec<u64> = [5_000u64, 20_000, 60_000, 150_000, 400_000]
        .into_iter()
        .map(|w| w.min(max_cycles() - 1))
        .collect();
    let jobs: Vec<(String, SimConfig)> = warmups
        .iter()
        .map(|&warmup| {
            let cfg = SimConfig {
                seed: 1,
                warmup_cycles: warmup,
                measure_cycles: 30_000.min(max_cycles() - warmup),
                small_caches: false,
                ..SimConfig::quick(64, MechanismConfig::baseline(), &app)
            };
            (format!("convergence/{app}/warmup {warmup}"), cfg)
        })
        .collect();
    let results = run_configs(jobs);

    let mut rows = Vec::new();
    let mut summary = BenchSummary::new("convergence");
    for (&warmup, r) in warmups.iter().zip(&results) {
        let total: u64 = r.messages.values().sum::<u64>().max(1);
        let pct = |k: &str| 100.0 * r.messages.get(k).copied().unwrap_or(0) as f64 / total as f64;
        println!(
            "{:>9} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>8.2}",
            warmup,
            pct("L2_Reply"),
            pct("L1_DATA_ACK"),
            pct("L2_WB_ACK"),
            pct("L1_INV_ACK"),
            pct("MEMORY"),
            r.load
        );
        let mut row = bench_row(&format!("warmup_{warmup}"), 64, std::slice::from_ref(r));
        row.extra.insert("load".into(), r.load);
        summary.push(row);
        rows.push((warmup, r.messages.clone(), r.load));
    }
    save_bench_summary(&mut summary);
    println!("\npaper steady state: L2_Reply 22.6%, L1_DATA_ACK 23.0%, L2_WB_ACK 4.7%,");
    println!("L1_INV_ACK 1.1%, MEMORY 0.9% (after 200M warm-up cycles)");
    save_json("convergence", &rows);
}
