//! Figure 6 — percentage of replies that travel on a circuit / with a
//! failed circuit / with an undone circuit / as scroungers / not eligible
//! / eliminated, for every circuit-building configuration, on 16- and
//! 64-core chips.
//!
//! Besides the human-readable table this binary writes:
//!
//! - `target/experiments/BENCH_fig6.json` — machine-readable summary
//!   (per-version avg/p99 packet latency, circuit hit rate, outcome
//!   fractions) validated by `validate_bench`;
//! - `target/experiments/fig6_trace.json` — a Chrome trace of one small
//!   traced run, loadable in Perfetto / `chrome://tracing` (see
//!   EXPERIMENTS.md for the walkthrough).

use rcsim_bench::{
    app_seed_points, bench_row, cores_list, experiment_apps, mean_outcomes, run_points,
    save_bench_summary, save_json, save_text, seeds, BenchSummary, PointSpec,
};
use rcsim_core::MechanismConfig;
use rcsim_system::{run_sim_traced, SimConfig, TraceConfig};
use rcsim_trace::chrome_trace_json;

/// One extra small traced run whose event log becomes a Chrome trace:
/// enough cycles to show circuit construction and reply slices without
/// bloating the JSON.
fn export_chrome_trace() {
    let app = experiment_apps()
        .first()
        .cloned()
        .unwrap_or_else(|| "blackscholes".to_owned());
    let cfg = SimConfig {
        seed: 1,
        warmup_cycles: 1_000,
        measure_cycles: 3_000,
        ..SimConfig::quick(16, MechanismConfig::complete_noack(), &app)
    };
    match run_sim_traced(&cfg, &TraceConfig::default()) {
        Ok((_, report)) => {
            save_text("fig6_trace.json", &chrome_trace_json(&report.events));
            eprintln!(
                "(trace: {} events, {} dropped, {:.1}% of delivered replies rode a circuit)",
                report.events.len(),
                report.dropped,
                100.0 * report.breakdown.circuit_ride_fraction()
            );
        }
        Err(e) => eprintln!("(chrome trace export skipped: {e})"),
    }
}

fn main() {
    println!("Figure 6 — reply outcome breakdown per configuration\n");
    println!("Paper landmarks: Complete builds more circuits than Fragmented;");
    println!("NoAck eliminates 20-30% of replies; timed circuits without slack");
    println!("fail more; slack recovers them but large slack re-creates conflicts;");
    println!("Ideal is the upper bound; ~40%+ of replies are never eligible.\n");

    // The whole (cores × mechanism × app × seed) grid goes to the sweep
    // runner as one job list, so RC_JOBS workers parallelize across
    // mechanisms as well as apps; results come back in submission order.
    let grid: Vec<(u16, MechanismConfig)> = cores_list()
        .into_iter()
        .flat_map(|c| {
            MechanismConfig::figure6_grid()
                .into_iter()
                .map(move |m| (c, m))
        })
        .collect();
    let specs: Vec<PointSpec> = grid
        .iter()
        .flat_map(|&(c, m)| app_seed_points(c, m, 1))
        .collect();
    let per_point = experiment_apps().len() * seeds().len();
    let all = run_points(&specs);
    let mut chunks = all.chunks(per_point);

    let mut raw = Vec::new();
    let mut summary = BenchSummary::new("fig6");
    for cores in cores_list() {
        println!("== {cores} cores ==");
        println!(
            "{:<22} {:>9} {:>9} {:>9} {:>10} {:>13} {:>12}",
            "configuration",
            "circuit",
            "failed",
            "undone",
            "scrounger",
            "not_eligible",
            "eliminated"
        );
        for mechanism in MechanismConfig::figure6_grid() {
            let results = chunks.next().expect("grid-aligned result chunks");
            let o = mean_outcomes(results);
            println!(
                "{:<22} {:>8.1}% {:>8.1}% {:>8.1}% {:>9.1}% {:>12.1}% {:>11.1}%",
                mechanism.label(),
                100.0 * o["circuit"],
                100.0 * o["failed"],
                100.0 * o["undone"],
                100.0 * o["scrounger"],
                100.0 * o["not_eligible"],
                100.0 * o["eliminated"],
            );
            let mut row = bench_row(&mechanism.label(), cores, results);
            for (k, v) in &o {
                row.extra.insert(format!("outcome.{k}"), *v);
            }
            summary.push(row);
            raw.push((cores, mechanism.label(), o));
        }
        println!();
    }
    save_json("fig6", &raw);
    save_bench_summary(&mut summary);
    export_chrome_trace();
}
