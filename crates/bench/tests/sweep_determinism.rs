//! The sweep engine's core contract: results are identical — field for
//! field and byte for byte — whether a sweep runs serially, across worker
//! threads, or from a warm cache.

use rcsim_bench::SweepRunner;
use rcsim_core::MechanismConfig;
use rcsim_system::{RunResult, SimConfig};
use std::path::PathBuf;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rcsim-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small grid that still exercises every mechanism-dependent code path:
/// two mechanisms × two workloads, short windows.
fn jobs() -> Vec<(String, SimConfig)> {
    let mut jobs = Vec::new();
    for mechanism in [
        MechanismConfig::baseline(),
        MechanismConfig::complete_noack(),
    ] {
        for app in ["fft", "blackscholes"] {
            let cfg = SimConfig {
                warmup_cycles: 200,
                measure_cycles: 1_000,
                ..SimConfig::quick(16, mechanism, app)
            };
            jobs.push((format!("{app}/{}", mechanism.label()), cfg));
        }
    }
    jobs
}

fn unwrap_all(results: Vec<Result<RunResult, rcsim_system::SimError>>) -> Vec<RunResult> {
    results
        .into_iter()
        .map(|r| r.expect("every point succeeds"))
        .collect()
}

#[test]
fn parallel_sweep_matches_serial_sweep() {
    let jobs = jobs();
    let serial_dir = tmp_dir("det-serial");
    let parallel_dir = tmp_dir("det-parallel");
    let serial = SweepRunner::new(1, Some(serial_dir.clone()));
    let parallel = SweepRunner::new(4, Some(parallel_dir.clone()));

    let cold_serial = serial.run(&jobs);
    assert_eq!(cold_serial.stats.jobs, 1);
    assert_eq!(cold_serial.stats.cached, 0, "cold cache");
    assert_eq!(cold_serial.stats.failed, 0);

    let cold_parallel = parallel.run(&jobs);
    assert_eq!(cold_parallel.stats.jobs, 4);
    assert_eq!(cold_parallel.stats.cached, 0, "separate cold cache");

    let rs = unwrap_all(cold_serial.results);
    let rp = unwrap_all(cold_parallel.results);
    assert_eq!(rs, rp, "RC_JOBS must not change any result field");
    // Stronger than PartialEq: the serialized form — what lands in
    // BENCH_<name>.json — must be byte-identical too.
    assert_eq!(
        serde_json::to_string(&rs).unwrap(),
        serde_json::to_string(&rp).unwrap(),
        "serialized results differ between worker counts"
    );

    // A cache-warm rerun returns the same bytes without recomputing.
    let warm = parallel.run(&jobs);
    assert_eq!(
        warm.stats.cached,
        jobs.len(),
        "every point served from cache"
    );
    let rw = unwrap_all(warm.results);
    assert_eq!(
        serde_json::to_string(&rw).unwrap(),
        serde_json::to_string(&rp).unwrap(),
        "cache round-trip changed the results"
    );

    let _ = std::fs::remove_dir_all(serial_dir);
    let _ = std::fs::remove_dir_all(parallel_dir);
}

#[test]
fn more_workers_than_jobs_is_fine() {
    let jobs = &jobs()[..1];
    let runner = SweepRunner::new(16, None);
    let out = runner.run(jobs);
    assert_eq!(out.results.len(), 1);
    assert_eq!(out.stats.jobs, 1, "workers clamp to the job count");
    assert!(out.results[0].is_ok());
}

#[test]
fn empty_sweep_is_a_no_op() {
    let out = SweepRunner::new(4, None).run(&[]);
    assert!(out.results.is_empty());
    assert_eq!(out.stats.points, 0);
    assert_eq!(out.stats.cached, 0);
}
