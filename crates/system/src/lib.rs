//! The full tiled CMP: trace-driven in-order cores, L1/L2/directory,
//! memory controllers, and the Reactive Circuits NoC, assembled per the
//! paper's Figure 1 and driven cycle by cycle.
//!
//! The crate also hosts the experiment driver used by every benchmark
//! binary: [`SimConfig`] names a workload, a chip size and a mechanism
//! configuration; [`run_sim`] executes warm-up + measurement and returns a
//! [`RunResult`] with the performance, latency, circuit-outcome, area and
//! energy numbers the paper's tables and figures are built from.
//!
//! # Examples
//!
//! ```
//! use rcsim_core::MechanismConfig;
//! use rcsim_system::{run_sim, SimConfig};
//!
//! let cfg = SimConfig {
//!     seed: 1,
//!     warmup_cycles: 500,
//!     measure_cycles: 2_000,
//!     ..SimConfig::quick(16, MechanismConfig::complete_noack(), "blackscholes")
//! };
//! let result = run_sim(&cfg)?;
//! assert!(result.instructions > 0);
//! assert!(result.health.healthy());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod chip;
mod core_model;
mod open_loop;
mod report;
mod sim;

pub use checkpoint::{run_sim_resumable, SessionSnapshot, SimSession, CHECKPOINT_FORMAT_VERSION};
pub use chip::{Chip, ChipSnapshot};
pub use core_model::Core;
pub use open_loop::OpenLoopConfig;
pub use rcsim_core::{shards_from_env, AdaptiveConfig, KernelMode};
pub use rcsim_noc::{
    DeadLinkEvent, DeadRouterEvent, FaultConfig, FaultStats, HealthReport, IngressConfig,
    OverloadReport, StuckPortEvent, WatchdogConfig,
};
pub use rcsim_workload::ArrivalProcess;
pub use report::{ExternalSummary, LatencyRow, RunResult};
pub use sim::{
    run_sim, run_sim_traced, run_sim_traced_with, run_sim_traced_with_kernel, run_sim_with,
    run_sim_with_kernel, SimConfig, SimError, TraceConfig, TraceReport,
};
