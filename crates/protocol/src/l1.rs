//! Private L1 cache: MESI states, one outstanding miss (in-order cores),
//! a write-back buffer that keeps evicted lines alive until the L2's
//! `L2_WB_ACK`, and the §4.6 ACK-elision hook.

use crate::cache::CacheArray;
use crate::config::ProtocolConfig;
use crate::msg::{Msg, Port, ReqKind};
use rcsim_core::{Cycle, MessageClass, NodeId, Topology};
use rcsim_trace::{EventKind, TraceEvent, TraceSink};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// MESI stable states (`I` is represented by absence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum L1State {
    Shared,
    Exclusive,
    Modified,
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct L1Line {
    state: L1State,
    data: u64,
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct PendingMiss {
    block: u64,
    kind: ReqKind,
    write_value: Option<u64>,
    issued_at: Cycle,
    /// Times the request has been re-sent because no reply arrived.
    reissues: u32,
}

/// Result of a core access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The line was present with sufficient permission; `value` is the
    /// line content after the access.
    Hit {
        /// Line content token after the access.
        value: u64,
    },
    /// A request was issued; the core must stall until [`MissDone`].
    Miss,
}

/// Completion record of an outstanding miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissDone {
    /// The missing line.
    pub block: u64,
    /// Line content after the access (write value for stores).
    pub value: u64,
    /// Cycle the miss was issued (for latency statistics).
    pub issued_at: Cycle,
}

/// Per-L1 event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct L1Stats {
    /// Core accesses that hit.
    pub hits: u64,
    /// Core accesses that missed (incl. upgrades).
    pub misses: u64,
    /// Store hits on Shared lines that required a GetX upgrade.
    pub upgrades: u64,
    /// Dirty/exclusive lines written back on replacement.
    pub writebacks: u64,
    /// Invalidations received.
    pub invalidations: u64,
    /// Forwards served (from the array or the write-back buffer).
    pub forwards_served: u64,
    /// `L1_DATA_ACK`s skipped thanks to a complete circuit (§4.6).
    pub acks_elided: u64,
    /// Outstanding-miss requests re-sent after the reissue timeout
    /// (recovery from losses on dead links, DESIGN.md §10).
    #[serde(default)]
    pub reissues: u64,
    /// Data replies that arrived for no (or a different) outstanding miss —
    /// duplicates produced by a reissue racing the original reply. They are
    /// acknowledged and otherwise ignored.
    #[serde(default)]
    pub stale_fills: u64,
}

/// A private L1 data cache attached to one core.
#[derive(Debug, Clone)]
pub struct L1Cache {
    node: NodeId,
    topology: Topology,
    cfg: ProtocolConfig,
    array: CacheArray<L1Line>,
    miss: Option<PendingMiss>,
    wb_buffer: HashMap<u64, u64>,
    stats: L1Stats,
    /// Where trace events go; disabled by default.
    sink: TraceSink,
}

impl L1Cache {
    /// An empty L1 for the tile at `node`.
    pub fn new(node: NodeId, topology: Topology, cfg: ProtocolConfig) -> Self {
        let array = CacheArray::new(cfg.l1);
        Self {
            node,
            topology,
            cfg,
            array,
            miss: None,
            wb_buffer: HashMap::new(),
            stats: L1Stats::default(),
            sink: TraceSink::default(),
        }
    }

    /// Installs a trace sink (share one across the chip to get a single
    /// event log). Pass [`TraceSink::Disabled`] to turn tracing back off.
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.sink = sink;
    }

    /// Event counters.
    pub fn stats(&self) -> &L1Stats {
        &self.stats
    }

    /// Zeroes the counters (end of warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = L1Stats::default();
    }

    /// `true` while a miss is outstanding (the in-order core is stalled).
    pub fn miss_pending(&self) -> bool {
        self.miss.is_some()
    }

    fn home(&self, block: u64) -> NodeId {
        self.cfg.home(&self.topology, block)
    }

    /// A core load (`write == false`) or store to `block`.
    ///
    /// # Panics
    ///
    /// Panics if called while a miss is outstanding (in-order cores block).
    pub fn access(
        &mut self,
        block: u64,
        write: bool,
        write_value: Option<u64>,
        port: &mut dyn Port,
    ) -> Access {
        assert!(
            self.miss.is_none(),
            "core accessed the L1 while a miss is pending"
        );
        if let Some(line) = self.array.get_mut(block) {
            match (write, line.state) {
                (false, _) => {
                    self.stats.hits += 1;
                    return Access::Hit { value: line.data };
                }
                (true, L1State::Modified) | (true, L1State::Exclusive) => {
                    line.state = L1State::Modified;
                    line.data = write_value.unwrap_or(line.data);
                    self.stats.hits += 1;
                    return Access::Hit { value: line.data };
                }
                (true, L1State::Shared) => {
                    // Upgrade: GetX while keeping the stale copy readable.
                    self.stats.upgrades += 1;
                }
            }
        } else {
            // Make room ahead of the fill; dirty/exclusive victims enter
            // the write-back buffer until the L2 acknowledges them.
            if let Some(victim_block) = self.array.victim_for(block) {
                let victim = self.array.remove(victim_block).expect("victim exists");
                self.evict(victim_block, victim, port);
            }
        }
        self.stats.misses += 1;
        self.sink.emit(|| TraceEvent {
            cycle: port.now(),
            kind: EventKind::L1MissStart {
                node: self.node.0,
                block,
            },
        });
        let kind = if write { ReqKind::GetX } else { ReqKind::GetS };
        self.miss = Some(PendingMiss {
            block,
            kind,
            write_value: if write { write_value } else { None },
            issued_at: port.now(),
            reissues: 0,
        });
        let mut req =
            Msg::new(MessageClass::L1Request, self.node, self.home(block), block).with_req(kind);
        if self.wb_buffer.contains_key(&block) {
            req = req.with_wb_race();
        }
        port.send(req, self.cfg.l2_hit_latency);
        Access::Miss
    }

    /// Re-sends the outstanding miss request if its reply is overdue
    /// (DESIGN.md §10): a permanent fault may have eaten the request or
    /// its reply on a link that has since been routed around. Reissue `n`
    /// (1-based) fires once `reissue_timeout << (n-1)` cycles have passed
    /// since the miss was issued — exponential backoff so a genuinely
    /// wedged protocol does not flood the fabric. After
    /// [`ProtocolConfig::max_reissues`] attempts the L1 goes quiet and the
    /// watchdog reports the stuck miss instead.
    ///
    /// Cheap no-op (one `Option` check) when no miss is outstanding, so
    /// callers may invoke it every cycle.
    pub fn maybe_reissue(&mut self, now: Cycle, port: &mut dyn Port) {
        let (block, kind) = match &self.miss {
            Some(m) if m.reissues < self.cfg.max_reissues => {
                let threshold = self
                    .cfg
                    .reissue_timeout
                    .checked_shl(m.reissues)
                    .unwrap_or(Cycle::MAX);
                if now.saturating_sub(m.issued_at) < threshold {
                    return;
                }
                (m.block, m.kind)
            }
            _ => return,
        };
        let attempt = {
            let m = self.miss.as_mut().expect("checked above");
            m.reissues += 1;
            m.reissues
        };
        self.stats.reissues += 1;
        self.sink.emit(|| TraceEvent {
            cycle: now,
            kind: EventKind::L1Reissue {
                node: self.node.0,
                block,
                attempt,
            },
        });
        let mut req =
            Msg::new(MessageClass::L1Request, self.node, self.home(block), block).with_req(kind);
        if self.wb_buffer.contains_key(&block) {
            req = req.with_wb_race();
        }
        port.send(req, self.cfg.l2_hit_latency);
    }

    fn evict(&mut self, block: u64, line: L1Line, port: &mut dyn Port) {
        match line.state {
            // Clean lines drop silently (the L2 copy is current); the
            // directory learns about stale sharers/owners lazily, from
            // invalidation acks and failed forwards.
            L1State::Shared | L1State::Exclusive => {}
            L1State::Modified => {
                self.stats.writebacks += 1;
                self.wb_buffer.insert(block, line.data);
                port.send(
                    Msg::new(MessageClass::WbData, self.node, self.home(block), block)
                        .with_data(line.data),
                    self.cfg.l2_hit_latency,
                );
            }
        }
    }

    /// Handles a message addressed to this L1. `rode_circuit` is the NoC's
    /// report of whether the message arrived on a complete circuit.
    pub fn handle(
        &mut self,
        msg: &Msg,
        rode_circuit: bool,
        port: &mut dyn Port,
    ) -> Option<MissDone> {
        match msg.class {
            MessageClass::L2Reply | MessageClass::L1ToL1 => self.fill(msg, rode_circuit, port),
            MessageClass::Invalidation => {
                self.invalidate(msg, port);
                None
            }
            MessageClass::FwdRequest => {
                self.forward(msg, port);
                None
            }
            MessageClass::L2WbAck => {
                self.wb_buffer.remove(&msg.block);
                None
            }
            other => panic!("L1 {} received unexpected {other}", self.node),
        }
    }

    fn fill(&mut self, msg: &Msg, rode_circuit: bool, port: &mut dyn Port) -> Option<MissDone> {
        // A reissued request can produce two replies: the first fill
        // resolves the miss, so a data message with no (or a different)
        // outstanding miss is a stale duplicate. Acknowledge it so the
        // home bank unblocks, but install nothing.
        if !matches!(&self.miss, Some(m) if m.block == msg.block) {
            self.stats.stale_fills += 1;
            let elide =
                self.cfg.eliminate_acks && rode_circuit && msg.class == MessageClass::L2Reply;
            if !elide {
                port.send(
                    Msg::new(
                        MessageClass::L1DataAck,
                        self.node,
                        self.home(msg.block),
                        msg.block,
                    ),
                    1,
                );
            }
            return None;
        }
        let pending = self.miss.take().expect("matched above");
        let (state, data) = match pending.kind {
            ReqKind::GetX => (L1State::Modified, pending.write_value.unwrap_or(msg.data)),
            ReqKind::GetS => (
                if msg.exclusive {
                    L1State::Exclusive
                } else {
                    L1State::Shared
                },
                msg.data,
            ),
        };
        // The upgrade path may still hold the stale Shared copy.
        self.array.remove(msg.block);
        if let Some((vb, vline)) = self.array.insert(msg.block, L1Line { state, data }) {
            self.evict(vb, vline, port);
        }
        // Acknowledge to the home bank — unless the data came over a
        // complete circuit and the protocol elides the ACK (§4.6; the L2
        // self-acknowledged when the reply committed to the circuit).
        let elide = self.cfg.eliminate_acks && rode_circuit && msg.class == MessageClass::L2Reply;
        if elide {
            self.stats.acks_elided += 1;
        } else {
            port.send(
                Msg::new(
                    MessageClass::L1DataAck,
                    self.node,
                    self.home(msg.block),
                    msg.block,
                ),
                1,
            );
        }
        self.sink.emit(|| TraceEvent {
            cycle: port.now(),
            kind: EventKind::L1MissEnd {
                node: self.node.0,
                block: msg.block,
            },
        });
        Some(MissDone {
            block: msg.block,
            value: data,
            issued_at: pending.issued_at,
        })
    }

    fn invalidate(&mut self, msg: &Msg, port: &mut dyn Port) {
        self.stats.invalidations += 1;
        match self.array.remove(msg.block) {
            Some(line) if line.state == L1State::Modified => {
                // The dirty data itself is the acknowledgement: the L2
                // counts a WbData from a pending node as its inv-ack.
                port.send(
                    Msg::new(
                        MessageClass::WbData,
                        self.node,
                        self.home(msg.block),
                        msg.block,
                    )
                    .with_data(line.data),
                    self.cfg.l2_hit_latency,
                );
            }
            _ => {
                // Clean copy, a write-back already in flight, or a silent
                // drop the directory has not observed: plain ack.
                port.send(
                    Msg::new(
                        MessageClass::L1InvAck,
                        self.node,
                        self.home(msg.block),
                        msg.block,
                    ),
                    1,
                );
            }
        }
    }

    fn forward(&mut self, msg: &Msg, port: &mut dyn Port) {
        let requestor = msg.requestor.expect("forward names its requestor");
        let kind = msg.req.expect("forward carries the request kind");
        self.stats.forwards_served += 1;
        let cached = self.array.peek(msg.block).map(|l| (l.state, l.data));
        let data = if let Some((state, data)) = cached {
            match kind {
                ReqKind::GetS => {
                    if state == L1State::Modified {
                        // Sync the home bank; MESI keeps no dirty-shared.
                        port.send(
                            Msg::new(
                                MessageClass::WbData,
                                self.node,
                                self.home(msg.block),
                                msg.block,
                            )
                            .with_data(data),
                            self.cfg.l2_hit_latency,
                        );
                    }
                    self.array.peek_mut(msg.block).expect("still cached").state = L1State::Shared;
                }
                ReqKind::GetX => {
                    self.array.remove(msg.block);
                }
            }
            data
        } else if let Some(&data) = self.wb_buffer.get(&msg.block) {
            // Our write-back is racing the forward: serve from the buffer
            // (the L2 defers the WB ack until this forward completes).
            data
        } else {
            // The line was silently dropped (clean Exclusive): tell the
            // home its owner record is stale; it will serve from its own
            // copy, which is current.
            port.send(
                Msg::new(
                    MessageClass::L1InvAck,
                    self.node,
                    self.home(msg.block),
                    msg.block,
                ),
                1,
            );
            return;
        };
        port.send(
            Msg::new(MessageClass::L1ToL1, self.node, requestor, msg.block).with_data(data),
            1,
        );
    }

    /// Iterates over all cached lines as `(block, writable, value)`, for
    /// chip-level coherence invariant checks.
    pub fn lines(&self) -> impl Iterator<Item = (u64, bool, u64)> + '_ {
        self.array.iter().map(|(b, l)| {
            (
                b,
                matches!(l.state, L1State::Exclusive | L1State::Modified),
                l.data,
            )
        })
    }

    /// Visible state of a block, for invariant checks: `None` when absent,
    /// `Some((is_writable, value))` otherwise.
    pub fn probe(&self, block: u64) -> Option<(bool, u64)> {
        self.array.peek(block).map(|l| {
            (
                matches!(l.state, L1State::Exclusive | L1State::Modified),
                l.data,
            )
        })
    }

    /// The full dynamic state, for checkpointing (the configuration and
    /// trace sink are rebuilt by the caller on resume).
    pub fn snapshot(&self) -> L1Snapshot {
        let mut wb_buffer: Vec<(u64, u64)> = self.wb_buffer.iter().map(|(&b, &d)| (b, d)).collect();
        wb_buffer.sort_unstable();
        L1Snapshot {
            array: self.array.clone(),
            miss: self.miss,
            wb_buffer,
            stats: self.stats,
        }
    }

    /// Overwrites the dynamic state from an [`L1Cache::snapshot`] taken
    /// on an identically-configured cache.
    pub fn restore(&mut self, snap: L1Snapshot) {
        self.array = snap.array;
        self.miss = snap.miss;
        self.wb_buffer = snap.wb_buffer.into_iter().collect();
        self.stats = snap.stats;
    }
}

/// Complete dynamic state of one [`L1Cache`], for checkpointing. The
/// write-back buffer is stored as a sorted vector so the serialized form
/// is deterministic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct L1Snapshot {
    array: CacheArray<L1Line>,
    miss: Option<PendingMiss>,
    wb_buffer: Vec<(u64, u64)>,
    stats: L1Stats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcsim_core::circuit::CircuitKey;

    /// Loopback port capturing sent messages.
    struct TestPort {
        now: Cycle,
        sent: Vec<Msg>,
        commit_next: bool,
        undone: Vec<CircuitKey>,
    }

    impl TestPort {
        fn new() -> Self {
            Self {
                now: 0,
                sent: Vec::new(),
                commit_next: false,
                undone: Vec::new(),
            }
        }
    }

    impl Port for TestPort {
        fn now(&self) -> Cycle {
            self.now
        }
        fn send(&mut self, msg: Msg, _turnaround: u32) -> bool {
            self.sent.push(msg);
            self.commit_next
        }
        fn undo_circuit(&mut self, key: CircuitKey) {
            self.undone.push(key);
        }
        fn record_eliminated_ack(&mut self) {}
    }

    fn l1() -> L1Cache {
        let mesh: Topology = rcsim_core::Mesh::new(4, 4).unwrap().into();
        let cfg = ProtocolConfig::small_for_tests(&mesh);
        L1Cache::new(NodeId(3), mesh, cfg)
    }

    fn reply(to: &L1Cache, block: u64, data: u64) -> Msg {
        let home = to.home(block);
        Msg::new(MessageClass::L2Reply, home, NodeId(3), block).with_data(data)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = l1();
        let mut p = TestPort::new();
        assert_eq!(c.access(0x100, false, None, &mut p), Access::Miss);
        assert_eq!(p.sent.len(), 1);
        assert_eq!(p.sent[0].class, MessageClass::L1Request);
        assert_eq!(p.sent[0].req, Some(ReqKind::GetS));

        let done = c.handle(&reply(&c, 0x100, 42), false, &mut p).unwrap();
        assert_eq!(done.value, 42);
        // Ack sent (no elision configured).
        assert_eq!(p.sent.last().unwrap().class, MessageClass::L1DataAck);
        assert_eq!(
            c.access(0x100, false, None, &mut p),
            Access::Hit { value: 42 }
        );
    }

    #[test]
    fn exclusive_grant_allows_silent_store() {
        let mut c = l1();
        let mut p = TestPort::new();
        c.access(0x100, false, None, &mut p);
        let msg = reply(&c, 0x100, 1).with_exclusive();
        c.handle(&msg, false, &mut p);
        // E -> M silently.
        assert_eq!(
            c.access(0x100, true, Some(7), &mut p),
            Access::Hit { value: 7 }
        );
        assert_eq!(c.probe(0x100), Some((true, 7)));
    }

    #[test]
    fn store_miss_fills_modified_with_write_value() {
        let mut c = l1();
        let mut p = TestPort::new();
        assert_eq!(c.access(0x100, true, Some(99), &mut p), Access::Miss);
        assert_eq!(p.sent[0].req, Some(ReqKind::GetX));
        let done = c.handle(&reply(&c, 0x100, 1), false, &mut p).unwrap();
        assert_eq!(done.value, 99, "the store value wins over the fetched line");
        assert_eq!(c.probe(0x100), Some((true, 99)));
    }

    #[test]
    fn shared_store_upgrades() {
        let mut c = l1();
        let mut p = TestPort::new();
        c.access(0x100, false, None, &mut p);
        c.handle(&reply(&c, 0x100, 5), false, &mut p);
        // Store on a Shared line: GetX goes out.
        assert_eq!(c.access(0x100, true, Some(6), &mut p), Access::Miss);
        assert_eq!(p.sent.last().unwrap().req, Some(ReqKind::GetX));
        assert_eq!(c.stats().upgrades, 1);
        c.handle(&reply(&c, 0x100, 5), false, &mut p);
        assert_eq!(c.probe(0x100), Some((true, 6)));
    }

    #[test]
    fn ack_elided_on_circuit_reply() {
        let mut c = l1();
        c.cfg.eliminate_acks = true;
        let mut p = TestPort::new();
        c.access(0x100, false, None, &mut p);
        let before = p.sent.len();
        c.handle(&reply(&c, 0x100, 1), true, &mut p);
        assert_eq!(
            p.sent.len(),
            before,
            "no L1_DATA_ACK when the reply rode a circuit"
        );
        assert_eq!(c.stats().acks_elided, 1);

        // But an L1_TO_L1 is always acknowledged.
        c.access(0x140, false, None, &mut p);
        let m = Msg::new(MessageClass::L1ToL1, NodeId(9), NodeId(3), 0x140).with_data(2);
        c.handle(&m, true, &mut p);
        assert_eq!(p.sent.last().unwrap().class, MessageClass::L1DataAck);
    }

    #[test]
    fn overdue_miss_is_reissued_with_exponential_backoff() {
        let mut c = l1();
        let mut p = TestPort::new();
        c.access(0x100, false, None, &mut p);
        assert_eq!(p.sent.len(), 1);
        let t = c.cfg.reissue_timeout;

        // One cycle early: nothing.
        c.maybe_reissue(t - 1, &mut p);
        assert_eq!(p.sent.len(), 1);
        // First reissue at the timeout.
        c.maybe_reissue(t, &mut p);
        assert_eq!(p.sent.len(), 2);
        assert_eq!(p.sent[1].class, MessageClass::L1Request);
        assert_eq!(p.sent[1].req, Some(ReqKind::GetS));
        // Backoff doubles: the second reissue waits until 2t from issue.
        c.maybe_reissue(t + 1, &mut p);
        assert_eq!(p.sent.len(), 2);
        c.maybe_reissue(2 * t, &mut p);
        assert_eq!(p.sent.len(), 3);
        c.maybe_reissue(4 * t, &mut p);
        assert_eq!(p.sent.len(), 4);
        // max_reissues (3) exhausted: the L1 goes quiet.
        c.maybe_reissue(400 * t, &mut p);
        assert_eq!(p.sent.len(), 4);
        assert_eq!(c.stats().reissues, 3);

        // A late reply still completes the miss normally.
        let done = c.handle(&reply(&c, 0x100, 9), false, &mut p);
        assert_eq!(done.unwrap().value, 9);
        assert!(!c.miss_pending());
    }

    #[test]
    fn reissue_is_noop_without_outstanding_miss() {
        let mut c = l1();
        let mut p = TestPort::new();
        c.maybe_reissue(1_000_000, &mut p);
        assert!(p.sent.is_empty());
        assert_eq!(c.stats().reissues, 0);
    }

    #[test]
    fn duplicate_fill_is_acked_and_ignored() {
        let mut c = l1();
        let mut p = TestPort::new();
        c.access(0x100, false, None, &mut p);
        c.handle(&reply(&c, 0x100, 42), false, &mut p).unwrap();
        let n = p.sent.len();
        // A second reply for the same block (a reissue raced the original):
        // acknowledged so the home unblocks, but the line is untouched.
        assert!(c.handle(&reply(&c, 0x100, 99), false, &mut p).is_none());
        assert_eq!(p.sent.len(), n + 1);
        assert_eq!(p.sent.last().unwrap().class, MessageClass::L1DataAck);
        assert_eq!(c.stats().stale_fills, 1);
        assert_eq!(
            c.access(0x100, false, None, &mut p),
            Access::Hit { value: 42 }
        );
    }

    #[test]
    fn dirty_eviction_writes_back_and_serves_forwards() {
        let mut c = l1();
        let mut p = TestPort::new();
        // Fill a Modified line.
        c.access(0x100, true, Some(77), &mut p);
        c.handle(&reply(&c, 0x100, 0), false, &mut p);
        // Conflict-miss it out: small_for_tests has 16 sets, 4 ways; blocks
        // 0x100 + k*16 collide.
        for k in 1..=4u64 {
            let b = 0x100 + k * 16;
            c.access(b, false, None, &mut p);
            c.handle(&reply(&c, b, 0), false, &mut p);
        }
        assert_eq!(c.stats().writebacks, 1);
        let wb = *p
            .sent
            .iter()
            .find(|m| m.class == MessageClass::WbData)
            .unwrap();
        assert_eq!(wb.block, 0x100);
        assert_eq!(wb.data, 77);

        // A forward racing the write-back is served from the buffer.
        let fwd = Msg::new(MessageClass::FwdRequest, wb.dst, NodeId(3), 0x100)
            .with_req(ReqKind::GetS)
            .with_requestor(NodeId(7));
        c.handle(&fwd, false, &mut p);
        let d = p.sent.last().unwrap();
        assert_eq!(d.class, MessageClass::L1ToL1);
        assert_eq!(d.dst, NodeId(7));
        assert_eq!(d.data, 77);

        // The eventual WB ack clears the buffer.
        let ack = Msg::new(MessageClass::L2WbAck, wb.dst, NodeId(3), 0x100);
        c.handle(&ack, false, &mut p);
        assert!(c.wb_buffer.is_empty());
    }

    #[test]
    fn invalidation_of_modified_sends_data_as_ack() {
        let mut c = l1();
        let mut p = TestPort::new();
        c.access(0x100, true, Some(5), &mut p);
        c.handle(&reply(&c, 0x100, 0), false, &mut p);
        let inv = Msg::new(MessageClass::Invalidation, c.home(0x100), NodeId(3), 0x100);
        c.handle(&inv, false, &mut p);
        let last = p.sent.last().unwrap();
        assert_eq!(last.class, MessageClass::WbData);
        assert_eq!(last.data, 5);
        assert_eq!(c.probe(0x100), None);
    }

    #[test]
    fn invalidation_of_absent_line_still_acks() {
        let mut c = l1();
        let mut p = TestPort::new();
        let inv = Msg::new(MessageClass::Invalidation, c.home(0x100), NodeId(3), 0x100);
        c.handle(&inv, false, &mut p);
        assert_eq!(p.sent.last().unwrap().class, MessageClass::L1InvAck);
    }

    #[test]
    fn getx_forward_surrenders_the_line() {
        let mut c = l1();
        let mut p = TestPort::new();
        c.access(0x100, true, Some(5), &mut p);
        c.handle(&reply(&c, 0x100, 0), false, &mut p);
        let fwd = Msg::new(MessageClass::FwdRequest, c.home(0x100), NodeId(3), 0x100)
            .with_req(ReqKind::GetX)
            .with_requestor(NodeId(8));
        c.handle(&fwd, false, &mut p);
        assert_eq!(c.probe(0x100), None);
        let d = p.sent.last().unwrap();
        assert_eq!(
            (d.class, d.dst, d.data),
            (MessageClass::L1ToL1, NodeId(8), 5)
        );
    }

    #[test]
    fn gets_forward_of_modified_syncs_home() {
        let mut c = l1();
        let mut p = TestPort::new();
        c.access(0x100, true, Some(5), &mut p);
        c.handle(&reply(&c, 0x100, 0), false, &mut p);
        let fwd = Msg::new(MessageClass::FwdRequest, c.home(0x100), NodeId(3), 0x100)
            .with_req(ReqKind::GetS)
            .with_requestor(NodeId(8));
        c.handle(&fwd, false, &mut p);
        let classes: Vec<_> = p.sent.iter().map(|m| m.class).collect();
        assert!(
            classes.contains(&MessageClass::WbData),
            "dirty data synced to L2"
        );
        assert!(classes.contains(&MessageClass::L1ToL1));
        assert_eq!(c.probe(0x100), Some((false, 5)), "downgraded to Shared");
    }
}
