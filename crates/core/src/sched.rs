//! Kernel-scheduling primitives for the event-driven simulation loop.
//!
//! The cycle-accurate model is defined by the *dense* kernel: every
//! component ticks every cycle, in a fixed index order. The *event*
//! kernel produces byte-identical results by skipping only ticks that
//! are provable no-ops — a component with no due inbox traffic and no
//! internal activity. [`WakeTimes`] tracks, per component, the earliest
//! cycle at which pending input becomes due; producers call
//! [`WakeTimes::wake_at`] at every enqueue and consumers re-derive the
//! value after draining. See DESIGN.md §9 for the no-op argument.

use crate::types::Cycle;
use serde::{Deserialize, Serialize};

/// Which simulation kernel drives the per-cycle loops.
///
/// Both kernels execute the same code in the same order; `Event` merely
/// skips component ticks that cannot change any observable state, so the
/// two are required (and tested) to be byte-identical in every output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelMode {
    /// Tick every component every cycle (the reference semantics).
    Dense,
    /// Skip components that are provably idle this cycle (the default).
    #[default]
    Event,
}

impl KernelMode {
    /// Reads the `RC_KERNEL` environment knob: `dense` selects the dense
    /// reference kernel; anything else (including unset) selects `Event`.
    pub fn from_env() -> Self {
        match std::env::var("RC_KERNEL") {
            Ok(v) if v.eq_ignore_ascii_case("dense") => KernelMode::Dense,
            _ => KernelMode::Event,
        }
    }
}

/// Earliest-due-cycle tracker for a set of `n` components.
///
/// `next[i]` is a lower bound that is never *later* than the true
/// earliest due cycle of component `i`'s pending input (it may be
/// earlier, which only costs a spurious wake, never a missed one):
/// producers min-merge with [`WakeTimes::wake_at`] on every enqueue, and
/// the consumer restores exactness with [`WakeTimes::set`] after a drain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WakeTimes {
    next: Vec<Cycle>,
}

impl WakeTimes {
    /// A tracker for `n` components, all initially idle (`Cycle::MAX`).
    pub fn new(n: usize) -> Self {
        WakeTimes {
            next: vec![Cycle::MAX; n],
        }
    }

    /// Records that component `i` has input due at cycle `t` (min-merge).
    pub fn wake_at(&mut self, i: usize, t: Cycle) {
        let slot = &mut self.next[i];
        *slot = (*slot).min(t);
    }

    /// Overwrites component `i`'s wake cycle with the exact recomputed
    /// value (use after draining its inboxes).
    pub fn set(&mut self, i: usize, t: Cycle) {
        self.next[i] = t;
    }

    /// `true` when component `i` has (or may have) input due at `now`.
    pub fn due(&self, i: usize, now: Cycle) -> bool {
        self.next[i] <= now
    }

    /// The raw wake-cycle slots, for sharded ticking: the sharded kernel
    /// splits this slice into disjoint per-shard sub-slices (one worker
    /// per contiguous component range) and applies the same three
    /// operations directly — `slot <= now` for [`WakeTimes::due`],
    /// `slot = slot.min(t)` for [`WakeTimes::wake_at`], `slot = t` for
    /// [`WakeTimes::set`] — so the serial and sharded paths share one
    /// semantics.
    pub fn as_mut_slice(&mut self) -> &mut [Cycle] {
        &mut self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_knob_selects_kernel() {
        // `from_env` reads the process environment, which tests share;
        // exercise only the pure parsing contract via the default.
        assert_eq!(KernelMode::default(), KernelMode::Event);
    }

    #[test]
    fn wake_is_min_merge_and_set_overwrites() {
        let mut w = WakeTimes::new(2);
        assert!(!w.due(0, u64::MAX - 1));
        w.wake_at(0, 10);
        w.wake_at(0, 20); // later enqueue must not push the wake back
        assert!(!w.due(0, 9));
        assert!(w.due(0, 10));
        assert!(w.due(0, 11));
        w.set(0, 20);
        assert!(!w.due(0, 15));
        assert!(w.due(0, 20));
        assert!(!w.due(1, 1_000_000));
    }
}
