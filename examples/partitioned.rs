//! Partition isolation (the §5.5 future-usage model): an 8×8 chip split
//! into four Hardwall-style quadrants, each running a different parallel
//! application against its own shared region, with Reactive Circuits
//! working independently inside each partition.
//!
//! ```text
//! cargo run --release --example partitioned
//! ```

use reactive_circuits::prelude::*;
use reactive_circuits::protocol::ProtocolConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mesh: Topology = Mesh::square(64)?.into();
    let apps = ["fft", "canneal", "swaptions", "barnes"];
    let wl = Workload::partitioned(&apps, 64, 7).expect("known apps, square core count");
    println!("Partitioned 8x8 chip: quadrants run {:?}\n", apps);

    let mut results = Vec::new();
    for mechanism in [
        MechanismConfig::baseline(),
        MechanismConfig::complete_noack(),
    ] {
        let mut chip = Chip::new(mesh, mechanism, ProtocolConfig::paper_defaults(&mesh), &wl)?;
        chip.run(50_000).expect("chip run must not stall");
        chip.reset_stats();
        chip.run(25_000).expect("chip run must not stall");
        let violations = chip.coherence_violations();
        assert!(violations.is_empty(), "{violations:?}");
        let stats = chip.noc_stats();
        println!(
            "{:<16} instructions {:>9}  load {:>5.2} f/n/100c  replies on circuit {:>5.1}%",
            mechanism.label(),
            chip.instructions(),
            stats.load_flits_per_node_per_100(64),
            100.0 * stats.outcome_fraction(reactive_circuits::noc::CircuitOutcome::OnCircuit),
        );
        results.push(chip.instructions());
    }
    println!(
        "\nspeedup with circuits: {:.3}x (partitions keep paths short, so circuits\nbuild as easily as on a 16-core chip — the paper's scalability argument)",
        results[1] as f64 / results[0] as f64
    );
    Ok(())
}
