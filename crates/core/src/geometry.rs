//! 2-D mesh geometry: coordinates, neighbours and distances.

use crate::config::ConfigError;
use crate::types::{Direction, NodeId};
use serde::{Deserialize, Serialize};

/// An (x, y) tile coordinate; `x` grows east, `y` grows south.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Coord {
    /// Column, `0..width`.
    pub x: u16,
    /// Row, `0..height`.
    pub y: u16,
}

/// A rectangular mesh of tiles, numbered row-major.
///
/// # Examples
///
/// ```
/// use rcsim_core::geometry::Mesh;
/// use rcsim_core::types::{Direction, NodeId};
///
/// let mesh = Mesh::new(4, 4)?;
/// assert_eq!(mesh.nodes(), 16);
/// assert_eq!(mesh.neighbor(NodeId(5), Direction::East), Some(NodeId(6)));
/// assert_eq!(mesh.neighbor(NodeId(3), Direction::East), None); // edge
/// assert_eq!(mesh.distance(NodeId(0), NodeId(15)), 6);
/// # Ok::<(), rcsim_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mesh {
    width: u16,
    height: u16,
}

impl Mesh {
    /// Creates a `width × height` mesh.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::EmptyMesh`] if either dimension is zero, and
    /// [`ConfigError::MeshTooLarge`] if the node count would not fit the
    /// 16-bit [`NodeId`] space.
    pub fn new(width: u16, height: u16) -> Result<Self, ConfigError> {
        if width == 0 || height == 0 {
            return Err(ConfigError::EmptyMesh);
        }
        if (width as u32) * (height as u32) > u16::MAX as u32 {
            return Err(ConfigError::MeshTooLarge);
        }
        Ok(Self { width, height })
    }

    /// A square mesh for `cores` tiles (16 → 4×4, 64 → 8×8).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::NotSquare`] if `cores` is not a perfect
    /// square, or the errors of [`Mesh::new`].
    pub fn square(cores: u16) -> Result<Self, ConfigError> {
        // Integer perfect-square check: `side * side` in u16 can overflow
        // before the compare at large core counts (e.g. 1024 -> 32*32 is
        // fine, but a float round-trip plus u16 multiply wraps for counts
        // near u16::MAX), so search in u32.
        let side = (0..=255u16)
            .find(|s| (*s as u32) * (*s as u32) >= cores as u32)
            .unwrap_or(255);
        if (side as u32) * (side as u32) != cores as u32 {
            return Err(ConfigError::NotSquare(cores));
        }
        Mesh::new(side, side)
    }

    /// The most nearly square mesh with exactly `cores` tiles (e.g.
    /// 32 → 8×4), used for scalability sweeps between the paper's square
    /// chip sizes.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::EmptyMesh`] for zero cores and
    /// [`ConfigError::MeshTooLarge`] past the node-id space.
    pub fn near_square(cores: u16) -> Result<Self, ConfigError> {
        if cores == 0 {
            return Err(ConfigError::EmptyMesh);
        }
        let mut best = (cores, 1u16);
        let mut h = 1u16;
        while h * h <= cores {
            if cores.is_multiple_of(h) {
                best = (cores / h, h);
            }
            h += 1;
        }
        Mesh::new(best.0, best.1)
    }

    /// Mesh width (columns).
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Mesh height (rows).
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Total number of tiles.
    pub fn nodes(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Iterator over all node ids, row-major.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes() as u16).map(NodeId)
    }

    /// Coordinate of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for this mesh.
    pub fn coord(&self, node: NodeId) -> Coord {
        assert!(
            node.index() < self.nodes(),
            "node {node} out of range for {}x{} mesh",
            self.width,
            self.height
        );
        Coord {
            x: node.0 % self.width,
            y: node.0 / self.width,
        }
    }

    /// Node at a coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the mesh.
    pub fn node(&self, c: Coord) -> NodeId {
        assert!(c.x < self.width && c.y < self.height, "coord out of range");
        NodeId(c.y * self.width + c.x)
    }

    /// The neighbouring node in a direction, or `None` at a mesh edge or
    /// for `Local`.
    pub fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let c = self.coord(node);
        let n = match dir {
            Direction::North => Coord {
                x: c.x,
                y: c.y.checked_sub(1)?,
            },
            Direction::South => {
                if c.y + 1 >= self.height {
                    return None;
                }
                Coord { x: c.x, y: c.y + 1 }
            }
            Direction::East => {
                if c.x + 1 >= self.width {
                    return None;
                }
                Coord { x: c.x + 1, y: c.y }
            }
            Direction::West => Coord {
                x: c.x.checked_sub(1)?,
                y: c.y,
            },
            Direction::Local => return None,
        };
        Some(self.node(n))
    }

    /// Manhattan (hop) distance between two nodes.
    pub fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        let ca = self.coord(a);
        let cb = self.coord(b);
        (ca.x.abs_diff(cb.x) + ca.y.abs_diff(cb.y)) as u32
    }

    /// The tiles holding memory controllers: spread along the top and
    /// bottom edges, 4 controllers for both 16- and 64-node chips as in the
    /// paper (Table 2).
    pub fn memory_controller_tiles(&self) -> Vec<NodeId> {
        let w = self.width;
        let h = self.height;
        let quarter = |i: u16| -> u16 { (w / 4).max(1).min(w - 1) * i % w };
        vec![
            self.node(Coord {
                x: quarter(1),
                y: 0,
            }),
            self.node(Coord {
                x: (w - 1 - quarter(1)).min(w - 1),
                y: 0,
            }),
            self.node(Coord {
                x: quarter(1),
                y: h - 1,
            }),
            self.node(Coord {
                x: (w - 1 - quarter(1)).min(w - 1),
                y: h - 1,
            }),
        ]
    }

    /// The west-edge column (`x == 0`), top to bottom — where external
    /// open-loop traffic enters the chip. Mirrors how datacenter-style
    /// CMPs pin I/O at one physical edge of the die.
    pub fn west_edge(&self) -> Vec<NodeId> {
        (0..self.height)
            .map(|y| self.node(Coord { x: 0, y }))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_validate() {
        assert!(Mesh::new(0, 4).is_err());
        assert!(Mesh::new(4, 0).is_err());
        assert!(Mesh::new(300, 300).is_err());
        assert!(Mesh::square(15).is_err());
        assert_eq!(Mesh::square(16).unwrap(), Mesh::new(4, 4).unwrap());
        assert_eq!(Mesh::square(64).unwrap(), Mesh::new(8, 8).unwrap());
        assert_eq!(Mesh::square(1024).unwrap(), Mesh::new(32, 32).unwrap());
        // Large non-squares must not wrap u16 in the `side * side` check:
        // 65535's float sqrt rounds to 256, and 256*256 wraps to 0 in u16.
        assert!(Mesh::square(65535).is_err());
        assert_eq!(Mesh::square(65025).unwrap(), Mesh::new(255, 255).unwrap());
    }

    #[test]
    fn near_square_factors_sensibly() {
        assert_eq!(Mesh::near_square(16).unwrap(), Mesh::new(4, 4).unwrap());
        assert_eq!(Mesh::near_square(32).unwrap(), Mesh::new(8, 4).unwrap());
        assert_eq!(Mesh::near_square(64).unwrap(), Mesh::new(8, 8).unwrap());
        assert_eq!(Mesh::near_square(7).unwrap(), Mesh::new(7, 1).unwrap());
        assert!(Mesh::near_square(0).is_err());
    }

    #[test]
    fn west_edge_is_the_x0_column() {
        let m = Mesh::new(4, 4).unwrap();
        let edge = m.west_edge();
        assert_eq!(edge.len(), 4);
        for n in &edge {
            assert_eq!(m.coord(*n).x, 0);
        }
        // Height-many entries even on non-square meshes.
        assert_eq!(Mesh::new(8, 4).unwrap().west_edge().len(), 4);
    }

    #[test]
    fn coord_roundtrip() {
        let m = Mesh::new(5, 3).unwrap();
        for n in m.iter() {
            assert_eq!(m.node(m.coord(n)), n);
        }
    }

    #[test]
    fn neighbors_4x4() {
        let m = Mesh::new(4, 4).unwrap();
        assert_eq!(m.neighbor(NodeId(0), Direction::North), None);
        assert_eq!(m.neighbor(NodeId(0), Direction::West), None);
        assert_eq!(m.neighbor(NodeId(0), Direction::East), Some(NodeId(1)));
        assert_eq!(m.neighbor(NodeId(0), Direction::South), Some(NodeId(4)));
        assert_eq!(m.neighbor(NodeId(15), Direction::South), None);
        assert_eq!(m.neighbor(NodeId(15), Direction::East), None);
        assert_eq!(m.neighbor(NodeId(5), Direction::Local), None);
    }

    #[test]
    fn neighbor_is_symmetric() {
        let m = Mesh::new(4, 4).unwrap();
        for n in m.iter() {
            for d in [
                Direction::North,
                Direction::East,
                Direction::South,
                Direction::West,
            ] {
                if let Some(nb) = m.neighbor(n, d) {
                    assert_eq!(m.neighbor(nb, d.opposite()), Some(n));
                }
            }
        }
    }

    #[test]
    fn distances() {
        let m = Mesh::new(8, 8).unwrap();
        assert_eq!(m.distance(NodeId(0), NodeId(0)), 0);
        assert_eq!(m.distance(NodeId(0), NodeId(63)), 14);
        assert_eq!(m.distance(NodeId(0), NodeId(7)), 7);
        assert_eq!(m.distance(NodeId(7), NodeId(0)), 7);
    }

    #[test]
    fn memory_controllers_on_edges() {
        for cores in [16u16, 64] {
            let m = Mesh::square(cores).unwrap();
            let mcs = m.memory_controller_tiles();
            assert_eq!(mcs.len(), 4);
            for mc in &mcs {
                let c = m.coord(*mc);
                assert!(c.y == 0 || c.y == m.height() - 1, "mc {mc} not on edge");
            }
            // All distinct.
            let mut sorted = mcs.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 4);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coord_out_of_range_panics() {
        let m = Mesh::new(2, 2).unwrap();
        m.coord(NodeId(4));
    }
}
