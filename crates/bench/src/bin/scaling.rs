//! Scalability sweep (the §5.5 discussion): how circuit usage and speedup
//! evolve with chip size. Longer paths and more concurrent traffic make
//! complete circuits harder to build — the reason the paper argues for
//! timed circuits and partitioned usage at larger scales.

use rcsim_bench::{bench_row, run_points, save_bench_summary, save_json, BenchSummary, PointSpec};
use rcsim_core::MechanismConfig;

fn main() {
    let app = std::env::var("RC_APPS")
        .ok()
        .and_then(|s| s.split(',').next().map(str::to_owned))
        .unwrap_or_else(|| "canneal".to_owned());
    println!("Scalability sweep ('{app}'): circuits get harder to build as chips grow\n");
    println!(
        "{:<8} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "cores", "Complete", "SlackDelay", "circuit%", "sd-circ%", "failed%"
    );

    // Three mechanisms × three chip sizes, one flat job list.
    let sizes = [16u16, 32, 64];
    let specs: Vec<PointSpec> = sizes
        .iter()
        .flat_map(|&cores| {
            [
                PointSpec::new(cores, MechanismConfig::baseline(), &app, 1),
                PointSpec::new(cores, MechanismConfig::complete_noack(), &app, 1),
                PointSpec::new(cores, MechanismConfig::slack_delay(1), &app, 1),
            ]
        })
        .collect();
    let all = run_points(&specs);

    let mut rows = Vec::new();
    let mut summary = BenchSummary::new("scaling");
    for (&cores, chunk) in sizes.iter().zip(all.chunks(3)) {
        let (base, complete, slack) = (&chunk[0], &chunk[1], &chunk[2]);
        for r in [complete, slack] {
            let mut row = bench_row(&r.mechanism, cores, std::slice::from_ref(r));
            row.extra.insert("speedup".into(), r.speedup_over(base));
            summary.push(row);
        }
        println!(
            "{:<8} {:>11.3}x {:>11.3}x {:>9.1}% {:>9.1}% {:>9.1}%",
            cores,
            complete.speedup_over(base),
            slack.speedup_over(base),
            100.0 * complete.outcomes["circuit"],
            100.0 * slack.outcomes["circuit"],
            100.0 * complete.outcomes["failed"],
        );
        rows.push((
            cores,
            complete.speedup_over(base),
            complete.outcomes["circuit"],
        ));
    }
    println!("\n(§5.2: circuit usage falls with chip size; §5.5: timed circuits and");
    println!(" partitioning — see `examples/partitioned.rs` — are the remedies)");
    save_json("scaling", &rows);
    save_bench_summary(&mut summary);
}
