//! Experiment-pipeline benchmarks: one Criterion target per paper
//! artifact family, timing a scaled-down slice of the same code path the
//! `table*`/`fig*` binaries run at full size. Useful to track simulator
//! throughput regressions in the exact configurations that matter.

use criterion::{criterion_group, criterion_main, Criterion};
use rcsim_core::MechanismConfig;
use rcsim_power::area_savings;
use rcsim_system::{run_sim, SimConfig};

fn tiny(cores: u16, mechanism: MechanismConfig, app: &str) -> SimConfig {
    SimConfig {
        seed: 9,
        warmup_cycles: 400,
        measure_cycles: 1_200,
        ..SimConfig::quick(cores, mechanism, app)
    }
}

/// Table 1 slice: the baseline message mix on a 64-core chip.
fn table1_slice(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiment_slices");
    g.sample_size(10);
    g.bench_function("table1_message_mix_64c", |b| {
        b.iter(|| run_sim(&tiny(64, MechanismConfig::baseline(), "canneal")).expect("runs"))
    });

    // Table 5 / Figure 6 slice: reservations under Complete_NoAck.
    g.bench_function("table5_fig6_complete_noack_64c", |b| {
        b.iter(|| run_sim(&tiny(64, MechanismConfig::complete_noack(), "canneal")).expect("runs"))
    });

    // Figure 9 slice: a paired baseline/SlackDelay speedup point.
    g.bench_function("fig9_speedup_pair_16c", |b| {
        b.iter(|| {
            let base = run_sim(&tiny(16, MechanismConfig::baseline(), "fft")).expect("runs");
            let sd = run_sim(&tiny(16, MechanismConfig::slack_delay(1), "fft")).expect("runs");
            sd.speedup_over(&base)
        })
    });
    g.finish();

    // Table 6 is analytical: keep it honest by timing the model itself.
    let mut g = c.benchmark_group("models");
    g.bench_function("table6_area_model", |b| {
        b.iter(|| {
            MechanismConfig::figure6_grid()
                .iter()
                .map(|m| area_savings(m, 64))
                .sum::<f64>()
        })
    });
    g.finish();
}

criterion_group!(benches, table1_slice);
criterion_main!(benches);
