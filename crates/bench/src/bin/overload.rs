//! Overload — latency-vs-offered-load curves driven past saturation:
//! seeded open-loop Poisson arrivals at the west edge sweep from light
//! load to well past the admission capacity, per circuit mechanism, with
//! p99/p99.9 SLO tracking and the admission-on vs admission-off
//! degradation comparison (DESIGN.md §11).
//!
//! Invariants asserted at EVERY load point:
//!   * the run terminates (a watchdog stall exits with status 2),
//!   * conservation closes exactly — offered == completed + shed +
//!     gave_up + in_flight, zero unaccounted,
//!   * ingress queues stay within their configured bound.
//!
//! With admission on, post-knee goodput must plateau (graceful
//! saturation); with admission off, the same loads are measured to show
//! the degradation admission prevents.
//!
//! Writes `target/experiments/BENCH_overload.json` (validated by
//! `validate_bench`) plus raw rows in `overload.json`.

use rcsim_bench::{
    bench_row, cores_list, experiment_apps, measure_cycles, run_configs, save_bench_summary,
    save_json, seeds, BenchSummary, PointSpec,
};
use rcsim_core::{MechanismConfig, Mesh};
use rcsim_system::{OpenLoopConfig, RunResult, SimConfig};

/// Offered load per edge node, arrivals/cycle. The admission capacity
/// sits at [`ADMIT_RATE`]; the top half of the sweep is past the knee.
const RATES: [f64; 6] = [0.02, 0.05, 0.1, 0.2, 0.35, 0.5];

/// Token-bucket refill rate, arrivals/cycle/edge — the admission
/// capacity. Loads above this are past saturation by construction.
const ADMIT_RATE: f64 = 0.1;

/// The mechanisms whose saturation behaviour the sweep compares.
fn mechanisms() -> Vec<MechanismConfig> {
    vec![
        MechanismConfig::baseline(),
        MechanismConfig::fragmented(),
        MechanismConfig::complete(),
        MechanismConfig::complete_noack(),
    ]
}

/// The open-loop layer for one sweep point: Poisson arrivals at `rate`
/// with the admission capacity pinned to [`ADMIT_RATE`] (not matched to
/// the offered rate — the knee must stay put while load sweeps past it).
fn open_loop(rate: f64, admission: bool) -> OpenLoopConfig {
    let mut ol = OpenLoopConfig::poisson(rate);
    ol.ingress.tokens_per_kilocycle = (ADMIT_RATE * 1024.0).ceil() as u64;
    ol.ingress.admission = admission;
    ol
}

/// Aggregated external-traffic numbers for one (mechanism, rate) point.
struct PointAgg {
    offered: u64,
    completed: u64,
    completed_measured: u64,
    in_slo: u64,
    rejected: u64,
    shed: u64,
    gave_up: u64,
    p99: f64,
    p999: f64,
    time_in_overload: u64,
    high_water: u64,
}

fn aggregate(results: &[RunResult], label: &str, queue_cap: usize) -> PointAgg {
    let mut a = PointAgg {
        offered: 0,
        completed: 0,
        completed_measured: 0,
        in_slo: 0,
        rejected: 0,
        shed: 0,
        gave_up: 0,
        p99: 0.0,
        p999: 0.0,
        time_in_overload: 0,
        high_water: 0,
    };
    for r in results {
        let e = &r.external;
        assert!(!r.health.stalled, "{label}: stalled under overload");
        assert_eq!(
            e.unaccounted, 0,
            "{label}: conservation violated ({} arrivals unaccounted)",
            e.unaccounted
        );
        assert!(
            r.health.overload.depth_high_water as usize <= queue_cap,
            "{label}: ingress queue exceeded its bound ({} > {queue_cap})",
            r.health.overload.depth_high_water
        );
        assert!(e.offered > 0, "{label}: arrival streams produced nothing");
        a.offered += e.offered;
        a.completed += e.completed;
        a.completed_measured += e.completed_measured;
        a.in_slo += e.completed_in_slo;
        a.rejected += e.rejected;
        a.shed += e.shed;
        a.gave_up += e.gave_up;
        // Tail latencies cannot be averaged; keep the worst-run envelope.
        a.p99 = a.p99.max(e.latency_p99);
        a.p999 = a.p999.max(e.latency_p999);
        a.time_in_overload += r.health.overload.time_in_overload;
        a.high_water = a.high_water.max(r.health.overload.depth_high_water as u64);
    }
    a
}

#[allow(clippy::too_many_arguments)]
fn push_row(
    summary: &mut BenchSummary,
    raw: &mut Vec<(String, f64, u64, u64)>,
    label: &str,
    cores: u16,
    rate: f64,
    admission: bool,
    goodput: f64,
    a: &PointAgg,
    results: &[RunResult],
) {
    let mut row = bench_row(label, cores, results);
    row.extra.insert("offered_load".to_owned(), rate);
    row.extra
        .insert("admission".to_owned(), if admission { 1.0 } else { 0.0 });
    row.extra.insert("goodput".to_owned(), goodput);
    row.extra.insert("ext_offered".to_owned(), a.offered as f64);
    row.extra
        .insert("ext_completed".to_owned(), a.completed as f64);
    row.extra
        .insert("ext_rejected".to_owned(), a.rejected as f64);
    row.extra.insert("ext_shed".to_owned(), a.shed as f64);
    row.extra.insert("ext_gave_up".to_owned(), a.gave_up as f64);
    row.extra.insert("ext_p99".to_owned(), a.p99);
    row.extra.insert("ext_p999".to_owned(), a.p999);
    let slo_frac = if a.completed_measured == 0 {
        0.0
    } else {
        a.in_slo as f64 / a.completed_measured as f64
    };
    row.extra.insert("slo_fraction".to_owned(), slo_frac);
    row.extra
        .insert("time_in_overload".to_owned(), a.time_in_overload as f64);
    row.extra
        .insert("depth_high_water".to_owned(), a.high_water as f64);
    summary.push(row);
    raw.push((label.to_owned(), rate, a.completed_measured, a.rejected));
}

fn main() {
    println!("Overload — open-loop saturation sweep with admission control\n");
    println!("Poisson arrivals at the west edge sweep from light load past the");
    println!("admission capacity ({ADMIT_RATE}/cycle/edge). Every point must");
    println!("terminate, conserve every arrival, and keep its ingress queues");
    println!("within bound; with admission on, post-knee goodput must plateau.\n");

    let cores = cores_list().into_iter().next().unwrap_or(16);
    let mesh = Mesh::square(cores)
        .or_else(|_| Mesh::near_square(cores))
        .expect("valid core count");
    let edge_count = mesh.height() as u64;
    let apps = experiment_apps();
    let seed_list = seeds();
    let per_point = apps.len() * seed_list.len();
    let queue_cap = open_loop(ADMIT_RATE, true).ingress.queue_cap;
    let window = measure_cycles();

    let mut raw = Vec::new();
    let mut summary = BenchSummary::new("overload");

    // Section 1: admission ON, every mechanism × the full load sweep.
    let mut jobs = Vec::new();
    for mechanism in mechanisms() {
        for &rate in &RATES {
            for app in &apps {
                for &s in &seed_list {
                    let spec = PointSpec::new(cores, mechanism, app, s);
                    let mut cfg: SimConfig = spec.config();
                    cfg.open_loop = Some(open_loop(rate, true));
                    jobs.push((format!("{} load={rate}", spec.label()), cfg));
                }
            }
        }
    }
    let all = run_configs(jobs);
    let mut chunks = all.chunks(per_point);

    println!("== admission ON (capacity {ADMIT_RATE}/cycle/edge) ==");
    println!(
        "{:<22} {:>6} {:>9} {:>9} {:>9} {:>8} {:>9} {:>9} {:>7}",
        "configuration",
        "load",
        "goodput",
        "ext_p99",
        "ext_p999",
        "in_slo",
        "rejected",
        "shed",
        "hiwater"
    );
    for mechanism in mechanisms() {
        let mut post_knee = Vec::new();
        for &rate in &RATES {
            let results = chunks.next().expect("grid-aligned result chunks");
            let label = format!("{}/load{rate}", mechanism.label());
            let a = aggregate(results, &label, queue_cap);
            // Chip-level completions per cycle over the measure window,
            // averaged across the point's runs.
            let goodput = a.completed_measured as f64 / (window as f64 * results.len() as f64);
            let slo_frac = if a.completed_measured == 0 {
                0.0
            } else {
                a.in_slo as f64 / a.completed_measured as f64
            };
            println!(
                "{:<22} {:>6} {:>9.4} {:>9.0} {:>9.0} {:>7.1}% {:>9} {:>9} {:>7}",
                mechanism.label(),
                rate,
                goodput,
                a.p99,
                a.p999,
                100.0 * slo_frac,
                a.rejected,
                a.shed,
                a.high_water
            );
            if rate > ADMIT_RATE {
                post_knee.push((rate, goodput));
            }
            push_row(
                &mut summary,
                &mut raw,
                &label,
                cores,
                rate,
                true,
                goodput,
                &a,
                results,
            );
        }
        // Graceful saturation: past the knee, goodput must plateau, not
        // collapse. Short smoke windows are too noisy for the ratio test.
        if window >= 20_000 {
            let peak = post_knee.iter().map(|&(_, g)| g).fold(0.0f64, f64::max);
            for &(rate, g) in &post_knee {
                assert!(
                    g >= 0.5 * peak,
                    "{}: goodput collapsed past saturation (load {rate}: {g:.4} \
                     vs post-knee peak {peak:.4})",
                    mechanism.label()
                );
            }
        }
    }
    println!(
        "\nEvery point conserved all arrivals and kept its queues ≤ {queue_cap} \
         ({edge_count} edge nodes)."
    );

    // Section 2: admission OFF — the degradation comparison. One
    // mechanism, same loads: without the token bucket only the queue
    // bound and shed timeout protect the fabric, so the ingress queues
    // run full and end-to-end tails grow.
    let mechanism = MechanismConfig::complete_noack();
    let mut jobs = Vec::new();
    for &rate in &RATES {
        for app in &apps {
            for &s in &seed_list {
                let spec = PointSpec::new(cores, mechanism, app, s);
                let mut cfg: SimConfig = spec.config();
                cfg.open_loop = Some(open_loop(rate, false));
                jobs.push((format!("{} noadmit load={rate}", spec.label()), cfg));
            }
        }
    }
    let all = run_configs(jobs);
    let mut chunks = all.chunks(per_point);

    println!("\n== admission OFF ({} only) ==", mechanism.label());
    println!(
        "{:<22} {:>6} {:>9} {:>9} {:>9} {:>8} {:>9} {:>9} {:>7}",
        "configuration",
        "load",
        "goodput",
        "ext_p99",
        "ext_p999",
        "in_slo",
        "rejected",
        "shed",
        "hiwater"
    );
    for &rate in &RATES {
        let results = chunks.next().expect("grid-aligned result chunks");
        let label = format!("{}/noadmit/load{rate}", mechanism.label());
        let a = aggregate(results, &label, queue_cap);
        let goodput = a.completed_measured as f64 / (window as f64 * results.len() as f64);
        let slo_frac = if a.completed_measured == 0 {
            0.0
        } else {
            a.in_slo as f64 / a.completed_measured as f64
        };
        println!(
            "{:<22} {:>6} {:>9.4} {:>9.0} {:>9.0} {:>7.1}% {:>9} {:>9} {:>7}",
            mechanism.label(),
            rate,
            goodput,
            a.p99,
            a.p999,
            100.0 * slo_frac,
            a.rejected,
            a.shed,
            a.high_water
        );
        push_row(
            &mut summary,
            &mut raw,
            &label,
            cores,
            rate,
            false,
            goodput,
            &a,
            results,
        );
    }
    println!("\nAdmission off still terminates and conserves — the queue bound and");
    println!("shed timeout are the backstop — but the tails show what the token");
    println!("bucket buys.");

    save_json("overload", &raw);
    save_bench_summary(&mut summary);
}
