//! Checkpoint-cost sweep: what a full simulation snapshot costs to take
//! (wall milliseconds and on-disk bytes), what a resume costs, and how
//! much wall overhead periodic checkpointing adds to a run at each
//! interval — the numbers behind the "crash-resilience is nearly free at
//! the default interval" claim in DESIGN.md §15.
//!
//! Two tiers, matching the rest of the suite:
//!
//! - **Full-system** (64 cores): a real `SimConfig` point run three
//!   ways — plain, snapshot-at-midpoint (timing `SimSession::checkpoint`,
//!   `SessionSnapshot::save` size, and `SimSession::resume`), and through
//!   [`run_sim_resumable`] at several intervals. Every checkpointed run
//!   is asserted byte-identical to the plain run before its overhead is
//!   reported, and the overhead at [`DEFAULT_CKPT_INTERVAL`] is
//!   **asserted < 5%** (with a small absolute floor so timing noise on
//!   sub-second smoke configs cannot flake CI).
//! - **Network-level** (64 and 256 cores): the coherence protocol caps
//!   full chips at 64 tiles, so snapshot-size scaling past that is
//!   measured on a [`Network`] driven with the same closed-loop echo the
//!   shards sweep uses, snapshotting mid-flight and asserting the
//!   restore → re-snapshot round trip is byte-identical.
//!
//! Knobs: `RC_CKPT_BENCH_CYCLES` (full-system measure window, default
//! 4000), `RC_CKPT_BENCH_REPS` (wall-time repetitions, min is reported;
//! default 3), `RC_CKPT_NET_CORES` (comma list, default `64,256`),
//! `RC_CKPT_NET_CYCLES` (network-tier injection window, default 1200).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcsim_bench::{bench_row, save_bench_summary, BenchSummary, DEFAULT_CKPT_INTERVAL};
use rcsim_core::circuit::CircuitKey;
use rcsim_core::{MechanismConfig, MessageClass, NodeId, TopologySpec};
use rcsim_noc::{Network, NocConfig, PacketSpec};
use rcsim_system::{
    run_sim_resumable, run_sim_with, shards_from_env, KernelMode, RunResult, SimConfig, SimSession,
};
use std::time::Instant;

fn sim_cycles() -> u64 {
    std::env::var("RC_CKPT_BENCH_CYCLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&c| c >= 100)
        .unwrap_or(4_000)
}

fn reps() -> usize {
    std::env::var("RC_CKPT_BENCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(3)
}

fn net_cores() -> Vec<u16> {
    std::env::var("RC_CKPT_NET_CORES")
        .ok()
        .map(|s| s.split(',').filter_map(|c| c.trim().parse().ok()).collect())
        .filter(|v: &Vec<u16>| !v.is_empty())
        .unwrap_or_else(|| vec![64, 256])
}

fn net_cycles() -> u64 {
    std::env::var("RC_CKPT_NET_CYCLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&c| c >= 1)
        .unwrap_or(1_200)
}

/// Minimum wall-clock seconds over `reps` runs of `f` (min, not mean:
/// the cleanest run is the one least polluted by scheduler noise).
fn min_wall<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let started = Instant::now();
    let mut out = f();
    let mut best = started.elapsed().as_secs_f64();
    for _ in 1..reps {
        let started = Instant::now();
        out = f();
        best = best.min(started.elapsed().as_secs_f64());
    }
    (out, best)
}

/// Serialized result: the byte-identity witness for checkpointed runs.
fn fingerprint(r: &RunResult) -> String {
    serde_json::to_string(r).expect("results serialize")
}

/// Consumes deliveries for the network-tier point (same closed loop as
/// the shards sweep): requests echo back as circuit-riding replies.
fn echo(net: &mut Network, outstanding: &mut [u32]) {
    for (node, d) in net.take_all_delivered() {
        match d.class {
            MessageClass::L1Request => {
                let key = CircuitKey {
                    requestor: d.src,
                    block: d.block,
                };
                net.inject(
                    PacketSpec::new(node, d.src, MessageClass::L2Reply)
                        .with_block(d.block)
                        .with_circuit_key(key),
                );
            }
            MessageClass::L2Reply => outstanding[node.0 as usize] -= 1,
            other => panic!("unexpected class {other}"),
        }
    }
}

/// Network-tier point: drive a `cores`-tile mesh mid-flight, snapshot
/// it, and report the snapshot's wall cost and serialized size. The
/// restore → re-snapshot round trip is asserted byte-identical.
fn net_point(cores: u16, window: u64) -> (f64, u64) {
    let topology = TopologySpec::Mesh.build(cores).expect("mesh sizes fit");
    let cfg = NocConfig::paper_baseline(topology, MechanismConfig::complete());
    let mut net = Network::new(cfg).expect("valid config");
    let mut rng = StdRng::seed_from_u64(0xCC37);
    let n = topology.nodes() as u16;
    let mut outstanding = vec![0u32; n as usize];
    let mut block = 0u64;
    for _ in 0..window {
        for s in 0..n {
            if outstanding[s as usize] < 8 && rng.gen_bool(0.02) {
                let src = NodeId(s);
                let dst = loop {
                    let d = NodeId(rng.gen_range(0..n));
                    if d != src {
                        break d;
                    }
                };
                block += 64;
                net.inject(PacketSpec::new(src, dst, MessageClass::L1Request).with_block(block));
                outstanding[s as usize] += 1;
            }
        }
        net.tick();
        echo(&mut net, &mut outstanding);
    }

    let started = Instant::now();
    let snap = net.snapshot();
    let snapshot_ms = started.elapsed().as_secs_f64() * 1e3;
    let bytes = serde_json::to_string(&snap).expect("snapshots serialize");

    let mut restored = Network::new(cfg).expect("valid config");
    restored.restore(&snap);
    assert_eq!(
        serde_json::to_string(&restored.snapshot()).expect("snapshots serialize"),
        bytes,
        "c{cores}: restore → re-snapshot is not byte-identical"
    );
    (snapshot_ms, bytes.len() as u64)
}

fn main() {
    let kernel = KernelMode::from_env();
    let shards = shards_from_env();
    let reps = reps();
    let measure = sim_cycles();
    let mut cfg = SimConfig::quick(64, MechanismConfig::complete(), "fft");
    cfg.warmup_cycles = measure / 4;
    cfg.measure_cycles = measure;
    let total = cfg.warmup_cycles + cfg.measure_cycles;
    let dir = std::env::temp_dir().join(format!("rcsim-bench-ckpt-{}", std::process::id()));

    println!("Checkpoint-cost sweep ({measure}-cycle window, min of {reps} reps)\n");

    // -- Full-system tier: plain baseline ------------------------------
    let (plain, plain_wall) = min_wall(reps, || {
        run_sim_with(&cfg, kernel, shards).expect("plain run completes")
    });
    let plain_fp = fingerprint(&plain);
    println!("plain 64-core run: {plain_wall:.3}s");

    // -- Snapshot / save / resume microcosts at the midpoint -----------
    let mut session = SimSession::new(&cfg, None, kernel, shards).expect("session builds");
    session.run_until(total / 2).expect("midpoint is reachable");
    let started = Instant::now();
    let snap = session.checkpoint();
    let snapshot_ms = started.elapsed().as_secs_f64() * 1e3;
    let path = dir.join("bench-midpoint.ckpt");
    snap.save(&path).expect("checkpoint saves");
    let snapshot_bytes = std::fs::metadata(&path).expect("saved file exists").len();
    let started = Instant::now();
    let reloaded = rcsim_system::SessionSnapshot::load(&path).expect("checkpoint loads");
    let resumed = SimSession::resume(&reloaded, kernel, shards).expect("checkpoint resumes");
    let resume_ms = started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(resumed.pos(), total / 2, "resume landed on the wrong cycle");
    println!(
        "midpoint snapshot: {snapshot_ms:.2}ms to take, {snapshot_bytes} bytes on disk, \
         {resume_ms:.2}ms to load+resume"
    );

    // -- Checkpointed runs at each interval ----------------------------
    let mut extra = std::collections::BTreeMap::new();
    extra.insert("snapshot_ms".to_owned(), snapshot_ms);
    extra.insert("snapshot_bytes".to_owned(), snapshot_bytes as f64);
    extra.insert("resume_ms".to_owned(), resume_ms);
    extra.insert("plain_wall_s".to_owned(), plain_wall);
    println!("\n{:<22} {:>10} {:>10}", "interval", "wall s", "overhead");
    for (name, interval) in [
        ("eighth", (total / 8).max(1)),
        ("half", (total / 2).max(1)),
        ("default", DEFAULT_CKPT_INTERVAL),
    ] {
        let run_dir = dir.join(name);
        let (res, wall) = min_wall(reps, || {
            run_sim_resumable(&cfg, kernel, shards, &run_dir, interval)
                .expect("checkpointed run completes")
        });
        assert_eq!(
            fingerprint(&res),
            plain_fp,
            "interval {interval}: checkpointed run diverged from the plain run"
        );
        let overhead = wall / plain_wall.max(1e-9) - 1.0;
        extra.insert(format!("wall_s_{name}"), wall);
        extra.insert(format!("overhead_frac_{name}"), overhead);
        println!(
            "{:<22} {:>9.3}s {:>9.1}%",
            format!("{name} ({interval})"),
            wall,
            overhead * 1e2
        );
        if interval == DEFAULT_CKPT_INTERVAL {
            // The 5% gate. The 30ms floor keeps a sub-second smoke config
            // (RC_CKPT_BENCH_CYCLES in CI) from flaking on scheduler
            // noise; at realistic windows the relative bound dominates.
            assert!(
                overhead < 0.05 || (wall - plain_wall) < 0.030,
                "default-interval checkpointing costs {:.1}% > 5% wall overhead",
                overhead * 1e2
            );
        }
    }

    // -- Network tier: snapshot-size scaling past the 64-tile cap ------
    let mut summary = BenchSummary::new("checkpoint");
    let mut sim_row = bench_row("sim/complete/c64", 64, std::slice::from_ref(&plain));
    sim_row.extra = extra;
    summary.push(sim_row);

    println!(
        "\n{:<18} {:>12} {:>14}",
        "network tier", "snapshot ms", "bytes"
    );
    for cores in net_cores() {
        let (ms, bytes) = net_point(cores, net_cycles());
        println!(
            "{:<18} {:>11.2}ms {:>14}",
            format!("mesh c{cores}"),
            ms,
            bytes
        );
        let mut extra = std::collections::BTreeMap::new();
        extra.insert("snapshot_ms".to_owned(), ms);
        extra.insert("snapshot_bytes".to_owned(), bytes as f64);
        extra.insert(
            "snapshot_bytes_per_core".to_owned(),
            bytes as f64 / f64::from(cores),
        );
        summary.push(rcsim_bench::BenchRow {
            label: format!("net/complete/c{cores}"),
            cores: cores as usize,
            topology: "mesh".to_owned(),
            avg_latency: 0.0,
            p99_latency: 0.0,
            p999_latency: 0.0,
            circuit_hit_rate: 0.0,
            extra,
        });
    }

    let _ = std::fs::remove_dir_all(&dir);
    println!("\n(every checkpointed run above was asserted byte-identical to the");
    println!(" plain run, and default-interval overhead is gated at < 5%)");
    save_bench_summary(&mut summary);
}
