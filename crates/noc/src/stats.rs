//! Network statistics: latency by message group, circuit outcomes
//! (Figure 6), activity counts for the energy model, and the circuit-table
//! counters behind Table 5.

use rcsim_core::circuit::TableStats;
use rcsim_core::MessageClass;
use rcsim_stats::LatencyStat;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The three message groups of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MessageGroup {
    /// Everything on the request VN.
    Request,
    /// Replies eligible for circuit construction (`Circuit_Rep`).
    CircuitRep,
    /// Replies that cannot have a circuit (`NoCircuit_Rep`).
    NoCircuitRep,
}

impl MessageGroup {
    /// The group a message class belongs to.
    pub fn of(class: MessageClass) -> MessageGroup {
        if !class.is_reply() {
            MessageGroup::Request
        } else if class.circuit_eligible() {
            MessageGroup::CircuitRep
        } else {
            MessageGroup::NoCircuitRep
        }
    }

    /// Figure 7 label.
    pub fn label(self) -> &'static str {
        match self {
            MessageGroup::Request => "Request",
            MessageGroup::CircuitRep => "Circuit_Rep",
            MessageGroup::NoCircuitRep => "NoCircuit_Rep",
        }
    }
}

/// How one reply ended up travelling — the categories of Figure 6.
/// (`Eliminated` is recorded by the protocol layer, which is the one that
/// skips generating the ack.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CircuitOutcome {
    /// Travelled on its own circuit.
    OnCircuit,
    /// Eligible, but the circuit could not be (completely) built.
    Failed,
    /// Circuit was completely built but undone before use (coherence
    /// forward or missed time window).
    Undone,
    /// Rode a circuit built for another message (§4.5).
    Scrounger,
    /// Reply class not eligible for circuits.
    NotEligible,
    /// `L1_DATA_ACK` never sent thanks to a complete circuit (§4.6).
    Eliminated,
    /// Committed to a circuit, but an injected fault broke it; the reply
    /// fell back to the packet-switched pipeline (and was retransmitted
    /// end-to-end if flits were lost).
    FaultDegraded,
    /// The circuit was built, but a dead link or router severed its path
    /// before the reply used it; the reservation was torn down at fault
    /// onset and the reply travelled packet-switched (DESIGN.md §10).
    TornDown,
}

impl CircuitOutcome {
    /// All outcomes in Figure 6 order (plus the fault buckets).
    pub const ALL: [CircuitOutcome; 8] = [
        CircuitOutcome::OnCircuit,
        CircuitOutcome::Failed,
        CircuitOutcome::Undone,
        CircuitOutcome::Scrounger,
        CircuitOutcome::NotEligible,
        CircuitOutcome::Eliminated,
        CircuitOutcome::FaultDegraded,
        CircuitOutcome::TornDown,
    ];

    /// Figure 6 legend label.
    pub fn label(self) -> &'static str {
        match self {
            CircuitOutcome::OnCircuit => "circuit",
            CircuitOutcome::Failed => "failed",
            CircuitOutcome::Undone => "undone",
            CircuitOutcome::Scrounger => "scrounger",
            CircuitOutcome::NotEligible => "not_eligible",
            CircuitOutcome::Eliminated => "eliminated",
            CircuitOutcome::FaultDegraded => "fault_degraded",
            CircuitOutcome::TornDown => "torn_down",
        }
    }
}

/// Per-event activity counters consumed by the energy model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Activity {
    /// Flits written into VC buffers.
    pub buffer_writes: u64,
    /// Flits read out of VC buffers.
    pub buffer_reads: u64,
    /// Crossbar traversals (packet-switched and bypass).
    pub xbar_traversals: u64,
    /// Flit-hops over inter-router links.
    pub link_flits: u64,
    /// VC-allocator grant operations.
    pub vc_allocs: u64,
    /// Switch-allocator grant operations.
    pub sw_allocs: u64,
    /// Credit messages (incl. undo piggybacks).
    pub credits: u64,
    /// Circuit-table reservations written.
    pub circuit_writes: u64,
    /// Circuit-table lookups at input units.
    pub circuit_lookups: u64,
}

impl Activity {
    /// Accumulates another counter set.
    pub fn merge(&mut self, other: &Activity) {
        self.buffer_writes += other.buffer_writes;
        self.buffer_reads += other.buffer_reads;
        self.xbar_traversals += other.xbar_traversals;
        self.link_flits += other.link_flits;
        self.vc_allocs += other.vc_allocs;
        self.sw_allocs += other.sw_allocs;
        self.credits += other.credits;
        self.circuit_writes += other.circuit_writes;
        self.circuit_lookups += other.circuit_lookups;
    }
}

/// Aggregated statistics for one network run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NocStats {
    /// Network latency (injection → tail delivery) per message group:
    /// mean/CI plus a 5-cycle-bin distribution up to 500 cycles for
    /// tail-latency queries, fed by one accumulation path.
    pub network_latency: BTreeMap<MessageGroup, LatencyStat>,
    /// Queueing latency (enqueue → injection) per message group, same
    /// shape as [`NocStats::network_latency`].
    pub queueing_latency: BTreeMap<MessageGroup, LatencyStat>,
    /// Count of packets injected, per message class.
    pub injected: BTreeMap<MessageClass, u64>,
    /// Count of packets delivered, per message class.
    pub delivered: BTreeMap<MessageClass, u64>,
    /// Reply outcomes (Figure 6 numerators; `Eliminated` added by the
    /// protocol layer).
    pub outcomes: BTreeMap<CircuitOutcome, u64>,
    /// Energy-model activity counters.
    pub activity: Activity,
    /// Circuit-table reservation counters (Table 5), merged over routers.
    pub tables: TableStats,
    /// Cycles simulated.
    pub cycles: u64,
    /// Total flits injected (for the flits/node/100-cycles load metric).
    pub flits_injected: u64,
    /// Packets abandoned after exhausting end-to-end retransmission
    /// attempts under fault injection. Zero when faults are disabled.
    #[serde(default)]
    pub dropped_packets: u64,
}

impl NocStats {
    /// The histogram geometry shared by every latency statistic: 5-cycle
    /// bins up to 500 cycles (everything beyond lands in the overflow bin).
    fn new_latency_stat() -> LatencyStat {
        LatencyStat::new(5.0, 100)
    }

    /// Records a packet delivery with its latencies.
    pub fn record_delivery(&mut self, class: MessageClass, queueing: u64, network: u64) {
        let group = MessageGroup::of(class);
        self.network_latency
            .entry(group)
            .or_insert_with(Self::new_latency_stat)
            .record(network as f64);
        self.queueing_latency
            .entry(group)
            .or_insert_with(Self::new_latency_stat)
            .record(queueing as f64);
        *self.delivered.entry(class).or_insert(0) += 1;
    }

    /// Records a packet injection.
    pub fn record_injection(&mut self, class: MessageClass, flits: u32) {
        *self.injected.entry(class).or_insert(0) += 1;
        self.flits_injected += flits as u64;
    }

    /// Records a reply outcome (Figure 6).
    pub fn record_outcome(&mut self, outcome: CircuitOutcome) {
        *self.outcomes.entry(outcome).or_insert(0) += 1;
    }

    /// Moves one previously recorded outcome into another bucket. Used
    /// when a fault invalidates an outcome that was committed at enqueue
    /// time (e.g. `OnCircuit` → `FaultDegraded`), keeping the Figure 6
    /// denominator unchanged.
    pub fn reclassify_outcome(&mut self, from: CircuitOutcome, to: CircuitOutcome) {
        let counted = self.outcomes.get(&from).copied().unwrap_or(0) > 0;
        if counted {
            *self.outcomes.entry(from).or_insert(0) -= 1;
        }
        // Even if the `from` bucket was emptied by a stats reset between
        // enqueue and delivery, still record where the reply ended up.
        *self.outcomes.entry(to).or_insert(0) += 1;
    }

    /// Total replies classified (the Figure 6 denominator).
    pub fn total_reply_outcomes(&self) -> u64 {
        self.outcomes.values().sum()
    }

    /// Fraction of classified replies with a given outcome.
    pub fn outcome_fraction(&self, outcome: CircuitOutcome) -> f64 {
        let total = self.total_reply_outcomes();
        if total == 0 {
            0.0
        } else {
            *self.outcomes.get(&outcome).unwrap_or(&0) as f64 / total as f64
        }
    }

    /// Tail latency of a message group at quantile `q` (approximate,
    /// 5-cycle bins). `None` when the group has no samples.
    pub fn latency_quantile(&self, group: MessageGroup, q: f64) -> Option<f64> {
        self.network_latency.get(&group).and_then(|s| s.quantile(q))
    }

    /// Average injected flits per node per 100 cycles (the paper's load
    /// metric: "<4 flits every 100 cycles").
    pub fn load_flits_per_node_per_100(&self, nodes: usize) -> f64 {
        if self.cycles == 0 || nodes == 0 {
            0.0
        } else {
            self.flits_injected as f64 * 100.0 / (self.cycles as f64 * nodes as f64)
        }
    }

    /// Merges stats from another run segment.
    pub fn merge(&mut self, other: &NocStats) {
        for (k, v) in &other.network_latency {
            self.network_latency
                .entry(*k)
                .or_insert_with(Self::new_latency_stat)
                .merge(v);
        }
        for (k, v) in &other.queueing_latency {
            self.queueing_latency
                .entry(*k)
                .or_insert_with(Self::new_latency_stat)
                .merge(v);
        }
        for (k, v) in &other.injected {
            *self.injected.entry(*k).or_insert(0) += v;
        }
        for (k, v) in &other.delivered {
            *self.delivered.entry(*k).or_insert(0) += v;
        }
        for (k, v) in &other.outcomes {
            *self.outcomes.entry(*k).or_insert(0) += v;
        }
        self.activity.merge(&other.activity);
        self.tables.merge(&other.tables);
        self.cycles += other.cycles;
        self.flits_injected += other.flits_injected;
        self.dropped_packets += other.dropped_packets;
    }

    /// Total packets injected across classes.
    pub fn total_injected(&self) -> u64 {
        self.injected.values().sum()
    }

    /// Total packets delivered across classes.
    pub fn total_delivered(&self) -> u64 {
        self.delivered.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_classification() {
        assert_eq!(
            MessageGroup::of(MessageClass::L1Request),
            MessageGroup::Request
        );
        assert_eq!(
            MessageGroup::of(MessageClass::WbData),
            MessageGroup::Request
        );
        assert_eq!(
            MessageGroup::of(MessageClass::L2Reply),
            MessageGroup::CircuitRep
        );
        assert_eq!(
            MessageGroup::of(MessageClass::MemoryReply),
            MessageGroup::CircuitRep
        );
        assert_eq!(
            MessageGroup::of(MessageClass::L1DataAck),
            MessageGroup::NoCircuitRep
        );
        assert_eq!(
            MessageGroup::of(MessageClass::L1ToL1),
            MessageGroup::NoCircuitRep
        );
    }

    #[test]
    fn outcome_fractions() {
        let mut s = NocStats::default();
        for _ in 0..3 {
            s.record_outcome(CircuitOutcome::OnCircuit);
        }
        s.record_outcome(CircuitOutcome::NotEligible);
        assert_eq!(s.total_reply_outcomes(), 4);
        assert!((s.outcome_fraction(CircuitOutcome::OnCircuit) - 0.75).abs() < 1e-12);
        assert_eq!(s.outcome_fraction(CircuitOutcome::Failed), 0.0);
    }

    #[test]
    fn load_metric() {
        let s = NocStats {
            cycles: 1000,
            flits_injected: 400,
            ..Default::default()
        };
        // 400 flits / 10 nodes / 1000 cycles = 4 per 100 cycles per node.
        assert!((s.load_flits_per_node_per_100(10) - 4.0).abs() < 1e-12);
        assert_eq!(NocStats::default().load_flits_per_node_per_100(10), 0.0);
    }

    #[test]
    fn latency_histogram_tracks_quantiles() {
        let mut s = NocStats::default();
        for lat in [10u64, 12, 14, 200] {
            s.record_delivery(MessageClass::L2Reply, 0, lat);
        }
        let p50 = s.latency_quantile(MessageGroup::CircuitRep, 0.5).unwrap();
        let p99 = s.latency_quantile(MessageGroup::CircuitRep, 0.99).unwrap();
        assert!(p50 <= 15.0, "p50 {p50}");
        assert!(p99 >= 200.0, "p99 {p99}");
        assert_eq!(s.latency_quantile(MessageGroup::Request, 0.5), None);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = NocStats {
            cycles: 100,
            ..Default::default()
        };
        a.record_delivery(MessageClass::L2Reply, 2, 20);
        a.record_injection(MessageClass::L2Reply, 5);
        let mut b = NocStats {
            cycles: 50,
            ..Default::default()
        };
        b.record_delivery(MessageClass::L2Reply, 4, 30);
        b.record_injection(MessageClass::L1Request, 1);
        a.merge(&b);
        assert_eq!(a.total_injected(), 2);
        assert_eq!(a.total_delivered(), 2);
        assert_eq!(a.cycles, 150);
        let lat = &a.network_latency[&MessageGroup::CircuitRep];
        assert_eq!(lat.count(), 2);
        assert!((lat.mean() - 25.0).abs() < 1e-12);
    }
}
