//! Working stand-in for serde_derive: expands `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` into real impls of the offline stub's traits
//! (`serde::Serialize::to_content` / `serde::Deserialize::from_content`).
//!
//! The macro parses the item structurally from the raw `TokenStream` (no
//! `syn`/`quote` — the build is hermetic) and supports exactly the shapes
//! the workspace uses:
//!
//! * structs with named fields (honouring `#[serde(default)]`),
//! * tuple structs (newtype and general),
//! * unit structs,
//! * enums with unit, newtype, tuple and struct variants
//!   (externally tagged, as in real serde),
//! * simple type generics (`struct CacheArray<M>`), which get
//!   `Serialize`/`Deserialize` bounds.
//!
//! Unsupported syntax (where-clauses, lifetimes on the item, const
//! generics) panics with a clear message at expansion time rather than
//! generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

struct Field {
    name: String,
    /// `#[serde(default)]`: substitute `Default::default()` when missing.
    default: bool,
    /// `#[serde(default = "path")]`: substitute `path()` when missing.
    default_path: Option<String>,
    /// `#[serde(skip_serializing_if = "path")]`: omit the field from the
    /// serialized map when `path(&self.field)` is true.
    skip_if: Option<String>,
}

/// Field-level serde attributes recognised by the stub.
#[derive(Default)]
struct FieldAttrs {
    default: bool,
    default_path: Option<String>,
    skip_if: Option<String>,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

enum VariantShape {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

struct Item {
    name: String,
    generics: Vec<String>,
    shape: Shape,
}

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

/// Consumes leading attributes; returns the recognised serde field
/// attributes (`default`, `default = "path"`,
/// `skip_serializing_if = "path"`).
fn skip_attrs(it: &mut Tokens) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        it.next();
        let Some(TokenTree::Group(g)) = it.next() else {
            panic!("serde_derive stub: malformed attribute");
        };
        let mut inner = g.stream().into_iter();
        if let Some(TokenTree::Ident(id)) = inner.next() {
            if id.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.next() {
                    let mut args = args.stream().into_iter().peekable();
                    while let Some(t) = args.next() {
                        if let TokenTree::Ident(a) = t {
                            match a.to_string().as_str() {
                                "default" => {
                                    // Bare `default`, or `default = "path"`.
                                    if matches!(
                                        args.peek(),
                                        Some(TokenTree::Punct(p)) if p.as_char() == '='
                                    ) {
                                        args.next();
                                        match args.next() {
                                            Some(TokenTree::Literal(path)) => {
                                                let raw = path.to_string();
                                                attrs.default_path =
                                                    Some(raw.trim_matches('"').to_owned());
                                            }
                                            _ => panic!(
                                                "serde_derive stub: default needs a \
                                                 string path"
                                            ),
                                        }
                                    } else {
                                        attrs.default = true;
                                    }
                                }
                                "skip_serializing_if" => {
                                    // `= "Type::predicate"` follows.
                                    match (args.next(), args.next()) {
                                        (
                                            Some(TokenTree::Punct(eq)),
                                            Some(TokenTree::Literal(path)),
                                        ) if eq.as_char() == '=' => {
                                            let raw = path.to_string();
                                            attrs.skip_if = Some(
                                                raw.trim_matches('"').to_owned(),
                                            );
                                        }
                                        _ => panic!(
                                            "serde_derive stub: skip_serializing_if needs \
                                             a string path"
                                        ),
                                    }
                                }
                                other => panic!(
                                    "serde_derive stub: unsupported serde attribute `{other}`"
                                ),
                            }
                        }
                    }
                }
            }
        }
    }
    attrs
}

/// Consumes `pub` / `pub(crate)` / `pub(super)` if present.
fn skip_visibility(it: &mut Tokens) {
    if matches!(it.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        it.next();
        if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            it.next();
        }
    }
}

/// Consumes a `<...>` generics list, returning the type-parameter names.
fn parse_generics(it: &mut Tokens) -> Vec<String> {
    let mut params = Vec::new();
    if !matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return params;
    }
    it.next();
    let mut depth = 1usize;
    let mut expecting_param = true;
    let mut in_lifetime = false;
    for t in it.by_ref() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                expecting_param = true;
                in_lifetime = false;
            }
            TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 => {
                panic!("serde_derive stub: lifetime parameters are not supported");
            }
            TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => expecting_param = false,
            TokenTree::Ident(id) if depth == 1 && expecting_param && !in_lifetime => {
                if id.to_string() == "const" {
                    panic!("serde_derive stub: const generics are not supported");
                }
                params.push(id.to_string());
                expecting_param = false;
            }
            _ => {}
        }
    }
    params
}

/// Skips one type (after `:` in a field), stopping at a top-level `,`.
fn skip_type(it: &mut Tokens) {
    let mut angle = 0i32;
    while let Some(t) = it.peek() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                it.next();
                return;
            }
            _ => {}
        }
        it.next();
    }
}

fn parse_named_fields(ts: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut it = ts.into_iter().peekable();
    loop {
        let attrs = skip_attrs(&mut it);
        skip_visibility(&mut it);
        let Some(TokenTree::Ident(name)) = it.next() else {
            break;
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => panic!("serde_derive stub: expected `:` after field `{name}`"),
        }
        skip_type(&mut it);
        fields.push(Field {
            name: name.to_string(),
            default: attrs.default,
            default_path: attrs.default_path,
            skip_if: attrs.skip_if,
        });
    }
    fields
}

/// Number of comma-separated entries at angle-bracket depth zero.
fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut angle = 0i32;
    let mut any = false;
    let mut count = 0usize;
    for t in ts {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => count += 1,
            _ => any = true,
        }
    }
    // A trailing comma does not add a field.
    if any {
        count + 1
    } else {
        0
    }
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut it = ts.into_iter().peekable();
    loop {
        skip_attrs(&mut it);
        let Some(TokenTree::Ident(name)) = it.next() else {
            break;
        };
        let shape = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                it.next();
                VariantShape::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                it.next();
                VariantShape::Tuple(count_tuple_fields(g))
            }
            _ => VariantShape::Unit,
        };
        // Skip a possible discriminant, then the separating comma.
        for t in it.by_ref() {
            if matches!(&t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant {
            name: name.to_string(),
            shape,
        });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    let kind = loop {
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // `pub`, `pub(crate)` …
                if s == "pub" {
                    if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        it.next();
                    }
                } else if s == "union" {
                    panic!("serde_derive stub: unions are not supported");
                }
            }
            Some(_) => {}
            None => panic!("serde_derive stub: no struct or enum found"),
        }
    };
    let Some(TokenTree::Ident(name)) = it.next() else {
        panic!("serde_derive stub: expected item name");
    };
    let generics = parse_generics(&mut it);
    if matches!(it.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        panic!("serde_derive stub: where-clauses are not supported");
    }
    let shape = if kind == "enum" {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            _ => panic!("serde_derive stub: expected enum body"),
        }
    } else {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            _ => panic!("serde_derive stub: expected struct body"),
        }
    };
    Item {
        name: name.to_string(),
        generics,
        shape,
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

const C: &str = "::serde::content::Content";

/// `<A, B>` for the type position, or the empty string.
fn type_args(item: &Item) -> String {
    if item.generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", item.generics.join(", "))
    }
}

fn ser_named_fields(fields: &[Field], accessor: impl Fn(&str) -> String) -> String {
    let entry = |f: &Field| {
        format!(
            "(::std::string::String::from(\"{n}\"), ::serde::Serialize::to_content({a}))",
            n = f.name,
            a = accessor(&f.name)
        )
    };
    if fields.iter().all(|f| f.skip_if.is_none()) {
        let entries: Vec<String> = fields.iter().map(entry).collect();
        return format!("{C}::Map(::std::vec![{}])", entries.join(", "));
    }
    // Conditional fields: build the map imperatively so skipped fields
    // leave no trace (matches real serde's `skip_serializing_if`).
    let pushes: Vec<String> = fields
        .iter()
        .map(|f| match &f.skip_if {
            None => format!("__entries.push({});", entry(f)),
            Some(pred) => format!(
                "if !{pred}({a}) {{ __entries.push({e}); }}",
                a = accessor(&f.name),
                e = entry(f)
            ),
        })
        .collect();
    format!(
        "{{ let mut __entries: ::std::vec::Vec<(::std::string::String, {C})> = \
         ::std::vec::Vec::new(); {} {C}::Map(__entries) }}",
        pushes.join(" ")
    )
}

fn de_named_fields(ty_label: &str, fields: &[Field], map_var: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let missing = if let Some(path) = &f.default_path {
                format!("{path}()")
            } else if f.default {
                "::std::default::Default::default()".to_owned()
            } else {
                format!(
                    "return ::std::result::Result::Err(::serde::content::missing_field(\"{ty_label}\", \"{n}\"))",
                    n = f.name
                )
            };
            format!(
                "{n}: match ::serde::content::find({map_var}, \"{n}\") {{ \
                   ::std::option::Option::Some(v) => ::serde::Deserialize::from_content(v)?, \
                   ::std::option::Option::None => {missing}, \
                 }},",
                n = f.name
            )
        })
        .collect::<Vec<_>>()
        .join("\n            ")
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let args = type_args(item);
    let params = if item.generics.is_empty() {
        String::new()
    } else {
        format!(
            "<{}>",
            item.generics
                .iter()
                .map(|g| format!("{g}: ::serde::Serialize"))
                .collect::<Vec<_>>()
                .join(", ")
        )
    };
    let body = match &item.shape {
        Shape::Named(fields) => ser_named_fields(fields, |n| format!("&self.{n}")),
        Shape::Tuple(1) => format!("::serde::Serialize::to_content(&self.0)"),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("{C}::Seq(::std::vec![{}])", items.join(", "))
        }
        Shape::Unit => format!("{C}::Null"),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => {C}::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantShape::Named(fields) => {
                            let binds = fields
                                .iter()
                                .map(|f| f.name.clone())
                                .collect::<Vec<_>>()
                                .join(", ");
                            let inner = ser_named_fields(fields, |n| n.to_owned());
                            format!(
                                "{name}::{vn} {{ {binds} }} => {C}::Map(::std::vec![(::std::string::String::from(\"{vn}\"), {inner})]),"
                            )
                        }
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vn}(x0) => {C}::Map(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_content(x0))]),"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_content({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => {C}::Map(::std::vec![(::std::string::String::from(\"{vn}\"), {C}::Seq(::std::vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{\n            {}\n        }}", arms.join("\n            "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_variables, unused_mut, clippy::all, clippy::pedantic)]\n\
         impl{params} ::serde::Serialize for {name}{args} {{\n    \
             fn to_content(&self) -> {C} {{\n        {body}\n    }}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let args = type_args(item);
    let mut params: Vec<String> = vec!["'de".to_owned()];
    params.extend(
        item.generics
            .iter()
            .map(|g| format!("{g}: ::serde::Deserialize<'de>")),
    );
    let params = format!("<{}>", params.join(", "));
    let err = |msg: &str| {
        format!(
            "::std::result::Result::Err(::serde::content::Error::msg(::std::format!(\"{msg}\", c.kind())))"
        )
    };
    let body = match &item.shape {
        Shape::Named(fields) => {
            let build = de_named_fields(name, fields, "m");
            format!(
                "let m = match c {{ {C}::Map(m) => m, other => return ::std::result::Result::Err(::serde::content::expected_map(\"{name}\", other)) }};\n        \
                 ::std::result::Result::Ok({name} {{\n            {build}\n        }})"
            )
        }
        Shape::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_content(c)?))"
        ),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?"))
                .collect();
            format!(
                "match c {{ {C}::Seq(items) if items.len() == {n} => ::std::result::Result::Ok({name}({})), _ => {} }}",
                items.join(", "),
                err(&format!("expected {n}-element array for `{name}`, got {{}}"))
            )
        }
        Shape::Unit => format!(
            "match c {{ {C}::Null => ::std::result::Result::Ok({name}), _ => {} }}",
            err(&format!("expected null for unit struct `{name}`, got {{}}"))
        ),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Named(fields) => {
                            let label = format!("{name}::{vn}");
                            let build = de_named_fields(&label, fields, "fm");
                            Some(format!(
                                "\"{vn}\" => {{ let fm = match v {{ {C}::Map(fm) => fm, other => return ::std::result::Result::Err(::serde::content::expected_map(\"{label}\", other)) }}; ::std::result::Result::Ok({name}::{vn} {{ {build} }}) }}"
                            ))
                        }
                        VariantShape::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_content(v)?)),"
                        )),
                        VariantShape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match v {{ {C}::Seq(items) if items.len() == {n} => ::std::result::Result::Ok({name}::{vn}({})), _ => ::std::result::Result::Err(::serde::content::Error::msg(\"expected {n}-element array for `{name}::{vn}`\")) }},",
                                items.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match c {{\n            \
                     {C}::Str(s) => match s.as_str() {{\n                \
                         {unit}\n                \
                         other => ::std::result::Result::Err(::serde::content::Error::msg(::std::format!(\"unknown variant `{{}}` of `{name}`\", other))),\n            \
                     }},\n            \
                     {C}::Map(m) if m.len() == 1 => {{\n                \
                         let (k, v) = &m[0];\n                \
                         match k.as_str() {{\n                    \
                             {data}\n                    \
                             other => ::std::result::Result::Err(::serde::content::Error::msg(::std::format!(\"unknown variant `{{}}` of `{name}`\", other))),\n                \
                         }}\n            \
                     }},\n            \
                     _ => {fallback},\n        \
                 }}",
                unit = unit_arms.join("\n                "),
                data = data_arms.join("\n                    "),
                fallback = err(&format!("expected string or single-key object for enum `{name}`, got {{}}"))
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_variables, unused_mut, clippy::all, clippy::pedantic)]\n\
         impl{params} ::serde::Deserialize<'de> for {name}{args} {{\n    \
             fn from_content(c: &{C}) -> ::std::result::Result<Self, ::serde::content::Error> {{\n        {body}\n    }}\n\
         }}\n"
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive stub: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive stub: generated Deserialize impl failed to parse")
}
