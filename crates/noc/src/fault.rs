//! Deterministic fault injection for robustness studies.
//!
//! Faults are drawn from a dedicated [`rand_chacha`] stream seeded by
//! [`FaultConfig::seed`], fully decoupled from the workload RNG: enabling
//! or reseeding the fault layer never perturbs traffic generation, and
//! [`FaultConfig::none`] (the default) is bit-identical to a build without
//! the fault layer at all — the network holds no `FaultState` in that case
//! and never consults the fault RNG.
//!
//! Fault classes (all rates are per-event probabilities in `[0, 1]`):
//!
//! * **Link drop** — when a head flit crosses an inter-router link it may
//!   be dropped; the rest of the packet is then swallowed at the same link
//!   so a packet is always lost whole, never truncated. Upstream credits
//!   are still synthesized for swallowed flits so the *fault* does not by
//!   itself wedge the fabric (credit loss is a separate class).
//! * **Link corruption** — the head flit is marked corrupted; the packet
//!   travels normally and is discarded at the destination NI's integrity
//!   check instead of being delivered.
//! * **Credit loss** — a credit crossing an inter-router link vanishes,
//!   permanently shrinking the usable depth of the upstream VC. Enough of
//!   these deadlock the network — the watchdog's job to report.
//! * **Table corruption** — a random circuit-table entry of a random
//!   router evaporates (soft error in the reservation SRAM). A reply that
//!   arrives expecting the entry falls back to the ordinary 5-cycle
//!   pipeline at that router ([`BypassCheck::Pipeline`]); its delivery is
//!   reclassified [`CircuitOutcome::FaultDegraded`].
//! * **Stuck input port** — a scheduled [`StuckPortEvent`] freezes one
//!   router input port for a window of cycles: arrivals queue on the link
//!   and nothing enters the port until the window ends.
//! * **Dead link** — a scheduled [`DeadLinkEvent`] removes one
//!   bidirectional inter-router link at a given cycle, permanently or for
//!   a bounded window. Every flit on the link at onset (and any flit later
//!   routed onto it) is lost whole; the live [`TopologyHealth`] map makes
//!   new packets detour around it and tears down every circuit whose
//!   reply path crossed it (DESIGN.md §10).
//! * **Dead router** — a scheduled [`DeadRouterEvent`] kills a whole
//!   router: all four of its links stop carrying data and no packet may
//!   start from, end at or cross the node. NoC-level studies only — a dead
//!   router takes its L2 bank along, which the coherence protocol does not
//!   model losing.
//!
//! Recovery is end-to-end: the network tracks every in-flight packet and
//! retransmits lost or corrupted ones from the source NI (plain
//! packet-switched, bounded retries with linear backoff); a packet that
//! exhausts its retries is counted in `NocStats::dropped_packets`. For
//! permanent faults the protocol layer adds a second safety net: an L1
//! whose miss reply never arrives reissues the request after a timeout
//! (bounded, exponential backoff).
//!
//! [`TopologyHealth`]: rcsim_core::TopologyHealth
//!
//! [`BypassCheck::Pipeline`]: crate::router::BypassCheck::Pipeline
//! [`CircuitOutcome::FaultDegraded`]: crate::CircuitOutcome::FaultDegraded

use crate::flit::{Flit, PacketId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rcsim_core::{ConfigError, Cycle, Direction, NodeId, Topology};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A scheduled one-shot fault: one router input port accepts nothing for
/// `duration` cycles starting at cycle `at`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StuckPortEvent {
    /// The router whose input port sticks.
    pub node: NodeId,
    /// Which input port.
    pub dir: Direction,
    /// First stuck cycle.
    pub at: Cycle,
    /// Number of cycles the port stays stuck.
    pub duration: Cycle,
}

impl StuckPortEvent {
    /// `true` while the event holds the port at cycle `now`.
    pub fn active(&self, now: Cycle) -> bool {
        now >= self.at && now < self.at.saturating_add(self.duration)
    }
}

/// A scheduled hard fault on one inter-router link: from cycle `at` the
/// `a`–`b` link carries no data in either direction, permanently
/// (`duration: None`) or until `at + duration`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeadLinkEvent {
    /// One endpoint of the link.
    pub a: NodeId,
    /// The other endpoint (must be a mesh neighbour of `a`).
    pub b: NodeId,
    /// First dead cycle.
    pub at: Cycle,
    /// `None` for a permanent fault, `Some(n)` to heal after `n` cycles.
    pub duration: Option<Cycle>,
}

impl DeadLinkEvent {
    /// The cycle the link heals, or `None` for a permanent fault.
    pub fn heals_at(&self) -> Option<Cycle> {
        self.duration.map(|d| self.at.saturating_add(d))
    }
}

/// A scheduled hard fault on a whole router: from cycle `at` node `node`
/// accepts, emits and forwards nothing, permanently (`duration: None`) or
/// until `at + duration`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeadRouterEvent {
    /// The router that dies.
    pub node: NodeId,
    /// First dead cycle.
    pub at: Cycle,
    /// `None` for a permanent fault, `Some(n)` to heal after `n` cycles.
    pub duration: Option<Cycle>,
}

impl DeadRouterEvent {
    /// The cycle the router heals, or `None` for a permanent fault.
    pub fn heals_at(&self) -> Option<Cycle> {
        self.duration.map(|d| self.at.saturating_add(d))
    }
}

/// Fault-injection configuration. The default ([`FaultConfig::none`])
/// injects nothing and is guaranteed zero-perturbation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed of the dedicated fault RNG stream.
    pub seed: u64,
    /// Probability a packet is dropped per inter-router link traversal
    /// (decided at its head flit; the whole packet is lost).
    pub link_drop_rate: f64,
    /// Probability a packet is corrupted per inter-router link traversal
    /// (decided at its head flit; discarded at the destination NI).
    pub link_corrupt_rate: f64,
    /// Probability a credit is lost per inter-router link traversal.
    pub credit_loss_rate: f64,
    /// Probability, per router per cycle, that one random circuit-table
    /// entry is corrupted (removed).
    pub table_corrupt_rate: f64,
    /// Scheduled stuck-input-port windows.
    pub stuck_ports: Vec<StuckPortEvent>,
    /// Scheduled dead links (permanent faults, DESIGN.md §10).
    #[serde(default)]
    pub dead_links: Vec<DeadLinkEvent>,
    /// Scheduled dead routers (NoC-level studies only).
    #[serde(default)]
    pub dead_routers: Vec<DeadRouterEvent>,
    /// End-to-end retransmissions attempted per packet before it is
    /// abandoned and counted in `NocStats::dropped_packets`.
    pub max_retries: u32,
    /// Base retransmission delay in cycles; retry `n` waits `n × backoff`.
    pub retry_backoff: Cycle,
}

impl FaultConfig {
    /// No faults at all (the default). Guaranteed bit-identical to a
    /// network constructed without a fault configuration.
    pub fn none() -> Self {
        FaultConfig {
            seed: 0xFA017,
            link_drop_rate: 0.0,
            link_corrupt_rate: 0.0,
            credit_loss_rate: 0.0,
            table_corrupt_rate: 0.0,
            stuck_ports: Vec::new(),
            dead_links: Vec::new(),
            dead_routers: Vec::new(),
            max_retries: 4,
            retry_backoff: 64,
        }
    }

    /// `true` when no fault class can ever fire.
    pub fn is_none(&self) -> bool {
        self.link_drop_rate <= 0.0
            && self.link_corrupt_rate <= 0.0
            && self.credit_loss_rate <= 0.0
            && self.table_corrupt_rate <= 0.0
            && self.stuck_ports.is_empty()
            && self.dead_links.is_empty()
            && self.dead_routers.is_empty()
    }

    /// Checks the configuration against `topology` before a network is
    /// built. Scheduled fault events name *routers* (not tiles), so on a
    /// concentrated mesh the bound is the router count.
    ///
    /// # Errors
    ///
    /// * [`ConfigError::FaultRate`] — a rate is NaN, negative or above 1.
    /// * [`ConfigError::FaultWindow`] — a scheduled fault has an explicit
    ///   duration of zero cycles (it could never take effect).
    /// * [`ConfigError::FaultTopology`] — a scheduled fault names a router
    ///   outside the topology, a non-adjacent link pair, or the `Local`
    ///   port.
    pub fn validate(&self, topology: &Topology) -> Result<(), ConfigError> {
        let rates = [
            (self.link_drop_rate, "link_drop_rate"),
            (self.link_corrupt_rate, "link_corrupt_rate"),
            (self.credit_loss_rate, "credit_loss_rate"),
            (self.table_corrupt_rate, "table_corrupt_rate"),
        ];
        for (rate, name) in rates {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(ConfigError::FaultRate(name));
            }
        }
        let routers = topology.routers();
        for e in &self.stuck_ports {
            if e.duration == 0 {
                return Err(ConfigError::FaultWindow);
            }
            if e.node.index() >= routers {
                return Err(ConfigError::FaultTopology("stuck-port node out of bounds"));
            }
            if e.dir == Direction::Local {
                return Err(ConfigError::FaultTopology("stuck port on the Local port"));
            }
        }
        for e in &self.dead_links {
            if e.duration == Some(0) {
                return Err(ConfigError::FaultWindow);
            }
            if e.a.index() >= routers || e.b.index() >= routers {
                return Err(ConfigError::FaultTopology("dead-link node out of bounds"));
            }
            if topology.distance(e.a, e.b) != 1 {
                return Err(ConfigError::FaultTopology(
                    "dead-link endpoints are not mesh neighbours",
                ));
            }
        }
        for e in &self.dead_routers {
            if e.duration == Some(0) {
                return Err(ConfigError::FaultWindow);
            }
            if e.node.index() >= routers {
                return Err(ConfigError::FaultTopology("dead router out of bounds"));
            }
        }
        Ok(())
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// Counters of every fault injected and every recovery action taken.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Packets chosen for a link drop.
    pub packets_dropped: u64,
    /// Individual flits swallowed by link drops (heads + swallowed rest).
    pub flits_dropped: u64,
    /// Packets marked corrupted on a link (discarded at the NI).
    pub packets_corrupted: u64,
    /// Credits lost on inter-router links.
    pub credits_lost: u64,
    /// Circuit-table entries corrupted away.
    pub table_entries_corrupted: u64,
    /// Router-port × cycle units spent stuck.
    pub stuck_port_cycles: u64,
    /// End-to-end retransmissions issued.
    pub retransmissions: u64,
    /// Packets abandoned after exhausting their retries.
    pub packets_abandoned: u64,
    /// Packets that left their source on a detour because the DOR path
    /// crossed a dead link or router.
    #[serde(default)]
    pub packets_rerouted: u64,
    /// Circuit-table entries torn down at fault onset because their reply
    /// path crossed the dead resource.
    #[serde(default)]
    pub circuits_torn: u64,
    /// Flits lost on a dead link (in flight at onset or routed onto it).
    #[serde(default)]
    pub dead_flits_lost: u64,
}

/// Fate of a flit crossing an inter-router link under fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFate {
    /// Delivered untouched.
    Deliver,
    /// Delivered with the corrupted mark set (head flits only).
    Corrupt,
    /// Dropped at this link.
    Drop,
}

/// Live fault-injection state: the dedicated RNG plus the bookkeeping
/// needed to swallow whole packets. Held by the network only when the
/// configuration can actually fire.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    pub(crate) cfg: FaultConfig,
    rng: ChaCha8Rng,
    /// Packets being swallowed at a link, keyed by
    /// (upstream node index, output-port index, packet): remaining flits.
    eating: HashMap<(usize, usize, PacketId), u32>,
    pub(crate) stats: FaultStats,
}

impl FaultState {
    pub(crate) fn new(cfg: FaultConfig) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        FaultState {
            cfg,
            rng,
            eating: HashMap::new(),
            stats: FaultStats::default(),
        }
    }

    fn chance(&mut self, rate: f64) -> bool {
        rate > 0.0 && self.rng.gen_bool(rate.clamp(0.0, 1.0))
    }

    /// Decides the fate of `flit` leaving router `from` through output
    /// port `dir` onto an inter-router link.
    pub(crate) fn on_link_flit(&mut self, from: usize, dir: usize, flit: &Flit) -> LinkFate {
        let key = (from, dir, flit.packet);
        if let Some(rest) = self.eating.get_mut(&key) {
            *rest -= 1;
            if *rest == 0 {
                self.eating.remove(&key);
            }
            self.stats.flits_dropped += 1;
            return LinkFate::Drop;
        }
        if flit.kind.is_head() {
            if self.chance(self.cfg.link_drop_rate) {
                self.stats.packets_dropped += 1;
                self.stats.flits_dropped += 1;
                let rest = flit.len.saturating_sub(1);
                if rest > 0 {
                    self.eating.insert(key, rest);
                }
                return LinkFate::Drop;
            }
            if self.chance(self.cfg.link_corrupt_rate) {
                self.stats.packets_corrupted += 1;
                return LinkFate::Corrupt;
            }
        }
        LinkFate::Deliver
    }

    /// `true` if a credit crossing an inter-router link is lost.
    pub(crate) fn on_link_credit(&mut self) -> bool {
        let lost = self.chance(self.cfg.credit_loss_rate);
        if lost {
            self.stats.credits_lost += 1;
        }
        lost
    }

    /// Rolls the per-router/per-cycle table-corruption die; on a hit,
    /// returns a (port index, uniform draw) pair the network uses to pick
    /// a victim entry. `ports` is the router's port count (5 on the plain
    /// mesh, so the historical RNG stream is unchanged there).
    pub(crate) fn roll_table_corruption(&mut self, ports: usize) -> Option<(usize, usize)> {
        if self.chance(self.cfg.table_corrupt_rate) {
            Some((
                self.rng.gen_range(0..ports),
                self.rng.gen_range(0..usize::MAX),
            ))
        } else {
            None
        }
    }

    /// `true` while any scheduled event holds input port `dir` of `node`.
    pub(crate) fn port_stuck(&self, node: usize, dir: Direction, now: Cycle) -> bool {
        self.cfg
            .stuck_ports
            .iter()
            .any(|e| e.node.index() == node && e.dir == dir && e.active(now))
    }

    /// The full dynamic state, for checkpointing (the configuration
    /// travels with the run config). The swallow map is sorted by key so
    /// the snapshot bytes are deterministic.
    pub(crate) fn snapshot(&self) -> FaultSnapshot {
        let (rng_state, rng_stream) = self.rng.state_words();
        let mut eating: Vec<((usize, usize, PacketId), u32)> =
            self.eating.iter().map(|(k, v)| (*k, *v)).collect();
        eating.sort_by_key(|&((node, port, packet), _)| (node, port, packet.0));
        FaultSnapshot {
            rng_state,
            rng_stream,
            eating,
            stats: self.stats.clone(),
        }
    }

    /// Overwrites the dynamic state from a [`FaultState::snapshot`] taken
    /// under the same fault configuration.
    pub(crate) fn restore(&mut self, snap: FaultSnapshot) {
        self.rng = ChaCha8Rng::from_state_words(snap.rng_state, snap.rng_stream);
        self.eating = snap.eating.into_iter().collect();
        self.stats = snap.stats;
    }
}

/// Complete dynamic state of the fault layer, for checkpointing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct FaultSnapshot {
    rng_state: u64,
    rng_stream: u64,
    eating: Vec<((usize, usize, PacketId), u32)>,
    stats: FaultStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::FlitKind;
    use rcsim_core::{Mesh, MessageClass, Vnet};

    fn head(len: u32) -> Flit {
        Flit {
            packet: PacketId(7),
            kind: FlitKind::for_position(0, len),
            seq: 0,
            len,
            src: NodeId(0),
            dst: NodeId(1),
            class: MessageClass::L2Reply,
            vnet: Vnet::Reply,
            vc: 0,
            circuit: None,
            on_circuit: None,
            scrounger_final: None,
            block: 0,
            token: 0,
            created_at: 0,
            injected_at: 0,
            corrupted: false,
            path: None,
        }
    }

    #[test]
    fn none_is_none() {
        assert!(FaultConfig::none().is_none());
        assert!(FaultConfig::default().is_none());
        let lossy = FaultConfig {
            link_drop_rate: 0.1,
            ..FaultConfig::none()
        };
        assert!(!lossy.is_none());
        let dead = FaultConfig {
            dead_links: vec![DeadLinkEvent {
                a: NodeId(0),
                b: NodeId(1),
                at: 0,
                duration: None,
            }],
            ..FaultConfig::none()
        };
        assert!(!dead.is_none(), "dead links must construct a FaultState");
        let dead = FaultConfig {
            dead_routers: vec![DeadRouterEvent {
                node: NodeId(5),
                at: 100,
                duration: Some(50),
            }],
            ..FaultConfig::none()
        };
        assert!(!dead.is_none());
    }

    #[test]
    fn validate_rejects_bad_rates() {
        let mesh: Topology = Mesh::new(4, 4).unwrap().into();
        for bad in [f64::NAN, -0.1, 1.5, f64::INFINITY] {
            let cfg = FaultConfig {
                link_drop_rate: bad,
                ..FaultConfig::none()
            };
            assert_eq!(
                cfg.validate(&mesh),
                Err(ConfigError::FaultRate("link_drop_rate"))
            );
        }
        let cfg = FaultConfig {
            credit_loss_rate: f64::NAN,
            ..FaultConfig::none()
        };
        assert_eq!(
            cfg.validate(&mesh),
            Err(ConfigError::FaultRate("credit_loss_rate"))
        );
        let cfg = FaultConfig {
            table_corrupt_rate: -1.0,
            ..FaultConfig::none()
        };
        assert_eq!(
            cfg.validate(&mesh),
            Err(ConfigError::FaultRate("table_corrupt_rate"))
        );
        assert_eq!(FaultConfig::none().validate(&mesh), Ok(()));
    }

    #[test]
    fn validate_rejects_zero_windows() {
        let mesh: Topology = Mesh::new(4, 4).unwrap().into();
        let cfg = FaultConfig {
            stuck_ports: vec![StuckPortEvent {
                node: NodeId(1),
                dir: Direction::East,
                at: 5,
                duration: 0,
            }],
            ..FaultConfig::none()
        };
        assert_eq!(cfg.validate(&mesh), Err(ConfigError::FaultWindow));
        let cfg = FaultConfig {
            dead_links: vec![DeadLinkEvent {
                a: NodeId(0),
                b: NodeId(1),
                at: 5,
                duration: Some(0),
            }],
            ..FaultConfig::none()
        };
        assert_eq!(cfg.validate(&mesh), Err(ConfigError::FaultWindow));
        let cfg = FaultConfig {
            dead_routers: vec![DeadRouterEvent {
                node: NodeId(0),
                at: 5,
                duration: Some(0),
            }],
            ..FaultConfig::none()
        };
        assert_eq!(cfg.validate(&mesh), Err(ConfigError::FaultWindow));
        // Permanent (None) and bounded (Some(>0)) windows are fine.
        let cfg = FaultConfig {
            dead_links: vec![DeadLinkEvent {
                a: NodeId(0),
                b: NodeId(1),
                at: 5,
                duration: None,
            }],
            dead_routers: vec![DeadRouterEvent {
                node: NodeId(2),
                at: 5,
                duration: Some(10),
            }],
            ..FaultConfig::none()
        };
        assert_eq!(cfg.validate(&mesh), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_topology() {
        let mesh: Topology = Mesh::new(4, 4).unwrap().into();
        let cfg = FaultConfig {
            dead_links: vec![DeadLinkEvent {
                a: NodeId(0),
                b: NodeId(99),
                at: 0,
                duration: None,
            }],
            ..FaultConfig::none()
        };
        assert!(matches!(
            cfg.validate(&mesh),
            Err(ConfigError::FaultTopology(_))
        ));
        // n0 and n5 are diagonal, not neighbours.
        let cfg = FaultConfig {
            dead_links: vec![DeadLinkEvent {
                a: NodeId(0),
                b: NodeId(5),
                at: 0,
                duration: None,
            }],
            ..FaultConfig::none()
        };
        assert!(matches!(
            cfg.validate(&mesh),
            Err(ConfigError::FaultTopology(_))
        ));
        let cfg = FaultConfig {
            dead_routers: vec![DeadRouterEvent {
                node: NodeId(16),
                at: 0,
                duration: None,
            }],
            ..FaultConfig::none()
        };
        assert!(matches!(
            cfg.validate(&mesh),
            Err(ConfigError::FaultTopology(_))
        ));
        let cfg = FaultConfig {
            stuck_ports: vec![StuckPortEvent {
                node: NodeId(1),
                dir: Direction::Local,
                at: 0,
                duration: 10,
            }],
            ..FaultConfig::none()
        };
        assert!(matches!(
            cfg.validate(&mesh),
            Err(ConfigError::FaultTopology(_))
        ));
    }

    #[test]
    fn drop_swallows_whole_packet() {
        let cfg = FaultConfig {
            link_drop_rate: 1.0,
            ..FaultConfig::none()
        };
        let mut fs = FaultState::new(cfg);
        let h = head(5);
        assert_eq!(fs.on_link_flit(3, 1, &h), LinkFate::Drop);
        // The four body/tail flits at the same link are swallowed without
        // further draws.
        let mut body = head(5);
        body.kind = FlitKind::Body;
        for _ in 0..4 {
            assert_eq!(fs.on_link_flit(3, 1, &body), LinkFate::Drop);
        }
        assert!(fs.eating.is_empty(), "swallow bookkeeping must drain");
        assert_eq!(fs.stats.packets_dropped, 1);
        assert_eq!(fs.stats.flits_dropped, 5);
    }

    #[test]
    fn corruption_marks_heads_only() {
        let cfg = FaultConfig {
            link_corrupt_rate: 1.0,
            ..FaultConfig::none()
        };
        let mut fs = FaultState::new(cfg);
        assert_eq!(fs.on_link_flit(0, 0, &head(1)), LinkFate::Corrupt);
        let mut body = head(5);
        body.kind = FlitKind::Body;
        assert_eq!(fs.on_link_flit(0, 0, &body), LinkFate::Deliver);
    }

    #[test]
    fn stuck_window_is_half_open() {
        let e = StuckPortEvent {
            node: NodeId(0),
            dir: Direction::West,
            at: 10,
            duration: 5,
        };
        assert!(!e.active(9));
        assert!(e.active(10));
        assert!(e.active(14));
        assert!(!e.active(15));
    }

    #[test]
    fn same_seed_same_fates() {
        let cfg = FaultConfig {
            link_drop_rate: 0.5,
            seed: 42,
            ..FaultConfig::none()
        };
        let mut a = FaultState::new(cfg.clone());
        let mut b = FaultState::new(cfg);
        for i in 0..64 {
            assert_eq!(
                a.on_link_flit(i, 0, &head(1)),
                b.on_link_flit(i, 0, &head(1))
            );
        }
    }

    /// Property round trip of the fault-layer checkpoint: after an
    /// arbitrary prefix of link/credit/table rolls (including packets
    /// mid-swallow), a [`FaultState`] restored from the snapshot — into a
    /// state built from a *different* seed — must produce the identical
    /// fate sequence for any continuation, and the snapshot must survive
    /// serde byte-for-byte.
    mod snapshot_props {
        use super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone, Copy)]
        enum Roll {
            Flit {
                from: usize,
                dir: usize,
                len: u32,
                pkt: u64,
            },
            Credit,
            Table,
        }

        fn roll_strategy() -> impl Strategy<Value = Roll> {
            prop_oneof![
                (0usize..16, 0usize..4, 1u32..6, 0u64..8).prop_map(|(from, dir, len, pkt)| {
                    Roll::Flit {
                        from,
                        dir,
                        len,
                        pkt,
                    }
                }),
                Just(Roll::Credit),
                Just(Roll::Table),
            ]
        }

        fn play(fs: &mut FaultState, rolls: &[Roll]) -> Vec<u64> {
            let mut trace = Vec::with_capacity(rolls.len());
            for r in rolls {
                let outcome = match *r {
                    Roll::Flit {
                        from,
                        dir,
                        len,
                        pkt,
                    } => {
                        let mut f = head(len);
                        f.packet = PacketId(pkt);
                        match fs.on_link_flit(from, dir, &f) {
                            LinkFate::Deliver => 0,
                            LinkFate::Drop => 1,
                            LinkFate::Corrupt => 2,
                        }
                    }
                    Roll::Credit => 3 + fs.on_link_credit() as u64,
                    Roll::Table => match fs.roll_table_corruption(5) {
                        None => 5,
                        Some((port, draw)) => 6 ^ (port as u64) ^ draw as u64,
                    },
                };
                trace.push(outcome);
            }
            trace
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            #[test]
            fn restored_fault_state_continues_the_exact_fate_sequence(
                seed in proptest::prelude::any::<u64>(),
                prefix in prop::collection::vec(roll_strategy(), 0..200),
                suffix in prop::collection::vec(roll_strategy(), 1..200),
            ) {
                let cfg = FaultConfig {
                    link_drop_rate: 0.2,
                    link_corrupt_rate: 0.1,
                    credit_loss_rate: 0.05,
                    table_corrupt_rate: 0.15,
                    seed,
                    ..FaultConfig::none()
                };
                let mut original = FaultState::new(cfg.clone());
                play(&mut original, &prefix);

                let snap = original.snapshot();
                let json = serde_json::to_string(&snap).expect("serialize snapshot");
                let decoded: FaultSnapshot =
                    serde_json::from_str(&json).expect("deserialize snapshot");
                prop_assert_eq!(
                    serde_json::to_string(&decoded).expect("re-serialize"),
                    json,
                    "snapshot re-serialization is not byte-identical"
                );

                let mut restored = FaultState::new(FaultConfig {
                    seed: seed ^ 0x5EED,
                    ..cfg
                });
                restored.restore(decoded);
                prop_assert_eq!(
                    play(&mut original, &suffix),
                    play(&mut restored, &suffix),
                    "fate sequences diverged after the restore"
                );
            }
        }
    }
}
