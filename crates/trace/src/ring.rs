//! The bounded in-memory event log.

use crate::event::TraceEvent;
use std::collections::VecDeque;

/// A bounded single-writer event ring: the newest `capacity` events are
/// kept, the oldest are overwritten, and every overwrite is counted so a
/// post-pass knows the log is a suffix of the run rather than all of it.
///
/// The storage is allocated once up front and never grows; pushing into a
/// full ring pops the oldest slot first, so the steady state performs no
/// allocation at all.
#[derive(Debug)]
pub struct RingLog {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingLog {
    /// A ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a trace ring needs at least one slot");
        Self {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Appends one event, overwriting the oldest when full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when no events are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Removes and returns all held events in emission order.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }

    /// Copies the held events in emission order without removing them.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.buf.iter().copied().collect()
    }

    /// Rebuilds the ring from checkpointed state: `events` become the
    /// held suffix (in emission order) and `dropped` the overwrite
    /// count, so a resumed run's final drain matches the original's
    /// byte for byte.
    ///
    /// # Panics
    ///
    /// Panics if `events` exceeds the ring's capacity (the checkpoint
    /// came from a differently-configured ring).
    pub fn restore(&mut self, events: Vec<TraceEvent>, dropped: u64) {
        assert!(
            events.len() <= self.capacity,
            "ring snapshot ({} events) exceeds capacity {}",
            events.len(),
            self.capacity
        );
        self.buf.clear();
        self.buf.extend(events);
        self.dropped = dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            kind: EventKind::NiInject {
                packet: cycle,
                node: 0,
            },
        }
    }

    #[test]
    fn keeps_newest_when_full() {
        let mut r = RingLog::new(3);
        for c in 0..5 {
            r.push(ev(c));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let cycles: Vec<u64> = r.drain().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
        assert!(r.is_empty());
    }

    #[test]
    fn snapshot_does_not_consume() {
        let mut r = RingLog::new(8);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.snapshot().len(), 2);
        assert_eq!(r.len(), 2);
    }
}
