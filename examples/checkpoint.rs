//! Checkpoint/restore: pause a run mid-flight, serialize the whole
//! simulation to disk, reload it — even in a different process, under a
//! different kernel or shard count — and finish with results
//! byte-identical to a run that never stopped.
//!
//! ```text
//! cargo run --release --example checkpoint
//! ```

use reactive_circuits::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = SimConfig::quick(16, MechanismConfig::complete_noack(), "fft");
    cfg.warmup_cycles = 2_000;
    cfg.measure_cycles = 10_000;
    let total = cfg.warmup_cycles + cfg.measure_cycles;
    let path = std::env::temp_dir().join("reactive-circuits-example.ckpt");

    // The reference: one uninterrupted run.
    let uninterrupted = run_sim(&cfg)?;

    // The same point, stopped at an arbitrary cycle and saved. A session
    // is an explicitly-stepped run: run_until / checkpoint / finish.
    let mut first = SimSession::new(&cfg, None, KernelMode::Dense, 1)?;
    first.run_until(total / 3)?;
    first.checkpoint().save(&path)?;
    println!(
        "saved cycle {}/{} to {} ({} bytes)",
        first.pos(),
        total,
        path.display(),
        std::fs::metadata(&path)?.len()
    );
    drop(first); // simulate the process dying here

    // Reload and finish. The kernel and shard count are host-performance
    // knobs, not simulation state — resuming under the *event* kernel
    // with 2 shards must still reproduce the dense serial run exactly.
    let snap = SessionSnapshot::load(&path).expect("checkpoint readable");
    let mut second = SimSession::resume(&snap, KernelMode::Event, 2)?;
    println!("resumed at cycle {} under the event kernel", second.pos());
    second.run_until(total)?;
    let (resumed, _) = second.finish();

    let a = serde_json::to_string(&uninterrupted)?;
    let b = serde_json::to_string(&resumed)?;
    assert_eq!(a, b, "resumed run diverged from the uninterrupted run");
    println!(
        "byte-identical: {} instructions, {:.3} IPC/core either way",
        resumed.instructions,
        resumed.ipc_per_core()
    );

    // The same guarantee, packaged: run_sim_resumable checkpoints every
    // `interval` cycles into a directory keyed by the config, picks up
    // any compatible checkpoint it finds there, and removes it when the
    // run completes — kill this loop at any point and rerun.
    let dir = std::env::temp_dir().join("reactive-circuits-example-ckpts");
    let via_wrapper = run_sim_resumable(&cfg, KernelMode::Dense, 1, &dir, 4_000)?;
    assert_eq!(serde_json::to_string(&via_wrapper)?, a);
    println!("run_sim_resumable (interval 4000): byte-identical too");

    std::fs::remove_file(&path).ok();
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
