//! Cycle-accurate wormhole virtual-channel mesh NoC with Reactive Circuits.
//!
//! This crate implements the paper's baseline network (Table 4: 4-stage
//! routers — routing/input buffering, VC allocation, switch allocation,
//! switch traversal — round-robin two-phase allocators, 5-flit VC buffers,
//! 16 B flits, 1-cycle links, two virtual networks routed XY/YX) and every
//! Reactive Circuits router variant on top of it:
//!
//! * request packets reserve circuits for their replies **in parallel with
//!   VC allocation** at every router they cross (§4.1);
//! * replies that find their circuit built bypass the pipeline and cross a
//!   router in a single cycle (§4.3);
//! * circuits are undone through the credit channel (§4.4);
//! * complete-mode circuit VCs are bufferless; fragmented mode adds a
//!   third, buffered reply VC (§4.2);
//! * scrounger replies may ride a foreign circuit to an intermediate node
//!   (§4.5); timed reservations hold resources only for a computed window
//!   (§4.7); the ideal mode reserves everything and resolves collisions
//!   per cycle (§4.8).
//!
//! The [`Network`] type owns routers, links and network interfaces and is
//! driven one cycle at a time by [`Network::tick`]; packets go in through
//! [`Network::inject`] and come back out of [`Network::take_delivered`].
//!
//! # Examples
//!
//! ```
//! use rcsim_core::{Mesh, MechanismConfig, MessageClass, NodeId};
//! use rcsim_noc::{Network, NocConfig, PacketSpec};
//!
//! let cfg = NocConfig::paper_baseline(Mesh::new(4, 4)?, MechanismConfig::baseline());
//! let mut net = Network::new(cfg)?;
//! net.inject(PacketSpec::new(NodeId(0), NodeId(15), MessageClass::L1Request));
//! for _ in 0..100 {
//!     net.tick();
//! }
//! let delivered = net.take_delivered(NodeId(15));
//! assert_eq!(delivered.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod fault;
mod flit;
mod health;
mod ingress;
mod network;
mod ni;
mod router;
mod stats;
pub mod traffic;

pub use config::{NocConfig, VcLayout};
pub use fault::{DeadLinkEvent, DeadRouterEvent, FaultConfig, FaultStats, StuckPortEvent};
pub use flit::{Delivered, Flit, FlitKind, PacketId, PacketSpec};
pub use health::{
    AdaptiveReport, DeadlockReport, DeadlockResource, HealthReport, LeakedCircuit, StuckMessage,
    WatchdogConfig,
};
pub use ingress::{
    Admission, IngressConfig, OverloadReport, RejectReason, ReleasedArrival, ShedArrival,
};
pub use network::{Network, NetworkSnapshot, NetworkTelemetry};
pub use stats::{CircuitOutcome, MessageGroup, NocStats};
