//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the paper's evaluation (§5).
//!
//! Each binary (`table1`, `table5`, `table6`, `fig6`, `fig7`, `fig8`,
//! `fig9`, `fig10`) prints the paper's reported numbers next to the
//! values measured by this reproduction, and writes the raw rows as JSON
//! under `target/experiments/`.
//!
//! Environment knobs (defaults keep a full figure under a few minutes):
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `RC_APPS` | `all`, or a comma list of workload names | 6 representative apps + mix |
//! | `RC_CYCLES` | measured cycles per run | 30 000 |
//! | `RC_WARMUP` | warm-up cycles per run | 60 000 |
//! | `RC_SEEDS` | seeds averaged per point | 1 |
//! | `RC_CORES` | comma list of core counts | `16,64` |
//! | `RC_SMALL_CACHES` | `1` = scaled-down caches (smoke runs) | paper's Table 2 sizes |
//! | `RC_MAX_CYCLES` | hard per-run cycle budget (warm-up + measure) | 2 000 000 |
//! | `RC_JOBS` | sweep worker threads (`1` = serial path) | available parallelism |
//! | `RC_NO_CACHE` | `1` = bypass the on-disk result cache | cache enabled |
//! | `RC_CACHE_DIR` | result-cache location | `target/experiments/cache` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod sweep;

use rcsim_core::MechanismConfig;
use rcsim_stats::Accumulator;
use rcsim_system::{RunResult, SimConfig, SimError};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Mutex;

pub use rcsim_trace::{BenchRow, BenchSummary};
pub use sweep::{
    cache_key, SweepOutcome, SweepRunner, SweepStats, CACHE_FORMAT_VERSION, DEFAULT_CKPT_INTERVAL,
};

/// The workloads an experiment sweeps (see `RC_APPS`).
pub fn experiment_apps() -> Vec<String> {
    match std::env::var("RC_APPS") {
        Ok(s) if s == "all" => rcsim_workload::workload_names()
            .into_iter()
            .map(str::to_owned)
            .collect(),
        Ok(s) => s.split(',').map(|a| a.trim().to_owned()).collect(),
        Err(_) => [
            "blackscholes",
            "canneal",
            "fft",
            "ocean_cp",
            "raytrace",
            "swaptions",
            "mix",
        ]
        .into_iter()
        .map(str::to_owned)
        .collect(),
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Measured cycles per run (see `RC_CYCLES`).
pub fn measure_cycles() -> u64 {
    env_u64("RC_CYCLES", 30_000)
}

/// Warm-up cycles per run (see `RC_WARMUP`). The default is long enough
/// for the caches to reach a steady state (the paper warms for 200 M
/// cycles; the synthetic workloads converge much faster).
pub fn warmup_cycles() -> u64 {
    env_u64("RC_WARMUP", 60_000)
}

/// Workload seeds per (app, configuration) point: `RC_SEEDS=n` averages
/// over `n` seeds (default 1; figures gain tighter error bars at n× cost).
pub fn seeds() -> Vec<u64> {
    let n = env_u64("RC_SEEDS", 1).max(1);
    (1..=n).collect()
}

/// Hard ceiling on warm-up + measured cycles per run (see
/// `RC_MAX_CYCLES`): a mis-set `RC_CYCLES`/`RC_WARMUP` cannot wedge CI,
/// it just truncates the run.
pub fn max_cycles() -> u64 {
    env_u64("RC_MAX_CYCLES", 2_000_000).max(2)
}

/// Chip sizes to sweep (see `RC_CORES`).
pub fn cores_list() -> Vec<u16> {
    match std::env::var("RC_CORES") {
        Ok(s) => s.split(',').filter_map(|v| v.trim().parse().ok()).collect(),
        Err(_) => vec![16, 64],
    }
}

/// One sweep point: workload × chip size × mechanism × seed, with the
/// harness-wide `RC_*` settings applied when lowered to a [`SimConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct PointSpec {
    /// Core count.
    pub cores: u16,
    /// Mechanism configuration.
    pub mechanism: MechanismConfig,
    /// Workload name.
    pub app: String,
    /// Workload seed.
    pub seed: u64,
}

impl PointSpec {
    /// A point for `app` on a `cores`-core chip under `mechanism`.
    pub fn new(cores: u16, mechanism: MechanismConfig, app: &str, seed: u64) -> Self {
        Self {
            cores,
            mechanism,
            app: app.to_owned(),
            seed,
        }
    }

    /// The diagnostic label progress lines and failure reports use.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}c seed {}",
            self.app,
            self.mechanism.label(),
            self.cores,
            self.seed
        )
    }

    /// Lowers the point to a full [`SimConfig`] with the harness-wide
    /// settings applied: warm-up and measurement clamped to the
    /// [`max_cycles`] budget, cache geometry per `RC_SMALL_CACHES`.
    pub fn config(&self) -> SimConfig {
        let budget = max_cycles();
        let warmup = warmup_cycles().min(budget - 1);
        SimConfig {
            cores: self.cores,
            mechanism: self.mechanism,
            workload: self.app.clone(),
            seed: self.seed,
            warmup_cycles: warmup,
            measure_cycles: measure_cycles().clamp(1, budget - warmup),
            // Experiments default to the paper's Table 2 cache sizes; set
            // RC_SMALL_CACHES=1 for quick smoke runs.
            small_caches: std::env::var("RC_SMALL_CACHES").is_ok_and(|v| v == "1"),
            ..SimConfig::quick(self.cores, self.mechanism, &self.app)
        }
    }
}

/// The (app × seed) point grid one `run_apps` call sweeps; experiment
/// binaries concatenate several of these into one big job list so the
/// whole figure parallelizes, not just one mechanism at a time.
pub fn app_seed_points(cores: u16, mechanism: MechanismConfig, seed: u64) -> Vec<PointSpec> {
    let mut out = Vec::new();
    for app in experiment_apps() {
        for s in seeds() {
            out.push(PointSpec::new(cores, mechanism, &app, seed + s - 1));
        }
    }
    out
}

/// Cross-sweep totals for the current process, stamped into every bench
/// summary by [`save_bench_summary`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepTotals {
    /// Wall-clock ms spent inside sweeps.
    pub wall_ms: f64,
    /// Sum of individual point run times in ms.
    pub busy_ms: f64,
    /// Points executed or served from cache.
    pub points: usize,
    /// Points served from the on-disk result cache.
    pub cached: usize,
    /// Largest worker count any sweep used.
    pub jobs: usize,
}

static SWEEP_TOTALS: Mutex<SweepTotals> = Mutex::new(SweepTotals {
    wall_ms: 0.0,
    busy_ms: 0.0,
    points: 0,
    cached: 0,
    jobs: 0,
});

fn note_sweep(stats: &SweepStats) {
    let mut t = SWEEP_TOTALS.lock().expect("sweep totals poisoned");
    t.wall_ms += stats.wall_ms;
    t.busy_ms += stats.busy_ms;
    t.points += stats.points;
    t.cached += stats.cached;
    t.jobs = t.jobs.max(stats.jobs);
}

/// Snapshot of this process's accumulated sweep counters.
pub fn sweep_totals() -> SweepTotals {
    SWEEP_TOTALS.lock().expect("sweep totals poisoned").clone()
}

/// Runs labelled configurations through the [`SweepRunner`] (parallel +
/// cached, see `RC_JOBS` / `RC_NO_CACHE`), or terminates the binary with
/// a diagnostic dump. Failures are aggregated: every failed point is
/// reported before the process exits, so one stalled configuration no
/// longer hides the rest of the sweep. A watchdog-declared stall prints
/// the [`rcsim_system::HealthReport`] (what wedged, the oldest in-flight
/// messages, suspected circuit-table leaks, and — when the wait-for
/// graph closes — the deadlock cycle itself, entry-capped like the other
/// inventories) to stderr and exits with status 2 — CI gets an
/// actionable log instead of a hung or garbage run. With `RC_CKPT_DIR`
/// set, the wedged chip state is also dumped as a checkpoint loadable by
/// `rcsim-replay`.
///
/// # Panics
///
/// Panics when a configuration is invalid (unknown workload etc.) —
/// experiment binaries fail loudly.
pub fn run_configs(jobs: Vec<(String, SimConfig)>) -> Vec<RunResult> {
    let outcome = SweepRunner::from_env().run(&jobs);
    note_sweep(&outcome.stats);
    let mut results = Vec::with_capacity(jobs.len());
    let mut failures = Vec::new();
    let mut stalled = false;
    for ((label, _), res) in jobs.iter().zip(outcome.results) {
        match res {
            Ok(r) => results.push(r),
            Err(SimError::Stalled { report }) => {
                stalled = true;
                failures.push(format!("{label}: network stalled\n{report}"));
            }
            Err(e) => failures.push(format!("{label}: {e}")),
        }
    }
    if !failures.is_empty() {
        eprintln!("{} of {} sweep points failed:", failures.len(), jobs.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        if stalled {
            std::process::exit(2);
        }
        panic!("{} sweep points failed", failures.len());
    }
    results
}

/// [`run_configs`] over [`PointSpec`]s (the common case).
pub fn run_points(specs: &[PointSpec]) -> Vec<RunResult> {
    run_configs(specs.iter().map(|s| (s.label(), s.config())).collect())
}

/// Runs one configuration, or terminates the binary with a diagnostic
/// dump (see [`run_configs`] for the failure contract).
///
/// # Panics
///
/// Panics when the configuration is invalid (unknown workload etc.) —
/// experiment binaries fail loudly.
pub fn run_or_die(cfg: &SimConfig, label: &str) -> RunResult {
    run_configs(vec![(label.to_owned(), cfg.clone())])
        .pop()
        .expect("one job in, one result out")
}

/// One experiment run with the harness-wide settings applied. Warm-up and
/// measurement are clamped to the [`max_cycles`] budget, and a wedged
/// network aborts with a diagnostic dump (see [`run_configs`]).
///
/// # Panics
///
/// Panics when the configuration is invalid (unknown workload etc.) —
/// experiment binaries fail loudly.
pub fn run_point(cores: u16, mechanism: MechanismConfig, app: &str, seed: u64) -> RunResult {
    run_points(&[PointSpec::new(cores, mechanism, app, seed)])
        .pop()
        .expect("one point in, one result out")
}

/// Runs `mechanism` over all experiment apps (× `RC_SEEDS` seeds) through
/// the sweep runner; returns one result per (app, seed), in grid order.
/// `seed` offsets the seed sequence so paired comparisons stay paired.
pub fn run_apps(cores: u16, mechanism: MechanismConfig, seed: u64) -> Vec<RunResult> {
    run_points(&app_seed_points(cores, mechanism, seed))
}

/// Mean of a per-run metric across applications, with CI95 half-width.
pub fn mean_ci<F: Fn(&RunResult) -> f64>(results: &[RunResult], f: F) -> (f64, f64) {
    let acc: Accumulator = results.iter().map(f).collect();
    (acc.mean(), acc.ci95_half_width())
}

/// Writes an experiment's raw rows to `target/experiments/<name>.json`.
pub fn save_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = PathBuf::from("target/experiments");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        if let Ok(s) = serde_json::to_string_pretty(value) {
            let _ = std::fs::write(&path, s);
            eprintln!("(raw rows written to {})", path.display());
        }
    }
}

/// Condenses a batch of runs into one machine-readable summary row:
/// count-weighted mean network latency across the Figure 7 message
/// groups, the worst group p99 (a conservative tail envelope — p99s
/// cannot be averaged), and the mean fraction of replies that rode a
/// circuit.
pub fn bench_row(label: &str, cores: u16, results: &[RunResult]) -> BenchRow {
    let mut weighted = 0.0;
    let mut count = 0u64;
    let mut p99 = 0.0f64;
    let mut p999 = 0.0f64;
    for r in results {
        for row in r.latency.values() {
            weighted += row.network * row.count as f64;
            count += row.count;
            p99 = p99.max(row.p99);
            p999 = p999.max(row.p999);
        }
    }
    let hit: Accumulator = results
        .iter()
        .map(|r| r.outcomes.get("circuit").copied().unwrap_or(0.0))
        .collect();
    BenchRow {
        label: label.to_owned(),
        cores: cores as usize,
        topology: "mesh".to_owned(),
        avg_latency: if count == 0 {
            0.0
        } else {
            weighted / count as f64
        },
        p99_latency: p99,
        p999_latency: p999,
        circuit_hit_rate: hit.mean().clamp(0.0, 1.0),
        extra: BTreeMap::new(),
    }
}

/// Writes a bench summary to `target/experiments/BENCH_<name>.json` —
/// the machine-readable counterpart of the human-readable stdout tables,
/// consumed by `validate_bench` and external dashboards. The process's
/// accumulated sweep counters ([`sweep_totals`]) are stamped into the
/// summary's `wall_ms`/`busy_ms`/`jobs`/`cached_points` fields, so every
/// `BENCH_<name>.json` records how fast its sweep executed and how much
/// the result cache saved.
///
/// # Panics
///
/// Panics when the summary violates its own invariants (see
/// [`BenchSummary::validate`]) — a malformed summary must fail the run,
/// not poison downstream consumers.
pub fn save_bench_summary(summary: &mut BenchSummary) {
    let totals = sweep_totals();
    summary.wall_ms = totals.wall_ms;
    summary.busy_ms = totals.busy_ms;
    summary.jobs = totals.jobs;
    summary.cached_points = totals.cached;
    let problems = summary.validate();
    assert!(
        problems.is_empty(),
        "invalid bench summary '{}': {problems:?}",
        summary.bench
    );
    let dir = PathBuf::from("target/experiments");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("BENCH_{}.json", summary.bench));
        if let Ok(s) = serde_json::to_string_pretty(summary) {
            let _ = std::fs::write(&path, s);
            eprintln!("(bench summary written to {})", path.display());
        }
    }
}

/// Writes pre-rendered text (e.g. a Chrome trace) to
/// `target/experiments/<name>`.
pub fn save_text(name: &str, contents: &str) {
    let dir = PathBuf::from("target/experiments");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(name);
        let _ = std::fs::write(&path, contents);
        eprintln!("(written to {})", path.display());
    }
}

/// Pretty percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// A terminal bar for figure-style output: `value` rendered against
/// `max`, `width` characters wide.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let filled = ((value / max) * width as f64).round() as usize;
    "█".repeat(filled.min(width))
}

/// Aggregates outcome fractions across runs (weighted by replies).
pub fn mean_outcomes(results: &[RunResult]) -> BTreeMap<String, f64> {
    let mut sums: BTreeMap<String, Accumulator> = BTreeMap::new();
    for r in results {
        for (k, v) in &r.outcomes {
            sums.entry(k.clone()).or_default().add(*v);
        }
    }
    sums.into_iter().map(|(k, a)| (k, a.mean())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        assert!(!experiment_apps().is_empty());
        assert!(measure_cycles() > 0);
        assert!(cores_list().contains(&16));
    }

    #[test]
    fn mean_ci_works() {
        let r: Vec<RunResult> = Vec::new();
        let (m, ci) = mean_ci(&r, |x| x.instructions as f64);
        assert_eq!((m, ci), (0.0, 0.0));
    }

    #[test]
    fn bench_row_weights_latency_by_count() {
        use rcsim_system::LatencyRow;
        let mut r = RunResult {
            workload: "x".into(),
            mechanism: "Baseline".into(),
            cores: 16,
            cycles: 1000,
            instructions: 1000,
            messages: BTreeMap::new(),
            latency: BTreeMap::new(),
            outcomes: BTreeMap::new(),
            reservations_at_index: vec![],
            reservations_failed: 0,
            reservation_failures: [0; 4],
            load: 0.0,
            energy: Default::default(),
            area_savings: 0.0,
            l1_miss_rate: 0.0,
            acks_elided: 0,
            l2_queued_on_busy: 0,
            health: Default::default(),
            external: Default::default(),
        };
        r.latency.insert(
            "Request".into(),
            LatencyRow {
                network: 10.0,
                queueing: 0.0,
                p99: 40.0,
                p999: 70.0,
                count: 3,
            },
        );
        r.latency.insert(
            "Circuit_Rep".into(),
            LatencyRow {
                network: 20.0,
                queueing: 0.0,
                p99: 25.0,
                p999: 90.0,
                count: 1,
            },
        );
        r.outcomes.insert("circuit".into(), 0.5);
        let row = bench_row("test", 16, &[r]);
        // (10*3 + 20*1) / 4 = 12.5; worst p99 wins; hit rate passes through.
        assert!((row.avg_latency - 12.5).abs() < 1e-12);
        assert!((row.p99_latency - 40.0).abs() < 1e-12);
        assert!((row.p999_latency - 90.0).abs() < 1e-12);
        assert!((row.circuit_hit_rate - 0.5).abs() < 1e-12);

        let mut summary = BenchSummary::new("unit");
        summary.push(row);
        assert!(summary.validate().is_empty());
    }
}
