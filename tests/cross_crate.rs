//! Workspace-level integration tests: the public prelude workflow, and
//! cross-crate invariants (determinism, energy/area consistency).

use reactive_circuits::prelude::*;

fn quick(mechanism: MechanismConfig, app: &str) -> SimConfig {
    SimConfig {
        warmup_cycles: 2_000,
        measure_cycles: 12_000,
        ..SimConfig::quick(16, mechanism, app)
    }
}

#[test]
fn prelude_workflow_end_to_end() {
    let baseline = run_sim(&quick(MechanismConfig::baseline(), "fft")).unwrap();
    let circuits = run_sim(&quick(MechanismConfig::complete_noack(), "fft")).unwrap();
    assert!(circuits.speedup_over(&baseline) > 0.95);
    assert!(circuits.outcomes["circuit"] > 0.0);
}

#[test]
fn runs_are_deterministic() {
    let a = run_sim(&quick(MechanismConfig::slack_delay(1), "dedup")).unwrap();
    let b = run_sim(&quick(MechanismConfig::slack_delay(1), "dedup")).unwrap();
    assert_eq!(a, b, "identical seeds must produce identical results");
    let mut other = quick(MechanismConfig::slack_delay(1), "dedup");
    other.seed += 1;
    let c = run_sim(&other).unwrap();
    assert_ne!(
        a.instructions, c.instructions,
        "different seed, different run"
    );
}

#[test]
fn area_and_energy_are_consistent_across_crates() {
    // The RunResult's area saving must equal the power crate's number.
    let r = run_sim(&quick(MechanismConfig::complete(), "swaptions")).unwrap();
    assert_eq!(
        r.area_savings,
        area_savings(&MechanismConfig::complete(), 16)
    );
    assert!(r.energy.total_pj() > 0.0);
    assert!(r.energy.static_share() > 0.0 && r.energy.static_share() < 1.0);
}

#[test]
fn geometric_mean_speedup_over_apps() {
    // A miniature Figure 9 point: geometric-mean speedup over a few apps.
    let apps = ["fft", "swaptions", "canneal"];
    let mut speedups = Vec::new();
    for app in apps {
        let base = run_sim(&quick(MechanismConfig::baseline(), app)).unwrap();
        let noack = run_sim(&quick(MechanismConfig::complete_noack(), app)).unwrap();
        speedups.push(noack.speedup_over(&base));
    }
    let g = geometric_mean(speedups.iter().copied()).unwrap();
    assert!(g > 0.97, "mean speedup {g:.3} should not regress");
}

#[test]
fn network_is_usable_standalone() {
    // The NoC crate works without the protocol on top.
    let mesh = Mesh::new(4, 4).unwrap();
    let mut net =
        Network::new(NocConfig::paper_baseline(mesh, MechanismConfig::complete())).unwrap();
    net.inject(PacketSpec::new(NodeId(0), NodeId(15), MessageClass::L1Request).with_block(64));
    for _ in 0..100 {
        net.tick();
    }
    assert_eq!(net.take_delivered(NodeId(15)).len(), 1);
}

#[test]
fn wedged_network_surfaces_as_stalled_error() {
    // Total credit loss deadlocks the mesh; run_sim must return
    // SimError::Stalled with a diagnostic report instead of spinning
    // through the full cycle budget with a dead network.
    let mut cfg = quick(MechanismConfig::baseline(), "fft");
    cfg.faults = FaultConfig {
        credit_loss_rate: 1.0,
        ..FaultConfig::none()
    };
    cfg.watchdog = WatchdogConfig {
        stall_window: 300,
        ..WatchdogConfig::default()
    };
    match run_sim(&cfg) {
        Err(SimError::Stalled { report }) => {
            assert!(report.stalled);
            assert!(report.in_flight > 0);
            assert!(
                report.cycle <= cfg.warmup_cycles + cfg.measure_cycles,
                "stall must be declared during the run, not after it"
            );
            assert!(report.faults.credits_lost > 0);
        }
        other => panic!("expected SimError::Stalled, got {other:?}"),
    }
}

#[test]
fn fault_free_config_is_zero_perturbation() {
    // The fault/watchdog layer defaults must not move a single number.
    let a = run_sim(&quick(MechanismConfig::complete_noack(), "fft")).unwrap();
    let mut cfg = quick(MechanismConfig::complete_noack(), "fft");
    cfg.faults = FaultConfig::none();
    cfg.watchdog = WatchdogConfig::default();
    let b = run_sim(&cfg).unwrap();
    assert_eq!(a, b, "FaultConfig::none() must be bit-identical");
    assert!(a.health.healthy());
}

#[test]
fn all_workloads_resolve_through_prelude() {
    assert_eq!(workload_names().len(), 22);
    for name in workload_names() {
        assert!(Workload::by_name(name, 16, 0).is_some(), "{name}");
    }
}
