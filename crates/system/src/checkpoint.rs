//! Checkpoint/restore: full simulation-state snapshots with byte-identical
//! resume, and the crash-resilient run driver built on them.
//!
//! A [`SimSession`] is [`run_sim`](crate::run_sim) opened up: the same
//! chip construction, warm-up boundary and result assembly, but advanced
//! explicitly with [`SimSession::run_until`] so a run can stop at any
//! cycle `k`, [`SimSession::checkpoint`] itself, and later be rebuilt with
//! [`SimSession::resume`] to continue from `k`. The contract — enforced by
//! the `checkpoint_diff` differential matrix — is byte identity:
//! `run(0..T)` and `run(0..k) + save + restore + run(k..T)` produce the
//! same [`RunResult`] and the same trace stream, for any `k`, under every
//! kernel, shard count, topology, fault plan, open-loop and adaptive
//! configuration.
//!
//! What a snapshot holds is the *dynamic* state only: router pipelines,
//! VC buffers and credits, circuit tables, in-flight flits, NI queues and
//! retransmission state, the fault layer's RNG and health bookkeeping,
//! L1/L2/MSHR/directory and memory-controller state, core trace cursors,
//! the open-loop driver, adaptive policy controllers and the trace ring.
//! Everything derivable from the [`SimConfig`] (geometry, latencies,
//! mechanism flags, kernel wiring) is rebuilt by construction and
//! deliberately excluded — see DESIGN.md §15 for the ownership map.
//!
//! On disk a checkpoint is a one-line header
//! (`rcsim-checkpoint v<version> <fnv1a-64 of the payload>`) followed by
//! the serde payload, written tmp-then-rename so readers never observe a
//! torn file. A corrupt, truncated or stale-version file loads as `None`
//! — a clean miss, exactly like the sweep result cache — never an error.

use crate::chip::{Chip, ChipSnapshot};
use crate::report::RunResult;
use crate::sim::{assemble_result, build_chip, SimConfig, SimError, TraceConfig, TraceReport};
use rcsim_core::{Cycle, KernelMode};
use rcsim_trace::{LatencyBreakdown, MetricsRegistry, PortableEvent, TraceEvent, TraceSink};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Bumped whenever the snapshot layout changes incompatibly. A checkpoint
/// carrying any other version is treated as a clean miss, never an error.
pub const CHECKPOINT_FORMAT_VERSION: u32 = 1;

/// Stable 64-bit FNV-1a over `bytes` — deliberately not `DefaultHasher`,
/// whose output may change between Rust releases; checkpoint checksums
/// must be stable across toolchains.
pub(crate) fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A saved simulation: the config that produced it (so a stale or
/// mismatched file is detected by comparison, not trusted), the cycle it
/// stopped at, and the complete dynamic state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionSnapshot {
    config: SimConfig,
    trace: Option<TraceConfig>,
    pos: Cycle,
    chip: ChipSnapshot,
    trace_events: Vec<PortableEvent>,
    trace_dropped: u64,
}

impl SessionSnapshot {
    /// The cycle the saved run had reached.
    pub fn pos(&self) -> Cycle {
        self.pos
    }

    /// The configuration the saved run was started from.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Serializes to the versioned, checksummed on-disk form.
    fn encode(&self) -> String {
        let payload = serde_json::to_string(self).expect("snapshots always serialize");
        format!(
            "rcsim-checkpoint v{CHECKPOINT_FORMAT_VERSION} {:016x}\n{payload}",
            fnv1a_64(payload.as_bytes())
        )
    }

    /// Parses the on-disk form; `None` on any mismatch (wrong magic,
    /// stale version, checksum failure, malformed payload).
    fn decode(text: &str) -> Option<Self> {
        let (header, payload) = text.split_once('\n')?;
        let mut parts = header.split(' ');
        if parts.next()? != "rcsim-checkpoint" {
            return None;
        }
        let version: u32 = parts.next()?.strip_prefix('v')?.parse().ok()?;
        if version != CHECKPOINT_FORMAT_VERSION {
            return None;
        }
        let checksum = u64::from_str_radix(parts.next()?, 16).ok()?;
        if parts.next().is_some() || checksum != fnv1a_64(payload.as_bytes()) {
            return None;
        }
        serde_json::from_str(payload).ok()
    }

    /// Writes the checkpoint atomically (write to a sibling temp file,
    /// then rename): a reader — or a rerun after a mid-write crash —
    /// either sees the complete file or no file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; the temp file is cleaned up on a
    /// failed rename.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, self.encode())?;
        std::fs::rename(&tmp, path).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
    }

    /// Reads a checkpoint back. Missing, truncated, corrupt or
    /// stale-version files all return `None` — a clean miss the caller
    /// handles by starting from cycle 0.
    pub fn load(path: &Path) -> Option<Self> {
        Self::decode(&std::fs::read_to_string(path).ok()?)
    }
}

/// An explicitly-stepped simulation run: [`run_sim`](crate::run_sim)
/// decomposed into construct / advance / finish so the driver can stop at
/// arbitrary cycles to checkpoint (and the replay tooling can inspect a
/// wedged chip). See the module docs for the byte-identity contract.
pub struct SimSession {
    cfg: SimConfig,
    trace_cfg: Option<TraceConfig>,
    chip: Chip,
    sink: TraceSink,
    pos: Cycle,
}

impl SimSession {
    /// Opens a fresh session at cycle 0.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for unknown workloads or invalid
    /// configurations, exactly like [`run_sim`](crate::run_sim).
    pub fn new(
        cfg: &SimConfig,
        trace: Option<&TraceConfig>,
        kernel: KernelMode,
        shards: usize,
    ) -> Result<Self, SimError> {
        let mut chip = build_chip(cfg, kernel, shards)?;
        let sink = match trace {
            Some(t) => {
                let sink = TraceSink::ring(t.capacity);
                chip.set_trace_sink(sink.clone());
                chip.set_trace_epoch(t.epoch);
                sink
            }
            None => TraceSink::Disabled,
        };
        Ok(Self {
            cfg: cfg.clone(),
            trace_cfg: trace.cloned(),
            chip,
            sink,
            pos: 0,
        })
    }

    /// Rebuilds a session from a [`SessionSnapshot`]: constructs the chip
    /// from the saved config by the same code path as a fresh run, then
    /// overwrites its dynamic state. The kernel and shard count are *not*
    /// part of the snapshot — both are pure host-performance knobs, so a
    /// run checkpointed under one combination may resume under any other
    /// with byte-identical results.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the saved config no longer builds (e.g. a
    /// workload renamed since the checkpoint was written).
    pub fn resume(
        snap: &SessionSnapshot,
        kernel: KernelMode,
        shards: usize,
    ) -> Result<Self, SimError> {
        let mut session = Self::new(&snap.config, snap.trace.as_ref(), kernel, shards)?;
        session.chip.restore(&snap.chip);
        session.sink.restore(
            snap.trace_events
                .iter()
                .cloned()
                .map(TraceEvent::from)
                .collect(),
            snap.trace_dropped,
        );
        session.pos = snap.pos;
        Ok(session)
    }

    /// Cycles completed so far.
    pub fn pos(&self) -> Cycle {
        self.pos
    }

    /// Total cycles of the configured run (warm-up + measure).
    pub fn total(&self) -> Cycle {
        self.cfg.warmup_cycles + self.cfg.measure_cycles
    }

    /// The chip, for inspection (the replay tool's health dump).
    pub fn chip(&self) -> &Chip {
        &self.chip
    }

    /// Captures the complete dynamic state at the current cycle.
    pub fn checkpoint(&self) -> SessionSnapshot {
        SessionSnapshot {
            config: self.cfg.clone(),
            trace: self.trace_cfg.clone(),
            pos: self.pos,
            chip: self.chip.snapshot(),
            trace_events: self
                .sink
                .snapshot()
                .into_iter()
                .map(PortableEvent::from)
                .collect(),
            trace_dropped: self.sink.dropped(),
        }
    }

    /// Advances to cycle `target` (`≤ total()`), applying the warm-up
    /// boundary (stats reset + trace drain) when crossing it — at the
    /// same cycle regardless of how the run is sliced, which is what
    /// makes resume byte-identical.
    ///
    /// On a watchdog stall the chip is left at the stalled cycle for
    /// inspection, and — when `RC_CKPT_DIR` is set — the wedged state is
    /// dumped as `wedged-<confighash>.ckpt` in that directory for
    /// post-mortem loading by `rcsim-replay`.
    ///
    /// # Errors
    ///
    /// [`SimError::Stalled`] when the watchdog declares the network dead.
    pub fn run_until(&mut self, target: Cycle) -> Result<(), SimError> {
        assert!(target <= self.total(), "target beyond the configured run");
        while self.pos < target {
            if self.pos == self.cfg.warmup_cycles {
                self.chip.reset_stats();
                // Discard warm-up events so the trace covers the measure
                // window only (packets already in flight keep their
                // enqueue/inject events, which the breakdown post-pass
                // counts as unresolved).
                self.sink.drain();
            }
            self.chip.tick();
            self.pos += 1;
            if self.chip.stalled() {
                self.dump_wedged();
                return Err(SimError::Stalled {
                    report: Box::new(self.chip.health()),
                });
            }
        }
        Ok(())
    }

    /// Best-effort wedged-state dump for post-mortem debugging; failures
    /// (no `RC_CKPT_DIR`, unwritable disk) cost the dump, never the stall
    /// report.
    fn dump_wedged(&self) {
        let Ok(dir) = std::env::var("RC_CKPT_DIR") else {
            return;
        };
        let Ok(json) = serde_json::to_string(&self.cfg) else {
            return;
        };
        let path =
            PathBuf::from(dir).join(format!("wedged-{:016x}.ckpt", fnv1a_64(json.as_bytes())));
        if self.checkpoint().save(&path).is_ok() {
            eprintln!(
                "[checkpoint] wedged state at cycle {} dumped to {} (inspect with rcsim-replay)",
                self.pos,
                path.display()
            );
        }
    }

    /// Gathers the final [`RunResult`] (and the [`TraceReport`] when the
    /// session traces). Call at `pos() == total()`.
    ///
    /// # Panics
    ///
    /// Panics if the run has not completed — finishing early would
    /// silently report a shorter measure window.
    pub fn finish(self) -> (RunResult, Option<TraceReport>) {
        assert_eq!(self.pos, self.total(), "finish() before the run completed");
        let trace_report = self.trace_cfg.as_ref().map(|_| {
            let dropped = self.sink.dropped();
            let events = self.sink.drain();
            let breakdown = LatencyBreakdown::from_events(&events);
            let mut metrics = MetricsRegistry::new();
            metrics.tally_events(&events);
            TraceReport {
                events,
                dropped,
                breakdown,
                metrics,
            }
        });
        (assemble_result(&self.cfg, &self.chip), trace_report)
    }
}

/// [`run_sim`](crate::run_sim) with crash resilience: the run checkpoints
/// to `dir` every `interval` cycles, resumes from the latest valid
/// checkpoint if one exists (a rerun after a kill picks up mid-run), and
/// removes the checkpoint on completion. Byte-identical to an
/// uninterrupted [`run_sim`](crate::run_sim) by the session contract.
///
/// The checkpoint file is keyed by the config's content hash, so
/// concurrent sweeps over different points never collide; a stale file
/// for a *changed* config misses on the embedded-config comparison.
///
/// # Errors
///
/// Returns [`SimError`] for unknown workloads, invalid configurations or
/// watchdog stalls, exactly like [`run_sim`](crate::run_sim).
pub fn run_sim_resumable(
    cfg: &SimConfig,
    kernel: KernelMode,
    shards: usize,
    dir: &Path,
    interval: u64,
) -> Result<RunResult, SimError> {
    let interval = interval.max(1);
    let json = serde_json::to_string(cfg).expect("configs always serialize");
    let path = dir.join(format!("{:016x}.ckpt", fnv1a_64(json.as_bytes())));
    let mut session = match SessionSnapshot::load(&path).filter(|s| s.config() == cfg) {
        Some(snap) => {
            eprintln!(
                "[checkpoint] resuming {} from cycle {} ({})",
                cfg.workload,
                snap.pos(),
                path.display()
            );
            SimSession::resume(&snap, kernel, shards)?
        }
        None => SimSession::new(cfg, None, kernel, shards)?,
    };
    let total = session.total();
    while session.pos() < total {
        let target = (session.pos() + interval).min(total);
        session.run_until(target)?;
        if session.pos() < total {
            // Best effort: a failed write costs resumability, not the run.
            let _ = session.checkpoint().save(&path);
        }
    }
    let _ = std::fs::remove_file(&path);
    Ok(session.finish().0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcsim_core::MechanismConfig;

    fn cfg() -> SimConfig {
        SimConfig {
            warmup_cycles: 300,
            measure_cycles: 1_200,
            ..SimConfig::quick(16, MechanismConfig::complete_noack(), "fft")
        }
    }

    #[test]
    fn header_roundtrip_and_rejection() {
        let session = SimSession::new(&cfg(), None, KernelMode::Dense, 1).unwrap();
        let snap = session.checkpoint();
        let text = snap.encode();
        assert!(SessionSnapshot::decode(&text).is_some());
        // Flip a payload byte: checksum mismatch is a clean miss.
        let corrupt = text.replacen("\"pos\":0", "\"pos\":1", 1);
        assert!(SessionSnapshot::decode(&corrupt).is_none());
        // Stale version: clean miss.
        let stale = text.replacen("rcsim-checkpoint v1", "rcsim-checkpoint v0", 1);
        assert!(SessionSnapshot::decode(&stale).is_none());
        // Truncated: clean miss.
        assert!(SessionSnapshot::decode(&text[..text.len() / 2]).is_none());
        assert!(SessionSnapshot::decode("").is_none());
    }

    #[test]
    fn fnv1a_is_stable() {
        // Pinned: checkpoints outlive any single build.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
