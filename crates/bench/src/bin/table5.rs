//! Table 5 — which entry of an input port's circuit table each
//! reservation lands in (Complete_NoAck, 64 cores), plus the failed
//! fraction.

use rcsim_bench::{
    bench_row, experiment_apps, run_points, save_bench_summary, save_json, BenchSummary, PointSpec,
};
use rcsim_core::MechanismConfig;

const PAPER: [f64; 6] = [48.0, 24.0, 7.0, 6.0, 6.0, 9.0]; // 1st..5th, failed

fn main() {
    println!("Table 5 — circuit reservations per input-port entry (Complete_NoAck, 64 cores)\n");
    let specs: Vec<PointSpec> = experiment_apps()
        .iter()
        .map(|app| PointSpec::new(64, MechanismConfig::complete_noack(), app, 1))
        .collect();
    let runs = run_points(&specs);
    let mut at_index = [0u64; 8];
    let mut failed = 0u64;
    for r in &runs {
        for (i, n) in r.reservations_at_index.iter().enumerate() {
            at_index[i.min(7)] += n;
        }
        failed += r.reservations_failed;
    }
    let total = at_index.iter().sum::<u64>() + failed;
    let pct = |n: u64| 100.0 * n as f64 / total.max(1) as f64;

    println!(
        "{:<14} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "", "1st", "2nd", "3rd", "4th", "5th", "failed"
    );
    println!(
        "{:<14} {:>7.0}% {:>7.0}% {:>7.0}% {:>7.0}% {:>7.0}% {:>7.0}%",
        "paper", PAPER[0], PAPER[1], PAPER[2], PAPER[3], PAPER[4], PAPER[5]
    );
    println!(
        "{:<14} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
        "measured",
        pct(at_index[0]),
        pct(at_index[1]),
        pct(at_index[2]),
        pct(at_index[3]),
        pct(at_index[4]),
        pct(failed)
    );
    println!("\n({total} reservation attempts at routers)");
    save_json("table5", &(at_index.to_vec(), failed));

    let mut summary = BenchSummary::new("table5");
    let mut row = bench_row("Complete_NoAck", 64, &runs);
    for (i, n) in at_index.iter().enumerate().take(5) {
        row.extra.insert(format!("entry_{}_pct", i + 1), pct(*n));
    }
    row.extra.insert("failed_pct".into(), pct(failed));
    summary.push(row);
    save_bench_summary(&mut summary);
}
