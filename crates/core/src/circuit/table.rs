//! Per-router circuit tables and the reservation conflict rules (§4.2, §4.7).

use super::handle::CircuitKey;
use super::timing::TimeWindow;
use crate::config::CircuitMode;
use crate::types::{Cycle, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One reserved circuit at one router input port.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CircuitEntry {
    /// Circuit identity (requestor + cache-line address).
    pub key: CircuitKey,
    /// The reply sender this circuit belongs to. All complete circuits
    /// sharing an input port must share this (§4.2).
    pub source: NodeId,
    /// Output port index the reply will take through the crossbar
    /// (`0..Topology::ports()`; 4+ are local/ejection ports).
    pub out_port: usize,
    /// Reserved time slot (`None` for untimed circuits).
    pub window: Option<TimeWindow>,
    /// Output circuit-VC index (only meaningful for fragmented circuits,
    /// which have several buffered circuit VCs).
    pub vc: u8,
    /// Set while a reply is actively streaming through this circuit; such
    /// entries are never expired.
    pub in_use: bool,
    /// An undo arrived while the circuit was in use (a borrowed-circuit
    /// race): the entry is removed, and the undo forwarded, when the
    /// borrowing tail passes.
    pub undo_pending: bool,
    /// Cycle the reservation was written (per the table's internal clock,
    /// see [`RouterCircuits::note_now`]); drives leak detection.
    #[serde(default)]
    pub reserved_at: Cycle,
}

/// A reservation attempt, as derived from a request's VC-allocation stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReserveRequest {
    /// Circuit identity.
    pub key: CircuitKey,
    /// The reply sender.
    pub source: NodeId,
    /// Input port index the reply will arrive on (a local port at the
    /// reply source's own router).
    pub in_port: usize,
    /// Output port index the reply will leave through (a local port at
    /// the reply destination's router).
    pub out_port: usize,
    /// Desired time window at the current shift (`None` when untimed).
    pub window: Option<TimeWindow>,
    /// How many cycles later the window may slide to dodge an occupied
    /// slot (the *delay* variant; 0 otherwise).
    pub max_extra_shift: u32,
}

/// Why a reservation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReserveError {
    /// No free circuit-information entry at the input port.
    NoStorage,
    /// An existing circuit at the same input port has a different source.
    SourceConflict,
    /// An existing circuit at a different input port uses the same output
    /// port (untimed complete mode), or no free circuit VC at the output
    /// (fragmented mode).
    OutputConflict,
    /// Every allowed shift of the requested window overlaps a conflicting
    /// reservation (timed modes).
    WindowConflict,
}

impl fmt::Display for ReserveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReserveError::NoStorage => "no circuit storage at input port",
            ReserveError::SourceConflict => "input port already serves another source",
            ReserveError::OutputConflict => "output port already reserved by another input",
            ReserveError::WindowConflict => "no non-conflicting time slot available",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ReserveError {}

/// A successful reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReserveOutcome {
    /// Which entry of the input port's table was used (0-based); feeds the
    /// Table 5 occupancy statistics.
    pub index_in_port: usize,
    /// Extra shift applied to dodge occupied slots (delay variant).
    pub extra_shift: u32,
    /// Output circuit-VC assigned (fragmented mode; 0 otherwise).
    pub vc: u8,
}

/// Counters for Table 5 and the failure breakdown of Figure 6.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableStats {
    /// `reserved_at_index[k]` counts reservations that were the (k+1)-th
    /// simultaneous circuit at their input port (k ≥ 7 clamps into the
    /// last bin).
    pub reserved_at_index: [u64; 8],
    /// Failures due to full tables.
    pub failed_storage: u64,
    /// Failures due to the same-source rule.
    pub failed_source: u64,
    /// Failures due to output-port conflicts.
    pub failed_output: u64,
    /// Failures due to time-slot conflicts.
    pub failed_window: u64,
}

impl TableStats {
    /// Total successful reservations.
    pub fn total_reserved(&self) -> u64 {
        self.reserved_at_index.iter().sum()
    }

    /// Total failed reservation attempts.
    pub fn total_failed(&self) -> u64 {
        self.failed_storage + self.failed_source + self.failed_output + self.failed_window
    }

    /// Accumulates another router's counters.
    pub fn merge(&mut self, other: &TableStats) {
        for (a, b) in self
            .reserved_at_index
            .iter_mut()
            .zip(&other.reserved_at_index)
        {
            *a += b;
        }
        self.failed_storage += other.failed_storage;
        self.failed_source += other.failed_source;
        self.failed_output += other.failed_output;
        self.failed_window += other.failed_window;
    }
}

/// The circuit state of one router: one entry table per input port plus the
/// conflict rules of the configured [`CircuitMode`].
///
/// # Examples
///
/// ```
/// use rcsim_core::circuit::{CircuitKey, ReserveRequest, RouterCircuits};
/// use rcsim_core::config::CircuitMode;
/// use rcsim_core::topology::{PORT_EAST, PORT_WEST};
/// use rcsim_core::types::NodeId;
///
/// let mut rc = RouterCircuits::new(CircuitMode::Complete, 5, 1);
/// let req = ReserveRequest {
///     key: CircuitKey { requestor: NodeId(0), block: 0x80 },
///     source: NodeId(9),
///     in_port: PORT_EAST,
///     out_port: PORT_WEST,
///     window: None,
///     max_extra_shift: 0,
/// };
/// rc.try_reserve(&req)?;
/// assert!(rc.lookup(PORT_EAST, req.key).is_some());
/// # Ok::<(), rcsim_core::circuit::ReserveError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterCircuits {
    mode: CircuitMode,
    capacity: usize,
    circuit_vcs: usize,
    ports: Vec<Vec<CircuitEntry>>,
    stats: TableStats,
    /// Internal clock, advanced by the owner via [`Self::note_now`]; used
    /// only to stamp entries for leak detection, so callers that never
    /// advance it (unit tests, standalone use) see identical behaviour.
    #[serde(default)]
    now: Cycle,
}

impl RouterCircuits {
    /// Creates the circuit state for one router.
    ///
    /// `capacity` is the number of simultaneous circuits per input port
    /// (ignored in `Ideal` mode) and `circuit_vcs` the number of
    /// circuit-class VCs (used by fragmented output accounting). The
    /// router has the classic 5 ports (4 network + 1 local); radix-r
    /// topologies use [`Self::with_ports`].
    pub fn new(mode: CircuitMode, capacity: u8, circuit_vcs: usize) -> Self {
        Self::with_ports(mode, capacity, circuit_vcs, 5)
    }

    /// Like [`Self::new`] but for a router with `ports` input/output
    /// ports (e.g. a concentrated mesh has `4 + concentration`).
    pub fn with_ports(mode: CircuitMode, capacity: u8, circuit_vcs: usize, ports: usize) -> Self {
        Self {
            mode,
            capacity: capacity as usize,
            circuit_vcs: circuit_vcs.max(1),
            ports: vec![Vec::new(); ports],
            stats: TableStats::default(),
            now: 0,
        }
    }

    /// Advances the table's internal clock. Reservation entries written
    /// afterwards are stamped with this cycle, which is what
    /// [`Self::stale_entries`] measures ages against. Purely observational:
    /// no reservation decision depends on it.
    pub fn note_now(&mut self, now: Cycle) {
        self.now = self.now.max(now);
    }

    /// Entries older than `min_age` cycles as of the caller-supplied
    /// absolute cycle `now` that are not actively streaming a reply.
    /// Timed entries expire on their own; long-lived untimed entries with
    /// no in-flight owner are the signature of a leaked reservation (e.g.
    /// a reply lost to a fault after `begin_use`). Ages are measured
    /// against the caller's clock, not the internal one, so routers whose
    /// internal clock lags (an event-driven kernel skips idle routers)
    /// report the same ages as under a dense tick loop. Returns
    /// `(in_port, entry, age)` triples.
    pub fn stale_entries(&self, now: Cycle, min_age: Cycle) -> Vec<(usize, CircuitEntry, Cycle)> {
        let mut stale = Vec::new();
        for (p, entries) in self.ports.iter().enumerate() {
            for e in entries {
                let age = now.saturating_sub(e.reserved_at);
                if age >= min_age {
                    stale.push((p, *e, age));
                }
            }
        }
        stale
    }

    /// Fault injection: removes the `entry_idx`-th entry of input port
    /// `in_port` (if present), simulating a corrupted/forgotten table row.
    /// Returns the removed entry so the caller can account for the broken
    /// circuit.
    pub fn fault_remove(&mut self, in_port: usize, entry_idx: usize) -> Option<CircuitEntry> {
        let port = &mut self.ports[in_port];
        if entry_idx < port.len() {
            Some(port.remove(entry_idx))
        } else {
            None
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> CircuitMode {
        self.mode
    }

    /// Number of circuits currently reserved at an input port.
    pub fn occupancy(&self, in_port: usize) -> usize {
        self.ports[in_port].len()
    }

    /// Reservation / failure counters.
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// Zeroes the counters (e.g. after a warm-up phase), keeping the
    /// reserved circuits themselves.
    pub fn reset_stats(&mut self) {
        self.stats = TableStats::default();
    }

    /// Attempts to reserve a circuit, applying the mode's conflict rules.
    ///
    /// # Errors
    ///
    /// Returns the applicable [`ReserveError`]; the table is unchanged on
    /// failure. In fragmented mode a failure at this router does not undo
    /// reservations elsewhere; in complete mode the caller must undo the
    /// built prefix.
    pub fn try_reserve(&mut self, req: &ReserveRequest) -> Result<ReserveOutcome, ReserveError> {
        let result = self.check(req);
        match &result {
            Ok(outcome) => {
                let idx = self.ports[req.in_port].len().min(7);
                self.stats.reserved_at_index[idx] += 1;
                let window = req.window.map(|w| w.shifted(outcome.extra_shift as Cycle));
                self.ports[req.in_port].push(CircuitEntry {
                    key: req.key,
                    source: req.source,
                    out_port: req.out_port,
                    window,
                    vc: outcome.vc,
                    in_use: false,
                    undo_pending: false,
                    reserved_at: self.now,
                });
            }
            Err(e) => match e {
                ReserveError::NoStorage => self.stats.failed_storage += 1,
                ReserveError::SourceConflict => self.stats.failed_source += 1,
                ReserveError::OutputConflict => self.stats.failed_output += 1,
                ReserveError::WindowConflict => self.stats.failed_window += 1,
            },
        }
        result
    }

    fn check(&self, req: &ReserveRequest) -> Result<ReserveOutcome, ReserveError> {
        match self.mode {
            CircuitMode::None => Err(ReserveError::NoStorage),
            CircuitMode::Ideal => Ok(ReserveOutcome {
                index_in_port: self.ports[req.in_port].len(),
                extra_shift: 0,
                vc: 0,
            }),
            CircuitMode::Fragmented => self.check_fragmented(req),
            CircuitMode::Complete => match req.window {
                None => self.check_complete_untimed(req),
                Some(w) => self.check_complete_timed(req, w),
            },
        }
    }

    fn check_fragmented(&self, req: &ReserveRequest) -> Result<ReserveOutcome, ReserveError> {
        let port = &self.ports[req.in_port];
        if port.len() >= self.capacity {
            return Err(ReserveError::NoStorage);
        }
        // Each circuit occupies one circuit-class VC at its output port.
        let mut used = vec![false; self.circuit_vcs];
        for entries in &self.ports {
            for e in entries {
                if e.out_port == req.out_port {
                    if let Some(slot) = used.get_mut(e.vc as usize) {
                        *slot = true;
                    }
                }
            }
        }
        match used.iter().position(|u| !u) {
            Some(vc) => Ok(ReserveOutcome {
                index_in_port: port.len(),
                extra_shift: 0,
                vc: vc as u8,
            }),
            None => Err(ReserveError::OutputConflict),
        }
    }

    fn check_complete_untimed(&self, req: &ReserveRequest) -> Result<ReserveOutcome, ReserveError> {
        let port = &self.ports[req.in_port];
        if port.len() >= self.capacity {
            return Err(ReserveError::NoStorage);
        }
        if port.iter().any(|e| e.source != req.source) {
            return Err(ReserveError::SourceConflict);
        }
        for (p, entries) in self.ports.iter().enumerate() {
            if p == req.in_port {
                continue;
            }
            if entries.iter().any(|e| e.out_port == req.out_port) {
                return Err(ReserveError::OutputConflict);
            }
        }
        Ok(ReserveOutcome {
            index_in_port: port.len(),
            extra_shift: 0,
            vc: 0,
        })
    }

    /// Timed rules (§4.7): entries whose windows are disjoint never
    /// conflict; overlapping entries must satisfy the untimed rules. When
    /// the slot is occupied and `max_extra_shift > 0` (delay variant), the
    /// window slides right to the first free slot within budget.
    fn check_complete_timed(
        &self,
        req: &ReserveRequest,
        window: TimeWindow,
    ) -> Result<ReserveOutcome, ReserveError> {
        let port = &self.ports[req.in_port];
        if port.len() >= self.capacity {
            return Err(ReserveError::NoStorage);
        }
        let conflicts_with = |w: &TimeWindow, extra: Cycle| -> Option<Cycle> {
            // Returns the latest `end` among entries conflicting with the
            // shifted window, i.e. the earliest start that could clear them.
            let shifted = window.shifted(extra);
            let mut latest_end: Option<Cycle> = None;
            for (p, entries) in self.ports.iter().enumerate() {
                for e in entries {
                    let Some(ew) = e.window else { continue };
                    if !ew.overlaps(&shifted) {
                        continue;
                    }
                    let clashes = if p == req.in_port {
                        e.source != req.source
                    } else {
                        e.out_port == req.out_port
                    };
                    if clashes {
                        latest_end = Some(latest_end.map_or(ew.end, |le: Cycle| le.max(ew.end)));
                    }
                }
            }
            let _ = w;
            latest_end
        };

        let mut extra: Cycle = 0;
        // Sliding can cascade into later reservations; bound the loop by the
        // number of entries that could possibly conflict.
        let max_iters = self.ports.iter().map(Vec::len).sum::<usize>() + 1;
        for _ in 0..max_iters {
            match conflicts_with(&window, extra) {
                None => {
                    return Ok(ReserveOutcome {
                        index_in_port: port.len(),
                        extra_shift: extra as u32,
                        vc: 0,
                    });
                }
                Some(latest_end) => {
                    let needed = latest_end.saturating_sub(window.start);
                    if needed > req.max_extra_shift as Cycle {
                        return Err(ReserveError::WindowConflict);
                    }
                    extra = needed;
                }
            }
        }
        Err(ReserveError::WindowConflict)
    }

    /// Finds the circuit for `key` arriving on `in_port`.
    pub fn lookup(&self, in_port: usize, key: CircuitKey) -> Option<&CircuitEntry> {
        self.ports[in_port].iter().find(|e| e.key == key)
    }

    /// Marks the circuit as actively streaming (reply head arrived), so it
    /// cannot expire mid-message.
    pub fn begin_use(&mut self, in_port: usize, key: CircuitKey) -> bool {
        match self.ports[in_port].iter_mut().find(|e| e.key == key) {
            Some(e) => {
                e.in_use = true;
                true
            }
            None => false,
        }
    }

    /// Releases the circuit after the reply's tail flit leaves (§4.3: the
    /// tail clears the built-circuit bit). Returns the removed entry.
    pub fn release(&mut self, in_port: usize, key: CircuitKey) -> Option<CircuitEntry> {
        let port = &mut self.ports[in_port];
        let idx = port.iter().position(|e| e.key == key)?;
        Some(port.remove(idx))
    }

    /// Undoes a circuit before use (§4.4), searching every input port.
    /// Returns the removed entry so the caller can forward the undo towards
    /// the circuit destination through `entry.out_port`. An entry that is
    /// actively streaming (a borrowed circuit) is marked instead; it is
    /// removed — and the undo resumed — when its tail passes ([`Self::end_use`]).
    pub fn undo(&mut self, key: CircuitKey) -> Option<CircuitEntry> {
        for port in &mut self.ports {
            if let Some(idx) = port.iter().position(|e| e.key == key) {
                if port[idx].in_use {
                    port[idx].undo_pending = true;
                    return None;
                }
                return Some(port.remove(idx));
            }
        }
        None
    }

    /// Ends a borrowing reply's streaming without releasing the circuit
    /// (scrounger borrow mode). If an undo arrived mid-stream the entry is
    /// removed and returned so the undo can resume its propagation.
    pub fn end_use(&mut self, in_port: usize, key: CircuitKey) -> Option<CircuitEntry> {
        let port = &mut self.ports[in_port];
        let idx = port.iter().position(|e| e.key == key)?;
        if port[idx].undo_pending {
            return Some(port.remove(idx));
        }
        port[idx].in_use = false;
        None
    }

    /// Drops timed entries whose window has passed (frees table capacity —
    /// one reason timed circuits can build more). Entries in use survive.
    /// Returns how many entries expired.
    pub fn expire(&mut self, now: Cycle) -> usize {
        let mut expired = 0;
        for port in &mut self.ports {
            port.retain(|e| {
                let dead = !e.in_use && e.window.is_some_and(|w| w.end <= now);
                expired += dead as usize;
                !dead
            });
        }
        expired
    }

    /// The earliest `window.end` among entries not actively in use — the
    /// next cycle at which [`Self::expire`] could remove something.
    /// `None` when no expirable entry exists. Lets an event-driven kernel
    /// schedule the wake-up for a sleeping router's timed expiries.
    pub fn next_expiry(&self) -> Option<Cycle> {
        self.ports
            .iter()
            .flatten()
            .filter(|e| !e.in_use)
            .filter_map(|e| e.window.map(|w| w.end))
            .min()
    }

    /// Total number of reserved circuits at this router.
    pub fn total_entries(&self) -> usize {
        self.ports.iter().map(Vec::len).sum()
    }

    /// Number of reserved circuits at one input port (used by fault
    /// injection to pick a victim for [`Self::fault_remove`]).
    pub fn port_occupancy(&self, in_port: usize) -> usize {
        self.ports[in_port].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{PORT_EAST, PORT_NORTH, PORT_SOUTH, PORT_WEST};

    fn key(requestor: u16, block: u64) -> CircuitKey {
        CircuitKey {
            requestor: NodeId(requestor),
            block,
        }
    }

    fn req(k: CircuitKey, source: u16, in_port: usize, out_port: usize) -> ReserveRequest {
        ReserveRequest {
            key: k,
            source: NodeId(source),
            in_port,
            out_port,
            window: None,
            max_extra_shift: 0,
        }
    }

    fn timed_req(
        k: CircuitKey,
        source: u16,
        in_port: usize,
        out_port: usize,
        window: TimeWindow,
        max_extra_shift: u32,
    ) -> ReserveRequest {
        ReserveRequest {
            window: Some(window),
            max_extra_shift,
            ..req(k, source, in_port, out_port)
        }
    }

    #[test]
    fn complete_reserve_and_lookup() {
        let mut rc = RouterCircuits::new(CircuitMode::Complete, 5, 1);
        let k = key(1, 0x40);
        rc.try_reserve(&req(k, 9, PORT_EAST, PORT_WEST)).unwrap();
        assert!(rc.lookup(PORT_EAST, k).is_some());
        assert!(rc.lookup(PORT_WEST, k).is_none());
        assert_eq!(rc.occupancy(PORT_EAST), 1);
    }

    #[test]
    fn complete_same_source_shares_input_port() {
        let mut rc = RouterCircuits::new(CircuitMode::Complete, 5, 1);
        for b in 0..5u64 {
            rc.try_reserve(&req(key(b as u16, b * 64), 9, PORT_EAST, PORT_WEST))
                .unwrap();
        }
        assert_eq!(rc.occupancy(PORT_EAST), 5);
        // Sixth fails: storage.
        let e = rc
            .try_reserve(&req(key(7, 999), 9, PORT_EAST, PORT_WEST))
            .unwrap_err();
        assert_eq!(e, ReserveError::NoStorage);
        assert_eq!(rc.stats().failed_storage, 1);
    }

    #[test]
    fn complete_different_source_same_input_rejected() {
        let mut rc = RouterCircuits::new(CircuitMode::Complete, 5, 1);
        rc.try_reserve(&req(key(1, 0), 9, PORT_EAST, PORT_WEST))
            .unwrap();
        let e = rc
            .try_reserve(&req(key(2, 64), 10, PORT_EAST, PORT_NORTH))
            .unwrap_err();
        assert_eq!(e, ReserveError::SourceConflict);
    }

    #[test]
    fn complete_output_conflict_across_inputs() {
        // The Figure 4b situation: two circuits with different inputs and
        // the same output cannot coexist.
        let mut rc = RouterCircuits::new(CircuitMode::Complete, 5, 1);
        rc.try_reserve(&req(key(1, 0), 9, PORT_EAST, PORT_WEST))
            .unwrap();
        let e = rc
            .try_reserve(&req(key(2, 64), 10, PORT_SOUTH, PORT_WEST))
            .unwrap_err();
        assert_eq!(e, ReserveError::OutputConflict);
        // A different output from another input is fine.
        rc.try_reserve(&req(key(3, 128), 10, PORT_SOUTH, PORT_NORTH))
            .unwrap();
    }

    #[test]
    fn table5_occupancy_indices() {
        let mut rc = RouterCircuits::new(CircuitMode::Complete, 5, 1);
        for b in 0..3u64 {
            rc.try_reserve(&req(key(b as u16, b), 9, PORT_EAST, PORT_WEST))
                .unwrap();
        }
        assert_eq!(rc.stats().reserved_at_index[..3], [1, 1, 1]);
        assert_eq!(rc.stats().total_reserved(), 3);
    }

    #[test]
    fn release_frees_entry() {
        let mut rc = RouterCircuits::new(CircuitMode::Complete, 1, 1);
        let k = key(1, 0);
        rc.try_reserve(&req(k, 9, PORT_EAST, PORT_WEST)).unwrap();
        assert!(rc.release(PORT_EAST, k).is_some());
        assert!(rc.release(PORT_EAST, k).is_none());
        // Capacity freed.
        rc.try_reserve(&req(key(2, 64), 9, PORT_EAST, PORT_WEST))
            .unwrap();
    }

    #[test]
    fn undo_searches_all_ports_and_returns_route() {
        let mut rc = RouterCircuits::new(CircuitMode::Complete, 5, 1);
        let k = key(1, 0);
        rc.try_reserve(&req(k, 9, PORT_SOUTH, PORT_NORTH)).unwrap();
        let e = rc.undo(k).expect("undo finds the entry");
        assert_eq!(e.out_port, PORT_NORTH);
        assert_eq!(rc.total_entries(), 0);
        assert!(rc.undo(k).is_none());
    }

    #[test]
    fn in_use_entries_resist_undo_and_expiry() {
        let mut rc = RouterCircuits::new(CircuitMode::Complete, 5, 1);
        let k = key(1, 0);
        let w = TimeWindow::new(10, 20);
        rc.try_reserve(&timed_req(k, 9, PORT_EAST, PORT_WEST, w, 0))
            .unwrap();
        assert!(rc.begin_use(PORT_EAST, k));
        assert!(rc.undo(k).is_none(), "in-use circuits cannot be undone");
        assert_eq!(rc.expire(100), 0, "in-use circuits cannot expire");
        assert!(rc.release(PORT_EAST, k).is_some());
    }

    #[test]
    fn fragmented_output_vcs_limit_circuits() {
        let mut rc = RouterCircuits::new(CircuitMode::Fragmented, 2, 2);
        // Two circuits to the same output from different inputs: occupy the
        // two circuit VCs.
        let a = rc
            .try_reserve(&req(key(1, 0), 9, PORT_EAST, PORT_WEST))
            .unwrap();
        let b = rc
            .try_reserve(&req(key(2, 64), 10, PORT_SOUTH, PORT_WEST))
            .unwrap();
        assert_ne!(a.vc, b.vc);
        // Third to the same output fails even from a third input.
        let e = rc
            .try_reserve(&req(key(3, 128), 11, PORT_NORTH, PORT_WEST))
            .unwrap_err();
        assert_eq!(e, ReserveError::OutputConflict);
        // But a different output is fine.
        rc.try_reserve(&req(key(4, 192), 11, PORT_NORTH, PORT_SOUTH))
            .unwrap();
    }

    #[test]
    fn fragmented_per_input_capacity() {
        let mut rc = RouterCircuits::new(CircuitMode::Fragmented, 2, 2);
        rc.try_reserve(&req(key(1, 0), 9, PORT_EAST, PORT_WEST))
            .unwrap();
        rc.try_reserve(&req(key(2, 64), 10, PORT_EAST, PORT_NORTH))
            .unwrap();
        let e = rc
            .try_reserve(&req(key(3, 128), 11, PORT_EAST, PORT_SOUTH))
            .unwrap_err();
        assert_eq!(e, ReserveError::NoStorage);
    }

    #[test]
    fn fragmented_ignores_source_rule() {
        let mut rc = RouterCircuits::new(CircuitMode::Fragmented, 2, 2);
        rc.try_reserve(&req(key(1, 0), 9, PORT_EAST, PORT_WEST))
            .unwrap();
        // Different source, same input: fine for fragmented (buffers exist).
        rc.try_reserve(&req(key(2, 64), 10, PORT_EAST, PORT_NORTH))
            .unwrap();
    }

    #[test]
    fn ideal_never_fails() {
        let mut rc = RouterCircuits::new(CircuitMode::Ideal, 1, 1);
        for b in 0..100u64 {
            rc.try_reserve(&req(key(b as u16, b), (b % 7) as u16, PORT_EAST, PORT_WEST))
                .unwrap();
        }
        assert_eq!(rc.total_entries(), 100);
        assert_eq!(rc.stats().total_failed(), 0);
    }

    #[test]
    fn none_mode_rejects_everything() {
        let mut rc = RouterCircuits::new(CircuitMode::None, 0, 0);
        assert!(rc
            .try_reserve(&req(key(1, 0), 9, PORT_EAST, PORT_WEST))
            .is_err());
    }

    #[test]
    fn timed_disjoint_windows_share_output() {
        // The whole point of timed circuits: different inputs, same output,
        // non-conflicting slots.
        let mut rc = RouterCircuits::new(CircuitMode::Complete, 5, 1);
        let w1 = TimeWindow::new(10, 20);
        let w2 = TimeWindow::new(20, 30);
        rc.try_reserve(&timed_req(key(1, 0), 9, PORT_EAST, PORT_WEST, w1, 0))
            .unwrap();
        rc.try_reserve(&timed_req(key(2, 64), 10, PORT_SOUTH, PORT_WEST, w2, 0))
            .unwrap();
        assert_eq!(rc.total_entries(), 2);
    }

    #[test]
    fn timed_overlapping_windows_conflict() {
        let mut rc = RouterCircuits::new(CircuitMode::Complete, 5, 1);
        let w1 = TimeWindow::new(10, 20);
        let w2 = TimeWindow::new(15, 25);
        rc.try_reserve(&timed_req(key(1, 0), 9, PORT_EAST, PORT_WEST, w1, 0))
            .unwrap();
        let e = rc
            .try_reserve(&timed_req(key(2, 64), 10, PORT_SOUTH, PORT_WEST, w2, 0))
            .unwrap_err();
        assert_eq!(e, ReserveError::WindowConflict);
    }

    #[test]
    fn timed_same_input_different_source_overlap_conflicts() {
        let mut rc = RouterCircuits::new(CircuitMode::Complete, 5, 1);
        let w = TimeWindow::new(10, 20);
        rc.try_reserve(&timed_req(key(1, 0), 9, PORT_EAST, PORT_WEST, w, 0))
            .unwrap();
        let e = rc
            .try_reserve(&timed_req(key(2, 64), 10, PORT_EAST, PORT_NORTH, w, 0))
            .unwrap_err();
        assert_eq!(e, ReserveError::WindowConflict);
        // Disjoint windows make it legal.
        rc.try_reserve(&timed_req(
            key(3, 128),
            10,
            PORT_EAST,
            PORT_NORTH,
            TimeWindow::new(30, 40),
            0,
        ))
        .unwrap();
    }

    #[test]
    fn delay_variant_slides_window() {
        let mut rc = RouterCircuits::new(CircuitMode::Complete, 5, 1);
        rc.try_reserve(&timed_req(
            key(1, 0),
            9,
            PORT_EAST,
            PORT_WEST,
            TimeWindow::new(10, 20),
            0,
        ))
        .unwrap();
        // Conflicting slot, but allowed to slide by up to 15 cycles.
        let out = rc
            .try_reserve(&timed_req(
                key(2, 64),
                10,
                PORT_SOUTH,
                PORT_WEST,
                TimeWindow::new(12, 22),
                15,
            ))
            .unwrap();
        assert_eq!(out.extra_shift, 8); // slides to start at 20
        let e = rc.lookup(PORT_SOUTH, key(2, 64)).unwrap();
        assert_eq!(e.window, Some(TimeWindow::new(20, 30)));
    }

    #[test]
    fn delay_variant_respects_budget() {
        let mut rc = RouterCircuits::new(CircuitMode::Complete, 5, 1);
        rc.try_reserve(&timed_req(
            key(1, 0),
            9,
            PORT_EAST,
            PORT_WEST,
            TimeWindow::new(10, 30),
            0,
        ))
        .unwrap();
        let e = rc
            .try_reserve(&timed_req(
                key(2, 64),
                10,
                PORT_SOUTH,
                PORT_WEST,
                TimeWindow::new(12, 22),
                5, // needs 18, only 5 allowed
            ))
            .unwrap_err();
        assert_eq!(e, ReserveError::WindowConflict);
    }

    #[test]
    fn delay_slides_across_consecutive_reservations() {
        let mut rc = RouterCircuits::new(CircuitMode::Complete, 5, 1);
        rc.try_reserve(&timed_req(
            key(1, 0),
            9,
            PORT_EAST,
            PORT_WEST,
            TimeWindow::new(10, 20),
            0,
        ))
        .unwrap();
        rc.try_reserve(&timed_req(
            key(2, 64),
            10,
            PORT_SOUTH,
            PORT_WEST,
            TimeWindow::new(20, 30),
            0,
        ))
        .unwrap();
        // Must cascade past both reservations.
        let out = rc
            .try_reserve(&timed_req(
                key(3, 128),
                11,
                PORT_NORTH,
                PORT_WEST,
                TimeWindow::new(11, 21),
                30,
            ))
            .unwrap();
        assert_eq!(out.extra_shift, 19); // starts at 30
    }

    #[test]
    fn expire_frees_capacity() {
        let mut rc = RouterCircuits::new(CircuitMode::Complete, 1, 1);
        rc.try_reserve(&timed_req(
            key(1, 0),
            9,
            PORT_EAST,
            PORT_WEST,
            TimeWindow::new(10, 20),
            0,
        ))
        .unwrap();
        assert_eq!(rc.expire(15), 0, "window not yet over");
        assert_eq!(rc.expire(20), 1);
        assert_eq!(rc.total_entries(), 0);
        // Capacity is free again.
        rc.try_reserve(&timed_req(
            key(2, 64),
            9,
            PORT_EAST,
            PORT_WEST,
            TimeWindow::new(30, 40),
            0,
        ))
        .unwrap();
    }

    #[test]
    fn stale_entries_report_age_and_skip_young() {
        let mut rc = RouterCircuits::new(CircuitMode::Complete, 5, 1);
        rc.note_now(100);
        rc.try_reserve(&req(key(1, 0), 9, PORT_EAST, PORT_WEST))
            .unwrap();
        rc.note_now(150);
        rc.try_reserve(&req(key(2, 64), 9, PORT_EAST, PORT_NORTH))
            .unwrap();
        // Ages are measured against the caller's absolute clock, so a
        // table whose internal clock stopped advancing (idle router under
        // the event kernel) reports the same ages.
        let stale = rc.stale_entries(400, 280);
        assert_eq!(stale.len(), 1, "only the 300-cycle-old entry is stale");
        let (port, entry, age) = stale[0];
        assert_eq!(port, PORT_EAST);
        assert_eq!(entry.key, key(1, 0));
        assert_eq!(age, 300);
        assert!(rc.stale_entries(400, 0).len() == 2);
    }

    #[test]
    fn next_expiry_tracks_earliest_idle_window() {
        let mut rc = RouterCircuits::new(CircuitMode::Complete, 5, 1);
        assert_eq!(rc.next_expiry(), None, "empty table never expires");
        rc.try_reserve(&timed_req(
            key(1, 0),
            9,
            PORT_EAST,
            PORT_WEST,
            TimeWindow::new(10, 20),
            0,
        ))
        .unwrap();
        rc.try_reserve(&timed_req(
            key(2, 64),
            9,
            PORT_EAST,
            PORT_NORTH,
            TimeWindow::new(30, 44),
            0,
        ))
        .unwrap();
        assert_eq!(rc.next_expiry(), Some(20));
        // An entry streaming a reply is never expired, so it must not
        // drive the wake-up either.
        rc.begin_use(PORT_EAST, key(1, 0));
        assert_eq!(rc.next_expiry(), Some(44));
        rc.end_use(PORT_EAST, key(1, 0));
        assert_eq!(rc.expire(20), 1);
        assert_eq!(rc.next_expiry(), Some(44));
    }

    #[test]
    fn fault_remove_deletes_one_entry() {
        let mut rc = RouterCircuits::new(CircuitMode::Complete, 5, 1);
        let k = key(1, 0);
        rc.try_reserve(&req(k, 9, PORT_EAST, PORT_WEST)).unwrap();
        assert!(rc.fault_remove(PORT_WEST, 0).is_none(), "wrong port");
        assert!(
            rc.fault_remove(PORT_EAST, 3).is_none(),
            "index out of range"
        );
        let removed = rc.fault_remove(PORT_EAST, 0).expect("entry removed");
        assert_eq!(removed.key, k);
        assert_eq!(rc.total_entries(), 0);
    }

    #[test]
    fn stats_merge() {
        let mut a = TableStats::default();
        a.reserved_at_index[0] = 3;
        a.failed_output = 1;
        let mut b = TableStats::default();
        b.reserved_at_index[0] = 2;
        b.reserved_at_index[1] = 4;
        b.failed_storage = 5;
        a.merge(&b);
        assert_eq!(a.reserved_at_index[0], 5);
        assert_eq!(a.reserved_at_index[1], 4);
        assert_eq!(a.total_failed(), 6);
    }
}
