//! Ablations beyond the paper's main grid (DESIGN.md §8):
//!
//! 1. circuits-per-input sweep (the paper picks 5 experimentally, §4.2);
//! 2. keep vs undo circuits on L2 miss (§4.4 says keeping wins);
//! 3. slack sweep (the non-monotone trade-off of §5.2);
//! 4. load sweep with synthetic traffic — where circuits stop helping
//!    (§5.5's congestion threshold).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rcsim_bench::{
    bench_row, measure_cycles, run_points, save_bench_summary, save_json, warmup_cycles, BenchRow,
    BenchSummary, PointSpec,
};
use rcsim_core::circuit::CircuitKey;
use rcsim_core::{MechanismConfig, Mesh, MessageClass, NodeId};
use rcsim_noc::{MessageGroup, Network, NocConfig, PacketSpec};

fn app() -> String {
    std::env::var("RC_APPS")
        .ok()
        .and_then(|s| s.split(',').next().map(str::to_owned))
        .unwrap_or_else(|| "canneal".to_owned())
}

fn circuits_per_input_sweep(summary: &mut BenchSummary) {
    println!(
        "== circuits per input port (Complete_NoAck, 64 cores, '{}') ==",
        app()
    );
    println!(
        "{:>9} {:>10} {:>10} {:>12}",
        "entries", "circuit%", "failed%", "storage-fail"
    );
    let entries_sweep = [1u8, 2, 3, 5, 8];
    let specs: Vec<PointSpec> = entries_sweep
        .iter()
        .map(|&entries| {
            let mut mechanism = MechanismConfig::complete_noack();
            mechanism.max_circuits_per_input = entries;
            PointSpec::new(64, mechanism, &app(), 1)
        })
        .collect();
    let runs = run_points(&specs);
    let mut rows = Vec::new();
    for (&entries, r) in entries_sweep.iter().zip(&runs) {
        println!(
            "{:>9} {:>9.1}% {:>9.1}% {:>12}",
            entries,
            100.0 * r.outcomes["circuit"],
            100.0 * r.outcomes["failed"],
            r.reservation_failures[0],
        );
        let mut row = bench_row(&format!("entries_{entries}"), 64, std::slice::from_ref(r));
        row.extra
            .insert("storage_failures".into(), r.reservation_failures[0] as f64);
        summary.push(row);
        rows.push((entries, r.outcomes["circuit"], r.reservation_failures[0]));
    }
    println!("(the paper settles on 5: enough entries that storage failures vanish)\n");
    save_json("ablation_entries", &rows);
}

fn undo_on_l2_miss(summary: &mut BenchSummary) {
    println!(
        "== keep vs undo circuits on L2 miss (§4.4, 64 cores, '{}') ==",
        app()
    );
    let mut undo_mech = MechanismConfig::complete_noack();
    undo_mech.undo_on_l2_miss = true;
    let specs = [
        PointSpec::new(64, MechanismConfig::baseline(), &app(), 1),
        PointSpec::new(64, MechanismConfig::complete_noack(), &app(), 1),
        PointSpec::new(64, undo_mech, &app(), 1),
    ];
    let runs = run_points(&specs);
    let (base, keep, undo) = (&runs[0], &runs[1], &runs[2]);
    println!(
        "  keep built: speedup {:.3}, circuit {:.1}%",
        keep.speedup_over(base),
        100.0 * keep.outcomes["circuit"]
    );
    println!(
        "  undo at miss: speedup {:.3}, circuit {:.1}%, undone {:.1}%",
        undo.speedup_over(base),
        100.0 * undo.outcomes["circuit"],
        100.0 * undo.outcomes["undone"]
    );
    for (label, r) in [("l2miss_keep", keep), ("l2miss_undo", undo)] {
        let mut row = bench_row(label, 64, std::slice::from_ref(r));
        row.extra.insert("speedup".into(), r.speedup_over(base));
        summary.push(row);
    }
    println!("(the paper found keeping them performs better)\n");
}

fn scrounger_modes(summary: &mut BenchSummary) {
    println!("== scrounger semantics (64 cores, '{}') ==", app());
    let modes = [
        ("no reuse", MechanismConfig::complete_noack()),
        ("consume", MechanismConfig::reuse_noack()),
        ("borrow", MechanismConfig::reuse_borrow_noack()),
    ];
    let mut specs = vec![PointSpec::new(64, MechanismConfig::baseline(), &app(), 1)];
    specs.extend(
        modes
            .iter()
            .map(|(_, mechanism)| PointSpec::new(64, *mechanism, &app(), 1)),
    );
    let runs = run_points(&specs);
    let base = &runs[0];
    for ((name, _), r) in modes.iter().zip(&runs[1..]) {
        println!(
            "  {:<9} speedup {:.3}, circuit {:>4.1}%, scrounger {:>4.1}%, failed {:>4.1}%",
            name,
            r.speedup_over(base),
            100.0 * r.outcomes["circuit"],
            100.0 * r.outcomes["scrounger"],
            100.0 * r.outcomes["failed"],
        );
        let mut row = bench_row(
            &format!("scrounger_{}", name.replace(' ', "_")),
            64,
            std::slice::from_ref(r),
        );
        row.extra.insert("speedup".into(), r.speedup_over(base));
        row.extra
            .insert("scrounger_frac".into(), r.outcomes["scrounger"]);
        summary.push(row);
    }
    println!("(the paper leaves the borrow-vs-consume choice open; borrowing keeps");
    println!(" the circuit alive for its own reply, consuming steals it)\n");
}

fn slack_sweep(summary: &mut BenchSummary) {
    println!("== slack sweep (timed circuits, 64 cores, '{}') ==", app());
    println!(
        "{:>7} {:>10} {:>10} {:>10}",
        "slack", "circuit%", "failed%", "undone%"
    );
    let slacks = [0u32, 1, 2, 4, 8];
    let specs: Vec<PointSpec> = slacks
        .iter()
        .map(|&k| {
            let mechanism = if k == 0 {
                MechanismConfig::timed_noack()
            } else {
                MechanismConfig::slack(k)
            };
            PointSpec::new(64, mechanism, &app(), 1)
        })
        .collect();
    let runs = run_points(&specs);
    let mut rows = Vec::new();
    for (&k, r) in slacks.iter().zip(&runs) {
        println!(
            "{:>7} {:>9.1}% {:>9.1}% {:>9.1}%",
            k,
            100.0 * r.outcomes["circuit"],
            100.0 * r.outcomes["failed"],
            100.0 * r.outcomes["undone"],
        );
        let mut row = bench_row(&format!("slack_{k}"), 64, std::slice::from_ref(r));
        row.extra.insert("undone_frac".into(), r.outcomes["undone"]);
        summary.push(row);
        rows.push((k, r.outcomes["circuit"]));
    }
    println!("(small slack loses to delays; large slack re-creates conflicts)\n");
    save_json("ablation_slack", &rows);
}

/// Network-only load sweep: circuit-reply latency gain vs injection rate.
/// Synthetic points drive `Network` directly (no `SimConfig`), so this
/// sweep stays serial rather than going through the sweep runner.
fn load_threshold(summary: &mut BenchSummary) {
    println!("== congestion threshold (synthetic request/reply, 8x8) ==");
    println!(
        "{:>9} {:>12} {:>12} {:>9}",
        "rate", "baseline", "complete", "gain"
    );
    let mut rows = Vec::new();
    for rate in [0.005, 0.01, 0.02, 0.05, 0.1] {
        let lat = |mechanism: MechanismConfig| -> f64 {
            let mesh = Mesh::new(8, 8).expect("valid mesh");
            let mut net = Network::new(NocConfig::paper_baseline(mesh, mechanism)).expect("valid");
            let gen = rcsim_noc::traffic::Generator::uniform(rate);
            let mut rng = StdRng::seed_from_u64(7);
            let mut block = 0;
            for _ in 0..4_000 {
                gen.step(&mut net, &mut rng, &mut block);
                net.tick();
                for (node, d) in net.take_all_delivered() {
                    if d.class == MessageClass::L1Request {
                        let key = CircuitKey {
                            requestor: d.src,
                            block: d.block,
                        };
                        net.inject(
                            PacketSpec::new(node, d.src, MessageClass::L2Reply)
                                .with_block(d.block)
                                .with_circuit_key(key),
                        );
                    }
                }
            }
            net.stats()
                .network_latency
                .get(&MessageGroup::CircuitRep)
                .map_or(0.0, |a| a.mean())
        };
        let b = lat(MechanismConfig::baseline());
        let c = lat(MechanismConfig::complete());
        println!(
            "{:>9.3} {:>12.1} {:>12.1} {:>8.1}%",
            rate,
            b,
            c,
            100.0 * (b - c) / b
        );
        // Synthetic network-only points: no RunResult exists, so the row
        // carries the circuit-reply latency directly.
        summary.push(BenchRow {
            label: format!("load_{rate}"),
            cores: 64,
            topology: "mesh".to_owned(),
            avg_latency: c,
            p99_latency: 0.0,
            p999_latency: 0.0,
            circuit_hit_rate: 0.0,
            extra: [
                ("baseline_latency".to_owned(), b),
                ("rate".to_owned(), rate),
            ]
            .into_iter()
            .collect(),
        });
        rows.push((rate, b, c));
    }
    println!("(gains shrink as conflicts prevent circuit construction — §5.5)\n");
    save_json("ablation_load", &rows);
}

fn main() {
    println!(
        "Ablations (RC_CYCLES={}, RC_WARMUP={})\n",
        measure_cycles(),
        warmup_cycles()
    );
    let mut summary = BenchSummary::new("ablations");
    circuits_per_input_sweep(&mut summary);
    undo_on_l2_miss(&mut summary);
    scrounger_modes(&mut summary);
    slack_sweep(&mut summary);
    load_threshold(&mut summary);
    save_bench_summary(&mut summary);
    let _ = NodeId(0);
}
