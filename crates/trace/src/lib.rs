//! `rcsim-trace`: zero-cost event tracing and telemetry for the reactive
//! circuits simulator.
//!
//! The crate is a small, dependency-light layer the rest of the workspace
//! instruments against:
//!
//! - [`TraceSink`] — the handle components emit into. The default
//!   [`TraceSink::Disabled`] makes every `emit` a no-op whose event
//!   constructor never runs; compiling without the `hooks` feature removes
//!   even the branch.
//! - [`TraceEvent`] / [`EventKind`] — cycle-stamped events covering the
//!   NI packet lifecycle, router pipeline stages, circuit-table
//!   transitions, cache activity, and periodic occupancy samples.
//! - [`RingLog`] — the bounded ring the sink writes into; the newest N
//!   events survive and overwrites are counted.
//! - [`LatencyBreakdown`] — a post-pass matching packet and circuit
//!   lifecycles back together into per-phase latency histograms
//!   (queueing, circuit setup, circuit/packet/degraded transit).
//! - [`MetricsRegistry`] — name-keyed counters and gauges.
//! - [`chrome_trace`] — export to the Chrome trace-event JSON format that
//!   Perfetto opens directly.
//! - [`BenchSummary`] — the machine-readable `BENCH_<name>.json` document
//!   every bench bin writes, with a schema validator for CI.
//!
//! The crate sits *below* the simulator crates (its only workspace
//! dependency is `rcsim-stats`), so NoC, protocol and system layers can
//! all emit into one shared sink.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bench;
mod breakdown;
mod chrome;
mod event;
mod metrics;
mod ring;
mod sink;

pub use bench::{BenchRow, BenchSummary, BENCH_SCHEMA_VERSION};
pub use breakdown::LatencyBreakdown;
pub use chrome::{chrome_trace, chrome_trace_json};
pub use event::{EventKind, PortableEvent, PortableKind, TraceEvent};
pub use metrics::MetricsRegistry;
pub use ring::RingLog;
pub use sink::TraceSink;
