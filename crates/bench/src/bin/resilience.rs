//! Resilience — degradation curves under permanent topology faults:
//! dead-link count × mechanism, measuring latency degradation, reroute /
//! circuit-teardown / reissue activity, and asserting that no coherence
//! request is ever abandoned (DESIGN.md §10).
//!
//! Writes `target/experiments/BENCH_resilience.json` (validated by
//! `validate_bench`) plus raw rows in `resilience.json`.

use rcsim_bench::{
    bench_row, cores_list, experiment_apps, run_configs, save_bench_summary, save_json, seeds,
    BenchSummary, PointSpec,
};
use rcsim_core::{MechanismConfig, Mesh, NodeId};
use rcsim_noc::DeadLinkEvent;
use rcsim_system::SimConfig;

/// Deterministic interior horizontal links (never touching the mesh
/// edge), pairwise disjoint — the first `count` become permanently dead
/// at cycle 0. Row-major over interior rows, so one dead link sits in
/// the middle of the chip and the second in the next interior row.
fn interior_dead_links(cores: u16, count: usize) -> Vec<DeadLinkEvent> {
    let mesh = Mesh::square(cores)
        .or_else(|_| Mesh::near_square(cores))
        .expect("valid core count");
    let (w, h) = (mesh.width(), mesh.height());
    assert!(
        w >= 4 && h >= 4,
        "resilience sweep needs a 4x4 mesh or larger"
    );
    let mut candidates = Vec::new();
    for y in 1..h - 1 {
        for x in 1..w - 2 {
            let a = y * w + x;
            candidates.push((a, a + 1));
        }
    }
    assert!(
        count <= candidates.len(),
        "not enough interior links for {count} dead links"
    );
    candidates[..count]
        .iter()
        .map(|&(a, b)| DeadLinkEvent {
            a: NodeId(a),
            b: NodeId(b),
            at: 0,
            duration: None,
        })
        .collect()
}

/// The mechanisms whose degradation curves the sweep compares: the plain
/// wormhole baseline, the main circuit-building configurations, a timed
/// mechanism (exercises the timed-slot degradation path) and the ideal
/// upper bound.
fn mechanisms() -> Vec<MechanismConfig> {
    vec![
        MechanismConfig::baseline(),
        MechanismConfig::fragmented(),
        MechanismConfig::complete(),
        MechanismConfig::complete_noack(),
        MechanismConfig::timed_noack(),
        MechanismConfig::slack(2),
        MechanismConfig::ideal(),
    ]
}

const DEAD_COUNTS: [usize; 3] = [0, 1, 2];

fn main() {
    println!("Resilience — degradation under permanently dead links\n");
    println!("Each mechanism runs fault-free and with 1 or 2 interior links");
    println!("permanently dead from cycle 0. Requests detour around the dead");
    println!("region, replies retrace the recorded reverse path, circuits");
    println!("crossing the region are torn down, and lost messages are");
    println!("reissued — no request may ever be abandoned.\n");

    let cores = cores_list().into_iter().next().unwrap_or(16);
    let apps = experiment_apps();
    let seed_list = seeds();
    let per_point = apps.len() * seed_list.len();

    // One flat job list so RC_JOBS workers parallelize across the whole
    // (mechanism × dead-count × app × seed) grid.
    let mut jobs = Vec::new();
    for mechanism in mechanisms() {
        for &dead in &DEAD_COUNTS {
            for app in &apps {
                for &s in &seed_list {
                    let spec = PointSpec::new(cores, mechanism, app, s);
                    let mut cfg: SimConfig = spec.config();
                    cfg.faults.dead_links = interior_dead_links(cores, dead);
                    jobs.push((format!("{} dead={dead}", spec.label()), cfg));
                }
            }
        }
    }
    let all = run_configs(jobs);
    let mut chunks = all.chunks(per_point);

    let mut raw = Vec::new();
    let mut summary = BenchSummary::new("resilience");
    println!(
        "{:<22} {:>5} {:>10} {:>10} {:>9} {:>9} {:>9} {:>10}",
        "configuration", "dead", "avg_lat", "p99_lat", "reroutes", "torn", "reissues", "abandoned"
    );
    for mechanism in mechanisms() {
        let mut fault_free_avg = None;
        for &dead in &DEAD_COUNTS {
            let results = chunks.next().expect("grid-aligned result chunks");
            let mut reroutes = 0u64;
            let mut torn = 0u64;
            let mut reissues = 0u64;
            let mut abandoned = 0u64;
            for r in results {
                reroutes += r.health.faults.packets_rerouted;
                torn += r.health.faults.circuits_torn;
                reissues += r.health.l1_reissues;
                abandoned += r.health.faults.packets_abandoned;
                assert!(
                    !r.health.stalled,
                    "{} with {dead} dead links stalled",
                    mechanism.label()
                );
            }
            assert_eq!(
                abandoned,
                0,
                "{} with {dead} dead links abandoned coherence requests",
                mechanism.label()
            );
            if dead > 0 {
                assert!(
                    reroutes > 0,
                    "{} with {dead} dead links never rerouted — faults not exercised",
                    mechanism.label()
                );
            }
            let mut row = bench_row(&format!("{}/dead{dead}", mechanism.label()), cores, results);
            if dead == 0 {
                fault_free_avg = Some(row.avg_latency);
            }
            let degradation = match fault_free_avg {
                Some(base) if base > 0.0 => row.avg_latency / base,
                _ => 1.0,
            };
            println!(
                "{:<22} {:>5} {:>10.2} {:>10.2} {:>9} {:>9} {:>9} {:>10}",
                mechanism.label(),
                dead,
                row.avg_latency,
                row.p99_latency,
                reroutes,
                torn,
                reissues,
                abandoned
            );
            row.extra.insert("dead_links".to_owned(), dead as f64);
            row.extra.insert("reroutes".to_owned(), reroutes as f64);
            row.extra.insert("circuits_torn".to_owned(), torn as f64);
            row.extra.insert("l1_reissues".to_owned(), reissues as f64);
            row.extra
                .insert("latency_degradation".to_owned(), degradation);
            summary.push(row);
            raw.push((mechanism.label(), dead, reroutes, torn, reissues));
        }
    }
    println!("\nNo request was abandoned at any sweep point.");

    // Section 2: mid-run onset — the recovery machinery itself. One
    // interior link dies halfway through the measure window of a Complete
    // run, so circuits already cross it (teardown) and packets are in
    // flight on it (loss):
    //   noc_retry    — default end-to-end NoC retransmissions recover the
    //                  lost packets; nothing is abandoned.
    //   l1_reissue   — NoC retries disabled (max_retries = 0) on a lossy
    //                  fabric (the dead link alone only eats what is in
    //                  flight at onset, which can be nothing in a short
    //                  window), so the transport abandons every loss and
    //                  only the protocol-level L1 reissue can complete
    //                  the affected misses.
    println!("\n== mid-run fault onset: recovery paths (Complete, 1 dead link) ==");
    let mechanism = MechanismConfig::complete();
    let mut jobs = Vec::new();
    for retries in [true, false] {
        for app in &apps {
            for &s in &seed_list {
                let spec = PointSpec::new(cores, mechanism, app, s);
                let mut cfg: SimConfig = spec.config();
                let onset = cfg.warmup_cycles + cfg.measure_cycles / 2;
                cfg.faults.dead_links = interior_dead_links(cores, 1);
                cfg.faults.dead_links[0].at = onset;
                if !retries {
                    cfg.faults.max_retries = 0;
                    cfg.faults.link_drop_rate = 0.01;
                    cfg.faults.seed = 0xFA17;
                    // The default timeout is sized for multi-million-cycle
                    // runs; recovery must fit in the measure window here.
                    cfg.reissue_timeout = Some((cfg.measure_cycles / 4).max(250));
                }
                let tag = if retries { "noc_retry" } else { "l1_reissue" };
                jobs.push((format!("{} {tag}", spec.label()), cfg));
            }
        }
    }
    let all = run_configs(jobs);
    let mut chunks = all.chunks(per_point);
    println!(
        "{:<12} {:>10} {:>9} {:>9} {:>9} {:>10}",
        "recovery", "avg_lat", "torn", "retrans", "reissues", "abandoned"
    );
    for tag in ["noc_retry", "l1_reissue"] {
        let results = chunks.next().expect("two result chunks");
        let torn: u64 = results.iter().map(|r| r.health.faults.circuits_torn).sum();
        let retrans: u64 = results
            .iter()
            .map(|r| r.health.faults.retransmissions)
            .sum();
        let reissues: u64 = results.iter().map(|r| r.health.l1_reissues).sum();
        let abandoned: u64 = results
            .iter()
            .map(|r| r.health.faults.packets_abandoned)
            .sum();
        for r in results {
            assert!(!r.health.stalled, "recovery run stalled ({tag})");
        }
        if tag == "noc_retry" {
            assert_eq!(
                abandoned, 0,
                "NoC retries must recover every in-flight loss"
            );
        } else {
            assert!(
                reissues > 0,
                "with NoC retries disabled the L1 reissue path must fire"
            );
        }
        let mut row = bench_row(&format!("recovery/{tag}"), cores, results);
        println!(
            "{:<12} {:>10.2} {:>9} {:>9} {:>9} {:>10}",
            tag, row.avg_latency, torn, retrans, reissues, abandoned
        );
        row.extra.insert("circuits_torn".to_owned(), torn as f64);
        row.extra
            .insert("retransmissions".to_owned(), retrans as f64);
        row.extra.insert("l1_reissues".to_owned(), reissues as f64);
        row.extra.insert("abandoned".to_owned(), abandoned as f64);
        summary.push(row);
        raw.push((format!("recovery/{tag}"), 1, retrans, torn, reissues));
    }

    save_json("resilience", &raw);
    save_bench_summary(&mut summary);
}
