//! Figure 8 — network energy per configuration, normalized to the
//! baseline, with standard error across applications.

use rcsim_bench::{
    bench_row, cores_list, experiment_apps, run_points, save_bench_summary, save_json,
    BenchSummary, PointSpec,
};
use rcsim_core::MechanismConfig;
use rcsim_stats::Accumulator;

fn main() {
    println!("Figure 8 — normalized network energy (lower is better)\n");
    println!("Paper landmarks: Fragmented *increases* energy (extra VC);");
    println!("Complete_NoAck achieves the largest savings: -15.2% at 16 cores,");
    println!("-20.8% at 64 cores; timed variants save slightly less (timestamp");
    println!("storage cancels part of the buffer removal).\n");

    // Per-app baselines so each ratio is app-matched; one baseline per
    // (app, seed) keeps comparisons seed-paired. The whole grid — every
    // core count, the baselines, and every swept mechanism — goes to the
    // sweep runner as one submission-ordered job list.
    let points: Vec<(String, u64)> = experiment_apps()
        .iter()
        .flat_map(|app| {
            rcsim_bench::seeds()
                .into_iter()
                .map(move |s| (app.clone(), s))
        })
        .collect();
    // The paper excludes Ideal from Figure 8 (unbounded circuit storage
    // has no meaningful energy model).
    let swept: Vec<MechanismConfig> = MechanismConfig::key_configs()
        .into_iter()
        .filter(|m| *m != MechanismConfig::baseline() && *m != MechanismConfig::ideal())
        .collect();
    let mut specs = Vec::new();
    for cores in cores_list() {
        for (app, s) in &points {
            specs.push(PointSpec::new(cores, MechanismConfig::baseline(), app, *s));
        }
        for mechanism in &swept {
            for (app, s) in &points {
                specs.push(PointSpec::new(cores, *mechanism, app, *s));
            }
        }
    }
    let all = run_points(&specs);
    let per_cores = points.len() * (1 + swept.len());

    let mut raw = Vec::new();
    let mut summary = BenchSummary::new("fig8");
    for (ci, cores) in cores_list().into_iter().enumerate() {
        let block = &all[ci * per_cores..(ci + 1) * per_cores];
        let (baselines, rest) = block.split_at(points.len());
        let mut mech_chunks = rest.chunks(points.len());
        println!("== {cores} cores ==");
        println!("{:<22} {:>10} {:>9}", "configuration", "energy", "stderr");
        for mechanism in MechanismConfig::key_configs() {
            if mechanism == MechanismConfig::baseline() {
                println!("{:<22} {:>10.3} {:>9.3}", "Baseline", 1.0, 0.0);
                let mut row = bench_row("Baseline", cores, baselines);
                row.extra.insert("energy_ratio".into(), 1.0);
                summary.push(row);
                continue;
            }
            if mechanism == MechanismConfig::ideal() {
                continue;
            }
            let runs = mech_chunks.next().expect("grid-aligned result chunks");
            let mut acc = Accumulator::new();
            for (r, base) in runs.iter().zip(baselines) {
                acc.add(r.energy_ratio_over(base));
            }
            let mut row = bench_row(&mechanism.label(), cores, runs);
            row.extra.insert("energy_ratio".into(), acc.mean());
            row.extra.insert("stderr".into(), acc.std_err());
            summary.push(row);
            println!(
                "{:<22} {:>10.3} {:>9.3}  {}",
                mechanism.label(),
                acc.mean(),
                acc.std_err(),
                rcsim_bench::bar(1.0 - acc.mean(), 0.25, 30),
            );
            raw.push((cores, mechanism.label(), acc.mean(), acc.std_err()));
        }
        println!();
    }
    println!("paper reference: Complete_NoAck = 0.848 (16 cores), 0.792 (64 cores)");
    save_json("fig8", &raw);
    save_bench_summary(&mut summary);
}
