//! Property-based tests for the circuit-table invariants the paper's
//! mechanisms rely on (§4.2): per-input storage caps, the complete-mode
//! output-conflict rule, and clean tear-down under arbitrary interleavings
//! of reserve / release / undo / begin_use / end_use — plus, for the
//! topology subsystem, reservation/teardown symmetry along paths drawn
//! from torus, concentrated-mesh and ring routings.

use proptest::prelude::*;
use rcsim_core::circuit::{CircuitKey, ReserveError, ReserveRequest, RouterCircuits};
use rcsim_core::routing::Routing;
use rcsim_core::{CircuitMode, NodeId, Topology};
use std::collections::BTreeMap;

const PORTS: [usize; 5] = [0, 1, 2, 3, 4];

/// One step of a random table workout. Reservations are untimed so the
/// complete-mode conflict rules apply in their strictest form.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `(source, in_port index, out_port index)` — the key is derived from
    /// the op's position so every reservation has a unique identity.
    Reserve(u16, usize, usize),
    /// Target the `n`-th live circuit (modulo the live count).
    Release(usize),
    Undo(usize),
    BeginUse(usize),
    EndUse(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let reserve = || (0u16..4, 0usize..5, 0usize..5).prop_map(|(s, i, o)| Op::Reserve(s, i, o));
    prop_oneof![
        // The reserve branch is repeated to weight the mix towards
        // reservations, so tables actually fill up.
        reserve(),
        reserve(),
        reserve(),
        (0usize..16).prop_map(Op::Release),
        (0usize..16).prop_map(Op::Undo),
        (0usize..16).prop_map(Op::BeginUse),
        (0usize..16).prop_map(Op::EndUse),
    ]
}

/// What the test believes the table holds: key → (in_port, out_port,
/// source, in_use, undo_pending). Kept in sync op by op and cross-checked
/// against the table's own accounting after every step.
type Shadow = BTreeMap<u64, (usize, usize, NodeId, bool, bool)>;

fn nth_key(shadow: &Shadow, n: usize) -> Option<u64> {
    if shadow.is_empty() {
        return None;
    }
    shadow.keys().nth(n % shadow.len()).copied()
}

fn key(block: u64) -> CircuitKey {
    CircuitKey {
        requestor: NodeId((block % 97) as u16),
        block,
    }
}

/// Drives `ops` through a table, checking the mode's invariants after every
/// step, then tears everything down and requires an empty table.
fn workout(
    mode: CircuitMode,
    capacity: u8,
    circuit_vcs: usize,
    ops: &[Op],
) -> Result<(), TestCaseError> {
    let mut rc = RouterCircuits::new(mode, capacity, circuit_vcs);
    let mut shadow: Shadow = BTreeMap::new();

    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Reserve(source, in_idx, out_idx) => {
                let (in_port, out_port) = (PORTS[in_idx], PORTS[out_idx]);
                let block = i as u64 * 64;
                let req = ReserveRequest {
                    key: key(block),
                    source: NodeId(source),
                    in_port,
                    out_port,
                    window: None,
                    max_extra_shift: 0,
                };
                match rc.try_reserve(&req) {
                    Ok(_) => {
                        // The table accepted: the mode's conflict rules must
                        // have held *before* insertion.
                        prop_assert!(
                            shadow.values().filter(|e| e.0 == in_port).count() < capacity as usize,
                            "reservation accepted at a full input port"
                        );
                        if mode == CircuitMode::Complete {
                            prop_assert!(
                                !shadow.values().any(|e| e.0 != in_port && e.1 == out_port),
                                "two complete circuits with different input \
                                 ports share output {out_port:?}"
                            );
                            prop_assert!(
                                !shadow.values().any(|e| e.0 == in_port && e.2 != req.source),
                                "complete circuits at one input port must \
                                 share their source"
                            );
                        }
                        if mode == CircuitMode::Fragmented {
                            prop_assert!(
                                shadow.values().filter(|e| e.1 == out_port).count() < circuit_vcs,
                                "more fragmented circuits than circuit VCs \
                                 at output {out_port:?}"
                            );
                        }
                        shadow.insert(block, (in_port, out_port, req.source, false, false));
                    }
                    Err(ReserveError::NoStorage) => prop_assert_eq!(
                        shadow.values().filter(|e| e.0 == in_port).count(),
                        capacity as usize,
                        "NoStorage reported below the per-input cap"
                    ),
                    Err(_) => {}
                }
            }
            Op::Release(n) => {
                if let Some(block) = nth_key(&shadow, n) {
                    let (in_port, ..) = shadow[&block];
                    prop_assert!(rc.release(in_port, key(block)).is_some());
                    shadow.remove(&block);
                }
            }
            Op::Undo(n) => {
                if let Some(block) = nth_key(&shadow, n) {
                    let entry = shadow.get_mut(&block).expect("picked from shadow");
                    if entry.3 {
                        // In use: the undo is deferred, not applied.
                        prop_assert!(rc.undo(key(block)).is_none());
                        entry.4 = true;
                    } else {
                        let removed = rc.undo(key(block)).expect("live circuit undone");
                        prop_assert_eq!(removed.out_port, entry.1);
                        shadow.remove(&block);
                    }
                }
            }
            Op::BeginUse(n) => {
                if let Some(block) = nth_key(&shadow, n) {
                    let entry = shadow.get_mut(&block).expect("picked from shadow");
                    prop_assert!(rc.begin_use(entry.0, key(block)));
                    entry.3 = true;
                }
            }
            Op::EndUse(n) => {
                if let Some(block) = nth_key(&shadow, n) {
                    let entry = *shadow.get(&block).expect("picked from shadow");
                    let removed = rc.end_use(entry.0, key(block));
                    if entry.4 {
                        prop_assert!(removed.is_some(), "pending undo resumes at end_use");
                        shadow.remove(&block);
                    } else {
                        prop_assert!(removed.is_none());
                        shadow.get_mut(&block).expect("still live").3 = false;
                    }
                }
            }
        }

        // Global accounting invariants, every step.
        prop_assert_eq!(rc.total_entries(), shadow.len());
        for d in PORTS {
            prop_assert!(
                rc.occupancy(d) <= capacity as usize,
                "input port {d:?} holds more than {capacity} circuits"
            );
            prop_assert_eq!(
                rc.occupancy(d),
                shadow.values().filter(|e| e.0 == d).count()
            );
        }
    }

    // Tear-down: ending every active stream and undoing every survivor must
    // return the table to exactly empty — no leaked entries.
    let live: Vec<u64> = shadow.keys().copied().collect();
    for block in &live {
        let (in_port, _, _, in_use, _) = shadow[block];
        if in_use {
            rc.end_use(in_port, key(*block));
        }
    }
    for block in &live {
        rc.undo(key(*block));
    }
    prop_assert_eq!(rc.total_entries(), 0, "tear-down left entries behind");
    for d in PORTS {
        prop_assert_eq!(rc.occupancy(d), 0);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fragmented tables (2 entries per input, 2 circuit VCs) never exceed
    /// the paper's per-input cap, never oversubscribe an output's circuit
    /// VCs, and tear down to empty.
    #[test]
    fn fragmented_invariants(ops in prop::collection::vec(op_strategy(), 1..60)) {
        workout(CircuitMode::Fragmented, 2, 2, &ops)?;
    }

    /// Complete tables (5 entries per input) never exceed the cap, never
    /// hold two circuits with different input ports and the same output
    /// port, keep the same-source rule, and tear down to empty.
    #[test]
    fn complete_invariants(ops in prop::collection::vec(op_strategy(), 1..60)) {
        workout(CircuitMode::Complete, 5, 1, &ops)?;
    }

    /// A deliberately tiny table (1 entry per input) is the harshest cap
    /// check: the second reservation at any port must fail with NoStorage.
    #[test]
    fn unit_capacity_invariants(ops in prop::collection::vec(op_strategy(), 1..40)) {
        workout(CircuitMode::Complete, 1, 1, &ops)?;
    }
}

// ---------------------------------------------------------------------------
// Topology-path properties: circuits reserved along request paths drawn
// from torus, concentrated-mesh and ring routings retrace and tear down
// exactly, per topology (the §4.1 symmetry the mechanism rests on).
// ---------------------------------------------------------------------------

fn topo_strategy() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (2u16..=6, 2u16..=6).prop_map(|(w, h)| Topology::torus(w, h).expect("valid torus")),
        (3u16..=24).prop_map(|n| Topology::ring(n).expect("valid ring")),
        (2u16..=4, 2u16..=4, 2u16..=4)
            .prop_map(|(w, h, c)| Topology::cmesh(w, h, c).expect("valid cmesh")),
    ]
}

/// The per-router reservations a request travelling `path` (router ids,
/// src-side first) writes for its reply: at each router the reply arrives
/// from the dst side and leaves towards the src side; the endpoints use
/// the tiles' local ports.
fn reply_ports_along(
    topo: &Topology,
    path: &[NodeId],
    src_tile: NodeId,
    dst_tile: NodeId,
) -> Vec<(NodeId, usize, usize)> {
    let mut out = Vec::with_capacity(path.len());
    for (j, r) in path.iter().enumerate() {
        let in_port = if j + 1 < path.len() {
            topo.port_between(*r, path[j + 1])
                .expect("adjacent routers")
        } else {
            topo.eject_port(dst_tile)
        };
        let out_port = if j > 0 {
            topo.port_between(*r, path[j - 1])
                .expect("adjacent routers")
        } else {
            topo.eject_port(src_tile)
        };
        out.push((*r, in_port, out_port));
    }
    out
}

/// One reserved circuit: its key plus the (router, in_port, out_port)
/// hops it occupies along the request path.
type ReservedPath = (CircuitKey, Vec<(NodeId, usize, usize)>);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For every topology: the XY request path reversed is the YX reply
    /// path, circuits reserved hop-by-hop along it are found again by the
    /// retracing reply (lookup on the reply's arrival port), and a full
    /// begin_use / end_use / release walk leaves every table empty.
    #[test]
    fn reservation_retraces_and_tears_down(
        topo in topo_strategy(),
        pairs in prop::collection::vec((any::<u16>(), any::<u16>()), 1..10),
    ) {
        let n = topo.nodes() as u16;
        let mut tables: Vec<RouterCircuits> = (0..topo.routers())
            .map(|_| RouterCircuits::with_ports(CircuitMode::Ideal, 8, 1, topo.ports()))
            .collect();
        let mut reserved: Vec<ReservedPath> = Vec::new();

        for (i, (a, b)) in pairs.iter().enumerate() {
            let src = NodeId(a % n);
            let dst = NodeId(b % n);
            if topo.hop_count(src, dst) == 0 {
                // Same router (same tile, or CMesh neighbours sharing one):
                // no circuit is built.
                continue;
            }
            // §4.1: the request goes XY, the reply retraces YX — reversed.
            let fwd = topo.route_path(src, dst, Routing::Xy);
            let mut back = topo.route_path(dst, src, Routing::Yx);
            back.reverse();
            prop_assert_eq!(&fwd, &back, "path symmetry broken on {}", topo.label());

            let k = CircuitKey { requestor: src, block: i as u64 * 64 };
            let hops = reply_ports_along(&topo, &fwd, src, dst);
            for (r, in_port, out_port) in &hops {
                tables[r.index()]
                    .try_reserve(&ReserveRequest {
                        key: k,
                        source: dst,
                        in_port: *in_port,
                        out_port: *out_port,
                        window: None,
                        max_extra_shift: 0,
                    })
                    .expect("ideal mode never refuses");
            }
            reserved.push((k, hops));
        }

        // Reply retrace: from the reply source's router back to the
        // requestor, every table has the entry on the reply's arrival port,
        // and streaming through it then releasing empties the table.
        for (k, hops) in &reserved {
            for (r, in_port, _) in hops.iter().rev() {
                prop_assert!(
                    tables[r.index()].lookup(*in_port, *k).is_some(),
                    "reply failed to find its circuit at router {r} on {}",
                    topo.label()
                );
                prop_assert!(tables[r.index()].begin_use(*in_port, *k));
                prop_assert!(tables[r.index()].end_use(*in_port, *k).is_none());
                prop_assert!(tables[r.index()].release(*in_port, *k).is_some());
            }
        }
        for (r, t) in tables.iter().enumerate() {
            prop_assert_eq!(
                t.total_entries(),
                0,
                "teardown left entries at router {} on {}",
                r,
                topo.label()
            );
        }
    }

    /// Undo-based teardown (§4.4): an undo visiting the routers in request
    /// order finds each entry, and the removed entry's out_port points back
    /// towards the requestor — the reversed-path invariant that lets the
    /// undo retrace without carrying a route.
    #[test]
    fn undo_follows_the_reversed_path(
        topo in topo_strategy(),
        a in any::<u16>(),
        b in any::<u16>(),
    ) {
        let n = topo.nodes() as u16;
        let src = NodeId(a % n);
        let dst = NodeId(b % n);
        prop_assume!(topo.hop_count(src, dst) > 0);

        let fwd = topo.route_path(src, dst, Routing::Xy);
        let k = CircuitKey { requestor: src, block: 0x40 };
        let hops = reply_ports_along(&topo, &fwd, src, dst);
        let mut tables: Vec<RouterCircuits> = (0..topo.routers())
            .map(|_| RouterCircuits::with_ports(CircuitMode::Complete, 5, 1, topo.ports()))
            .collect();
        for (r, in_port, out_port) in &hops {
            tables[r.index()]
                .try_reserve(&ReserveRequest {
                    key: k,
                    source: dst,
                    in_port: *in_port,
                    out_port: *out_port,
                    window: None,
                    max_extra_shift: 0,
                })
                .expect("lone circuit cannot conflict");
        }
        for (j, (r, _, out_port)) in hops.iter().enumerate() {
            let removed = tables[r.index()].undo(k).expect("undo finds the entry");
            prop_assert_eq!(removed.out_port, *out_port);
            if j > 0 {
                // Interior and dst-side routers point back at the previous
                // router on the path; the first hop points at the src tile.
                prop_assert_eq!(
                    topo.neighbor(*r, removed.out_port),
                    Some(fwd[j - 1]),
                    "undo retrace diverges at router {} on {}",
                    r,
                    topo.label()
                );
            }
            prop_assert_eq!(tables[r.index()].total_entries(), 0);
        }
    }
}
