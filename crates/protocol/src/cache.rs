//! A generic set-associative cache array with pseudo-LRU replacement.

use crate::plru::TreePlru;
use serde::{Deserialize, Serialize};

/// Geometry of a cache array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity (power of two).
    pub ways: usize,
    /// Low address bits skipped before set indexing. A bank of an
    /// address-interleaved shared cache must skip the bank-select bits,
    /// or only `1/2^shift` of its sets would ever be used.
    pub index_shift: u32,
}

impl CacheConfig {
    /// Geometry from total capacity in bytes, 64 B lines and given ways.
    ///
    /// # Panics
    ///
    /// Panics when the resulting set count is not a positive power of two.
    pub fn from_capacity(bytes: usize, ways: usize) -> Self {
        let lines = bytes / 64;
        let sets = lines / ways;
        assert!(
            sets.is_power_of_two() && sets > 0,
            "sets must be a power of two"
        );
        Self {
            sets,
            ways,
            index_shift: 0,
        }
    }

    /// The same geometry, skipping `shift` low address bits before the
    /// set index (for banks of an interleaved shared cache).
    pub fn with_index_shift(mut self, shift: u32) -> Self {
        self.index_shift = shift;
        self
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Line<M> {
    tag: u64,
    meta: M,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Set<M> {
    ways: Vec<Option<Line<M>>>,
    plru: TreePlru,
}

/// A set-associative array storing per-line metadata of type `M`, indexed
/// by cache-line address.
///
/// # Examples
///
/// ```
/// use rcsim_protocol::{CacheArray, CacheConfig};
///
/// let mut l1: CacheArray<u32> = CacheArray::new(CacheConfig::from_capacity(32 * 1024, 4));
/// assert!(l1.get(0x40).is_none());
/// l1.insert(0x40, 7);
/// assert_eq!(l1.get(0x40), Some(&7));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheArray<M> {
    cfg: CacheConfig,
    sets: Vec<Set<M>>,
}

impl<M> CacheArray<M> {
    /// An empty array with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = (0..cfg.sets)
            .map(|_| Set {
                ways: (0..cfg.ways).map(|_| None).collect(),
                plru: TreePlru::new(cfg.ways),
            })
            .collect();
        Self { cfg, sets }
    }

    /// Geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    fn set_of(&self, block: u64) -> usize {
        ((block >> self.cfg.index_shift) as usize) & (self.cfg.sets - 1)
    }

    /// Everything but the set bits (incl. the skipped low bits), so the
    /// full block address can be reconstructed from (tag, set).
    fn tag_of(&self, block: u64) -> u64 {
        let shift = self.cfg.index_shift;
        let low = block & ((1u64 << shift) - 1);
        (((block >> shift) / self.cfg.sets as u64) << shift) | low
    }

    fn block_of(&self, tag: u64, set: usize) -> u64 {
        let shift = self.cfg.index_shift;
        let low = tag & ((1u64 << shift) - 1);
        ((((tag >> shift) * self.cfg.sets as u64) + set as u64) << shift) | low
    }

    fn find(&self, block: u64) -> Option<usize> {
        let s = self.set_of(block);
        let tag = self.tag_of(block);
        self.sets[s]
            .ways
            .iter()
            .position(|l| l.as_ref().is_some_and(|l| l.tag == tag))
    }

    /// Metadata of a cached block, without touching recency.
    pub fn peek(&self, block: u64) -> Option<&M> {
        let s = self.set_of(block);
        self.find(block)
            .map(|w| &self.sets[s].ways[w].as_ref().expect("found").meta)
    }

    /// Metadata of a cached block, updating recency.
    pub fn get(&mut self, block: u64) -> Option<&M> {
        let s = self.set_of(block);
        let w = self.find(block)?;
        self.sets[s].plru.touch(w);
        Some(&self.sets[s].ways[w].as_ref().expect("found").meta)
    }

    /// Mutable metadata of a cached block, updating recency.
    pub fn get_mut(&mut self, block: u64) -> Option<&mut M> {
        let s = self.set_of(block);
        let w = self.find(block)?;
        self.sets[s].plru.touch(w);
        Some(&mut self.sets[s].ways[w].as_mut().expect("found").meta)
    }

    /// Mutable metadata without touching recency (for message handling
    /// that should not perturb replacement).
    pub fn peek_mut(&mut self, block: u64) -> Option<&mut M> {
        let s = self.set_of(block);
        let w = self.find(block)?;
        Some(&mut self.sets[s].ways[w].as_mut().expect("found").meta)
    }

    /// Inserts a block (which must not be present), evicting the PLRU
    /// victim if the set is full. Returns the evicted `(block, meta)`.
    ///
    /// # Panics
    ///
    /// Panics if the block is already cached.
    pub fn insert(&mut self, block: u64, meta: M) -> Option<(u64, M)> {
        assert!(
            self.find(block).is_none(),
            "block {block:#x} already cached"
        );
        let s = self.set_of(block);
        let tag = self.tag_of(block);
        let set = &mut self.sets[s];
        let way = match set.ways.iter().position(Option::is_none) {
            Some(w) => w,
            None => set.plru.victim(),
        };
        let evicted_entry = set.ways[way].take();
        set.ways[way] = Some(Line { tag, meta });
        set.plru.touch(way);
        evicted_entry.map(|l| (self.block_of(l.tag, s), l.meta))
    }

    /// The block that would be evicted if `block` were inserted now
    /// (`None` if a free way exists). Recency is not modified.
    pub fn victim_for(&self, block: u64) -> Option<u64> {
        let s = self.set_of(block);
        let set = &self.sets[s];
        if set.ways.iter().any(Option::is_none) {
            return None;
        }
        let way = set.plru.victim();
        let tag = set.ways[way].as_ref().map(|l| l.tag)?;
        Some(self.block_of(tag, s))
    }

    /// Blocks currently cached in the same set as `block` (eviction
    /// candidates when a victim must be chosen under constraints).
    pub fn set_blocks(&self, block: u64) -> Vec<u64> {
        let s = self.set_of(block);
        self.sets[s]
            .ways
            .iter()
            .flatten()
            .map(|l| self.block_of(l.tag, s))
            .collect()
    }

    /// Number of free ways in the set of `block`.
    pub fn free_ways(&self, block: u64) -> usize {
        let s = self.set_of(block);
        self.sets[s].ways.iter().filter(|w| w.is_none()).count()
    }

    /// Removes a block, returning its metadata.
    pub fn remove(&mut self, block: u64) -> Option<M> {
        let s = self.set_of(block);
        let w = self.find(block)?;
        self.sets[s].ways[w].take().map(|l| l.meta)
    }

    /// Number of lines currently cached.
    pub fn len(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.ways.iter().flatten().count())
            .sum()
    }

    /// `true` when no lines are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over `(block, meta)` of all cached lines.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &M)> {
        self.sets.iter().enumerate().flat_map(move |(s, set)| {
            set.ways
                .iter()
                .flatten()
                .map(move |l| (self.block_of(l.tag, s), &l.meta))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheArray<u32> {
        CacheArray::new(CacheConfig {
            sets: 4,
            ways: 2,
            index_shift: 0,
        })
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut c = small();
        assert!(c.is_empty());
        assert_eq!(c.insert(0x10, 1), None);
        assert_eq!(c.get(0x10), Some(&1));
        *c.get_mut(0x10).unwrap() = 2;
        assert_eq!(c.peek(0x10), Some(&2));
        assert_eq!(c.remove(0x10), Some(2));
        assert_eq!(c.get(0x10), None);
    }

    #[test]
    fn conflicting_blocks_evict_plru() {
        let mut c = small();
        // Blocks 0, 4, 8 all map to set 0 (sets = 4).
        c.insert(0, 10);
        c.insert(4, 14);
        c.get(0); // 0 recent, 4 is victim
        let evicted = c.insert(8, 18);
        assert_eq!(evicted, Some((4, 14)));
        assert_eq!(c.get(0), Some(&10));
        assert_eq!(c.get(8), Some(&18));
    }

    #[test]
    fn victim_for_reports_without_evicting() {
        let mut c = small();
        assert_eq!(c.victim_for(0), None);
        c.insert(0, 1);
        assert_eq!(c.victim_for(4), None, "one way still free");
        c.insert(4, 2);
        let v = c.victim_for(8).unwrap();
        assert!(v == 0 || v == 4);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn tag_reconstruction_is_exact() {
        let mut c = CacheArray::new(CacheConfig {
            sets: 8,
            ways: 2,
            index_shift: 0,
        });
        // At most two blocks per set (sets = 8, ways = 2): no evictions.
        for block in [0u64, 7, 9, 255, (1 << 30) + 1] {
            c.insert(block, block as u32);
        }
        let mut found: Vec<u64> = c.iter().map(|(b, _)| b).collect();
        found.sort();
        assert_eq!(found, vec![0, 7, 9, 255, (1 << 30) + 1]);
    }

    #[test]
    fn capacity_constructor() {
        let cfg = CacheConfig::from_capacity(32 * 1024, 4);
        assert_eq!(cfg.sets, 128);
        let cfg = CacheConfig::from_capacity(1024 * 1024, 16);
        assert_eq!(cfg.sets, 1024);
    }

    #[test]
    #[should_panic(expected = "already cached")]
    fn double_insert_rejected() {
        let mut c = small();
        c.insert(0, 1);
        c.insert(0, 2);
    }
}
