//! Memory-system configuration (the paper's Table 2) and address mapping.

use crate::cache::CacheConfig;
use rcsim_core::{Cycle, NodeId, Topology};
use serde::{Deserialize, Serialize};

/// Configuration of the coherent memory hierarchy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// L1 geometry (32 KB, 4-way in the paper).
    pub l1: CacheConfig,
    /// Per-bank L2 geometry (1 MB, 16-way).
    pub l2: CacheConfig,
    /// L1 hit latency in cycles (2).
    pub l1_hit_latency: u32,
    /// L2 bank hit latency in cycles (7).
    pub l2_hit_latency: u32,
    /// Memory access latency in cycles (160).
    pub mem_latency: u32,
    /// Eliminate `L1_DATA_ACK`s for replies that rode a complete circuit
    /// (§4.6). Mirrors `MechanismConfig::eliminate_acks`.
    pub eliminate_acks: bool,
    /// Undo circuits when the L2 misses (§4.4 ablation; the paper keeps
    /// them, so this defaults to `false`).
    pub undo_on_l2_miss: bool,
    /// Tiles hosting memory controllers.
    pub mc_tiles: Vec<NodeId>,
    /// Cycles an L1 waits for the reply to an outstanding miss before
    /// reissuing the request (permanent faults can lose either the request
    /// or its reply). Reissue `n` fires after `reissue_timeout << n`
    /// cycles, i.e. exponential backoff.
    #[serde(default = "default_reissue_timeout")]
    pub reissue_timeout: Cycle,
    /// Reissues attempted per miss before the L1 gives up and leaves the
    /// wedge to the watchdog. `0` disables reissue entirely.
    #[serde(default = "default_max_reissues")]
    pub max_reissues: u32,
}

fn default_reissue_timeout() -> Cycle {
    50_000
}

fn default_max_reissues() -> u32 {
    3
}

impl ProtocolConfig {
    /// The Table 2 configuration for a topology. The L2 bank arrays skip
    /// the bank-select bits (lines interleave over all tiles).
    pub fn paper_defaults(topology: &Topology) -> Self {
        let bank_bits = (topology.nodes() as u64).trailing_zeros();
        let bank_bits = if topology.nodes().is_power_of_two() {
            bank_bits
        } else {
            0
        };
        Self {
            l1: CacheConfig::from_capacity(32 * 1024, 4),
            l2: CacheConfig::from_capacity(1024 * 1024, 16).with_index_shift(bank_bits),
            l1_hit_latency: 2,
            l2_hit_latency: 7,
            mem_latency: 160,
            eliminate_acks: false,
            undo_on_l2_miss: false,
            mc_tiles: topology.memory_controller_tiles(),
            reissue_timeout: default_reissue_timeout(),
            max_reissues: default_max_reissues(),
        }
    }

    /// A scaled-down configuration for fast tests (256-line L1, 4K-line
    /// L2, same latencies).
    pub fn small_for_tests(topology: &Topology) -> Self {
        let defaults = Self::paper_defaults(topology);
        Self {
            l1: CacheConfig {
                sets: 16,
                ways: 4,
                index_shift: 0,
            },
            l2: CacheConfig {
                sets: 64,
                ways: 8,
                index_shift: defaults.l2.index_shift,
            },
            ..defaults
        }
    }

    /// The L2 bank (home tile) of a cache line: address-interleaved over
    /// all tiles at line granularity.
    pub fn home(&self, topology: &Topology, block: u64) -> NodeId {
        NodeId((block % topology.nodes() as u64) as u16)
    }

    /// The memory controller serving a cache line.
    pub fn memory_controller(&self, block: u64) -> NodeId {
        self.mc_tiles[(block as usize) % self.mc_tiles.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcsim_core::Mesh;

    #[test]
    fn paper_geometry() {
        let mesh: Topology = Mesh::new(8, 8).unwrap().into();
        let cfg = ProtocolConfig::paper_defaults(&mesh);
        assert_eq!(cfg.l1.sets * cfg.l1.ways * 64, 32 * 1024);
        assert_eq!(cfg.l2.sets * cfg.l2.ways * 64, 1024 * 1024);
        assert_eq!(cfg.mc_tiles.len(), 4);
    }

    #[test]
    fn home_interleaves_over_all_tiles() {
        let mesh: Topology = Mesh::new(4, 4).unwrap().into();
        let cfg = ProtocolConfig::paper_defaults(&mesh);
        let homes: std::collections::HashSet<_> = (0..64u64).map(|b| cfg.home(&mesh, b)).collect();
        assert_eq!(homes.len(), 16);
        // Stable mapping.
        assert_eq!(cfg.home(&mesh, 5), cfg.home(&mesh, 5 + 16));
    }

    #[test]
    fn mc_mapping_hits_all_controllers() {
        let mesh: Topology = Mesh::new(8, 8).unwrap().into();
        let cfg = ProtocolConfig::paper_defaults(&mesh);
        let mcs: std::collections::HashSet<_> =
            (0..16u64).map(|b| cfg.memory_controller(b)).collect();
        assert_eq!(mcs.len(), 4);
    }
}
