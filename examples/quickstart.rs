//! Quick start: run one workload on a 16-core chip with and without
//! Reactive Circuits and print what changed.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use reactive_circuits::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = "canneal";
    println!("Reactive Circuits quickstart — 16 cores, workload '{workload}'\n");

    let mut cfg = SimConfig::quick(16, MechanismConfig::baseline(), workload);
    cfg.warmup_cycles = 5_000;
    cfg.measure_cycles = 40_000;
    let baseline = run_sim(&cfg)?;

    cfg.mechanism = MechanismConfig::complete_noack();
    let circuits = run_sim(&cfg)?;

    println!("{:<28} {:>12} {:>14}", "", "Baseline", "Complete_NoAck");
    println!(
        "{:<28} {:>12.3} {:>14.3}",
        "IPC per core",
        baseline.ipc_per_core(),
        circuits.ipc_per_core()
    );
    println!(
        "{:<28} {:>12.1} {:>14.1}",
        "Circuit_Rep net latency (cyc)",
        baseline.latency["Circuit_Rep"].network,
        circuits.latency["Circuit_Rep"].network
    );
    println!(
        "{:<28} {:>12.1} {:>14.1}",
        "Request net latency (cyc)",
        baseline.latency["Request"].network,
        circuits.latency["Request"].network
    );
    println!(
        "{:<28} {:>12} {:>14}",
        "L1_DATA_ACK messages",
        baseline.messages.get("L1_DATA_ACK").unwrap_or(&0),
        circuits.messages.get("L1_DATA_ACK").unwrap_or(&0)
    );
    println!(
        "{:<28} {:>12.1} {:>14.1}",
        "Network energy (nJ)",
        baseline.energy.total_pj() / 1e3,
        circuits.energy.total_pj() / 1e3
    );
    println!(
        "{:<28} {:>12.1}% {:>13.1}%",
        "Router area vs baseline",
        -100.0 * baseline.area_savings,
        -100.0 * circuits.area_savings
    );

    println!("\nWith circuits:");
    println!(
        "  speedup           {:.3}x",
        circuits.speedup_over(&baseline)
    );
    println!(
        "  energy ratio      {:.3}",
        circuits.energy_ratio_over(&baseline)
    );
    println!(
        "  replies on circuit {:.1}%",
        100.0 * circuits.outcomes["circuit"]
    );
    println!(
        "  acks eliminated    {:.1}%",
        100.0 * circuits.outcomes["eliminated"]
    );
    Ok(())
}
