//! Trace-layer integration tests at the full-system level: tracing is
//! purely observational (bit-identical results), the latency breakdown
//! post-pass reconstructs sensible phases, and the Chrome exporter
//! produces loadable JSON.

#![cfg(feature = "trace")]

use rcsim_core::MechanismConfig;
use rcsim_system::{run_sim, run_sim_traced, SimConfig, TraceConfig};
use rcsim_trace::{chrome_trace_json, EventKind};
use serde_json::Value;

fn cfg() -> SimConfig {
    SimConfig {
        seed: 3,
        warmup_cycles: 800,
        measure_cycles: 3_000,
        ..SimConfig::quick(16, MechanismConfig::complete_noack(), "blackscholes")
    }
}

/// The tentpole guarantee: attaching the trace layer must not change a
/// single measured number. Every field of the two `RunResult`s — latency
/// histogram means, outcome fractions, energy, health — must match.
#[test]
fn traced_run_is_bit_identical() {
    let cfg = cfg();
    let plain = run_sim(&cfg).expect("untraced run");
    let (traced, report) = run_sim_traced(&cfg, &TraceConfig::default()).expect("traced run");
    assert_eq!(plain, traced, "tracing perturbed the simulation");
    assert!(!report.events.is_empty(), "traced run produced no events");
}

#[test]
fn breakdown_reconstructs_latency_phases() {
    let (result, report) = run_sim_traced(&cfg(), &TraceConfig::default()).expect("traced run");
    let b = &report.breakdown;
    assert!(b.delivered > 0, "no deliveries reconstructed");
    assert_eq!(b.dropped, 0, "no faults configured, nothing may drop");
    assert!(
        b.queueing.count() > 0 && b.queueing.mean() >= 0.0,
        "queueing phase missing"
    );
    // Packets already in flight at the warm-up cut eject without an
    // enqueue/inject record, so the categorized transits can undercount
    // `delivered` — never overcount.
    let transits =
        b.transit_circuit.count() + b.transit_packet.count() + b.transit_degraded.count();
    assert!(transits > 0 && transits <= b.delivered);
    // Complete_NoAck builds circuits on this workload, so some replies
    // must have ridden one — and the run itself must agree.
    assert!(b.circuit_ride_fraction() > 0.0, "no circuit rides seen");
    assert!(result.outcomes["circuit"] > 0.0);
    // Event counts land in the metrics registry under `events.<name>`.
    assert!(report.metrics.counter("events.ni_enqueue") > 0);
    assert!(report.metrics.counter("events.ni_eject") > 0);
}

#[test]
fn epoch_sampling_and_conservation_under_faults() {
    let mut cfg = cfg();
    cfg.faults.link_drop_rate = 0.01;
    cfg.faults.seed = 0xBAD;
    let trace = TraceConfig {
        capacity: 1 << 20,
        epoch: 50,
    };
    let (result, report) = run_sim_traced(&cfg, &trace).expect("traced faulty run");
    assert!(result.health.faults.flits_dropped > 0, "faults never fired");
    let samples = report
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::EpochSample { .. }))
        .count();
    assert!(samples > 10, "epoch sampler produced {samples} samples");
    // Conservation at the window edges: the breakdown's delivered+dropped
    // tally must equal the raw terminal-event count exactly (packets still
    // flying at the end show up as `unresolved`, not as phantom terminals).
    let terminals = report
        .events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::NiEject { .. } | EventKind::PacketDropped { .. }
            )
        })
        .count() as u64;
    let b = &report.breakdown;
    assert_eq!(b.delivered + b.dropped, terminals);
}

/// The Chrome export must be real JSON with the trace-event envelope that
/// Perfetto / `chrome://tracing` expects.
#[test]
fn chrome_trace_round_trips_as_json() {
    let (_, report) = run_sim_traced(&cfg(), &TraceConfig::default()).expect("traced run");
    let json = chrome_trace_json(&report.events);
    let doc: Value = serde_json::from_str(&json).expect("exporter wrote invalid JSON");
    let slices = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert!(!slices.is_empty());
    let complete = slices
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .count();
    assert!(complete > 0, "no complete (ph=X) packet slices");
    for e in slices {
        assert!(e.get("name").and_then(Value::as_str).is_some());
        assert!(e.get("ts").and_then(Value::as_u64).is_some());
    }
    assert!(doc.get("displayTimeUnit").is_some());
}
