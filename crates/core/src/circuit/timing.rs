//! Timed-reservation window algebra (paper §4.7).
//!
//! When a request reserves a circuit at a router it optimistically computes
//! *when* the reply will occupy that router: the request still needs
//! [`REQ_HOP_CYCLES`] per remaining hop, the responder takes `turnaround`
//! cycles (L2 hit, or memory latency for `MEMORY` replies), and the reply
//! then flies back at [`REP_HOP_CYCLES`] per hop.
//!
//! Define the per-router **nominal injection time** — the time the reply
//! would leave its source NI if nothing else goes wrong —
//!
//! ```text
//! n_R = now_R + 5 · hops_remaining(request) + turnaround
//! ```
//!
//! The window reserved at router R for a reply injected at `n_R + shift` is
//! `[n_R + shift + 2·d, n_R + shift + 2·d + flits + slack]` where `d` is
//! the reply's hop distance from its source to R. Because a reply injected
//! at time `T` occupies R exactly during `[T + 2d, T + 2d + flits]`
//! (complete circuits never block), the reply meets *every* router's window
//! iff
//!
//! ```text
//! max_R (n_R + shift_R)  ≤  T  ≤  min_R (n_R + shift_R + slack)
//! ```
//!
//! so the whole check collapses to two scalars (`lower`, `upper`) carried
//! in the request header — see [`super::TimingState`]. Request delays make
//! later `n_R` larger, shrinking the feasible interval; slack re-opens it;
//! *delay* lets a reservation shift right when its slot is taken;
//! *postponed* shifts every window right by a fixed amount.

use crate::types::Cycle;
use serde::{Deserialize, Serialize};

/// Router pipeline cycles per hop for a packet-switched request: four
/// pipeline stages plus one link cycle (Table 4).
pub const REQ_HOP_CYCLES: u32 = 5;

/// Cycles per hop for a reply on a circuit: one router cycle plus one link
/// cycle (§4.3).
pub const REP_HOP_CYCLES: u32 = 2;

/// A half-open reservation window `[start, end)` in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeWindow {
    /// First cycle the circuit is reserved for.
    pub start: Cycle,
    /// First cycle after the reservation.
    pub end: Cycle,
}

impl TimeWindow {
    /// Creates a window.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn new(start: Cycle, end: Cycle) -> Self {
        assert!(end >= start, "window end before start");
        Self { start, end }
    }

    /// `true` when the two half-open windows share at least one cycle.
    /// Empty windows overlap nothing.
    pub fn overlaps(&self, other: &TimeWindow) -> bool {
        self.start.max(other.start) < self.end.min(other.end)
    }

    /// `true` when `t` falls inside the window.
    pub fn contains(&self, t: Cycle) -> bool {
        t >= self.start && t < self.end
    }

    /// Window length in cycles.
    pub fn duration(&self) -> Cycle {
        self.end - self.start
    }

    /// The window shifted `delta` cycles later.
    pub fn shifted(&self, delta: Cycle) -> TimeWindow {
        TimeWindow {
            start: self.start + delta,
            end: self.end + delta,
        }
    }
}

/// Nominal reply injection time as estimated at a router: `now` plus the
/// request's remaining flight plus the responder turnaround.
pub fn nominal_inject(now: Cycle, req_hops_remaining: u32, turnaround: u32) -> Cycle {
    now + (REQ_HOP_CYCLES * req_hops_remaining) as Cycle + turnaround as Cycle
}

/// The occupancy window at a router `rep_hops` reply-hops away from the
/// reply source, for a reply injected at `nominal + shift` that is
/// `reply_flits` long, widened by `slack`.
pub fn router_window(
    nominal: Cycle,
    shift: u32,
    rep_hops: u32,
    reply_flits: u32,
    slack: u32,
) -> TimeWindow {
    let start = nominal + shift as Cycle + (REP_HOP_CYCLES * rep_hops) as Cycle;
    TimeWindow::new(start, start + reply_flits as Cycle + slack as Cycle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_basics() {
        let w = TimeWindow::new(10, 15);
        assert_eq!(w.duration(), 5);
        assert!(w.contains(10));
        assert!(w.contains(14));
        assert!(!w.contains(15));
        assert!(!w.contains(9));
        assert_eq!(w.shifted(5), TimeWindow::new(15, 20));
    }

    #[test]
    #[should_panic(expected = "window end before start")]
    fn inverted_window_panics() {
        TimeWindow::new(5, 4);
    }

    #[test]
    fn overlap_is_symmetric_and_halfopen() {
        let a = TimeWindow::new(0, 10);
        let b = TimeWindow::new(10, 20); // touching, half-open: no overlap
        let c = TimeWindow::new(9, 11);
        assert!(!a.overlaps(&b));
        assert!(!b.overlaps(&a));
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&a));
        assert!(b.overlaps(&c));
    }

    #[test]
    fn empty_window_never_overlaps() {
        let e = TimeWindow::new(5, 5);
        let w = TimeWindow::new(0, 10);
        assert!(!e.overlaps(&w));
        assert!(!w.overlaps(&e));
    }

    #[test]
    fn nominal_matches_paper_example() {
        // §4.1: in a 16-core chip the average circuit set-up needs 19 cycles
        // while the L2 hit takes only 7 — a request 3 hops from its
        // destination still needs 15 cycles of flight before the 7-cycle hit.
        assert_eq!(nominal_inject(0, 3, 7), 22);
        assert_eq!(nominal_inject(100, 0, 7), 107);
    }

    #[test]
    fn router_window_accounts_for_reply_flight() {
        // Reply source at hop 0; a router 2 hops along the reply path sees
        // the reply 4 cycles after injection, for 5 flits.
        let w = router_window(100, 0, 2, 5, 0);
        assert_eq!(w, TimeWindow::new(104, 109));
        // Slack widens, shift translates.
        let w = router_window(100, 3, 2, 5, 4);
        assert_eq!(w, TimeWindow::new(107, 116));
    }

    #[test]
    fn scalar_check_equals_per_router_check() {
        // Exhaustively verify on a synthetic path that the (lower, upper)
        // scalar test matches checking every router window individually.
        let turnaround = 7u32;
        let flits = 5u32;
        let slack = 6u32;
        // Request visits routers 0..=4; suffers `delay[i]` extra cycles
        // before reserving at router i.
        let delays = [0u32, 3, 0, 2, 1];
        let path_hops = 4u32;
        let mut now = 0 as Cycle;
        let mut windows = Vec::new();
        let mut lower = 0 as Cycle;
        let mut upper = Cycle::MAX;
        for (i, d) in delays.iter().enumerate() {
            now += *d as Cycle;
            let h_req = path_hops - i as u32;
            let h_rep = path_hops - i as u32; // reply hops from source back to router i
            let n = nominal_inject(now, h_req, turnaround);
            windows.push((h_rep, router_window(n, 0, h_rep, flits, slack)));
            lower = lower.max(n);
            upper = upper.min(n + slack as Cycle);
            now += REQ_HOP_CYCLES as Cycle; // advance one hop
        }
        // For a range of injection times, both checks must agree.
        for t in 0..200u64 {
            let scalar_ok = t >= lower && t <= upper;
            let per_router_ok = windows.iter().all(|(h_rep, w)| {
                let occ_start = t + (REP_HOP_CYCLES * h_rep) as Cycle;
                let occ_end = occ_start + flits as Cycle;
                occ_start >= w.start && occ_end <= w.end
            });
            assert_eq!(
                scalar_ok, per_router_ok,
                "t={t} lower={lower} upper={upper}"
            );
        }
    }
}
