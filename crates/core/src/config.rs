//! Configuration of the Reactive Circuits mechanism.
//!
//! Each configuration evaluated in the paper (§4, Figures 6–9) is a value
//! of [`MechanismConfig`]; named constructors build the exact points of the
//! paper's grid, e.g. [`MechanismConfig::complete_noack`] or
//! [`MechanismConfig::slack_delay`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// How circuits are reserved (paper §4.2, §4.8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CircuitMode {
    /// No circuits: the plain 4-stage wormhole baseline.
    None,
    /// Partial reservations are kept when a hop fails; needs a third reply
    /// VC and keeps buffers on the circuit VCs.
    Fragmented,
    /// All-or-nothing reservations; the circuit VC has **no buffer**, which
    /// is where the area/energy savings come from.
    Complete,
    /// Upper bound: unlimited circuit storage and no conflict rules;
    /// per-cycle collisions stall one of the colliding flits (§4.8).
    Ideal,
}

impl CircuitMode {
    /// `true` for the modes that guarantee a reserved circuit end-to-end.
    pub fn is_complete(self) -> bool {
        matches!(self, CircuitMode::Complete | CircuitMode::Ideal)
    }
}

/// Timed reservation policy for complete circuits (§4.7). All cycle
/// quantities are *per hop of the path* and scale with path length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimedPolicy {
    /// Circuits are held from reservation until use (non-timed).
    Untimed,
    /// Reserve exactly the optimistically-computed slot.
    Exact,
    /// Widen the slot by `slack_per_hop` cycles per hop.
    Slack {
        /// Extra reserved cycles per hop of the path.
        slack_per_hop: u32,
    },
    /// Slack plus the option to shift the reservation later when the slot
    /// is taken (must be combined with slack, §4.7 variant 2).
    SlackDelay {
        /// Extra reserved cycles per hop of the path.
        slack_per_hop: u32,
        /// Maximum later shift, in cycles per hop of the path.
        delay_per_hop: u32,
    },
    /// Reserve an exact-size slot shifted `postpone_per_hop` cycles per hop
    /// later; every reply waits for its slot (§4.7 variant 3).
    Postponed {
        /// Forced later shift, in cycles per hop of the path.
        postpone_per_hop: u32,
    },
}

impl TimedPolicy {
    /// `true` for any policy that attaches a time window to reservations.
    pub fn is_timed(self) -> bool {
        !matches!(self, TimedPolicy::Untimed)
    }

    /// Window slack budget for a path of `path_hops` hops.
    pub fn slack(self, path_hops: u32) -> u32 {
        match self {
            TimedPolicy::Untimed | TimedPolicy::Exact | TimedPolicy::Postponed { .. } => 0,
            TimedPolicy::Slack { slack_per_hop }
            | TimedPolicy::SlackDelay { slack_per_hop, .. } => slack_per_hop * path_hops,
        }
    }

    /// Maximum reservation shift for a path of `path_hops` hops.
    pub fn max_delay(self, path_hops: u32) -> u32 {
        match self {
            TimedPolicy::SlackDelay { delay_per_hop, .. } => delay_per_hop * path_hops,
            _ => 0,
        }
    }

    /// Forced postponement for a path of `path_hops` hops.
    pub fn postponement(self, path_hops: u32) -> u32 {
        match self {
            TimedPolicy::Postponed { postpone_per_hop } => postpone_per_hop * path_hops,
            _ => 0,
        }
    }
}

/// Full configuration of the Reactive Circuits mechanism for one run.
///
/// # Examples
///
/// ```
/// use rcsim_core::MechanismConfig;
///
/// let cfg = MechanismConfig::slack_delay(1);
/// assert_eq!(cfg.label(), "SlackDelay_1_NoAck");
/// assert!(cfg.eliminate_acks);
/// assert_eq!(cfg.max_circuits_per_input, 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MechanismConfig {
    /// Reservation discipline.
    pub mode: CircuitMode,
    /// Timed-window policy (complete circuits only).
    pub timed: TimedPolicy,
    /// Eliminate `L1_DATA_ACK` messages whose data travelled on a complete
    /// circuit (§4.6). Requires a complete mode.
    pub eliminate_acks: bool,
    /// Let circuit-less replies scrounge a foreign circuit towards an
    /// intermediate node (§4.5). Complete circuits only.
    pub reuse_circuits: bool,
    /// Scroungers *borrow* the circuit (it survives for its own reply)
    /// instead of consuming it. The paper leaves this open; both modes are
    /// implemented (see DESIGN.md §4b and the Figure 9 notes).
    pub scrounger_borrow: bool,
    /// Simultaneous circuits storable per input port (paper: 2 fragmented,
    /// 5 complete; ignored by `Ideal`).
    pub max_circuits_per_input: u8,
    /// Undo circuits when the L2 misses and the request goes to memory.
    /// The paper found keeping them performs better (§4.4), so every named
    /// configuration sets this to `false`; it is exposed for the ablation.
    pub undo_on_l2_miss: bool,
}

impl MechanismConfig {
    /// The conventional network without circuits.
    pub fn baseline() -> Self {
        Self {
            mode: CircuitMode::None,
            timed: TimedPolicy::Untimed,
            eliminate_acks: false,
            reuse_circuits: false,
            scrounger_borrow: false,
            max_circuits_per_input: 0,
            undo_on_l2_miss: false,
        }
    }

    /// Fragmented circuits (2 per input, third reply VC).
    pub fn fragmented() -> Self {
        Self {
            mode: CircuitMode::Fragmented,
            timed: TimedPolicy::Untimed,
            eliminate_acks: false,
            reuse_circuits: false,
            scrounger_borrow: false,
            max_circuits_per_input: 2,
            undo_on_l2_miss: false,
        }
    }

    /// Basic complete circuits (5 per input, bufferless circuit VC).
    pub fn complete() -> Self {
        Self {
            mode: CircuitMode::Complete,
            timed: TimedPolicy::Untimed,
            eliminate_acks: false,
            reuse_circuits: false,
            scrounger_borrow: false,
            max_circuits_per_input: 5,
            undo_on_l2_miss: false,
        }
    }

    /// Complete circuits with `L1_DATA_ACK` elimination.
    pub fn complete_noack() -> Self {
        Self {
            eliminate_acks: true,
            ..Self::complete()
        }
    }

    /// Complete circuits + NoAck + scrounger reuse (consuming scroungers).
    pub fn reuse_noack() -> Self {
        Self {
            reuse_circuits: true,
            ..Self::complete_noack()
        }
    }

    /// Complete circuits + NoAck + *borrowing* scroungers: the circuit
    /// survives the scrounger and still serves its own reply.
    pub fn reuse_borrow_noack() -> Self {
        Self {
            scrounger_borrow: true,
            ..Self::reuse_noack()
        }
    }

    /// Basic timed circuits (exact windows) + NoAck.
    pub fn timed_noack() -> Self {
        Self {
            timed: TimedPolicy::Exact,
            ..Self::complete_noack()
        }
    }

    /// Timed circuits with `k` cycles/hop of slack + NoAck.
    pub fn slack(k: u32) -> Self {
        Self {
            timed: TimedPolicy::Slack { slack_per_hop: k },
            ..Self::complete_noack()
        }
    }

    /// Timed circuits with `k` cycles/hop of slack and delay + NoAck.
    pub fn slack_delay(k: u32) -> Self {
        Self {
            timed: TimedPolicy::SlackDelay {
                slack_per_hop: k,
                delay_per_hop: k,
            },
            ..Self::complete_noack()
        }
    }

    /// Postponed timed circuits (`k` cycles/hop shift) + NoAck.
    pub fn postponed(k: u32) -> Self {
        Self {
            timed: TimedPolicy::Postponed {
                postpone_per_hop: k,
            },
            ..Self::complete_noack()
        }
    }

    /// Ideal upper bound (§4.8): all circuits succeed; acks eliminated.
    pub fn ideal() -> Self {
        Self {
            mode: CircuitMode::Ideal,
            timed: TimedPolicy::Untimed,
            eliminate_acks: true,
            reuse_circuits: false,
            scrounger_borrow: false,
            max_circuits_per_input: u8::MAX,
            undo_on_l2_miss: false,
        }
    }

    /// The full configuration grid of Figure 6, in presentation order.
    pub fn figure6_grid() -> Vec<MechanismConfig> {
        let mut grid = vec![
            Self::fragmented(),
            Self::complete(),
            Self::complete_noack(),
            Self::reuse_noack(),
            Self::timed_noack(),
        ];
        for k in [1, 2, 4] {
            grid.push(Self::slack(k));
        }
        for k in [1, 2, 4] {
            grid.push(Self::slack_delay(k));
        }
        for k in [1, 2, 4] {
            grid.push(Self::postponed(k));
        }
        grid.push(Self::ideal());
        grid
    }

    /// The reduced configuration set of Figures 7–9.
    pub fn key_configs() -> Vec<MechanismConfig> {
        vec![
            Self::baseline(),
            Self::fragmented(),
            Self::complete(),
            Self::complete_noack(),
            Self::reuse_noack(),
            Self::timed_noack(),
            Self::slack_delay(1),
            Self::postponed(1),
            Self::ideal(),
        ]
    }

    /// `true` when any circuit machinery is active.
    pub fn circuits_enabled(&self) -> bool {
        self.mode != CircuitMode::None
    }

    /// Number of virtual channels in the *reply* virtual network for this
    /// configuration: baseline 2, fragmented 3 (extra circuit VC, §4.2),
    /// complete/ideal 2 (one of which is the circuit VC).
    pub fn reply_vcs(&self) -> usize {
        match self.mode {
            CircuitMode::Fragmented => 3,
            _ => 2,
        }
    }

    /// Number of *circuit-class* VCs in the reply VN (0 baseline,
    /// 2 fragmented, 1 complete/ideal).
    pub fn circuit_vcs(&self) -> usize {
        match self.mode {
            CircuitMode::None => 0,
            CircuitMode::Fragmented => 2,
            CircuitMode::Complete | CircuitMode::Ideal => 1,
        }
    }

    /// `true` when the circuit VC keeps flit buffers (fragmented and ideal
    /// keep them; complete removes them — that is the area saving).
    pub fn circuit_vc_buffered(&self) -> bool {
        matches!(self.mode, CircuitMode::Fragmented | CircuitMode::Ideal)
    }

    /// Short label matching the paper's figure legends.
    pub fn label(&self) -> String {
        match self.mode {
            CircuitMode::None => "Baseline".to_owned(),
            CircuitMode::Ideal => "Ideal".to_owned(),
            CircuitMode::Fragmented => "Fragmented".to_owned(),
            CircuitMode::Complete => {
                let base = match self.timed {
                    TimedPolicy::Untimed => {
                        if self.reuse_circuits && self.scrounger_borrow {
                            "ReuseBorrow".to_owned()
                        } else if self.reuse_circuits {
                            "Reuse".to_owned()
                        } else {
                            "Complete".to_owned()
                        }
                    }
                    TimedPolicy::Exact => "Timed".to_owned(),
                    TimedPolicy::Slack { slack_per_hop } => format!("Slack_{slack_per_hop}"),
                    TimedPolicy::SlackDelay { slack_per_hop, .. } => {
                        format!("SlackDelay_{slack_per_hop}")
                    }
                    TimedPolicy::Postponed { postpone_per_hop } => {
                        format!("Postponed_{postpone_per_hop}")
                    }
                };
                if self.eliminate_acks {
                    format!("{base}_NoAck")
                } else {
                    base
                }
            }
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when options are combined in ways the
    /// mechanism cannot support (e.g. timed fragmented circuits, NoAck
    /// without complete circuits).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.timed.is_timed() && !self.mode.is_complete() {
            return Err(ConfigError::TimedRequiresComplete);
        }
        if self.eliminate_acks && !self.mode.is_complete() {
            return Err(ConfigError::NoAckRequiresComplete);
        }
        if self.reuse_circuits && self.mode != CircuitMode::Complete {
            return Err(ConfigError::ReuseRequiresComplete);
        }
        if self.scrounger_borrow && !self.reuse_circuits {
            return Err(ConfigError::BorrowRequiresReuse);
        }
        if self.circuits_enabled() && self.max_circuits_per_input == 0 {
            return Err(ConfigError::ZeroCircuitStorage);
        }
        Ok(())
    }
}

impl Default for MechanismConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

impl fmt::Display for MechanismConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Errors from validating configuration values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// A mesh dimension was zero.
    EmptyMesh,
    /// The mesh has more nodes than `NodeId` can address.
    MeshTooLarge,
    /// A square mesh was requested for a non-square core count.
    NotSquare(u16),
    /// Timed reservations only work with complete circuits (§4.7).
    TimedRequiresComplete,
    /// ACK elimination relies on the never-blocking guarantee of complete
    /// circuits (§4.6).
    NoAckRequiresComplete,
    /// Scrounger reuse needs the buffer guarantees of complete circuits
    /// (§4.5).
    ReuseRequiresComplete,
    /// Circuits enabled but zero storage entries per input port.
    ZeroCircuitStorage,
    /// Borrowing scroungers only make sense with reuse enabled.
    BorrowRequiresReuse,
    /// A fault-injection rate is NaN, negative or greater than one. The
    /// payload names the offending knob.
    FaultRate(&'static str),
    /// A scheduled fault (stuck port / dead link / dead router) has an
    /// explicit duration of zero cycles — it would never take effect.
    FaultWindow,
    /// A scheduled fault references topology that does not exist (node out
    /// of bounds, non-adjacent link pair, `Local` stuck port). The payload
    /// names the problem.
    FaultTopology(&'static str),
    /// An adaptive-policy knob violates its invariants (zero decision
    /// epoch, zero regions, inverted hysteresis band). The payload names
    /// the problem.
    AdaptivePolicy(&'static str),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::EmptyMesh => f.write_str("mesh dimensions must be non-zero"),
            ConfigError::MeshTooLarge => f.write_str("mesh exceeds the 16-bit node id space"),
            ConfigError::NotSquare(n) => write!(f, "{n} cores is not a square mesh"),
            ConfigError::TimedRequiresComplete => {
                f.write_str("timed reservations require complete circuits")
            }
            ConfigError::NoAckRequiresComplete => {
                f.write_str("ack elimination requires complete circuits")
            }
            ConfigError::ReuseRequiresComplete => {
                f.write_str("circuit reuse requires complete circuits")
            }
            ConfigError::ZeroCircuitStorage => {
                f.write_str("circuits enabled with zero storage per input port")
            }
            ConfigError::BorrowRequiresReuse => {
                f.write_str("borrowing scroungers require circuit reuse")
            }
            ConfigError::FaultRate(knob) => {
                write!(f, "fault rate `{knob}` must be a finite value in [0, 1]")
            }
            ConfigError::FaultWindow => {
                f.write_str("scheduled faults need a non-zero (or permanent) duration")
            }
            ConfigError::FaultTopology(what) => {
                write!(f, "scheduled fault references invalid topology: {what}")
            }
            ConfigError::AdaptivePolicy(what) => {
                write!(f, "adaptive policy misconfigured: {what}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_configs_are_valid() {
        let mut all = MechanismConfig::figure6_grid();
        all.extend(MechanismConfig::key_configs());
        for cfg in all {
            cfg.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.label()));
        }
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(MechanismConfig::baseline().label(), "Baseline");
        assert_eq!(MechanismConfig::fragmented().label(), "Fragmented");
        assert_eq!(MechanismConfig::complete().label(), "Complete");
        assert_eq!(MechanismConfig::complete_noack().label(), "Complete_NoAck");
        assert_eq!(MechanismConfig::reuse_noack().label(), "Reuse_NoAck");
        assert_eq!(
            MechanismConfig::reuse_borrow_noack().label(),
            "ReuseBorrow_NoAck"
        );
        assert_eq!(MechanismConfig::timed_noack().label(), "Timed_NoAck");
        assert_eq!(MechanismConfig::slack(2).label(), "Slack_2_NoAck");
        assert_eq!(
            MechanismConfig::slack_delay(1).label(),
            "SlackDelay_1_NoAck"
        );
        assert_eq!(MechanismConfig::postponed(4).label(), "Postponed_4_NoAck");
        assert_eq!(MechanismConfig::ideal().label(), "Ideal");
    }

    #[test]
    fn invalid_combinations_rejected() {
        let mut cfg = MechanismConfig::fragmented();
        cfg.timed = TimedPolicy::Exact;
        assert_eq!(cfg.validate(), Err(ConfigError::TimedRequiresComplete));

        let mut cfg = MechanismConfig::fragmented();
        cfg.eliminate_acks = true;
        assert_eq!(cfg.validate(), Err(ConfigError::NoAckRequiresComplete));

        let mut cfg = MechanismConfig::baseline();
        cfg.reuse_circuits = true;
        assert_eq!(cfg.validate(), Err(ConfigError::ReuseRequiresComplete));

        let mut cfg = MechanismConfig::complete();
        cfg.max_circuits_per_input = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroCircuitStorage));

        let mut cfg = MechanismConfig::complete_noack();
        cfg.scrounger_borrow = true;
        assert_eq!(cfg.validate(), Err(ConfigError::BorrowRequiresReuse));
        MechanismConfig::reuse_borrow_noack()
            .validate()
            .expect("borrow config valid");
    }

    #[test]
    fn vc_counts_per_mode() {
        assert_eq!(MechanismConfig::baseline().reply_vcs(), 2);
        assert_eq!(MechanismConfig::baseline().circuit_vcs(), 0);
        assert_eq!(MechanismConfig::fragmented().reply_vcs(), 3);
        assert_eq!(MechanismConfig::fragmented().circuit_vcs(), 2);
        assert_eq!(MechanismConfig::complete().reply_vcs(), 2);
        assert_eq!(MechanismConfig::complete().circuit_vcs(), 1);
        assert!(MechanismConfig::fragmented().circuit_vc_buffered());
        assert!(!MechanismConfig::complete().circuit_vc_buffered());
        assert!(MechanismConfig::ideal().circuit_vc_buffered());
    }

    #[test]
    fn timed_policy_budgets() {
        let p = TimedPolicy::Slack { slack_per_hop: 2 };
        assert_eq!(p.slack(6), 12);
        assert_eq!(p.max_delay(6), 0);
        let p = TimedPolicy::SlackDelay {
            slack_per_hop: 1,
            delay_per_hop: 3,
        };
        assert_eq!(p.slack(4), 4);
        assert_eq!(p.max_delay(4), 12);
        let p = TimedPolicy::Postponed {
            postpone_per_hop: 2,
        };
        assert_eq!(p.postponement(5), 10);
        assert_eq!(p.slack(5), 0);
        assert!(!TimedPolicy::Untimed.is_timed());
        assert!(TimedPolicy::Exact.is_timed());
    }

    #[test]
    fn grid_sizes() {
        assert_eq!(MechanismConfig::figure6_grid().len(), 15);
        assert_eq!(MechanismConfig::key_configs().len(), 9);
    }
}
