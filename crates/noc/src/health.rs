//! Progress watchdog and structured health reporting.
//!
//! The network keeps a small amount of always-on bookkeeping — the cycle
//! of the last flit movement and the set of in-flight packets — from
//! which [`crate::Network::health`] assembles a [`HealthReport`] on
//! demand: whether the fabric has stalled (in-flight traffic but no flit
//! moved for [`WatchdogConfig::stall_window`] cycles, i.e. deadlock or
//! livelock), the oldest in-flight messages, per-NI backlogs,
//! circuit-table entries that look leaked, and the fault-injection
//! counters. The bookkeeping is pure observation: it never changes what
//! the network does, so a fault-free run with the watchdog enabled is
//! bit-identical to one without it.

use crate::fault::FaultStats;
use crate::flit::PacketId;
use rcsim_core::circuit::CircuitKey;
use rcsim_core::{Cycle, MessageClass, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Watchdog thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WatchdogConfig {
    /// Cycles without any flit movement (while packets are in flight)
    /// after which the network is declared stalled.
    pub stall_window: Cycle,
    /// Age in cycles after which a circuit-table entry is reported as a
    /// suspected leak.
    pub leak_age: Cycle,
    /// Cap on the stuck messages and leaked entries listed in a report.
    pub max_report_entries: usize,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            stall_window: 1_000,
            leak_age: 4_000,
            max_report_entries: 8,
        }
    }
}

/// One in-flight message, as listed by a [`HealthReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StuckMessage {
    /// Packet id.
    pub packet: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Message class.
    pub class: MessageClass,
    /// Cycles since the packet was enqueued at its source NI.
    pub age: Cycle,
    /// End-to-end retransmissions issued for it so far.
    pub retries: u32,
}

/// A circuit-table entry older than [`WatchdogConfig::leak_age`]: either a
/// reservation whose reply never came (e.g. dropped by a fault without a
/// complete undo) or a circuit wedged mid-use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeakedCircuit {
    /// Router holding the entry.
    pub node: NodeId,
    /// Input port index of the entry (0–3 the network directions, 4+ the
    /// router's local ports).
    pub in_port: usize,
    /// The circuit's key.
    pub key: CircuitKey,
    /// Cycles since the entry was reserved.
    pub age: Cycle,
    /// `true` if a reply started streaming over it and never finished.
    pub in_use: bool,
}

/// Counters from the adaptive runtime-policy controller (all zero when
/// adaptation is disabled — the default).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdaptiveReport {
    /// Decision epochs the controller has run.
    pub decisions: u64,
    /// Regions switched calm→hot.
    pub hot_switches: u64,
    /// Regions switched hot→calm.
    pub calm_switches: u64,
    /// Circuit-table entries torn down by calm→hot mechanism switches.
    pub circuits_torn_on_switch: u64,
    /// Packets sent on a congestion-aware detour (DOR path healthy but
    /// crossing a hot region; distinct from fault reroutes).
    pub congestion_detours: u64,
    /// Requests that skipped circuit construction because their reply
    /// path crossed a hot region (the path-sensitive mechanism switch).
    #[serde(default)]
    pub circuits_suppressed: u64,
    /// Regions hot at the time the report was taken.
    pub hot_regions: u64,
}

/// Structured snapshot of network liveness, produced by
/// [`crate::Network::health`] and attached to simulation results.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Cycle the report was taken.
    pub cycle: Cycle,
    /// `true` when in-flight traffic exists but nothing has moved for at
    /// least the stall window — deadlock or livelock.
    pub stalled: bool,
    /// Last cycle any flit moved (arrival, ejection or delivery).
    pub last_progress: Cycle,
    /// Packets injected but not yet delivered or abandoned.
    pub in_flight: u64,
    /// Total packets queued at source NIs, waiting to enter the network.
    pub ni_backlog: u64,
    /// `true` when nothing at all is left in the network (end-of-run
    /// quiescence check).
    pub quiescent: bool,
    /// Age of the oldest in-flight packet, if any.
    pub oldest_age: Option<Cycle>,
    /// The oldest in-flight messages (oldest first, capped).
    pub stuck_messages: Vec<StuckMessage>,
    /// Suspected circuit-table leaks (capped).
    pub leaked_circuits: Vec<LeakedCircuit>,
    /// Fault-injection counters (all zero when faults are disabled).
    pub faults: FaultStats,
    /// Links currently dead (sorted `(min, max)` pairs, capped like the
    /// stuck/leaked lists).
    #[serde(default)]
    pub dead_links: Vec<(NodeId, NodeId)>,
    /// Routers currently dead (sorted, capped).
    #[serde(default)]
    pub dead_routers: Vec<NodeId>,
    /// Coherence requests reissued by L1s whose reply never arrived
    /// (filled in by the system layer; zero for bare-network runs).
    #[serde(default)]
    pub l1_reissues: u64,
    /// Open-loop ingress ledger: admit/reject/shed counters, queue
    /// high-water marks and time in overload (all zero when no ingress
    /// layer is configured).
    #[serde(default)]
    pub overload: crate::ingress::OverloadReport,
    /// Adaptive-policy controller counters (all zero when the adaptive
    /// block is absent — the default).
    #[serde(default)]
    pub adaptive: AdaptiveReport,
    /// Wait-for-graph diagnosis: present only when the network is
    /// stalled *and* the diagnoser found a genuine circular wait among
    /// channel resources (see [`DeadlockReport`]). Boxed so the common
    /// healthy report stays small.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub deadlock: Option<Box<DeadlockReport>>,
}

/// One resource in a detected wait-for cycle: a blocked input VC, what
/// it holds and what it is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeadlockResource {
    /// Router of the blocked input VC.
    pub node: NodeId,
    /// Input port of the blocked VC (0–3 network directions, 4+ local).
    pub in_port: usize,
    /// Input VC index — the buffer this packet *holds*.
    pub vc: usize,
    /// Head packet occupying the VC.
    pub packet: Option<PacketId>,
    /// Output port the head's route points at — the channel it *wants*.
    pub wants_port: usize,
    /// Output VC allocated to it, if VC allocation succeeded before the
    /// wedge (the wait is then a credit wait; otherwise a VA wait).
    pub out_vc: Option<usize>,
    /// Credits left on the allocated output VC (0 in a credit wait).
    pub credits: u32,
    /// Circuit reservation pinning the wanted output port, if any — a
    /// circuit hold participating in the cycle.
    pub held_by_circuit: Option<CircuitKey>,
}

/// A cycle in the network's wait-for graph, built by the watchdog's
/// deadlock diagnoser when a stall fires: nodes are input-VC channel
/// resources, and an edge runs from a blocked VC to the resource it
/// waits on (the downstream VC it needs credits from, or the same-router
/// VC that owns its wanted output). A report is only attached when an
/// actual cycle exists, so livelocks and lost-credit wedges — stalls
/// with no circular wait — stay distinguishable.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeadlockReport {
    /// The blocked resources forming the cycle, in wait order: each
    /// entry waits on the next, and the last waits on the first. Capped
    /// at [`WatchdogConfig::max_report_entries`].
    pub resources: Vec<DeadlockResource>,
    /// Full length of the detected cycle (exceeds `resources.len()`
    /// when truncated).
    pub cycle_len: usize,
    /// `true` when `resources` was truncated to the cap.
    pub truncated: bool,
}

impl HealthReport {
    /// `true` when the report shows nothing suspicious: no stall, no
    /// suspected leaks, nothing abandoned.
    pub fn healthy(&self) -> bool {
        !self.stalled && self.leaked_circuits.is_empty() && self.faults.packets_abandoned == 0
    }
}

impl fmt::Display for HealthReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "health @ cycle {}: {}",
            self.cycle,
            if self.stalled {
                "STALLED"
            } else if self.quiescent {
                "quiescent"
            } else {
                "progressing"
            }
        )?;
        writeln!(
            f,
            "  in flight: {} packets, {} queued at NIs, last progress at cycle {}",
            self.in_flight, self.ni_backlog, self.last_progress
        )?;
        if let Some(age) = self.oldest_age {
            writeln!(f, "  oldest in-flight message: {age} cycles")?;
        }
        for m in &self.stuck_messages {
            writeln!(
                f,
                "  stuck: {:?} {} {}->{} age {} retries {}",
                m.packet, m.class, m.src, m.dst, m.age, m.retries
            )?;
        }
        for l in &self.leaked_circuits {
            writeln!(
                f,
                "  leaked circuit: {}/{} key ({}, {:#x}) age {}{}",
                l.node,
                l.in_port,
                l.key.requestor,
                l.key.block,
                l.age,
                if l.in_use { " (in use)" } else { "" }
            )?;
        }
        if self.faults != FaultStats::default() {
            writeln!(
                f,
                "  faults: {} pkts dropped, {} corrupted, {} credits lost, \
                 {} table entries hit, {} retransmissions, {} abandoned",
                self.faults.packets_dropped,
                self.faults.packets_corrupted,
                self.faults.credits_lost,
                self.faults.table_entries_corrupted,
                self.faults.retransmissions,
                self.faults.packets_abandoned
            )?;
        }
        if !self.dead_links.is_empty() || !self.dead_routers.is_empty() {
            writeln!(
                f,
                "  degraded topology: {} dead links {:?}, {} dead routers {:?}; \
                 {} packets rerouted, {} circuits torn, {} flits lost on dead links",
                self.dead_links.len(),
                self.dead_links
                    .iter()
                    .map(|(a, b)| (a.0, b.0))
                    .collect::<Vec<_>>(),
                self.dead_routers.len(),
                self.dead_routers.iter().map(|n| n.0).collect::<Vec<_>>(),
                self.faults.packets_rerouted,
                self.faults.circuits_torn,
                self.faults.dead_flits_lost
            )?;
        }
        if self.l1_reissues > 0 {
            writeln!(f, "  l1 reissues: {}", self.l1_reissues)?;
        }
        if self.overload.offered > 0 {
            writeln!(f, "  ingress: {}", self.overload)?;
        }
        if let Some(d) = &self.deadlock {
            writeln!(
                f,
                "  DEADLOCK: circular wait over {} channel resources{}:",
                d.cycle_len,
                if d.truncated {
                    " (listing truncated)"
                } else {
                    ""
                }
            )?;
            for r in &d.resources {
                write!(
                    f,
                    "    {}/in{}/vc{} holds {:?}, wants out{}",
                    r.node, r.in_port, r.vc, r.packet, r.wants_port
                )?;
                match r.out_vc {
                    Some(ov) => write!(f, " vc{ov} ({} credits)", r.credits)?,
                    None => write!(f, " (no VC allocated)")?,
                }
                if let Some(k) = r.held_by_circuit {
                    write!(f, ", pinned by circuit ({}, {:#x})", k.requestor, k.block)?;
                }
                writeln!(f)?;
            }
        }
        if self.adaptive.decisions > 0 {
            writeln!(
                f,
                "  adaptive: {} decisions, {} hot / {} calm switches ({} hot now), \
                 {} circuits torn on switch, {} suppressed, {} congestion detours",
                self.adaptive.decisions,
                self.adaptive.hot_switches,
                self.adaptive.calm_switches,
                self.adaptive.hot_regions,
                self.adaptive.circuits_torn_on_switch,
                self.adaptive.circuits_suppressed,
                self.adaptive.congestion_detours
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_report_is_healthy() {
        let r = HealthReport::default();
        assert!(r.healthy());
        assert!(!r.stalled);
    }

    #[test]
    fn display_mentions_stall() {
        let r = HealthReport {
            cycle: 500,
            stalled: true,
            ..HealthReport::default()
        };
        let s = r.to_string();
        assert!(s.contains("STALLED"), "{s}");
        assert!(!r.healthy());
    }
}
