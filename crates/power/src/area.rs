//! Router area model (Table 6).

use rcsim_core::{CircuitMode, MechanismConfig};
use serde::{Deserialize, Serialize};

/// Router ports in a mesh (N/E/S/W/Local).
const PORTS: f64 = 5.0;
/// Flit width in bits (16 B flits).
const FLIT_BITS: f64 = 128.0;
/// VC buffer depth in flits (Table 4).
const BUFFER_DEPTH: f64 = 5.0;
/// Request-VN VCs (constant across configurations).
const REQ_VCS: f64 = 2.0;

/// Area units per SRAM buffer bit (the normalization unit).
const SRAM_BIT: f64 = 1.0;
/// Crossbar coefficient: `PORTS² · FLIT_BITS · XBAR_K` makes the crossbar
/// ≈ 28/40 of the baseline buffer area.
const XBAR_K: f64 = 2.8;
/// Allocator area grows with the square of the VC count (the VC allocator
/// arbitrates all input VCs against all output VCs).
const ALLOC_K: f64 = 240.0;
/// Fixed pipeline registers, control, clocking (≈ 20% of baseline).
const OTHER: f64 = 6400.0;
/// Circuit-table bits cost slightly more than buffer SRAM per bit: they
/// are latch-based and searched associatively by circuit key (§4.1).
const TABLE_BIT: f64 = 1.1;
/// Bits of a cache-line address stored per circuit entry (block@).
const BLOCK_ADDR_BITS: f64 = 26.0;
/// Output-port field + built bit.
const ENTRY_CTRL_BITS: f64 = 4.0;
/// Each timed entry needs two countdown counters (§4.7) plus the compare
/// logic, modelled as an equivalent bit count.
const TIMED_BITS_PER_ENTRY: f64 = 34.0;

/// Component-wise router area, in normalized units.
///
/// # Examples
///
/// ```
/// use rcsim_core::MechanismConfig;
/// use rcsim_power::{area_savings, RouterArea};
///
/// let a = RouterArea::for_mechanism(&MechanismConfig::fragmented(), 64);
/// assert!(a.circuit_tables > 0.0);
/// // Fragmented adds a buffered VC: area grows (negative savings).
/// assert!(area_savings(&MechanismConfig::fragmented(), 64) < 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouterArea {
    /// Input flit buffers.
    pub buffers: f64,
    /// Crossbar switch.
    pub crossbar: f64,
    /// VC + switch allocators.
    pub allocators: f64,
    /// Circuit-information storage (destID, block@, outport, B bit, and
    /// the timed counters where applicable).
    pub circuit_tables: f64,
    /// Pipeline registers, control and clock overhead.
    pub other: f64,
}

impl RouterArea {
    /// The router area for a mechanism configuration in a chip of
    /// `cores` tiles (the core count fixes the destination-id width).
    pub fn for_mechanism(mechanism: &MechanismConfig, cores: usize) -> Self {
        let reply_vcs = mechanism.reply_vcs() as f64;
        let total_vcs = REQ_VCS + reply_vcs;
        // Complete circuits remove the buffer from the circuit VC (§4.2).
        let buffered_vcs = if mechanism.circuit_vc_buffered() {
            total_vcs
        } else {
            total_vcs - mechanism.circuit_vcs() as f64
        };
        let buffers = PORTS * buffered_vcs * BUFFER_DEPTH * FLIT_BITS * SRAM_BIT;
        let crossbar = PORTS * PORTS * FLIT_BITS * XBAR_K;
        let allocators = ALLOC_K * total_vcs * total_vcs;

        let entries = match mechanism.mode {
            CircuitMode::None => 0.0,
            // The ideal router is explicitly unimplementable (§4.8); give
            // it the complete router's storage for accounting purposes.
            CircuitMode::Ideal => 5.0,
            _ => mechanism.max_circuits_per_input as f64,
        };
        let dest_bits = (cores.max(2) as f64).log2().ceil();
        let mut entry_bits = dest_bits + BLOCK_ADDR_BITS + ENTRY_CTRL_BITS;
        if mechanism.timed.is_timed() {
            entry_bits += TIMED_BITS_PER_ENTRY;
        }
        let circuit_tables = PORTS * entries * entry_bits * TABLE_BIT;

        RouterArea {
            buffers,
            crossbar,
            allocators,
            circuit_tables,
            other: OTHER,
        }
    }

    /// Total router area.
    pub fn total(&self) -> f64 {
        self.buffers + self.crossbar + self.allocators + self.circuit_tables + self.other
    }

    /// Fraction of the router taken by each component.
    pub fn shares(&self) -> [(&'static str, f64); 5] {
        let t = self.total();
        [
            ("buffers", self.buffers / t),
            ("crossbar", self.crossbar / t),
            ("allocators", self.allocators / t),
            ("circuit_tables", self.circuit_tables / t),
            ("other", self.other / t),
        ]
    }
}

/// Router area savings of a mechanism relative to the baseline router
/// (positive = smaller router), as reported in Table 6.
pub fn area_savings(mechanism: &MechanismConfig, cores: usize) -> f64 {
    let base = RouterArea::for_mechanism(&MechanismConfig::baseline(), cores).total();
    let m = RouterArea::for_mechanism(mechanism, cores).total();
    (base - m) / base
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_shares_match_dsent_profile() {
        let a = RouterArea::for_mechanism(&MechanismConfig::baseline(), 64);
        let shares = a.shares();
        let pct = |name: &str| {
            shares
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, s)| *s)
                .unwrap()
        };
        assert!(
            (0.35..=0.45).contains(&pct("buffers")),
            "buffers {}",
            pct("buffers")
        );
        assert!((0.22..=0.34).contains(&pct("crossbar")));
        assert!((0.08..=0.16).contains(&pct("allocators")));
        assert_eq!(pct("circuit_tables"), 0.0);
    }

    #[test]
    fn table6_shape_holds() {
        for cores in [16usize, 64] {
            let frag = area_savings(&MechanismConfig::fragmented(), cores);
            let complete = area_savings(&MechanismConfig::complete(), cores);
            let timed = area_savings(&MechanismConfig::timed_noack(), cores);
            assert!(
                frag < -0.10,
                "fragmented grows the router ({frag:.3}, {cores} cores)"
            );
            assert!(
                (0.03..=0.10).contains(&complete),
                "complete saves ~6% ({complete:.3}, {cores} cores)"
            );
            assert!(
                timed > 0.0 && timed < complete,
                "timed saves less than complete ({timed:.3} vs {complete:.3})"
            );
        }
    }

    #[test]
    fn savings_decrease_with_core_count() {
        // Wider destination ids make the tables bigger: 64-core savings are
        // no larger than 16-core savings (matches Table 6).
        let c16 = area_savings(&MechanismConfig::complete(), 16);
        let c64 = area_savings(&MechanismConfig::complete(), 64);
        assert!(c64 <= c16);
        let t16 = area_savings(&MechanismConfig::timed_noack(), 16);
        let t64 = area_savings(&MechanismConfig::timed_noack(), 64);
        assert!(t64 <= t16);
    }

    #[test]
    fn baseline_saves_nothing() {
        assert_eq!(area_savings(&MechanismConfig::baseline(), 64), 0.0);
    }

    #[test]
    fn noack_does_not_change_area() {
        // ACK elimination is a protocol change, not a router change.
        assert_eq!(
            area_savings(&MechanismConfig::complete(), 64),
            area_savings(&MechanismConfig::complete_noack(), 64)
        );
    }
}
