//! Offline stand-in for rand_chacha: `ChaCha8Rng` is a deterministic
//! SplitMix64-based stream (not actual ChaCha, but seed-stable and
//! uniform enough for simulation use).

use rand::{RngCore, SeedableRng};

#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    state: u64,
    stream: u64,
}

impl ChaCha8Rng {
    /// The generator's full internal state, for checkpointing. Restoring
    /// via [`ChaCha8Rng::from_state_words`] continues the exact stream.
    pub fn state_words(&self) -> (u64, u64) {
        (self.state, self.stream)
    }

    /// Rebuilds a generator from [`ChaCha8Rng::state_words`] output.
    pub fn from_state_words(state: u64, stream: u64) -> Self {
        ChaCha8Rng { state, stream }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state ^ self.stream;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];
    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = 0x6A09_E667_F3BC_C908u64;
        let mut stream = 0xBB67_AE85_84CA_A73Bu64;
        for (i, chunk) in seed.chunks(8).enumerate() {
            let mut b = [0u8; 8];
            b[..chunk.len()].copy_from_slice(chunk);
            let w = u64::from_le_bytes(b);
            if i % 2 == 0 {
                state = mix(state ^ w);
            } else {
                stream = mix(stream ^ w);
            }
        }
        ChaCha8Rng { state, stream }
    }
}

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    z = (z ^ (z >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    z ^ (z >> 33)
}

/// Alias used by some call sites; same generator.
pub type ChaCha12Rng = ChaCha8Rng;
/// Alias used by some call sites; same generator.
pub type ChaCha20Rng = ChaCha8Rng;
