//! Figure 7 — network + queueing latency per message type (requests,
//! circuit-eligible replies, other replies) across the key mechanism
//! configurations.

use rcsim_bench::{
    app_seed_points, bench_row, cores_list, experiment_apps, run_points, save_bench_summary,
    save_json, seeds, BenchSummary, PointSpec,
};
use rcsim_core::MechanismConfig;
use rcsim_stats::Accumulator;
use rcsim_system::RunResult;

fn group(results: &[RunResult], key: &str) -> (f64, f64) {
    let net: Accumulator = results.iter().map(|r| r.latency[key].network).collect();
    let queue: Accumulator = results.iter().map(|r| r.latency[key].queueing).collect();
    (net.mean(), queue.mean())
}

fn main() {
    println!("Figure 7 — message latency by type (net + queueing, cycles)\n");
    println!("Paper landmarks: circuits cut Circuit_Rep latency sharply; NoAck");
    println!("drops NoCircuit_Rep latency (the acks vanish) and relieves the");
    println!("non-circuit VC; Postponed forces waits; requests are unchanged.\n");

    // One flat job list over the whole (cores × mechanism × app × seed)
    // grid: the sweep runner fans it across RC_JOBS workers and returns
    // results in submission order, which the loops below re-chunk.
    let grid: Vec<(u16, MechanismConfig)> = cores_list()
        .into_iter()
        .flat_map(|c| {
            MechanismConfig::key_configs()
                .into_iter()
                .map(move |m| (c, m))
        })
        .collect();
    let specs: Vec<PointSpec> = grid
        .iter()
        .flat_map(|&(c, m)| app_seed_points(c, m, 1))
        .collect();
    let per_point = experiment_apps().len() * seeds().len();
    let all = run_points(&specs);
    let mut chunks = all.chunks(per_point);

    let mut raw = Vec::new();
    let mut summary = BenchSummary::new("fig7");
    for cores in cores_list() {
        println!("== {cores} cores ==");
        println!(
            "{:<22} {:>14} {:>16} {:>18} {:>8}",
            "configuration", "Request", "Circuit_Rep", "NoCircuit_Rep", "load"
        );
        println!(
            "{:<22} {:>7} {:>6} {:>9} {:>6} {:>11} {:>6} {:>8}",
            "", "net", "queue", "net", "queue", "net", "queue", "f/n/100c"
        );
        for mechanism in MechanismConfig::key_configs() {
            let results = chunks.next().expect("grid-aligned result chunks");
            let (rq_n, rq_q) = group(results, "Request");
            let (cr_n, cr_q) = group(results, "Circuit_Rep");
            let (nc_n, nc_q) = group(results, "NoCircuit_Rep");
            let load: Accumulator = results.iter().map(|r| r.load).collect();
            println!(
                "{:<22} {:>7.1} {:>6.1} {:>9.1} {:>6.1} {:>11.1} {:>6.1} {:>8.2}",
                mechanism.label(),
                rq_n,
                rq_q,
                cr_n,
                cr_q,
                nc_n,
                nc_q,
                load.mean()
            );
            let mut row = bench_row(&mechanism.label(), cores, results);
            row.extra.insert("request_net".into(), rq_n);
            row.extra.insert("circuit_rep_net".into(), cr_n);
            row.extra.insert("nocircuit_rep_net".into(), nc_n);
            row.extra.insert("load".into(), load.mean());
            summary.push(row);
            raw.push((cores, mechanism.label(), rq_n, cr_n, nc_n, cr_q));
        }
        // §4.1 diagnostic: circuit set-up takes ~5 cycles per request hop.
        println!(
            "(§4.1: paper reports ~19-cycle avg circuit set-up at 16 cores, ~59 at 64;\n\
             here requests pipeline at 5 cycles/hop, so set-up tracks request latency)\n"
        );
    }
    save_json("fig7", &raw);
    save_bench_summary(&mut summary);
}
