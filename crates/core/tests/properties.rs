//! Property-based tests for the core geometry, routing and circuit-table
//! invariants.

use proptest::prelude::*;
use rcsim_core::circuit::timing::TimeWindow;
use rcsim_core::circuit::{CircuitKey, ReserveRequest, RouterCircuits};
use rcsim_core::routing::{next_hop, route_path, Routing};
use rcsim_core::{CircuitMode, Direction, Mesh, NodeId};

fn mesh_and_pair() -> impl Strategy<Value = (Mesh, NodeId, NodeId)> {
    (2u16..=8, 2u16..=8).prop_flat_map(|(w, h)| {
        let n = w * h;
        (Just(Mesh::new(w, h).expect("valid dims")), 0..n, 0..n)
            .prop_map(|(m, a, b)| (m, NodeId(a), NodeId(b)))
    })
}

proptest! {
    /// DOR paths are minimal and end where they should.
    #[test]
    fn dor_paths_minimal((mesh, a, b) in mesh_and_pair()) {
        for algo in [Routing::Xy, Routing::Yx] {
            let p = route_path(&mesh, a, b, algo);
            prop_assert_eq!(p.len() as u32, mesh.distance(a, b) + 1);
            prop_assert_eq!(*p.first().expect("non-empty"), a);
            prop_assert_eq!(*p.last().expect("non-empty"), b);
            // Consecutive path elements are mesh neighbours.
            for w in p.windows(2) {
                prop_assert_eq!(mesh.distance(w[0], w[1]), 1);
            }
        }
    }

    /// The property Reactive Circuits is built on: the XY path there is
    /// the YX path back, reversed (§4.1).
    #[test]
    fn xy_equals_reversed_yx((mesh, a, b) in mesh_and_pair()) {
        let fwd = route_path(&mesh, a, b, Routing::Xy);
        let mut back = route_path(&mesh, b, a, Routing::Yx);
        back.reverse();
        prop_assert_eq!(fwd, back);
    }

    /// next_hop never points across the mesh edge.
    #[test]
    fn next_hop_stays_inside((mesh, a, b) in mesh_and_pair()) {
        let d = next_hop(&mesh, a, b, Routing::Xy);
        if a == b {
            prop_assert_eq!(d, Direction::Local);
        } else {
            prop_assert!(mesh.neighbor(a, d).is_some());
        }
    }

    /// Window overlap is symmetric and consistent with an exhaustive
    /// cycle-by-cycle check.
    #[test]
    fn window_overlap_is_exact(s1 in 0u64..50, l1 in 0u64..10, s2 in 0u64..50, l2 in 0u64..10) {
        let a = TimeWindow::new(s1, s1 + l1);
        let b = TimeWindow::new(s2, s2 + l2);
        let brute = (s1..s1 + l1).any(|t| t >= s2 && t < s2 + l2);
        prop_assert_eq!(a.overlaps(&b), brute);
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
    }
}

/// A random reservation workload against the complete-circuit rules.
#[derive(Debug, Clone)]
struct Op {
    key_block: u64,
    source: u16,
    in_port: usize,
    out_port: usize,
    release: bool,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0u64..32, 0u16..16, 0usize..5, 0usize..5, prop::bool::ANY).prop_map(
            |(key_block, source, in_port, out_port, release)| Op {
                key_block,
                source,
                in_port,
                out_port,
                release,
            },
        ),
        0..200,
    )
}

proptest! {
    /// After any sequence of reservations and releases, the §4.2
    /// complete-circuit invariants hold: every input port's circuits share
    /// one source, and no output port is reserved from two different
    /// input ports.
    #[test]
    fn complete_rules_always_hold(ops in ops()) {
        let mut rc = RouterCircuits::new(CircuitMode::Complete, 5, 1);
        let mut live: Vec<(usize, CircuitKey, NodeId, usize)> = Vec::new();
        for op in ops {
            let key = CircuitKey { requestor: NodeId(op.source % 4), block: op.key_block * 64 };
            let in_port = op.in_port;
            let out_port = op.out_port;
            if op.release {
                if let Some(pos) = live.iter().position(|(_, k, _, _)| *k == key) {
                    let (p, k, _, _) = live.remove(pos);
                    prop_assert!(rc.release(p, k).is_some());
                }
            } else if !live.iter().any(|(_, k, _, _)| *k == key) {
                let req = ReserveRequest {
                    key,
                    source: NodeId(op.source),
                    in_port,
                    out_port,
                    window: None,
                    max_extra_shift: 0,
                };
                if rc.try_reserve(&req).is_ok() {
                    live.push((in_port, key, NodeId(op.source), out_port));
                }
            }

            // Invariant 1: same input port => same source.
            for d in 0usize..5 {
                let sources: Vec<NodeId> = live
                    .iter()
                    .filter(|(p, _, _, _)| *p == d)
                    .map(|(_, _, s, _)| *s)
                    .collect();
                prop_assert!(sources.windows(2).all(|w| w[0] == w[1]));
            }
            // Invariant 2: an output port is reserved from one input only.
            for d in 0usize..5 {
                let inputs: Vec<usize> = live
                    .iter()
                    .filter(|(_, _, _, o)| *o == d)
                    .map(|(p, _, _, _)| *p)
                    .collect();
                prop_assert!(inputs.windows(2).all(|w| w[0] == w[1]));
            }
            // Capacity: at most 5 per input port.
            for d in 0usize..5 {
                prop_assert!(rc.occupancy(d) <= 5);
            }
        }
    }

    /// Ideal mode accepts everything and undo always finds what was
    /// reserved.
    #[test]
    fn ideal_reserve_then_undo(ops in ops()) {
        let mut rc = RouterCircuits::new(CircuitMode::Ideal, 5, 1);
        let mut keys = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            let key = CircuitKey {
                requestor: NodeId(op.source),
                block: i as u64 * 64,
            };
            rc.try_reserve(&ReserveRequest {
                key,
                source: NodeId(op.source),
                in_port: op.in_port,
                out_port: op.out_port,
                window: None,
                max_extra_shift: 0,
            })
            .expect("ideal never fails");
            keys.push(key);
        }
        for key in keys {
            prop_assert!(rc.undo(key).is_some());
        }
        prop_assert_eq!(rc.total_entries(), 0);
    }
}
