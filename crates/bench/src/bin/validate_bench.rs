//! Validates every `target/experiments/BENCH_*.json` summary against the
//! checked-in contract `scripts/bench_schema.json`, then re-checks the
//! semantic invariants through [`rcsim_trace::BenchSummary::validate`].
//!
//! Usage: `validate_bench [file.json ...]` — with no arguments, scans
//! `target/experiments/`. `RC_BENCH_SCHEMA` overrides the schema path.
//! Exits non-zero when any file fails or no summaries are found, so CI's
//! smoke step (`scripts/ci.sh`) catches a bench binary that silently
//! stops writing its summary.

use rcsim_trace::{BenchSummary, BENCH_SCHEMA_VERSION};
use serde_json::Value;
use std::path::{Path, PathBuf};

/// `true` when `v`'s JSON kind satisfies the schema's `expected` kind
/// (`number` accepts integers too — the parser keeps them distinct).
fn kind_matches(v: &Value, expected: &str) -> bool {
    match expected {
        "number" => matches!(v.kind(), "number" | "integer"),
        k => v.kind() == k,
    }
}

/// Checks `doc` against one `required`-style map of `field -> kind`.
fn check_fields(doc: &Value, spec: &Value, what: &str, problems: &mut Vec<String>) {
    let Some(entries) = spec.as_object() else {
        problems.push(format!("schema's `{what}` section is not an object"));
        return;
    };
    for (field, expected) in entries {
        let Some(expected) = expected.as_str() else {
            problems.push(format!("schema `{what}.{field}` is not a kind string"));
            continue;
        };
        match doc.get(field) {
            None => problems.push(format!("{what}: missing field `{field}`")),
            Some(v) if !kind_matches(v, expected) => problems.push(format!(
                "{what}: field `{field}` is {}, expected {expected}",
                v.kind()
            )),
            Some(_) => {}
        }
    }
}

/// Structural pass (shape per the schema) + semantic pass (the summary's
/// own invariants); returns every problem found.
fn validate_file(path: &Path, schema: &Value) -> Vec<String> {
    let mut problems = Vec::new();
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return vec![format!("unreadable: {e}")],
    };
    let doc: Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => return vec![format!("not valid JSON: {e}")],
    };

    check_fields(
        &doc,
        schema.get("required").unwrap_or(&Value::Null),
        "summary",
        &mut problems,
    );
    if let Some(rows) = doc.get("rows").and_then(Value::as_array) {
        let row_spec = schema.get("row_required").unwrap_or(&Value::Null);
        for (i, row) in rows.iter().enumerate() {
            check_fields(row, row_spec, &format!("rows[{i}]"), &mut problems);
        }
    }
    if let Some(v) = doc.get("schema_version").and_then(Value::as_u64) {
        if v != u64::from(BENCH_SCHEMA_VERSION) {
            problems.push(format!(
                "schema_version {v} != supported {BENCH_SCHEMA_VERSION}"
            ));
        }
    }
    if !problems.is_empty() {
        return problems; // shape is wrong; typed decode would only add noise
    }

    match serde_json::from_str::<BenchSummary>(&text) {
        Ok(summary) => problems.extend(summary.validate()),
        Err(e) => problems.push(format!("does not decode as BenchSummary: {e}")),
    }
    problems
}

fn summary_files() -> Vec<PathBuf> {
    let args: Vec<PathBuf> = std::env::args().skip(1).map(PathBuf::from).collect();
    if !args.is_empty() {
        return args;
    }
    let mut found = Vec::new();
    if let Ok(dir) = std::fs::read_dir("target/experiments") {
        for entry in dir.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("BENCH_") && name.ends_with(".json") {
                found.push(entry.path());
            }
        }
    }
    found.sort();
    found
}

fn main() {
    let schema_path =
        std::env::var("RC_BENCH_SCHEMA").unwrap_or_else(|_| "scripts/bench_schema.json".to_owned());
    let schema: Value = match std::fs::read_to_string(&schema_path)
        .map_err(|e| e.to_string())
        .and_then(|t| serde_json::from_str(&t).map_err(|e| e.to_string()))
    {
        Ok(v) => v,
        Err(e) => {
            eprintln!("validate_bench: cannot load schema {schema_path}: {e}");
            std::process::exit(2);
        }
    };

    let files = summary_files();
    if files.is_empty() {
        eprintln!(
            "validate_bench: no BENCH_*.json summaries found \
             (run a bench binary first, e.g. `cargo run -p rcsim-bench --bin fig6`)"
        );
        std::process::exit(1);
    }

    let mut failed = false;
    for path in &files {
        let problems = validate_file(path, &schema);
        if problems.is_empty() {
            println!("ok   {}", path.display());
        } else {
            failed = true;
            println!("FAIL {}", path.display());
            for p in problems {
                println!("       - {p}");
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "({} summaries validated against {schema_path})",
        files.len()
    );
}
