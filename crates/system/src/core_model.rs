//! Trace-driven, in-order, IPC-1 cores (Table 2: UltraSPARC-class,
//! single-threaded, blocking on misses).

use rcsim_core::Cycle;
use rcsim_workload::{CoreTrace, TraceOp};
use serde::{Deserialize, Serialize};

/// What the core is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum CoreState {
    /// Executing non-memory instructions until the given cycle, after
    /// which the pending memory reference accesses the L1.
    Compute { until: Cycle },
    /// Blocked on an outstanding L1 miss.
    WaitMiss,
}

/// One in-order core: retires one instruction per cycle, accesses the L1
/// after each compute gap, and stalls on misses.
#[derive(Debug, Clone)]
pub struct Core {
    trace: CoreTrace,
    state: CoreState,
    pending: Option<TraceOp>,
    /// Instructions retired since the last stats reset (the performance
    /// metric behind the paper's Figure 9/10 speedups: fixed measurement
    /// window, more instructions = faster execution).
    pub instructions: u64,
    /// Monotonic per-core value source for store data tokens.
    pub write_counter: u64,
    id: u16,
}

/// What the core wants to do this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreAction {
    /// Still computing (or stalled); nothing for the memory system.
    Idle,
    /// Issue this reference to the L1 now.
    Access {
        /// Referenced line.
        block: u64,
        /// `true` for a store.
        write: bool,
        /// Store value token.
        value: u64,
    },
}

impl Core {
    /// A core running `trace`.
    pub fn new(id: u16, trace: CoreTrace) -> Self {
        Self {
            trace,
            state: CoreState::Compute { until: 0 },
            pending: None,
            instructions: 0,
            write_counter: 0,
            id,
        }
    }

    /// Advances to `now` and reports whether an L1 access should issue.
    /// The chip must answer an `Access` with [`Core::access_hit`] or
    /// [`Core::access_missed`] in the same cycle.
    pub fn poll(&mut self, now: Cycle, l1_hit_latency: u32) -> CoreAction {
        match self.state {
            CoreState::WaitMiss => CoreAction::Idle,
            CoreState::Compute { until } => {
                if now < until {
                    return CoreAction::Idle;
                }
                let Some(op) = self.pending.take() else {
                    let op = self.trace.next_op();
                    // The compute gap plus the L1 lookup occupy the core.
                    self.instructions += op.gap as u64;
                    self.state = CoreState::Compute {
                        until: now + op.gap as Cycle + l1_hit_latency as Cycle,
                    };
                    self.pending = Some(op);
                    return CoreAction::Idle;
                };
                let value = if op.write {
                    self.write_counter += 1;
                    ((self.id as u64) << 48) | self.write_counter
                } else {
                    0
                };
                CoreAction::Access {
                    block: op.block,
                    write: op.write,
                    value,
                }
            }
        }
    }

    /// The issued access hit: the memory instruction retires.
    pub fn access_hit(&mut self, now: Cycle) {
        self.instructions += 1;
        self.state = CoreState::Compute { until: now };
    }

    /// The issued access missed: stall until [`Core::miss_done`].
    pub fn access_missed(&mut self) {
        self.state = CoreState::WaitMiss;
    }

    /// The outstanding miss completed; the instruction retires after the
    /// fill-to-use latency.
    pub fn miss_done(&mut self, now: Cycle, l1_hit_latency: u32) {
        debug_assert_eq!(self.state, CoreState::WaitMiss);
        self.instructions += 1;
        self.state = CoreState::Compute {
            until: now + l1_hit_latency as Cycle,
        };
    }

    /// `true` while blocked on a miss.
    pub fn stalled(&self) -> bool {
        self.state == CoreState::WaitMiss
    }

    /// The earliest cycle at which [`Core::poll`] can do anything but
    /// return [`CoreAction::Idle`] without mutating state. While blocked
    /// on a miss this is `Cycle::MAX` — only [`Core::miss_done`] (driven
    /// by a network delivery) can unblock the core. The event kernel
    /// skips polling cores whose `ready_at` lies in the future; such a
    /// poll is a pure no-op, so skipping cannot change observable state.
    pub fn ready_at(&self) -> Cycle {
        match self.state {
            CoreState::WaitMiss => Cycle::MAX,
            CoreState::Compute { until } => until,
        }
    }

    /// The full dynamic state, for checkpointing. The trace itself is
    /// config-derived (rebuilt from the workload name); only its RNG
    /// position is captured.
    pub(crate) fn snapshot(&self) -> CoreSnapshot {
        CoreSnapshot {
            trace_rng: self.trace.rng_state(),
            state: self.state,
            pending: self.pending,
            instructions: self.instructions,
            write_counter: self.write_counter,
        }
    }

    /// Overwrites the dynamic state from a [`Core::snapshot`] taken on a
    /// core running the same trace.
    pub(crate) fn restore(&mut self, snap: &CoreSnapshot) {
        self.trace.set_rng_state(snap.trace_rng);
        self.state = snap.state;
        self.pending = snap.pending;
        self.instructions = snap.instructions;
        self.write_counter = snap.write_counter;
    }
}

/// Complete dynamic state of one [`Core`], for checkpointing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct CoreSnapshot {
    trace_rng: (u64, u64),
    state: CoreState,
    pending: Option<TraceOp>,
    instructions: u64,
    write_counter: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcsim_workload::Workload;

    fn core() -> Core {
        let wl = Workload::by_name("fft", 1, 3).unwrap();
        Core::new(0, wl.core_trace(0))
    }

    #[test]
    fn issues_after_gap() {
        let mut c = core();
        let mut now = 0;
        let mut issued = None;
        for _ in 0..5000 {
            match c.poll(now, 2) {
                CoreAction::Idle => now += 1,
                a @ CoreAction::Access { .. } => {
                    issued = Some(a);
                    break;
                }
            }
        }
        assert!(issued.is_some(), "the core eventually issues a reference");
    }

    #[test]
    fn hit_keeps_running_miss_stalls() {
        let mut c = core();
        let mut now = 0;
        while let CoreAction::Idle = c.poll(now, 2) {
            now += 1;
        }
        let before = c.instructions;
        c.access_missed();
        assert!(c.stalled());
        assert_eq!(c.poll(now, 2), CoreAction::Idle);
        c.miss_done(now + 100, 2);
        assert!(!c.stalled());
        assert_eq!(c.instructions, before + 1);
    }

    #[test]
    fn store_values_are_unique_and_tagged() {
        let mut c = core();
        let mut now = 0;
        let mut values = Vec::new();
        while values.len() < 5 {
            match c.poll(now, 2) {
                CoreAction::Idle => now += 1,
                CoreAction::Access { write, value, .. } => {
                    if write {
                        values.push(value);
                    }
                    c.access_hit(now);
                }
            }
        }
        let mut dedup = values.clone();
        dedup.dedup();
        assert_eq!(dedup, values, "store tokens are monotonic");
        assert!(values.iter().all(|v| v >> 48 == 0), "core 0 tag");
    }
}
