//! Conservation stress tests: under randomized request/reply load, every
//! configuration must deliver every packet exactly once and drain.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcsim_core::circuit::CircuitKey;
use rcsim_core::{MechanismConfig, Mesh, MessageClass, NodeId};
use rcsim_noc::{Network, NocConfig, PacketSpec};
use std::collections::HashMap;

/// Drives a request/reply workload: requests 0-N fan out, each delivered
/// request triggers its data reply (with circuit key), each delivered data
/// reply triggers an ack unless the reply rode a circuit under NoAck.
fn drive(mechanism: MechanismConfig, cores: u16, requests: usize, seed: u64) {
    let mesh = Mesh::square(cores).unwrap();
    let mut net = Network::new(NocConfig::paper_baseline(mesh, mechanism)).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let n = mesh.nodes() as u16;

    let mut to_send: Vec<PacketSpec> = (0..requests)
        .map(|i| {
            let src = NodeId(rng.gen_range(0..n));
            let dst = loop {
                let d = NodeId(rng.gen_range(0..n));
                if d != src {
                    break d;
                }
            };
            PacketSpec::new(src, dst, MessageClass::L1Request).with_block((i as u64 + 1) * 64)
        })
        .collect();

    let mut outstanding: HashMap<u64, ()> = HashMap::new();
    let mut completed = 0usize;
    let mut acks_expected = 0usize;
    let mut acks_done = 0usize;

    let mut cycle = 0u64;
    while (completed < requests || acks_done < acks_expected) && cycle < 200_000 {
        // Inject a couple of requests per cycle.
        for _ in 0..2 {
            if let Some(spec) = to_send.pop() {
                outstanding.insert(spec.block, ());
                net.inject(spec);
            }
        }
        net.tick();
        cycle += 1;
        for (node, d) in net.take_all_delivered() {
            match d.class {
                MessageClass::L1Request => {
                    // Respond with the data reply, riding the circuit when
                    // available.
                    let key = CircuitKey {
                        requestor: d.src,
                        block: d.block,
                    };
                    let (_, committed) = net.inject(
                        PacketSpec::new(node, d.src, MessageClass::L2Reply)
                            .with_block(d.block)
                            .with_circuit_key(key),
                    );
                    if committed && mechanism.eliminate_acks {
                        net.record_eliminated_ack();
                    } else {
                        acks_expected += 1;
                    }
                }
                MessageClass::L2Reply => {
                    assert!(
                        outstanding.remove(&d.block).is_some(),
                        "duplicate or unknown reply for block {:#x}",
                        d.block
                    );
                    completed += 1;
                    // The requestor acknowledges unless the ack was
                    // eliminated (decided at reply injection).
                    if !(mechanism.eliminate_acks && d.rode_circuit) {
                        net.inject(
                            PacketSpec::new(node, d.src, MessageClass::L1DataAck)
                                .with_block(d.block),
                        );
                    }
                }
                MessageClass::L1DataAck => {
                    acks_done += 1;
                }
                other => panic!("unexpected class {other}"),
            }
        }
    }

    assert_eq!(
        completed,
        requests,
        "{} lost replies after {cycle} cycles ({})",
        requests - completed,
        mechanism.label()
    );
    assert_eq!(acks_done, acks_expected, "{}", mechanism.label());

    // Let everything drain.
    for _ in 0..5_000 {
        net.tick();
    }
    let s = net.stats();
    assert_eq!(
        s.total_injected(),
        s.total_delivered(),
        "undelivered packets under {}",
        mechanism.label()
    );
    assert!(
        net.is_quiescent(),
        "network not quiescent under {}",
        mechanism.label()
    );
}

#[test]
fn baseline_conserves_packets() {
    drive(MechanismConfig::baseline(), 16, 300, 11);
}

#[test]
fn fragmented_conserves_packets() {
    drive(MechanismConfig::fragmented(), 16, 300, 12);
}

#[test]
fn complete_conserves_packets() {
    drive(MechanismConfig::complete(), 16, 300, 13);
}

#[test]
fn complete_noack_conserves_packets() {
    drive(MechanismConfig::complete_noack(), 16, 300, 14);
}

#[test]
fn reuse_noack_conserves_packets() {
    drive(MechanismConfig::reuse_noack(), 16, 300, 15);
}

#[test]
fn reuse_borrow_conserves_packets() {
    drive(MechanismConfig::reuse_borrow_noack(), 16, 300, 23);
}

#[test]
fn timed_noack_conserves_packets() {
    drive(MechanismConfig::timed_noack(), 16, 300, 16);
}

#[test]
fn slack_delay_conserves_packets() {
    drive(MechanismConfig::slack_delay(1), 16, 300, 17);
}

#[test]
fn postponed_conserves_packets() {
    drive(MechanismConfig::postponed(1), 16, 300, 18);
}

#[test]
fn ideal_conserves_packets() {
    drive(MechanismConfig::ideal(), 16, 300, 19);
}

#[test]
fn complete_noack_conserves_packets_64_cores() {
    drive(MechanismConfig::complete_noack(), 64, 500, 20);
}

#[test]
fn slack_delay_conserves_packets_64_cores() {
    drive(MechanismConfig::slack_delay(1), 64, 500, 21);
}
