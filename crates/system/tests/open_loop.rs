//! Open-loop overload layer: kernel equivalence, determinism and
//! conservation (ISSUE 6). Every external arrival must be accounted for
//! at every load point — below the admission knee, past saturation, and
//! with admission disabled — and the dense and event kernels must agree
//! byte for byte on runs that include open-loop traffic.

use rcsim_core::MechanismConfig;
use rcsim_system::{
    run_sim, run_sim_traced_with_kernel, run_sim_with_kernel, ArrivalProcess, KernelMode,
    OpenLoopConfig, RunResult, SimConfig, TraceConfig,
};
use rcsim_trace::EventKind;

/// A quick overload config: Poisson arrivals at `rate`/cycle/edge with
/// the admission capacity pinned at 0.1/cycle/edge, so `rate` > 0.1 is
/// past saturation by construction.
fn overload_cfg(rate: f64, admission: bool) -> SimConfig {
    let mut ol = OpenLoopConfig::poisson(rate);
    ol.ingress.tokens_per_kilocycle = 103; // ~0.1/cycle/edge capacity
    ol.ingress.admission = admission;
    ol.ingress.shed_timeout = 800; // sheds fire inside the short window
    SimConfig {
        seed: 0x0BEE,
        warmup_cycles: 500,
        measure_cycles: 2_500,
        open_loop: Some(ol),
        ..SimConfig::quick(16, MechanismConfig::complete_noack(), "blackscholes")
    }
}

/// Conservation + bounded-queue checks every open-loop run must pass.
fn assert_conserved(r: &RunResult, label: &str) {
    let e = &r.external;
    assert!(!r.health.stalled, "{label}: stalled");
    assert!(e.offered > 0, "{label}: streams produced nothing");
    assert_eq!(
        e.unaccounted, 0,
        "{label}: conservation violated (offered {} completed {} shed {} \
         gave_up {} in_flight {})",
        e.offered, e.completed, e.shed, e.gave_up, e.in_flight
    );
    let cap = r.health.overload.depth_high_water;
    assert!(cap <= 32, "{label}: queue bound exceeded ({cap} > 32)");
}

#[test]
fn conservation_holds_below_and_past_saturation() {
    for rate in [0.02, 0.1, 0.3, 0.6] {
        for admission in [true, false] {
            let cfg = overload_cfg(rate, admission);
            let r = run_sim(&cfg).expect("open-loop run");
            assert_conserved(&r, &format!("rate {rate} admission {admission}"));
        }
    }
}

#[test]
fn past_saturation_sheds_and_rejects_but_never_stalls() {
    // 6× the admission capacity: the bucket and the queue bound must both
    // engage, and the run must still terminate with the books balanced.
    let r = run_sim(&overload_cfg(0.6, true)).expect("past-saturation run");
    assert_conserved(&r, "6x overload");
    let e = &r.external;
    assert!(e.rejected > 0, "no rejections under 6x overload");
    assert!(e.completed > 0, "nothing completed under overload");
    assert!(
        r.health.overload.time_in_overload > 0,
        "overload time never accumulated"
    );
    // The retry budget is finite, so sustained overload forces give-ups.
    assert!(e.gave_up > 0, "no client ever exhausted its retry budget");
}

#[test]
fn bursty_overload_exercises_the_shed_path() {
    // Backpressure that never clears (threshold 0): admitted arrivals can
    // never be released into the NI, so each one must leave through the
    // explicit shed path once it goes stale — never silently.
    let mut cfg = overload_cfg(0.0, true);
    let ol = cfg.open_loop.as_mut().unwrap();
    ol.process = ArrivalProcess::Bursty {
        rate_on: 0.8,
        rate_off: 0.0,
        mean_on: 300,
        mean_off: 300,
    };
    ol.ingress.backpressure_threshold = 0;
    let r = run_sim(&cfg).expect("bursty run");
    assert_conserved(&r, "bursty");
    assert!(
        r.external.shed > 0,
        "a blocked drain must trip the shed timeout"
    );
    assert_eq!(
        r.external.completed, 0,
        "nothing can complete when the drain never releases"
    );
}

#[test]
fn kernels_agree_on_open_loop_runs() {
    // Below the knee, past saturation, and with admission off: the full
    // serialized RunResult (external summary and overload report
    // included) must be byte-identical across kernels.
    for (rate, admission) in [(0.05, true), (0.4, true), (0.4, false)] {
        let cfg = overload_cfg(rate, admission);
        let dense = run_sim_with_kernel(&cfg, KernelMode::Dense).expect("dense");
        let event = run_sim_with_kernel(&cfg, KernelMode::Event).expect("event");
        assert_eq!(
            serde_json::to_string(&dense).unwrap(),
            serde_json::to_string(&event).unwrap(),
            "kernels diverged at rate {rate}, admission {admission}"
        );
        assert_conserved(&dense, &format!("kernel-diff rate {rate}"));
    }
}

#[test]
fn same_seed_is_bit_identical_and_seeds_decorrelate() {
    let cfg = overload_cfg(0.3, true);
    let a = run_sim(&cfg).expect("run a");
    let b = run_sim(&cfg).expect("run b");
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "same seed must reproduce the run bit for bit"
    );
    let mut other = cfg.clone();
    other.seed ^= 0xDEAD;
    let c = run_sim(&other).expect("run c");
    assert_ne!(
        a.external.offered, 0,
        "sanity: the streams actually produced arrivals"
    );
    assert_ne!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&c).unwrap(),
        "different seeds must produce different arrival streams"
    );
}

#[test]
fn ingress_decisions_are_traced_never_silent() {
    let trace = TraceConfig {
        capacity: 1 << 20,
        epoch: 0,
    };
    let cfg = overload_cfg(0.6, true);
    let (r, tr) = run_sim_traced_with_kernel(&cfg, &trace, KernelMode::Event).expect("traced run");
    assert_conserved(&r, "traced overload");
    let mut admits = 0u64;
    let mut rejects = 0u64;
    let mut sheds = 0u64;
    for e in &tr.events {
        match e.kind {
            EventKind::IngressAdmit { .. } => admits += 1,
            EventKind::IngressReject { .. } => rejects += 1,
            EventKind::IngressShed { .. } => sheds += 1,
            _ => {}
        }
    }
    assert!(admits > 0, "no admit events traced");
    assert!(rejects > 0, "no reject events traced under 6x overload");
    // The measure window's reject count must match the traced stream:
    // nothing is dropped without an event. (Counters are cumulative from
    // cycle 0; the trace covers the measure window, so compare deltas is
    // not possible here — instead require at least as many counted
    // rejections as traced ones.)
    assert!(
        r.external.rejected >= rejects,
        "traced more rejections than were counted"
    );
    let _ = sheds; // shed timing is load-dependent; presence not required here
}

#[test]
fn closed_loop_runs_report_zero_external_traffic() {
    let cfg = SimConfig {
        warmup_cycles: 300,
        measure_cycles: 1_000,
        ..SimConfig::quick(16, MechanismConfig::complete_noack(), "blackscholes")
    };
    let r = run_sim(&cfg).expect("closed-loop run");
    let e = &r.external;
    assert_eq!(
        (e.offered, e.completed, e.rejected, e.shed, e.in_flight),
        (0, 0, 0, 0, 0),
        "closed-loop runs must carry no external traffic"
    );
    assert_eq!(r.health.overload.offered, 0);
}

#[test]
fn open_loop_works_on_rectangular_meshes() {
    // 32 cores → 8×4 mesh: the west edge is the x=0 column (4 nodes).
    let mut cfg = overload_cfg(0.2, true);
    cfg.cores = 32;
    cfg.measure_cycles = 1_500;
    let r = run_sim(&cfg).expect("rectangular-mesh run");
    assert_conserved(&r, "32-core mesh");
}
