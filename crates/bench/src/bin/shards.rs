//! In-tick sharding sweep: wall-clock speedup and byte-identity of the
//! `RC_SHARDS` domain-decomposed tick across {mesh size × topology ×
//! mechanism} × shard counts {1, 2, 4, 8}, composed with the event
//! kernel (`RC_KERNEL=event` semantics — the production default).
//!
//! Like the topology sweep, this drives the [`Network`] directly with a
//! closed-loop request/reply echo (the coherence protocol's sharer
//! bitmask caps full-chip runs at 64 tiles; the interesting shard
//! scaling starts above that). Every point re-runs the identical
//! workload at each shard count and **asserts** the serialized
//! statistics and fault counters are byte-for-byte identical to the
//! serial run before reporting any speedup — a perf number from a
//! diverged simulation would be meaningless.
//!
//! Speedups are honest wall-clock ratios on the current host: on a
//! single-core container the sharded runs pay thread-spawn overhead for
//! nothing and the ratio sits below 1; on a ≥4-core host the 256-core
//! points are expected to clear ~1.8× at 4 shards (ci.sh gates on a
//! softer 1.5× only when `nproc >= 4`).
//!
//! Knobs: `RC_SHARD_CYCLES` (injection window per point, default 3000),
//! `RC_SHARD_CORES` (comma list, default `64,256`), `RC_SHARD_COUNTS`
//! (comma list, default `1,2,4,8`), `RC_TOPO_WINDOW` (outstanding
//! requests per node, default 8).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcsim_bench::{save_bench_summary, save_json, BenchRow, BenchSummary};
use rcsim_core::circuit::CircuitKey;
use rcsim_core::{KernelMode, MechanismConfig, MessageClass, NodeId, Topology, TopologySpec};
use rcsim_noc::{CircuitOutcome, MessageGroup, Network, NocConfig, PacketSpec};
use std::collections::BTreeMap;
use std::time::Instant;

fn cycles() -> u64 {
    std::env::var("RC_SHARD_CYCLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3_000)
}

fn cores_list() -> Vec<u16> {
    std::env::var("RC_SHARD_CORES")
        .ok()
        .map(|s| s.split(',').filter_map(|c| c.trim().parse().ok()).collect())
        .filter(|v: &Vec<u16>| !v.is_empty())
        .unwrap_or_else(|| vec![64, 256])
}

fn shard_counts() -> Vec<usize> {
    std::env::var("RC_SHARD_COUNTS")
        .ok()
        .map(|s| s.split(',').filter_map(|c| c.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

fn window_outstanding() -> u32 {
    std::env::var("RC_TOPO_WINDOW")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
}

/// One measured run at a fixed shard count.
struct Measured {
    hit_rate: f64,
    avg_latency: f64,
    p99_latency: f64,
    p999_latency: f64,
    /// Serialized `NocStats` + fault counters: the byte-identity witness.
    fingerprint: String,
    /// Wall-clock seconds for the whole point (injection + drain).
    wall: f64,
}

/// Consumes deliveries: requests bounce back as circuit-riding data
/// replies; delivered replies release their requestor's window slot.
fn echo(net: &mut Network, outstanding: &mut [u32]) {
    for (node, d) in net.take_all_delivered() {
        match d.class {
            MessageClass::L1Request => {
                let key = CircuitKey {
                    requestor: d.src,
                    block: d.block,
                };
                net.inject(
                    PacketSpec::new(node, d.src, MessageClass::L2Reply)
                        .with_block(d.block)
                        .with_circuit_key(key),
                );
            }
            MessageClass::L2Reply => outstanding[node.0 as usize] -= 1,
            other => panic!("unexpected class {other}"),
        }
    }
}

/// Drives one {topology × mechanism} point at `shards` workers: a
/// `window`-cycle closed-loop uniform echo (per-node Bernoulli at a
/// light 0.02 requests/node/cycle, gated on a free window slot), then a
/// drain to quiescence. Identical inputs at every shard count — the RNG
/// stream, the injection schedule and the tick loop see no shard-count
/// dependence whatsoever — so the fingerprints must match.
fn run_point(
    topology: Topology,
    mechanism: MechanismConfig,
    shards: usize,
    window: u64,
) -> Measured {
    let cfg = NocConfig::paper_baseline(topology, mechanism);
    let mut net = Network::new(cfg).expect("valid config");
    net.set_kernel(KernelMode::Event);
    net.set_shards(shards);
    let started = Instant::now();
    let mut rng = StdRng::seed_from_u64(0xC1C0);
    let n = topology.nodes() as u16;
    let max_outstanding = window_outstanding();
    let mut outstanding = vec![0u32; n as usize];
    let mut block = 0u64;
    for _ in 0..window {
        for s in 0..n {
            if outstanding[s as usize] < max_outstanding && rng.gen_bool(0.02) {
                let src = NodeId(s);
                let dst = loop {
                    let d = NodeId(rng.gen_range(0..n));
                    if d != src {
                        break d;
                    }
                };
                block += 64;
                net.inject(PacketSpec::new(src, dst, MessageClass::L1Request).with_block(block));
                outstanding[s as usize] += 1;
            }
        }
        net.tick();
        echo(&mut net, &mut outstanding);
    }
    let deadline = net.now() + 200 * window + 2_000_000;
    while !net.is_quiescent() && net.now() < deadline {
        net.tick();
        echo(&mut net, &mut outstanding);
    }
    let wall = started.elapsed().as_secs_f64();
    let health = net.health();
    assert!(
        net.is_quiescent(),
        "{}/{} @ {shards} shards: not quiescent after drain\n{health}",
        topology.label(),
        mechanism.label()
    );
    let stats = net.stats();
    let fingerprint = format!(
        "{}|{}",
        serde_json::to_string(&stats).expect("stats serialize"),
        serde_json::to_string(&net.fault_stats()).expect("fault stats serialize"),
    );
    let lat = stats.network_latency.get(&MessageGroup::CircuitRep);
    Measured {
        hit_rate: stats.outcome_fraction(CircuitOutcome::OnCircuit),
        avg_latency: lat.map_or(0.0, |l| l.mean()),
        p99_latency: lat.and_then(|l| l.p99()).unwrap_or(0.0),
        p999_latency: lat.and_then(|l| l.p999()).unwrap_or(0.0),
        fingerprint,
        wall,
    }
}

fn main() {
    let window = cycles();
    let counts = shard_counts();
    let mechanisms = [
        ("baseline", MechanismConfig::baseline()),
        ("complete", MechanismConfig::complete()),
    ];
    let specs = [
        TopologySpec::Mesh,
        TopologySpec::Torus,
        TopologySpec::CMesh { concentration: 4 },
        TopologySpec::Ring,
    ];
    println!("In-tick sharding sweep (RC_SHARD_CYCLES={window}, shard counts {counts:?})\n");
    println!(
        "{:<10} {:>6} {:<10} {:>10} speedup per shard count",
        "topology", "cores", "mechanism", "serial s"
    );
    let mut summary = BenchSummary::new("shards");
    let mut raw = Vec::new();
    for spec in specs {
        for &cores in &cores_list() {
            let topology = spec.build(cores).expect("sweep sizes fit every shape");
            for (name, mechanism) in mechanisms {
                let mut serial: Option<Measured> = None;
                let mut extra = BTreeMap::new();
                let mut speedups = String::new();
                for &shards in &counts {
                    let m = run_point(topology, mechanism, shards, window);
                    extra.insert(format!("wall_s_shards{shards}"), m.wall);
                    if let Some(s) = &serial {
                        assert_eq!(
                            s.fingerprint,
                            m.fingerprint,
                            "{}/{name}/c{cores}: {shards} shards diverged from serial",
                            topology.label()
                        );
                        let speedup = s.wall / m.wall.max(1e-9);
                        extra.insert(format!("speedup_shards{shards}"), speedup);
                        speedups.push_str(&format!("  x{shards}:{speedup:>5.2}"));
                        raw.push((topology.label(), cores, name, shards, m.wall, speedup));
                    } else {
                        raw.push((topology.label(), cores, name, shards, m.wall, 1.0));
                        serial = Some(m);
                    }
                }
                let s = serial.expect("shard counts include the serial run");
                println!(
                    "{:<10} {:>6} {:<10} {:>9.2}s {}",
                    topology.label(),
                    cores,
                    name,
                    s.wall,
                    speedups
                );
                summary.push(BenchRow {
                    label: format!("{}/{name}/c{cores}", topology.label()),
                    cores: cores as usize,
                    topology: topology.label(),
                    avg_latency: s.avg_latency,
                    p99_latency: s.p99_latency,
                    p999_latency: s.p999_latency,
                    circuit_hit_rate: s.hit_rate.clamp(0.0, 1.0),
                    extra,
                });
            }
        }
    }
    println!("\n(every shard count is asserted byte-identical to the serial run before");
    println!(" its speedup is reported; sub-1.0 speedups mean the host has fewer");
    println!(" usable cores than shards)");
    save_json("shard_sweep", &raw);
    save_bench_summary(&mut summary);
}
