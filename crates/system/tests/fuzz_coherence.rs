//! Randomized coherence fuzzing: random chips, mechanisms and schedules,
//! with the single-writer/inclusion invariants checked repeatedly during
//! execution (not just at the end).

use proptest::prelude::*;
use rcsim_core::{MechanismConfig, Mesh, Topology};
use rcsim_protocol::ProtocolConfig;
use rcsim_system::Chip;
use rcsim_workload::Workload;

fn any_mechanism() -> impl Strategy<Value = MechanismConfig> {
    prop_oneof![
        Just(MechanismConfig::baseline()),
        Just(MechanismConfig::fragmented()),
        Just(MechanismConfig::complete()),
        Just(MechanismConfig::complete_noack()),
        Just(MechanismConfig::reuse_noack()),
        Just(MechanismConfig::timed_noack()),
        Just(MechanismConfig::slack_delay(2)),
        Just(MechanismConfig::postponed(1)),
        Just(MechanismConfig::ideal()),
    ]
}

fn any_app() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("canneal"),
        Just("fft"),
        Just("ocean_ncp"),
        Just("swaptions"),
        Just("mix"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn invariants_hold_throughout_execution(
        mechanism in any_mechanism(),
        app in any_app(),
        seed in 0u64..1000,
        checks in 3usize..8,
    ) {
        let mesh: Topology = Mesh::square(16).expect("square").into();
        let wl = Workload::by_name(app, 16, seed).expect("known app");
        let mut chip = Chip::new(
            mesh,
            mechanism,
            ProtocolConfig::small_for_tests(&mesh),
            &wl,
        )
        .expect("valid configuration");
        let mut last_instructions = 0;
        for phase in 0..checks {
            chip.run(1_500).expect("chip run must not stall");
            let violations = chip.coherence_violations();
            prop_assert!(
                violations.is_empty(),
                "{} / {app} / seed {seed} phase {phase}: {violations:?}",
                mechanism.label()
            );
            let now = chip.instructions();
            prop_assert!(
                now > last_instructions,
                "{} / {app}: no forward progress in phase {phase}",
                mechanism.label()
            );
            last_instructions = now;
        }
    }
}
