//! Offline stand-in for proptest: deterministic random testing without
//! shrinking. Covers the API surface this workspace uses: `proptest!`
//! (with optional `#![proptest_config(..)]`), `Strategy` with
//! `prop_map`/`prop_flat_map`/`boxed`, range and tuple strategies,
//! `Just`, `prop_oneof!`, `prop::collection::vec`, `prop::bool::ANY`,
//! `any::<T>()`, and the `prop_assert*`/`prop_assume!` macros.

use std::rc::Rc;

pub mod test_runner {
    /// Deterministic RNG driving case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x853C_49E6_748F_EA9B,
            }
        }
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Outcome of one generated case body.
    #[derive(Debug)]
    pub enum TestCaseError {
        Reject(String),
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail<S: Into<String>>(msg: S) -> Self {
            TestCaseError::Fail(msg.into())
        }
        pub fn reject<S: Into<String>>(msg: S) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Subset of proptest's runner configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::rc::Rc;

    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        fn prop_filter<F: Fn(&Self::Value) -> bool>(self, _why: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }
    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }
    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }
    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive candidates");
        }
    }

    /// Type-erased strategy.
    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);
    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }
    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice among same-typed branch strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }
    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one branch");
            Union { options }
        }
    }
    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Strategy producing one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);
    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for f64 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_f64()
    }
}

/// Strategy for `any::<T>()`.
pub struct Any<T>(std::marker::PhantomData<T>);
impl<T: Arbitrary> strategy::Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Size specification for `vec`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }
    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }
    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let n = self.size.lo + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;
    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    pub const ANY: BoolAny = BoolAny;
}

/// Namespace mirror of proptest's `prop` module.
pub mod prop {
    pub use super::bool;
    pub use super::collection;
}

pub mod prelude {
    pub use super::prop;
    pub use super::any;
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::test_runner::Config as ProptestConfig;
    pub use super::test_runner::TestCaseError;
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

#[doc(hidden)]
pub fn __run_cases<S: strategy::Strategy>(
    cfg: &test_runner::Config,
    strat: &S,
    mut body: impl FnMut(S::Value) -> Result<(), test_runner::TestCaseError>,
) {
    let mut rng = test_runner::TestRng::deterministic();
    let mut executed = 0u32;
    let mut attempts = 0u32;
    while executed < cfg.cases && attempts < cfg.cases.saturating_mul(20).max(100) {
        attempts += 1;
        let value = strat.generate(&mut rng);
        match body(value) {
            Ok(()) => executed += 1,
            Err(test_runner::TestCaseError::Reject(_)) => continue,
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!("proptest case failed: {msg}")
            }
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg = $cfg;
                let strat = ($($strat,)+);
                $crate::__run_cases(&cfg, &strat, |values| {
                    let ($($arg,)+) = values;
                    $body
                    Ok(())
                });
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

// Keep Rc used even if BoxedStrategy is unused downstream.
#[allow(dead_code)]
type _RcUse = Rc<()>;
