//! Network-interface behaviours: circuit commitment serialization, timed
//! injection windows, flit-count overrides and outcome accounting.

use rcsim_core::circuit::CircuitKey;
use rcsim_core::{MechanismConfig, Mesh, MessageClass, NodeId};
use rcsim_noc::{CircuitOutcome, Network, NocConfig, PacketSpec};

fn net(mechanism: MechanismConfig) -> Network {
    Network::new(NocConfig::paper_baseline(
        Mesh::new(4, 4).unwrap(),
        mechanism,
    ))
    .unwrap()
}

fn run(n: &mut Network, cycles: u64) {
    for _ in 0..cycles {
        n.tick();
    }
}

fn build_circuit(n: &mut Network, src: u16, dst: u16, block: u64) -> CircuitKey {
    n.inject(PacketSpec::new(NodeId(src), NodeId(dst), MessageClass::L1Request).with_block(block));
    for _ in 0..200 {
        n.tick();
        if !n.take_delivered(NodeId(dst)).is_empty() {
            return CircuitKey {
                requestor: NodeId(src),
                block,
            };
        }
    }
    panic!("request never delivered");
}

#[test]
fn two_circuit_replies_from_one_ni_serialize() {
    // Two circuits from the same source NI (same-source circuits may share
    // input ports, §4.2); both replies committed back-to-back must both
    // arrive intact — the NI streams them one at a time.
    let mut n = net(MechanismConfig::complete());
    let k1 = build_circuit(&mut n, 0, 15, 0x40);
    let k2 = build_circuit(&mut n, 4, 15, 0x80);
    let (_, c1) = n.inject(
        PacketSpec::new(NodeId(15), NodeId(0), MessageClass::L2Reply)
            .with_block(0x40)
            .with_circuit_key(k1),
    );
    let (_, c2) = n.inject(
        PacketSpec::new(NodeId(15), NodeId(4), MessageClass::L2Reply)
            .with_block(0x80)
            .with_circuit_key(k2),
    );
    assert!(c1 && c2, "both replies commit");
    run(&mut n, 300);
    assert_eq!(n.take_delivered(NodeId(0)).len(), 1);
    assert_eq!(n.take_delivered(NodeId(4)).len(), 1);
    let s = n.stats();
    assert_eq!(s.outcomes.get(&CircuitOutcome::OnCircuit), Some(&2));
}

#[test]
fn flit_override_shrinks_a_data_class_message() {
    // The MEMORY ack of an L2 write-back is a single flit even though the
    // class usually carries a line; it must still ride its circuit.
    let mut n = net(MechanismConfig::complete());
    n.inject(
        PacketSpec::new(NodeId(0), NodeId(15), MessageClass::MemWbData)
            .with_block(0x40)
            .with_turnaround(20),
    );
    run(&mut n, 120);
    assert_eq!(n.take_delivered(NodeId(15)).len(), 1);
    let key = CircuitKey {
        requestor: NodeId(0),
        block: 0x40,
    };
    assert!(n.has_circuit_origin(NodeId(15), key));
    let (_, committed) = n.inject(
        PacketSpec::new(NodeId(15), NodeId(0), MessageClass::MemoryReply)
            .with_block(0x40)
            .with_circuit_key(key)
            .with_flits(1),
    );
    assert!(committed);
    run(&mut n, 120);
    let d = n.take_delivered(NodeId(0));
    assert_eq!(d.len(), 1);
    assert!(d[0].rode_circuit);
}

#[test]
fn without_outcome_suppresses_classification() {
    let mut n = net(MechanismConfig::complete());
    n.inject(
        PacketSpec::new(NodeId(3), NodeId(12), MessageClass::L1ToL1)
            .with_block(0x40)
            .without_outcome(),
    );
    run(&mut n, 200);
    assert_eq!(n.take_delivered(NodeId(12)).len(), 1);
    assert_eq!(n.stats().total_reply_outcomes(), 0);
}

#[test]
fn baseline_mode_never_commits_or_registers() {
    let mut n = net(MechanismConfig::baseline());
    n.inject(PacketSpec::new(NodeId(0), NodeId(15), MessageClass::L1Request).with_block(0x40));
    run(&mut n, 100);
    let d = n.take_delivered(NodeId(15));
    assert_eq!(d.len(), 1);
    assert!(d[0].circuit.is_none(), "baseline requests build nothing");
    let key = CircuitKey {
        requestor: NodeId(0),
        block: 0x40,
    };
    assert!(!n.has_circuit_origin(NodeId(15), key));
    let (_, committed) = n.inject(
        PacketSpec::new(NodeId(15), NodeId(0), MessageClass::L2Reply)
            .with_block(0x40)
            .with_circuit_key(key),
    );
    assert!(!committed);
}

#[test]
fn undo_of_unknown_circuit_reports_false() {
    let mut n = net(MechanismConfig::complete());
    let key = CircuitKey {
        requestor: NodeId(1),
        block: 0x999,
    };
    assert!(!n.undo_circuit(NodeId(5), key));
    // No outcome recorded for a no-op undo.
    assert_eq!(n.stats().total_reply_outcomes(), 0);
}

#[test]
fn timed_commit_respects_queue_occupancy() {
    // Two timed replies committed at once: the second must start after the
    // first's flits, and both still fit their windows when slack allows.
    let mut n = net(MechanismConfig::slack(4));
    // Build both circuits concurrently so neither window has expired by
    // the time the replies are ready.
    n.inject(PacketSpec::new(NodeId(0), NodeId(15), MessageClass::L1Request).with_block(0x40));
    n.inject(PacketSpec::new(NodeId(4), NodeId(15), MessageClass::L1Request).with_block(0x80));
    let mut got = 0;
    for _ in 0..200 {
        n.tick();
        got += n.take_delivered(NodeId(15)).len();
        if got == 2 {
            break;
        }
    }
    assert_eq!(got, 2);
    let k1 = CircuitKey {
        requestor: NodeId(0),
        block: 0x40,
    };
    let k2 = CircuitKey {
        requestor: NodeId(4),
        block: 0x80,
    };
    run(&mut n, 7);
    let (_, c1) = n.inject(
        PacketSpec::new(NodeId(15), NodeId(0), MessageClass::L2Reply)
            .with_block(0x40)
            .with_circuit_key(k1),
    );
    let (_, c2) = n.inject(
        PacketSpec::new(NodeId(15), NodeId(4), MessageClass::L2Reply)
            .with_block(0x80)
            .with_circuit_key(k2),
    );
    assert!(c1, "first reply commits inside its window");
    // The second may commit (slack absorbs the 5-flit wait) — and if it
    // does, it must actually arrive riding.
    run(&mut n, 400);
    assert_eq!(n.take_delivered(NodeId(0)).len(), 1);
    let d4 = n.take_delivered(NodeId(4));
    assert_eq!(d4.len(), 1);
    if c2 {
        assert!(d4[0].rode_circuit);
    }
    let s = n.stats();
    assert_eq!(s.total_injected(), s.total_delivered());
}

#[test]
fn queueing_latency_is_measured() {
    // Saturate one NI with packet-switched traffic so later packets queue.
    let mut n = net(MechanismConfig::baseline());
    for i in 0..8u64 {
        n.inject(
            PacketSpec::new(NodeId(0), NodeId(15), MessageClass::L2Reply).with_block((i + 1) * 64),
        );
    }
    run(&mut n, 1_500);
    let s = n.stats();
    let q = &s.queueing_latency[&rcsim_noc::MessageGroup::CircuitRep];
    assert_eq!(q.count(), 8);
    assert!(
        q.max().unwrap_or(0.0) > 0.0,
        "later packets must have queued"
    );
}
