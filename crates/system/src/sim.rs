//! The experiment driver: warm-up, measure, report.

use crate::chip::Chip;
use crate::report::RunResult;
use rcsim_core::{shards_from_env, AdaptiveConfig, KernelMode, MechanismConfig, TopologySpec};
use rcsim_noc::{FaultConfig, HealthReport, WatchdogConfig};
use rcsim_power::{area_savings, EnergyModel};
use rcsim_protocol::ProtocolConfig;
use rcsim_trace::{LatencyBreakdown, MetricsRegistry, TraceEvent};
use rcsim_workload::Workload;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// One simulation point: workload × chip size × mechanism.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Core count (16 or 64 in the paper; non-square counts run on the
    /// most nearly square rectangular mesh).
    pub cores: u16,
    /// Mechanism configuration.
    pub mechanism: MechanismConfig,
    /// Workload name (see [`rcsim_workload::workload_names`]).
    pub workload: String,
    /// RNG seed (workload determinism).
    pub seed: u64,
    /// Cache warm-up cycles before measurement (paper: 200 M; scaled
    /// down here — see DESIGN.md).
    pub warmup_cycles: u64,
    /// Measured cycles (paper: 500 M; scaled down here).
    pub measure_cycles: u64,
    /// Use the scaled-down cache geometry (fast runs with equivalent
    /// traffic shape); `false` uses the full Table 2 sizes.
    pub small_caches: bool,
    /// Fault injection (default: none — zero-perturbation).
    #[serde(default)]
    pub faults: FaultConfig,
    /// Progress-watchdog thresholds.
    #[serde(default)]
    pub watchdog: WatchdogConfig,
    /// Override of [`ProtocolConfig`]'s L1 reissue timeout (`None` keeps
    /// the default). Short runs studying reissue recovery need a timeout
    /// that fits inside the measure window.
    #[serde(default)]
    pub reissue_timeout: Option<u64>,
    /// Override of the L1 reissue budget (`None` keeps the default).
    #[serde(default)]
    pub max_reissues: Option<u32>,
    /// Open-loop external traffic at the west edge (`None` keeps the run
    /// purely closed-loop — the default, and bit-identical to builds
    /// before this field existed).
    #[serde(default)]
    pub open_loop: Option<crate::open_loop::OpenLoopConfig>,
    /// Interconnect shape (`cores` fixes the concrete dimensions). The
    /// default mesh is omitted from serialization so existing cache keys
    /// and goldens stay byte-identical.
    #[serde(default, skip_serializing_if = "TopologySpec::is_mesh")]
    pub topology: TopologySpec,
    /// Adaptive runtime policies: congestion-aware detours and per-region
    /// mechanism switching (`None` keeps the network static — the
    /// default, omitted from serialization so existing cache keys and
    /// goldens stay byte-identical).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub adaptive: Option<AdaptiveConfig>,
}

impl SimConfig {
    /// A quick-turnaround configuration used by tests and examples.
    pub fn quick(cores: u16, mechanism: MechanismConfig, workload: &str) -> Self {
        Self {
            cores,
            mechanism,
            workload: workload.to_owned(),
            seed: 0xC1C0,
            warmup_cycles: 2_000,
            measure_cycles: 10_000,
            small_caches: true,
            faults: FaultConfig::none(),
            watchdog: WatchdogConfig::default(),
            reissue_timeout: None,
            max_reissues: None,
            open_loop: None,
            topology: TopologySpec::Mesh,
            adaptive: None,
        }
    }

    /// The same configuration on a different interconnect shape.
    #[must_use]
    pub fn with_topology(mut self, topology: TopologySpec) -> Self {
        self.topology = topology;
        self
    }
}

/// Errors from [`run_sim`].
#[derive(Debug)]
pub enum SimError {
    /// Unknown workload name.
    UnknownWorkload(String),
    /// Invalid mesh or mechanism configuration.
    Config(rcsim_core::ConfigError),
    /// The watchdog declared the network dead (no flit movement with
    /// traffic in flight): the attached report says what wedged.
    Stalled {
        /// The liveness snapshot taken when the stall was declared.
        report: Box<HealthReport>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownWorkload(w) => write!(f, "unknown workload '{w}'"),
            SimError::Config(e) => write!(f, "invalid configuration: {e}"),
            SimError::Stalled { report } => {
                write!(f, "simulation stalled at cycle {}\n{report}", report.cycle)
            }
        }
    }
}

impl Error for SimError {}

impl From<rcsim_core::ConfigError> for SimError {
    fn from(e: rcsim_core::ConfigError) -> Self {
        SimError::Config(e)
    }
}

/// How to trace a run (see [`run_sim_traced`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Ring capacity in events; the newest `capacity` events survive.
    pub capacity: usize,
    /// Cycles between occupancy samples (0 = no sampling).
    pub epoch: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            capacity: 1 << 20,
            epoch: 100,
        }
    }
}

/// Everything the trace layer collected over the measure window.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// The raw event log, in emission order (a suffix of the run when the
    /// ring overflowed).
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overflow during the measure window.
    pub dropped: u64,
    /// Per-message latency phases reconstructed from the events.
    pub breakdown: LatencyBreakdown,
    /// Event counts by kind plus last-sample occupancy gauges.
    pub metrics: MetricsRegistry,
}

/// Runs one simulation point and gathers every measured quantity.
///
/// # Errors
///
/// Returns [`SimError`] for unknown workloads or invalid configurations.
pub fn run_sim(cfg: &SimConfig) -> Result<RunResult, SimError> {
    run_sim_with(cfg, KernelMode::from_env(), shards_from_env())
}

/// [`run_sim`] with an explicit simulation kernel, overriding the
/// `RC_KERNEL` environment knob (the shard count still follows
/// `RC_SHARDS`). Both kernels produce byte-identical results (see the
/// `kernel_diff` test suite); `Event` skips quiescent tiles and is the
/// faster default.
///
/// # Errors
///
/// Returns [`SimError`] for unknown workloads or invalid configurations.
pub fn run_sim_with_kernel(cfg: &SimConfig, kernel: KernelMode) -> Result<RunResult, SimError> {
    run_sim_with(cfg, kernel, shards_from_env())
}

/// [`run_sim`] with an explicit kernel *and* in-tick shard count,
/// overriding both the `RC_KERNEL` and `RC_SHARDS` environment knobs.
/// Every (kernel, shards) combination produces byte-identical results —
/// the `kernel_diff` differential matrix enforces it — so both arguments
/// are pure host-performance knobs.
///
/// # Errors
///
/// Returns [`SimError`] for unknown workloads or invalid configurations.
pub fn run_sim_with(
    cfg: &SimConfig,
    kernel: KernelMode,
    shards: usize,
) -> Result<RunResult, SimError> {
    run_sim_inner(cfg, None, kernel, shards).map(|(result, _)| result)
}

/// [`run_sim`] with event tracing: identical simulation (the trace layer
/// is purely observational — see the bit-identity test), plus a
/// [`TraceReport`] covering the measure window (the warm-up's events are
/// discarded at the reset boundary).
///
/// # Errors
///
/// Returns [`SimError`] for unknown workloads or invalid configurations.
pub fn run_sim_traced(
    cfg: &SimConfig,
    trace: &TraceConfig,
) -> Result<(RunResult, TraceReport), SimError> {
    run_sim_traced_with(cfg, trace, KernelMode::from_env(), shards_from_env())
}

/// [`run_sim_traced`] with an explicit simulation kernel, overriding the
/// `RC_KERNEL` environment knob (the shard count still follows
/// `RC_SHARDS`).
///
/// # Errors
///
/// Returns [`SimError`] for unknown workloads or invalid configurations.
pub fn run_sim_traced_with_kernel(
    cfg: &SimConfig,
    trace: &TraceConfig,
    kernel: KernelMode,
) -> Result<(RunResult, TraceReport), SimError> {
    run_sim_traced_with(cfg, trace, kernel, shards_from_env())
}

/// [`run_sim_traced`] with an explicit kernel and in-tick shard count,
/// overriding both environment knobs. The trace stream — sequence, not
/// just multiset — is required to be identical at every shard count.
///
/// # Errors
///
/// Returns [`SimError`] for unknown workloads or invalid configurations.
pub fn run_sim_traced_with(
    cfg: &SimConfig,
    trace: &TraceConfig,
    kernel: KernelMode,
    shards: usize,
) -> Result<(RunResult, TraceReport), SimError> {
    run_sim_inner(cfg, Some(trace), kernel, shards).map(|(result, report)| {
        (
            result,
            report.expect("tracing was requested, so a report exists"),
        )
    })
}

fn run_sim_inner(
    cfg: &SimConfig,
    trace: Option<&TraceConfig>,
    kernel: KernelMode,
    shards: usize,
) -> Result<(RunResult, Option<TraceReport>), SimError> {
    let mut session = crate::checkpoint::SimSession::new(cfg, trace, kernel, shards)?;
    let total = session.total();
    session.run_until(total)?;
    Ok(session.finish())
}

/// Builds the chip a [`SimConfig`] describes, fully wired (open loop,
/// adaptive policies) but not yet ticked. Shared by [`run_sim`] and the
/// checkpoint layer so a restore target is constructed by exactly the
/// same code path as a fresh run.
pub(crate) fn build_chip(
    cfg: &SimConfig,
    kernel: KernelMode,
    shards: usize,
) -> Result<Chip, SimError> {
    // The spec picks the router grid: square for the paper's 16/64-core
    // chips, the most nearly square rectangle otherwise (scalability
    // sweeps at 32, 48, … cores).
    let topology = cfg.topology.build(cfg.cores)?;
    let workload = Workload::by_name(&cfg.workload, topology.nodes(), cfg.seed)
        .ok_or_else(|| SimError::UnknownWorkload(cfg.workload.clone()))?;
    let mut proto = if cfg.small_caches {
        ProtocolConfig::small_for_tests(&topology)
    } else {
        ProtocolConfig::paper_defaults(&topology)
    };
    if let Some(t) = cfg.reissue_timeout {
        proto.reissue_timeout = t;
    }
    if let Some(n) = cfg.max_reissues {
        proto.max_reissues = n;
    }
    let mut chip = Chip::with_faults(
        topology,
        cfg.mechanism,
        proto,
        &workload,
        cfg.faults.clone(),
        cfg.watchdog,
    )?;
    chip.set_kernel(kernel);
    chip.set_shards(shards);
    if let Some(ol) = &cfg.open_loop {
        chip.enable_open_loop(ol.clone(), cfg.seed);
    }
    if let Some(ad) = cfg.adaptive {
        chip.enable_adaptive(ad)?;
    }
    Ok(chip)
}

/// Gathers every measured quantity from a chip that has completed its
/// measure window (the tail of [`run_sim`], shared with the checkpoint
/// layer's [`SimSession::finish`](crate::checkpoint::SimSession::finish)).
pub(crate) fn assemble_result(cfg: &SimConfig, chip: &Chip) -> RunResult {
    let topology = chip.topology();
    let stats = chip.noc_stats();
    let l1 = chip.l1_totals();
    let l2 = chip.l2_totals();
    let (grid_w, grid_h) = topology.dims();
    let energy = EnergyModel::default_32nm().network_energy(
        &stats,
        &cfg.mechanism,
        grid_w as usize,
        grid_h as usize,
    );

    let mut result = RunResult {
        workload: cfg.workload.clone(),
        mechanism: cfg.mechanism.label(),
        cores: topology.nodes(),
        cycles: cfg.measure_cycles,
        instructions: chip.instructions(),
        messages: BTreeMap::new(),
        latency: BTreeMap::new(),
        outcomes: BTreeMap::new(),
        reservations_at_index: Vec::new(),
        reservations_failed: 0,
        reservation_failures: [0; 4],
        load: stats.load_flits_per_node_per_100(topology.nodes()),
        energy,
        area_savings: area_savings(&cfg.mechanism, topology.nodes()),
        l1_miss_rate: if l1.hits + l1.misses == 0 {
            0.0
        } else {
            l1.misses as f64 / (l1.hits + l1.misses) as f64
        },
        acks_elided: l1.acks_elided,
        l2_queued_on_busy: l2.queued_on_busy,
        health: chip.health(),
        external: chip.external_summary(),
    };
    result.fill_noc_summaries(&stats);
    result
}
