//! Distribution-level coverage for the synthetic traffic patterns:
//! Transpose never self-sends and is involutive off the diagonal, Hotspot
//! honours its `percent` knob within binomial confidence bounds, and all
//! three patterns are bit-deterministic per RNG seed.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rcsim_core::{MechanismConfig, Mesh, MessageClass, NodeId};
use rcsim_noc::traffic::{Generator, Pattern};
use rcsim_noc::{Network, NocConfig};

fn net(w: u16, h: u16) -> Network {
    Network::new(NocConfig::paper_baseline(
        Mesh::new(w, h).expect("valid mesh"),
        MechanismConfig::baseline(),
    ))
    .expect("valid network")
}

fn gen(pattern: Pattern) -> Generator {
    Generator {
        pattern,
        injection_rate: 0.05,
        class: MessageClass::L1Request,
    }
}

/// Transpose on a square mesh: no node may ever be handed itself as a
/// destination (diagonal nodes take the `(src+1) % n` fallback), and every
/// off-diagonal node must map back to itself after two hops.
#[test]
fn transpose_never_self_and_involutive_off_diagonal() {
    for side in [4u16, 8] {
        let n = net(side, side);
        let g = gen(Pattern::Transpose);
        let mesh = n.config().topology;
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for s in 0..mesh.nodes() as u16 {
            let src = NodeId(s);
            let dst = g.destination(&n, src, &mut rng);
            assert_ne!(dst, src, "{side}x{side}: node {s} self-sent");
            let c = mesh.coord(src);
            if c.x != c.y {
                assert_eq!(
                    g.destination(&n, dst, &mut rng),
                    src,
                    "{side}x{side}: transpose not involutive at ({}, {})",
                    c.x,
                    c.y
                );
            }
        }
    }
}

/// Hotspot `percent` is an honest probability: over many draws from a
/// fixed non-hot source, the fraction landing on the hot node must sit
/// within ~4σ binomial bounds of the configured rate (plus the small
/// uniform-fallback mass that also lands on the target).
#[test]
fn hotspot_honours_percent_within_binomial_bounds() {
    const DRAWS: usize = 2_000;
    let n = net(4, 4);
    let target = NodeId(5);
    let src = NodeId(12);
    let nodes = 16.0f64;
    for percent in [10u8, 50, 90] {
        let g = gen(Pattern::Hotspot { target, percent });
        let mut rng = ChaCha8Rng::seed_from_u64(0x405 + u64::from(percent));
        let hits = (0..DRAWS)
            .filter(|_| g.destination(&n, src, &mut rng) == target)
            .count() as f64;
        // The uniform fallback also lands on the target 1/(n-1) of the time.
        let p = f64::from(percent) / 100.0;
        let p_eff = p + (1.0 - p) / (nodes - 1.0);
        let sigma = (DRAWS as f64 * p_eff * (1.0 - p_eff)).sqrt();
        let expected = DRAWS as f64 * p_eff;
        assert!(
            (hits - expected).abs() <= 4.0 * sigma,
            "percent={percent}: {hits} hits vs expected {expected:.1} ± {:.1}",
            4.0 * sigma
        );
    }
}

/// Every node, not just a sampled one, must be able to reach the hot node;
/// and the hot node itself must never self-send (it falls back to uniform).
#[test]
fn hotspot_target_never_self_sends() {
    let n = net(4, 4);
    let target = NodeId(5);
    let g = gen(Pattern::Hotspot {
        target,
        percent: 100,
    });
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    for _ in 0..500 {
        assert_ne!(g.destination(&n, target, &mut rng), target);
    }
}

/// Same seed → same destination stream, for every pattern. Any hidden
/// global state or draw-order instability in `destination` would break the
/// dense-vs-event kernel equivalence, so pin it here.
#[test]
fn destination_streams_are_deterministic_per_seed() {
    let n = net(8, 8);
    let patterns = [
        Pattern::UniformRandom,
        Pattern::Transpose,
        Pattern::Hotspot {
            target: NodeId(21),
            percent: 30,
        },
    ];
    for pattern in patterns {
        let g = gen(pattern);
        let stream = |seed: u64| -> Vec<NodeId> {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            (0..64u16)
                .cycle()
                .take(512)
                .map(|s| g.destination(&n, NodeId(s), &mut rng))
                .collect()
        };
        assert_eq!(
            stream(0xDE7),
            stream(0xDE7),
            "{pattern:?}: same seed produced different destinations"
        );
    }
    // Different seeds must actually change the random patterns (a stream
    // that ignores its RNG would pass the equality check trivially).
    let g = gen(Pattern::UniformRandom);
    let stream = |seed: u64| -> Vec<NodeId> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..64u16)
            .map(|s| g.destination(&n, NodeId(s), &mut rng))
            .collect()
    };
    assert_ne!(stream(1), stream(2), "uniform pattern ignored its seed");
}

/// Whole-network determinism: two identical meshes driven by `step` with
/// the same seed must inject the same packets and end with identical
/// activity counters, for every pattern.
#[test]
fn injected_traffic_is_deterministic_per_seed() {
    let patterns = [
        Pattern::UniformRandom,
        Pattern::Transpose,
        Pattern::Hotspot {
            target: NodeId(3),
            percent: 40,
        },
    ];
    for pattern in patterns {
        let run = || {
            let mut net = net(4, 4);
            let g = gen(pattern);
            let mut rng = ChaCha8Rng::seed_from_u64(0x5EED);
            let mut block = 0u64;
            for _ in 0..300 {
                g.step(&mut net, &mut rng, &mut block);
                net.tick();
            }
            for _ in 0..3_000 {
                if net.is_quiescent() {
                    break;
                }
                net.tick();
            }
            (block, format!("{:?}", net.stats()))
        };
        let (block_a, stats_a) = run();
        let (block_b, stats_b) = run();
        assert!(block_a > 0, "{pattern:?}: nothing injected");
        assert_eq!(block_a, block_b, "{pattern:?}: injection counts differ");
        assert_eq!(stats_a, stats_b, "{pattern:?}: activity counters differ");
    }
}
