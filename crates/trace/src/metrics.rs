//! A small name-keyed metrics registry: monotonic counters and last-value
//! gauges, with a tally helper that folds an event stream into counts.

use crate::event::{EventKind, TraceEvent};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Named counters and gauges. Keys are plain strings so layers that know
/// nothing about each other can publish side by side; `BTreeMap` keeps
/// exports deterministic.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to the counter `name` (created at zero).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += by;
    }

    /// Sets the gauge `name` to `value` (last write wins).
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Current value of a counter (zero when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> &BTreeMap<String, f64> {
        &self.gauges
    }

    /// Counts every event by kind (`events.<name>` counters) and records
    /// the last epoch sample's occupancy values as gauges.
    pub fn tally_events(&mut self, events: &[TraceEvent]) {
        for e in events {
            self.inc(&format!("events.{}", e.kind.name()), 1);
            if let EventKind::EpochSample {
                circuit_entries,
                buffered_flits,
                ni_backlog,
            } = e.kind
            {
                self.set_gauge("noc.circuit_entries", circuit_entries as f64);
                self.set_gauge("noc.buffered_flits", buffered_flits as f64);
                self.set_gauge("noc.ni_backlog", ni_backlog as f64);
            }
        }
    }

    /// Folds another registry into this one: counters add, gauges take the
    /// other's value.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut m = MetricsRegistry::new();
        m.inc("a", 2);
        m.inc("a", 3);
        m.set_gauge("g", 1.5);
        m.set_gauge("g", 2.5);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge("g"), Some(2.5));
        assert_eq!(m.gauge("missing"), None);
    }

    #[test]
    fn tally_counts_by_kind() {
        let events = vec![
            TraceEvent {
                cycle: 1,
                kind: EventKind::NiInject { packet: 1, node: 0 },
            },
            TraceEvent {
                cycle: 2,
                kind: EventKind::NiInject { packet: 2, node: 0 },
            },
            TraceEvent {
                cycle: 3,
                kind: EventKind::EpochSample {
                    circuit_entries: 4,
                    buffered_flits: 7,
                    ni_backlog: 1,
                },
            },
        ];
        let mut m = MetricsRegistry::new();
        m.tally_events(&events);
        assert_eq!(m.counter("events.ni_inject"), 2);
        assert_eq!(m.counter("events.epoch_sample"), 1);
        assert_eq!(m.gauge("noc.circuit_entries"), Some(4.0));
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = MetricsRegistry::new();
        a.inc("x", 1);
        let mut b = MetricsRegistry::new();
        b.inc("x", 2);
        b.set_gauge("g", 9.0);
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.gauge("g"), Some(9.0));
    }
}
