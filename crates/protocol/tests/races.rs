//! Protocol race tests: L1s, an L2 bank and a memory controller wired
//! through an in-memory message queue with configurable delays, driving
//! the transaction interleavings the state machines must survive
//! (write-back vs forward, upgrade vs invalidation, stale owners).

use rcsim_core::circuit::CircuitKey;
use rcsim_core::{Cycle, Mesh, MessageClass, NodeId, Topology};
use rcsim_protocol::{Access, L1Cache, L2Bank, MemoryController, Msg, Port, ProtocolConfig};
use std::collections::VecDeque;

/// A latency wire: every send arrives `delay` cycles later.
struct Wire {
    now: Cycle,
    delay: Cycle,
    in_flight: VecDeque<(Cycle, Msg)>,
}

impl Port for Wire {
    fn now(&self) -> Cycle {
        self.now
    }
    fn send(&mut self, msg: Msg, _turnaround: u32) -> bool {
        self.in_flight.push_back((self.now + self.delay, msg));
        false
    }
    fn undo_circuit(&mut self, _key: CircuitKey) {}
    fn record_eliminated_ack(&mut self) {}
}

/// One tile-less test cluster: the home L2 bank lives at node 0 and owns
/// every block (single-bank world: all addresses are multiples of the
/// node count); L1s at nodes 0..cores; one MC.
struct Cluster {
    mesh: Topology,
    l1s: Vec<L1Cache>,
    l2: L2Bank,
    mc: MemoryController,
    wire: Wire,
}

impl Cluster {
    fn new(cores: usize, delay: Cycle) -> Self {
        let mesh: Topology = Mesh::new(4, 4).unwrap().into();
        let cfg = ProtocolConfig::small_for_tests(&mesh);
        Cluster {
            mesh,
            l1s: (0..cores)
                .map(|i| L1Cache::new(NodeId(i as u16), mesh, cfg.clone()))
                .collect(),
            l2: L2Bank::new(NodeId(0), mesh, cfg.clone()),
            mc: MemoryController::new(cfg.mc_tiles[0], 10),
            wire: Wire {
                now: 0,
                delay,
                in_flight: VecDeque::new(),
            },
        }
    }

    /// Delivers due messages and ticks components, `cycles` times.
    fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.wire.now += 1;
            let now = self.wire.now;
            // Deliver everything due this cycle.
            let mut due = Vec::new();
            let mut i = 0;
            while i < self.wire.in_flight.len() {
                if self.wire.in_flight[i].0 <= now {
                    due.push(self.wire.in_flight.remove(i).expect("checked").1);
                } else {
                    i += 1;
                }
            }
            for msg in due {
                match msg.class {
                    MessageClass::L1Request
                    | MessageClass::WbData
                    | MessageClass::L1DataAck
                    | MessageClass::L1InvAck
                    | MessageClass::MemoryReply => self.l2.receive(msg, now),
                    MessageClass::MemRequest | MessageClass::MemWbData => self.mc.receive(msg, now),
                    _ => {
                        let l1 = &mut self.l1s[msg.dst.index()];
                        l1.handle(&msg, false, &mut self.wire);
                    }
                }
            }
            self.l2.tick(now, &mut self.wire);
            self.mc.tick(now, &mut self.wire);
        }
    }

    /// Blocking access: issues and runs until the miss completes.
    fn access(&mut self, core: usize, block: u64, write: bool, value: Option<u64>) -> u64 {
        match self.l1s[core].access(block, write, value, &mut self.wire) {
            Access::Hit { value } => value,
            Access::Miss => {
                for _ in 0..2_000 {
                    if !self.l1s[core].miss_pending() {
                        break;
                    }
                    self.run(1);
                }
                assert!(!self.l1s[core].miss_pending(), "miss never completed");
                match self.l1s[core].probe(block) {
                    Some((_, v)) => v,
                    None => panic!("filled line vanished"),
                }
            }
        }
    }

    fn settle(&mut self) {
        self.run(500);
        assert!(self.l2.is_quiescent(), "L2 not quiescent");
    }
}

// All blocks used below are multiples of 16 so node 0 is always home.
const B: u64 = 16 * 7;

#[test]
fn read_write_read_propagates_values() {
    let mut c = Cluster::new(3, 3);
    assert_eq!(c.access(1, B, false, None), 0, "cold line reads zero");
    c.access(2, B, true, Some(77));
    c.settle();
    assert_eq!(
        c.access(1, B, false, None),
        77,
        "reader sees the writer's value"
    );
}

#[test]
fn ping_pong_ownership() {
    let mut c = Cluster::new(2, 3);
    for round in 1..=10u64 {
        let writer = (round % 2) as usize;
        c.access(writer, B, true, Some(round));
        c.settle();
        let reader = 1 - writer;
        assert_eq!(c.access(reader, B, false, None), round, "round {round}");
        c.settle();
    }
}

#[test]
fn many_readers_then_writer_invalidates_all() {
    let mut c = Cluster::new(6, 2);
    c.access(5, B, true, Some(9));
    c.settle();
    for r in 0..5 {
        assert_eq!(c.access(r, B, false, None), 9);
        c.settle();
    }
    // A write now invalidates the five sharers.
    c.access(5, B, true, Some(10));
    c.settle();
    for r in 0..5 {
        assert_eq!(
            c.l1s[r].probe(B),
            None,
            "reader {r} still holds a stale copy"
        );
    }
    assert_eq!(c.access(2, B, false, None), 10);
}

#[test]
fn writeback_vs_forward_race_preserves_data() {
    // Writer fills Modified, then evicts (WB in flight with a long wire
    // delay) while a reader's request triggers a forward.
    let mut c = Cluster::new(3, 12); // long delays widen the race window
    c.access(1, B, true, Some(42));
    c.settle();
    // Force an eviction: fill the same L1 set (16 sets in the test config;
    // same-set blocks differ by 16 lines; keep node 0 as home: stride 16*16).
    for k in 1..=4u64 {
        c.access(1, B + k * 16 * 16, false, None);
    }
    // The WbData for B is now (possibly) in flight. The reader asks.
    let v = c.access(2, B, false, None);
    assert_eq!(v, 42, "forward must be served from the write-back buffer");
    c.settle();
}

#[test]
fn silently_dropped_exclusive_is_recovered_from_l2() {
    let mut c = Cluster::new(3, 3);
    // Write then read back ensures L2 has the data after the writer's WB.
    c.access(1, B, true, Some(5));
    c.settle();
    // Evict (Modified -> WbData) and let it land.
    for k in 1..=4u64 {
        c.access(1, B + k * 16 * 16, false, None);
    }
    c.settle();
    // Reader gets it Exclusive (sole copy), then silently drops it.
    assert_eq!(c.access(2, B, false, None), 5);
    c.settle();
    for k in 1..=4u64 {
        c.access(2, B + k * 16 * 16, false, None);
    }
    c.settle();
    // A third node's request forwards to the stale owner, which nacks,
    // and the home serves its own (current) copy.
    assert_eq!(c.access(0, B, false, None), 5);
}

#[test]
fn upgrade_losing_to_remote_write_still_completes() {
    let mut c = Cluster::new(2, 6);
    // Both share the line.
    c.access(0, B, false, None);
    c.settle();
    c.access(1, B, false, None);
    c.settle();
    // Node 0 upgrades (GetX) while node 1 also writes: one wins, both
    // complete, final value is one of the two.
    let a0 = c.l1s[0].access(B, true, Some(100), &mut c.wire);
    let a1 = c.l1s[1].access(B, true, Some(200), &mut c.wire);
    assert!(matches!(a0, Access::Miss) || matches!(a1, Access::Miss));
    for _ in 0..3_000 {
        if !c.l1s[0].miss_pending() && !c.l1s[1].miss_pending() {
            break;
        }
        c.run(1);
    }
    assert!(!c.l1s[0].miss_pending() && !c.l1s[1].miss_pending());
    c.settle();
    // Exactly one writable copy remains and it holds one of the values.
    let w0 = c.l1s[0].probe(B).filter(|(w, _)| *w);
    let w1 = c.l1s[1].probe(B).filter(|(w, _)| *w);
    assert!(
        w0.is_some() ^ w1.is_some(),
        "exactly one owner after racing writes"
    );
    let v = w0.or(w1).expect("one owner").1;
    assert!(v == 100 || v == 200, "value {v}");
    // And the mesh invariant: home bank knows the owner.
    let (owner, _) = c.l2.probe(B).expect("line cached");
    assert!(owner == Some(NodeId(0)) || owner == Some(NodeId(1)));
    let _ = c.mesh;
}
