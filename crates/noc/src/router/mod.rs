//! The 4-stage wormhole VC router with Reactive Circuits extensions.
//!
//! Pipeline (Table 4): a head flit that arrives at cycle *t* is buffered
//! and route-computed during *t* (stage 1), VC-allocated at *t+1*
//! (stage 2, **in parallel with the circuit reservation** of §4.1),
//! switch-allocated at *t+2* (stage 3) and traverses the crossbar at *t+3*
//! (stage 4), reaching the next router at *t+5* after the 1-cycle link —
//! 5 cycles per hop. A reply that finds its circuit reserved bypasses
//! stages 1–3 entirely: it crosses the router the cycle it arrives and
//! reaches the next router 2 cycles later (§4.3).

pub(crate) mod alloc;
mod input;

use crate::config::{NocConfig, VcLayout};
use crate::flit::Flit;
use crate::stats::Activity;
use alloc::RoundRobin;
use input::{InputPort, VcState};
use rcsim_core::circuit::timing::{router_window, REQ_HOP_CYCLES};
use rcsim_core::circuit::{CircuitKey, ReserveRequest, RouterCircuits};
use rcsim_core::routing::{next_hop, next_hop_on_path, Routing};
use rcsim_core::{CircuitMode, Cycle, Direction, MechanismConfig, Mesh, NodeId};
use rcsim_trace::{EventKind, TraceEvent, TraceSink};
use std::collections::VecDeque;

/// A message leaving the router this cycle, to be routed by the network.
#[derive(Debug, Clone, PartialEq)]
pub enum Outgoing {
    /// A flit leaving through `dir` (`Local` = ejection to this tile's NI).
    Flit {
        /// Output direction.
        dir: Direction,
        /// The flit (its `vc` field is the downstream buffer index).
        flit: Flit,
        /// Cycle it reaches the neighbour router / NI.
        arrive: Cycle,
    },
    /// A credit returned upstream through input port `dir` (`Local` = to
    /// this tile's NI).
    Credit {
        /// The input port whose buffer slot was freed.
        dir: Direction,
        /// The VC the credit belongs to.
        vc: usize,
        /// Cycle it reaches the upstream router / NI.
        arrive: Cycle,
    },
    /// Circuit-undo information riding the credit channel (§4.4) towards
    /// the circuit destination `dst`.
    Undo {
        /// Direction of the next router on the circuit's path.
        dir: Direction,
        /// Circuit identity.
        key: CircuitKey,
        /// The circuit's destination node (the original requestor).
        dst: NodeId,
        /// Cycle it reaches the neighbour.
        arrive: Cycle,
    },
}

/// How one output VC is held by a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Owner {
    /// Free for VC allocation.
    Free,
    /// Held by a packet streaming from `(in_port, in_vc)`.
    Owned(usize, usize),
    /// Tail has departed; waiting for all credits to return so the
    /// downstream VC is idle again.
    Draining,
}

#[derive(Debug, Clone)]
struct OutputPort {
    credits: Vec<u32>,
    owner: Vec<Owner>,
    /// Crossbar output used this cycle (circuits have priority, §4.3).
    busy: bool,
}

/// Outcome of checking whether a circuit-tagged flit can bypass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BypassCheck {
    /// Reservation present and the crossbar output is free: go.
    Ready,
    /// Reservation present but the output is in use this cycle: retry.
    Busy,
    /// No usable reservation: take the normal four-stage pipeline.
    Pipeline,
}

/// A switch-allocation grant awaiting switch traversal next cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StGrant {
    in_port: usize,
    in_vc: usize,
}

pub(crate) struct Router {
    node: NodeId,
    mesh: Mesh,
    layout: VcLayout,
    mechanism: MechanismConfig,
    buffer_depth: u32,
    link_latency: u32,
    inject_overhead: u32,
    inputs: Vec<InputPort>,
    outputs: Vec<OutputPort>,
    pub(crate) circuits: RouterCircuits,
    st_pending: Vec<StGrant>,
    /// Reused backing store for [`Router::stage_st`]'s grant sweep.
    st_scratch: Vec<StGrant>,
    /// Reused request vector for [`Router::stage_sa`] phase 1.
    sa_requests: Vec<bool>,
    sa_rr_in: Vec<RoundRobin>,
    sa_rr_out: Vec<RoundRobin>,
    va_rr_out: Vec<RoundRobin>,
    /// Bypass flits that lost a same-cycle output conflict (ideal mode) or
    /// arrived while an earlier flit of the same stream is still queued.
    bypass_retry: Vec<VecDeque<Flit>>,
    /// `true` while this router is part of, or borders, a dead region
    /// (set by the network when scheduled permanent faults fire).
    /// Degraded routers take no part in circuits: reservations are
    /// refused and bypasses forced to the packet pipeline (DESIGN.md
    /// §10).
    degraded: bool,
    pub(crate) activity: Activity,
    /// Where trace events go; disabled by default.
    sink: TraceSink,
}

impl Router {
    pub(crate) fn new(node: NodeId, cfg: &NocConfig) -> Self {
        let layout = cfg.vc_layout();
        let total = layout.total();
        let outputs = (0..5)
            .map(|_| OutputPort {
                credits: vec![cfg.buffer_depth; total],
                owner: vec![Owner::Free; total],
                busy: false,
            })
            .collect();
        Self {
            node,
            mesh: cfg.mesh,
            layout,
            mechanism: cfg.mechanism,
            buffer_depth: cfg.buffer_depth,
            link_latency: cfg.link_latency,
            inject_overhead: cfg.inject_overhead,
            inputs: (0..5).map(|_| InputPort::new(total)).collect(),
            outputs,
            circuits: RouterCircuits::new(
                cfg.mechanism.mode,
                cfg.mechanism.max_circuits_per_input,
                cfg.mechanism.circuit_vcs().max(1),
            ),
            st_pending: Vec::new(),
            st_scratch: Vec::new(),
            sa_requests: vec![false; total],
            sa_rr_in: (0..5).map(|_| RoundRobin::new(total)).collect(),
            sa_rr_out: (0..5).map(|_| RoundRobin::new(5)).collect(),
            va_rr_out: (0..5).map(|_| RoundRobin::new(5)).collect(),
            bypass_retry: (0..5).map(|_| VecDeque::new()).collect(),
            degraded: false,
            activity: Activity::default(),
            sink: TraceSink::default(),
        }
    }

    pub(crate) fn set_trace_sink(&mut self, sink: TraceSink) {
        self.sink = sink;
    }

    /// Marks this router as part of (or adjacent to) a dead region; the
    /// network re-derives the flag whenever a scheduled fault fires.
    pub(crate) fn set_degraded(&mut self, degraded: bool) {
        self.degraded = degraded;
    }

    /// Runs one cycle. `arrivals`, `credits` and `undos` are the messages
    /// reaching this router this cycle (drained in place so the caller can
    /// reuse the buffers); produced messages go into `out`.
    pub(crate) fn tick(
        &mut self,
        now: Cycle,
        arrivals: &mut Vec<(Direction, Flit)>,
        credits: &mut Vec<(Direction, usize)>,
        undos: &mut Vec<(CircuitKey, NodeId)>,
        out: &mut Vec<Outgoing>,
    ) {
        for o in &mut self.outputs {
            o.busy = false;
        }
        // Stamp the table's clock so leak detection can age entries.
        self.circuits.note_now(now);

        // Credits (and the undo information they may carry, §4.4).
        for (dir, vc) in credits.drain(..) {
            let o = &mut self.outputs[dir.index()];
            o.credits[vc] += 1;
            if o.owner[vc] == Owner::Draining && o.credits[vc] >= self.buffer_depth {
                o.owner[vc] = Owner::Free;
            }
        }
        for (key, dst) in undos.drain(..) {
            self.process_undo(now, key, dst, out);
        }

        if self.mechanism.timed.is_timed() {
            // A few cycles of grace keep boundary-case replies (committed
            // at the very edge of their window) from losing their entries;
            // lookups are key-matched, so lingering entries are harmless.
            self.circuits.expire(now.saturating_sub(4));
        }

        // Retry queued bypass flits (in order per input), then arrivals.
        self.drain_bypass_retries(now, out);
        for (dir, flit) in arrivals.drain(..) {
            self.receive(now, dir, flit, out);
        }

        self.stage_st(now, out);
        self.stage_sa(now);
        self.stage_va(now, out);
    }

    /// `true` when a tick with no arriving messages could still change
    /// state: flits are buffered in the pipeline, a switch grant or
    /// bypass retry is pending, or a timed circuit entry is (over)due for
    /// expiry. A `false` router receiving nothing this cycle only resets
    /// `busy` flags, re-stamps the table clock and runs empty stage
    /// loops — all no-ops — so the event kernel may skip its tick.
    pub(crate) fn is_active(&self, now: Cycle) -> bool {
        if !self.st_pending.is_empty() || self.buffered_flits() > 0 {
            return true;
        }
        if self.bypass_retry.iter().any(|q| !q.is_empty()) {
            return true;
        }
        if self.mechanism.timed.is_timed() {
            // `tick` expires entries at `now - 4`; stay awake from the
            // cycle that check starts firing.
            if let Some(end) = self.circuits.next_expiry() {
                if now.saturating_sub(4) >= end {
                    return true;
                }
            }
        }
        false
    }

    /// Undo handling: clear the local reservation and forward the undo
    /// towards the circuit destination (it rides credits, 1 cycle/hop).
    fn process_undo(&mut self, now: Cycle, key: CircuitKey, dst: NodeId, out: &mut Vec<Outgoing>) {
        let dir = match self.circuits.undo(key) {
            Some(entry) => {
                self.sink.emit(|| TraceEvent {
                    cycle: now,
                    kind: EventKind::CircuitTear {
                        node: self.node.0,
                        requestor: key.requestor.0,
                        block: key.block,
                    },
                });
                entry.out_port
            }
            // No reservation here (fragmented gap, or already expired):
            // keep following the reply path towards the destination.
            None => {
                if self.node == dst {
                    return;
                }
                next_hop(&self.mesh, self.node, dst, Routing::Yx)
            }
        };
        if dir != Direction::Local {
            self.activity.credits += 1;
            out.push(Outgoing::Undo {
                dir,
                key,
                dst,
                arrive: now + self.link_latency as Cycle,
            });
        }
    }

    fn drain_bypass_retries(&mut self, now: Cycle, out: &mut Vec<Outgoing>) {
        for p in 0..5 {
            while let Some(flit) = self.bypass_retry[p].front().cloned() {
                let dir = Direction::from_index(p);
                match self.bypass_check(dir, &flit) {
                    BypassCheck::Ready => {
                        let flit = self.bypass_retry[p].pop_front().expect("front checked");
                        self.execute_bypass(now, dir, flit, out);
                    }
                    BypassCheck::Busy => break,
                    BypassCheck::Pipeline => {
                        if flit.kind.is_head() && !self.inputs[p].vcs[flit.vc].is_idle() {
                            // The fallback VC is still draining an earlier
                            // packet: hold the stream here (in order) until
                            // it idles instead of corrupting the wormhole.
                            break;
                        }
                        let flit = self.bypass_retry[p].pop_front().expect("front checked");
                        self.buffer_flit(now, dir, flit);
                    }
                }
            }
        }
    }

    /// Whether a circuit-tagged flit can take the bypass path right now.
    fn bypass_check(&mut self, dir: Direction, flit: &Flit) -> BypassCheck {
        let Some(key) = flit.on_circuit else {
            return BypassCheck::Pipeline;
        };
        if self.degraded {
            // Circuits are disabled while this router borders a dead
            // region: drop the local reservation (if any, so it cannot
            // leak — the tail that would have released it now streams
            // through the pipeline) and fall back.
            self.circuits.release(dir, key);
            return BypassCheck::Pipeline;
        }
        let Some(entry) = self.circuits.lookup(dir, key).copied() else {
            // No reservation here: a fragmented gap, or a head that
            // already fell back and released the entry.
            return BypassCheck::Pipeline;
        };
        if self.mechanism.mode == CircuitMode::Fragmented
            && flit.kind.is_head()
            && entry.out_port != Direction::Local
        {
            // Fragmented circuits keep buffers: the downstream circuit VC
            // must be able to hold the whole message in case its own
            // reservation there is missing (§4.2 "messages can always be
            // stored"). Without that guarantee the message takes the
            // pipeline here instead, and the local reservation is freed.
            let gvc = self
                .layout
                .circuit_vc(entry.vc as usize % self.layout.circuit_vcs);
            // A head needs the downstream VC completely idle (all credits
            // home), like the packet-switched Draining rule.
            if self.outputs[entry.out_port.index()].credits[gvc] < self.buffer_depth {
                self.circuits.release(dir, key);
                return BypassCheck::Pipeline;
            }
        }
        if self.outputs[entry.out_port.index()].busy {
            // Ideal mode resolves collisions per cycle (§4.8); fragmented
            // circuits may share an output port through different circuit
            // VCs. The complete-circuit conflict rules make this
            // unreachable for `Complete`.
            debug_assert!(
                self.mechanism.mode != CircuitMode::None,
                "baseline never bypasses"
            );
            return BypassCheck::Busy;
        }
        BypassCheck::Ready
    }

    /// Arrival processing: circuit check first (§4.3), else stage 1
    /// (buffer write + route computation).
    fn receive(&mut self, now: Cycle, dir: Direction, flit: Flit, out: &mut Vec<Outgoing>) {
        if flit.on_circuit.is_some() {
            self.activity.circuit_lookups += 1;
            // Keep stream order: if earlier flits of this input are already
            // queued for retry, queue behind them.
            if !self.bypass_retry[dir.index()].is_empty() {
                self.bypass_retry[dir.index()].push_back(flit);
                return;
            }
            match self.bypass_check(dir, &flit) {
                BypassCheck::Ready => {
                    self.execute_bypass(now, dir, flit, out);
                    return;
                }
                BypassCheck::Busy => {
                    self.bypass_retry[dir.index()].push_back(flit);
                    return;
                }
                BypassCheck::Pipeline => {}
            }
        }
        self.buffer_flit(now, dir, flit);
    }

    /// One-cycle circuit traversal: straight through the crossbar (§4.3).
    fn execute_bypass(
        &mut self,
        now: Cycle,
        dir: Direction,
        mut flit: Flit,
        out: &mut Vec<Outgoing>,
    ) {
        let key = flit.on_circuit.expect("bypass requires a circuit key");
        let entry = *self
            .circuits
            .lookup(dir, key)
            .expect("caller checked the entry exists");
        if flit.kind.is_head() {
            self.circuits.begin_use(dir, key);
            self.sink.emit(|| TraceEvent {
                cycle: now,
                kind: EventKind::CircuitBypass {
                    packet: flit.packet.0,
                    node: self.node.0,
                },
            });
        }
        if flit.kind.is_tail() {
            if flit.scrounger_final.is_some() && self.mechanism.scrounger_borrow {
                // Borrowing scrounger: the circuit survives for its own
                // reply. If an undo raced the borrow, the entry comes
                // back here — the undo already continued downstream, so
                // dropping it completes the teardown.
                self.circuits.end_use(dir, key);
            } else {
                // The tail clears the built-circuit bit (§4.3);
                // consuming scroungers release the same way (DESIGN.md).
                self.circuits.release(dir, key);
            }
        }
        // A bypassed flit never occupies the buffer slot its VC credit paid
        // for; return the credit immediately (not needed on the bufferless
        // complete-mode circuit VC, whose flits are uncredited).
        let arrived_buffered =
            !self.layout.is_circuit_vc(flit.vc) || self.mechanism.circuit_vc_buffered();
        if arrived_buffered {
            self.activity.credits += 1;
            out.push(Outgoing::Credit {
                dir,
                vc: flit.vc,
                arrive: now + self.link_latency as Cycle,
            });
        }
        let o = &mut self.outputs[entry.out_port.index()];
        o.busy = true;
        self.activity.xbar_traversals += 1;
        flit.vc = if self.layout.circuit_vcs > 0 {
            self.layout
                .circuit_vc(entry.vc as usize % self.layout.circuit_vcs.max(1))
        } else {
            flit.vc
        };
        // Fragmented circuit VCs are buffered and credited; the bypass
        // consumes the downstream slot it may need at a gap router.
        if self.mechanism.mode == CircuitMode::Fragmented && entry.out_port != Direction::Local {
            o.credits[flit.vc] = o.credits[flit.vc]
                .checked_sub(1)
                .expect("fragmented bypass head verified whole-message credits");
        }
        let arrive = if entry.out_port == Direction::Local {
            now + 1
        } else {
            self.activity.link_flits += 1;
            now + 1 + self.link_latency as Cycle
        };
        out.push(Outgoing::Flit {
            dir: entry.out_port,
            flit,
            arrive,
        });
    }

    /// Stage 1: buffer write and route computation.
    fn buffer_flit(&mut self, now: Cycle, dir: Direction, flit: Flit) {
        let vc_idx = flit.vc;
        if flit.kind.is_head() && !self.inputs[dir.index()].vcs[vc_idx].is_idle() {
            // A head whose fallback VC is still draining an earlier
            // packet — e.g. a timed circuit stream that lost its window
            // behind a stuck port and degraded to the pipeline. It must
            // wait, not corrupt the wormhole: park it with the bypass
            // retries ([`Router::drain_bypass_retries`] holds it until
            // the VC idles, and the non-empty queue keeps its body flits
            // behind it in arrival order).
            self.bypass_retry[dir.index()].push_back(flit);
            return;
        }
        let vc = &mut self.inputs[dir.index()].vcs[vc_idx];
        self.activity.buffer_writes += 1;
        if flit.kind.is_head() {
            // Detoured packets follow the source route recorded in their
            // head (DESIGN.md §10); everything else routes DOR.
            let routing = Routing::for_vnet(flit.vnet);
            let hop = flit
                .path
                .as_deref()
                .and_then(|p| next_hop_on_path(&self.mesh, p, self.node))
                .unwrap_or_else(|| next_hop(&self.mesh, self.node, flit.dst, routing));
            vc.route = Some(hop);
            vc.state = VcState::WaitVa;
            vc.state_since = now;
            vc.circuit_attempted = false;
        }
        vc.buffer.push_back(flit);
    }

    /// Stage 4: switch traversal for last cycle's SA winners. Circuit
    /// bypasses processed earlier this cycle have already claimed their
    /// output ports (crossbar priority, §4.3); blocked grants retry.
    fn stage_st(&mut self, now: Cycle, out: &mut Vec<Outgoing>) {
        // Swap the grant list into scratch so blocked grants can re-queue
        // onto `st_pending` without reallocating either vector.
        std::mem::swap(&mut self.st_pending, &mut self.st_scratch);
        for i in 0..self.st_scratch.len() {
            let g = self.st_scratch[i];
            let vc = &self.inputs[g.in_port].vcs[g.in_vc];
            let route = vc.route.expect("granted VC has a route");
            let out_vc = vc.out_vc.expect("granted VC has an output VC");
            if self.outputs[route.index()].busy {
                self.st_pending.push(g);
                continue;
            }
            let vc = &mut self.inputs[g.in_port].vcs[g.in_vc];
            let mut flit = vc.buffer.pop_front().expect("granted VC has a flit");
            let is_tail = flit.kind.is_tail();
            if is_tail {
                vc.reset(now);
            }
            if flit.kind.is_head() {
                self.sink.emit(|| TraceEvent {
                    cycle: now,
                    kind: EventKind::StageSt {
                        packet: flit.packet.0,
                        node: self.node.0,
                    },
                });
            }
            self.activity.buffer_reads += 1;
            self.activity.xbar_traversals += 1;

            // Return the freed buffer slot upstream.
            let in_dir = Direction::from_index(g.in_port);
            self.activity.credits += 1;
            out.push(Outgoing::Credit {
                dir: in_dir,
                vc: g.in_vc,
                arrive: now + self.link_latency as Cycle,
            });

            let o = &mut self.outputs[route.index()];
            o.busy = true;
            flit.vc = out_vc;
            let arrive = if route == Direction::Local {
                now + 1
            } else {
                o.credits[out_vc] = o.credits[out_vc]
                    .checked_sub(1)
                    .expect("SA checked a credit was available");
                self.activity.link_flits += 1;
                now + 1 + self.link_latency as Cycle
            };
            if is_tail {
                o.owner[out_vc] = if route == Direction::Local {
                    Owner::Free
                } else {
                    Owner::Draining
                };
            }
            out.push(Outgoing::Flit {
                dir: route,
                flit,
                arrive,
            });
        }
        self.st_scratch.clear();
    }

    /// Stage 3: two-phase round-robin switch allocation; winners traverse
    /// the crossbar next cycle.
    fn stage_sa(&mut self, now: Cycle) {
        // Inputs with a grant still pending ST cannot be granted again.
        let mut blocked = [false; 5];
        for g in &self.st_pending {
            blocked[g.in_port] = true;
        }
        // Phase 1: each input port nominates one VC.
        let mut nominee: [Option<usize>; 5] = [None; 5];
        #[allow(clippy::needless_range_loop)] // p indexes three parallel arrays
        for p in 0..5 {
            if blocked[p] {
                continue;
            }
            let total = self.layout.total();
            self.sa_requests.clear();
            self.sa_requests.resize(total, false);
            for v in 0..total {
                let vc = &self.inputs[p].vcs[v];
                let stage_ok = match vc.state {
                    VcState::WaitSa => vc.state_since < now,
                    VcState::Active => true,
                    _ => false,
                };
                if !stage_ok || vc.buffer.is_empty() {
                    continue;
                }
                let route = vc.route.expect("post-VA VC has a route");
                let out_vc = vc.out_vc.expect("post-VA VC has an output VC");
                let credit_ok = route == Direction::Local
                    || self.outputs[route.index()].credits[out_vc] > 0
                    // Circuit-class VCs are reservation-managed, not
                    // credited (fragmented gap traffic).
                    || self.layout.is_circuit_vc(out_vc);
                if credit_ok {
                    self.sa_requests[v] = true;
                }
            }
            nominee[p] = self.sa_rr_in[p].grant(&self.sa_requests);
        }
        // Phase 2: each output port picks one input.
        for out_port in 0..5 {
            let mut contenders = [0usize; 5];
            let mut n_con = 0;
            for (p, nom) in nominee.iter().enumerate() {
                if nom.is_some_and(|v| {
                    self.inputs[p].vcs[v].route == Some(Direction::from_index(out_port))
                }) {
                    contenders[n_con] = p;
                    n_con += 1;
                }
            }
            if let Some(winner) = self.sa_rr_out[out_port].grant_among(&contenders[..n_con]) {
                let v = nominee[winner].expect("winner nominated a VC");
                let vc = &mut self.inputs[winner].vcs[v];
                if vc.state == VcState::WaitSa {
                    vc.state = VcState::Active;
                    vc.state_since = now;
                    let head = vc.buffer.front().expect("granted VC holds a flit");
                    if head.kind.is_head() {
                        let packet = head.packet.0;
                        self.sink.emit(|| TraceEvent {
                            cycle: now,
                            kind: EventKind::StageSa {
                                packet,
                                node: self.node.0,
                            },
                        });
                    }
                }
                self.activity.sw_allocs += 1;
                self.st_pending.push(StGrant {
                    in_port: winner,
                    in_vc: v,
                });
            }
        }
    }

    /// Stage 2: VC allocation — and, in parallel, the reactive-circuit
    /// reservation for request packets (§4.1).
    fn stage_va(&mut self, now: Cycle, out: &mut Vec<Outgoing>) {
        // Circuit reservations happen on the first VA attempt, whether or
        // not the VC wins allocation this cycle.
        for p in 0..5 {
            for v in 0..self.layout.total() {
                let vc = &self.inputs[p].vcs[v];
                if vc.state == VcState::WaitVa && vc.state_since < now && !vc.circuit_attempted {
                    self.attempt_reservation(now, p, v, out);
                }
            }
        }

        // Two-phase allocation: requesters grouped by output port; one
        // grant per output port per cycle, round-robin over input ports.
        for out_port in 0..5 {
            let dir = Direction::from_index(out_port);
            let mut tried = [0usize; 5];
            let mut n_tried = 0;
            for p in 0..5 {
                if self.inputs[p].vcs.iter().any(|vc| {
                    vc.state == VcState::WaitVa && vc.state_since < now && vc.route == Some(dir)
                }) {
                    tried[n_tried] = p;
                    n_tried += 1;
                }
            }
            // Check a free output VC exists for at least one contender
            // class; pick the winner first (RR), then the VC.
            let mut granted = false;
            while !granted && n_tried > 0 {
                let Some(winner) = self.va_rr_out[out_port].grant_among(&tried[..n_tried]) else {
                    break;
                };
                let pos = tried[..n_tried]
                    .iter()
                    .position(|&p| p == winner)
                    .expect("winner came from the candidate list");
                tried[pos..n_tried].rotate_left(1);
                n_tried -= 1;
                // The winning input port's oldest WaitVa VC for this output.
                let Some((v, vnet)) = self.inputs[winner]
                    .vcs
                    .iter()
                    .enumerate()
                    .filter(|(_, vc)| {
                        vc.state == VcState::WaitVa && vc.state_since < now && vc.route == Some(dir)
                    })
                    .min_by_key(|(_, vc)| vc.state_since)
                    .map(|(v, vc)| {
                        let head = vc.buffer.front().expect("WaitVa VC holds its head");
                        (v, head.vnet)
                    })
                else {
                    continue;
                };
                let free_vc = self
                    .layout
                    .allocatable_vcs(vnet)
                    .find(|&ovc| self.outputs[out_port].owner[ovc] == Owner::Free);
                if let Some(ovc) = free_vc {
                    self.outputs[out_port].owner[ovc] = Owner::Owned(winner, v);
                    let vc = &mut self.inputs[winner].vcs[v];
                    vc.out_vc = Some(ovc);
                    vc.state = VcState::WaitSa;
                    vc.state_since = now;
                    let packet = vc
                        .buffer
                        .front()
                        .expect("WaitVa VC holds its head")
                        .packet
                        .0;
                    self.sink.emit(|| TraceEvent {
                        cycle: now,
                        kind: EventKind::StageVa {
                            packet,
                            node: self.node.0,
                        },
                    });
                    self.activity.vc_allocs += 1;
                    granted = true;
                }
            }
        }
    }

    /// Number of flits buffered across all input VCs (occupancy telemetry
    /// and whitebox tests).
    pub(crate) fn buffered_flits(&self) -> usize {
        self.inputs
            .iter()
            .flat_map(|p| p.vcs.iter())
            .map(|v| v.buffer.len())
            .sum()
    }

    /// The §4.1 reservation: while the request head sits in VA, write the
    /// reply's circuit into this router's tables.
    fn attempt_reservation(&mut self, now: Cycle, p: usize, v: usize, out: &mut Vec<Outgoing>) {
        let vc = &mut self.inputs[p].vcs[v];
        vc.circuit_attempted = true;
        let route = vc.route.expect("WaitVa VC has a route");
        let head = vc.buffer.front_mut().expect("WaitVa VC holds its head");
        let Some(handle) = head.circuit.as_deref_mut() else {
            return;
        };
        if handle.failed {
            return;
        }
        // Reply direction through this router: it arrives from where the
        // request is going and leaves where the request came from.
        let in_port_reply = route;
        let out_port_reply = Direction::from_index(p);
        if self.degraded {
            // A degraded router refuses reservations outright: complete
            // circuits are doomed like any reservation conflict, while
            // fragmented and ideal circuits simply gain a gap here.
            if self.mechanism.mode == CircuitMode::Complete {
                handle.failed = true;
                if handle.built_hops > 0 {
                    let key = handle.key;
                    self.activity.credits += 1;
                    out.push(Outgoing::Undo {
                        dir: out_port_reply,
                        key,
                        dst: key.requestor,
                        arrive: now + self.link_latency as Cycle,
                    });
                }
            }
            return;
        }
        let h_req = self.mesh.distance(self.node, head.dst);

        let (window, max_extra_shift, nominal, slack) = match handle.timing {
            Some(t) => {
                let nominal = now
                    + (REQ_HOP_CYCLES * h_req) as Cycle
                    + handle.turnaround as Cycle
                    + self.inject_overhead as Cycle;
                let slack = self.mechanism.timed.slack(handle.path_hops);
                // `nominal` is the reply's *injection* time at its NI; it
                // occupies this router one cycle later (NI→router link).
                let w = router_window(nominal + 1, t.shift, h_req, handle.reply_flits, slack);
                (Some(w), t.max_shift - t.shift, nominal, slack)
            }
            None => (None, 0, 0, 0),
        };

        let req = ReserveRequest {
            key: handle.key,
            source: handle.source,
            in_port: in_port_reply,
            out_port: out_port_reply,
            window,
            max_extra_shift,
        };
        let key = handle.key;
        match self.circuits.try_reserve(&req) {
            Ok(outcome) => {
                handle.built_hops += 1;
                self.activity.circuit_writes += 1;
                self.sink.emit(|| TraceEvent {
                    cycle: now,
                    kind: EventKind::CircuitReserve {
                        node: self.node.0,
                        requestor: key.requestor.0,
                        block: key.block,
                    },
                });
                if let Some(t) = handle.timing.as_mut() {
                    t.shift += outcome.extra_shift;
                    t.narrow(nominal, slack);
                    if !t.feasible() {
                        // A delayed request can no longer meet the earlier
                        // routers' windows: doom the circuit now.
                        handle.failed = true;
                        let key = handle.key;
                        let dst = key.requestor;
                        self.process_undo(now, key, dst, out);
                    }
                }
            }
            Err(_) => {
                self.sink.emit(|| TraceEvent {
                    cycle: now,
                    kind: EventKind::CircuitConflict {
                        node: self.node.0,
                        requestor: key.requestor.0,
                        block: key.block,
                    },
                });
                match self.mechanism.mode {
                    CircuitMode::Complete => {
                        handle.failed = true;
                        let built = handle.built_hops;
                        if built > 0 {
                            self.activity.credits += 1;
                            out.push(Outgoing::Undo {
                                dir: out_port_reply,
                                key,
                                dst: key.requestor,
                                arrive: now + self.link_latency as Cycle,
                            });
                        }
                    }
                    // Fragmented circuits keep the partial prefix and try
                    // again at the next hop (§4.2).
                    CircuitMode::Fragmented => {}
                    CircuitMode::None | CircuitMode::Ideal => {
                        unreachable!("these modes never fail reservations")
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitKind, PacketId};
    use rcsim_core::{MechanismConfig, Mesh, MessageClass, Vnet};

    fn router(mechanism: MechanismConfig) -> Router {
        let mesh = Mesh::new(4, 4).expect("valid");
        // Router at n5 = (1,1): all four neighbours exist.
        Router::new(NodeId(5), &NocConfig::paper_baseline(mesh, mechanism))
    }

    fn flit(kind: FlitKind, seq: u32, len: u32, dst: u16, vc: usize) -> Flit {
        Flit {
            packet: PacketId(1),
            kind,
            seq,
            len,
            src: NodeId(4),
            dst: NodeId(dst),
            class: MessageClass::L1Request,
            vnet: Vnet::Request,
            vc,
            circuit: None,
            on_circuit: None,
            scrounger_final: None,
            block: 0x40,
            token: 0,
            created_at: 0,
            injected_at: 0,
            corrupted: false,
            path: None,
        }
    }

    fn tick(r: &mut Router, now: Cycle, mut arrivals: Vec<(Direction, Flit)>) -> Vec<Outgoing> {
        let mut out = Vec::new();
        r.tick(
            now,
            &mut arrivals,
            &mut Vec::new(),
            &mut Vec::new(),
            &mut out,
        );
        out
    }

    /// The Table 4 pipeline takes exactly four cycles in the router: a
    /// head arriving at cycle 0 departs on the link during the tick at
    /// cycle 3 (RC@0, VA@1, SA@2, ST@3).
    #[test]
    fn single_flit_takes_four_router_cycles() {
        let mut r = router(MechanismConfig::baseline());
        // Head-tail toward n6 = (2,1): East of n5, arriving from the West.
        let f = flit(FlitKind::HeadTail, 0, 1, 6, 0);
        let out = tick(&mut r, 0, vec![(Direction::West, f)]);
        assert!(out.is_empty(), "cycle 0: buffered + route computed");
        assert!(tick(&mut r, 1, vec![]).is_empty(), "cycle 1: VC allocation");
        assert!(
            tick(&mut r, 2, vec![]).is_empty(),
            "cycle 2: switch allocation"
        );
        let out = tick(&mut r, 3, vec![]);
        let sent = out
            .iter()
            .find_map(|o| match o {
                Outgoing::Flit { dir, arrive, .. } => Some((*dir, *arrive)),
                _ => None,
            })
            .expect("cycle 3: switch traversal");
        assert_eq!(sent.0, Direction::East);
        assert_eq!(sent.1, 3 + 2, "one ST cycle + one link cycle");
        // The freed buffer slot returns upstream as a credit.
        assert!(out.iter().any(|o| matches!(
            o,
            Outgoing::Credit {
                dir: Direction::West,
                vc: 0,
                ..
            }
        )));
        assert_eq!(r.buffered_flits(), 0);
    }

    /// Body flits stream one per cycle behind the head.
    #[test]
    fn multiflit_streams_at_one_per_cycle() {
        let mut r = router(MechanismConfig::baseline());
        let mut departures = Vec::new();
        for now in 0..16u64 {
            let arrivals = if now < 5 {
                let seq = now as u32;
                vec![(
                    Direction::West,
                    flit(FlitKind::for_position(seq, 5), seq, 5, 6, 0),
                )]
            } else {
                vec![]
            };
            for o in tick(&mut r, now, arrivals) {
                if let Outgoing::Flit { .. } = o {
                    departures.push(now);
                }
            }
        }
        // Head departs at cycle 3 (after RC/VA/SA); the other four flits
        // stream back-to-back behind it.
        assert_eq!(departures, vec![3, 4, 5, 6, 7], "1 flit/cycle streaming");
        assert_eq!(r.buffered_flits(), 0);
    }

    /// Two heads contending for one output port: switch allocation
    /// serializes them round-robin; both eventually depart.
    #[test]
    fn output_contention_is_arbitrated() {
        let mut r = router(MechanismConfig::baseline());
        let a = flit(FlitKind::HeadTail, 0, 1, 6, 0);
        let mut b = flit(FlitKind::HeadTail, 0, 1, 6, 0);
        b.packet = PacketId(2);
        b.src = NodeId(1);
        let _ = tick(&mut r, 0, vec![(Direction::West, a), (Direction::North, b)]);
        let mut departures = 0;
        for now in 1..10 {
            for o in tick(&mut r, now, vec![]) {
                if let Outgoing::Flit { dir, .. } = o {
                    assert_eq!(dir, Direction::East);
                    departures += 1;
                }
            }
        }
        assert_eq!(departures, 2, "both packets cross, serialized");
    }

    /// A request head reserves the reply circuit during its VA cycle,
    /// with the reply's ports mirrored from the request's.
    #[test]
    fn reservation_happens_at_va_with_mirrored_ports() {
        let mut r = router(MechanismConfig::complete());
        let mut f = flit(FlitKind::HeadTail, 0, 1, 6, 0);
        f.circuit = Some(Box::new(rcsim_core::circuit::CircuitHandle::new(
            NodeId(4),
            0x40,
            NodeId(6),
            2,
            5,
            7,
        )));
        let _ = tick(&mut r, 0, vec![(Direction::West, f)]);
        assert_eq!(r.circuits.total_entries(), 0, "not during RC");
        let _ = tick(&mut r, 1, vec![]);
        assert_eq!(
            r.circuits.total_entries(),
            1,
            "reserved in parallel with VA"
        );
        // Reply arrives from where the request went (East) and leaves
        // where it came from (West).
        let key = rcsim_core::circuit::CircuitKey {
            requestor: NodeId(4),
            block: 0x40,
        };
        let e = r
            .circuits
            .lookup(Direction::East, key)
            .expect("entry at East input");
        assert_eq!(e.out_port, Direction::West);
    }

    /// A reply flit with a matching reservation crosses in the arrival
    /// cycle (1-cycle bypass) and releases the circuit at its tail.
    #[test]
    fn bypass_crosses_in_one_cycle_and_releases() {
        let mut r = router(MechanismConfig::complete());
        let key = rcsim_core::circuit::CircuitKey {
            requestor: NodeId(4),
            block: 0x40,
        };
        r.circuits
            .try_reserve(&ReserveRequest {
                key,
                source: NodeId(6),
                in_port: Direction::East,
                out_port: Direction::West,
                window: None,
                max_extra_shift: 0,
            })
            .expect("reservation succeeds");
        let mut f = flit(FlitKind::HeadTail, 0, 1, 4, 3);
        f.class = MessageClass::L2Reply;
        f.vnet = Vnet::Reply;
        f.on_circuit = Some(key);
        let out = tick(&mut r, 10, vec![(Direction::East, f)]);
        let (dir, arrive) = out
            .iter()
            .find_map(|o| match o {
                Outgoing::Flit { dir, arrive, .. } => Some((*dir, *arrive)),
                _ => None,
            })
            .expect("bypass departs the same cycle");
        assert_eq!(dir, Direction::West);
        assert_eq!(arrive, 12, "1 router cycle + 1 link cycle");
        assert_eq!(r.circuits.total_entries(), 0, "tail released the circuit");
        assert_eq!(r.buffered_flits(), 0, "bypassed flits are never stored");
    }

    /// An undo notification removes the local entry and is forwarded
    /// towards the circuit destination.
    #[test]
    fn undo_propagates_towards_destination() {
        let mut r = router(MechanismConfig::complete());
        let key = rcsim_core::circuit::CircuitKey {
            requestor: NodeId(4),
            block: 0x40,
        };
        r.circuits
            .try_reserve(&ReserveRequest {
                key,
                source: NodeId(6),
                in_port: Direction::East,
                out_port: Direction::West,
                window: None,
                max_extra_shift: 0,
            })
            .expect("reservation succeeds");
        let mut out = Vec::new();
        r.tick(
            5,
            &mut Vec::new(),
            &mut Vec::new(),
            &mut vec![(key, NodeId(4))],
            &mut out,
        );
        assert_eq!(r.circuits.total_entries(), 0);
        assert!(out.iter().any(|o| matches!(
            o,
            Outgoing::Undo {
                dir: Direction::West,
                ..
            }
        )));
    }
}
