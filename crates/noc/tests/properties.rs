//! Property-based tests of the network: conservation, ordering and
//! latency lower bounds under randomized traffic, for every mechanism.

use proptest::prelude::*;
use rcsim_core::{MechanismConfig, Mesh, MessageClass, NodeId};
use rcsim_noc::{FaultConfig, Network, NocConfig, PacketSpec};
use std::collections::HashMap;

fn any_mechanism() -> impl Strategy<Value = MechanismConfig> {
    prop_oneof![
        Just(MechanismConfig::baseline()),
        Just(MechanismConfig::fragmented()),
        Just(MechanismConfig::complete()),
        Just(MechanismConfig::complete_noack()),
        Just(MechanismConfig::reuse_noack()),
        Just(MechanismConfig::timed_noack()),
        Just(MechanismConfig::slack_delay(1)),
        Just(MechanismConfig::postponed(1)),
        Just(MechanismConfig::ideal()),
    ]
}

fn any_class() -> impl Strategy<Value = MessageClass> {
    prop_oneof![
        Just(MessageClass::L1Request),
        Just(MessageClass::WbData),
        Just(MessageClass::L2Reply),
        Just(MessageClass::L1DataAck),
        Just(MessageClass::L1InvAck),
        Just(MessageClass::MemoryReply),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every injected packet is delivered exactly once, to the right
    /// node, regardless of mechanism, class mix or injection pattern.
    #[test]
    fn packets_conserved(
        mechanism in any_mechanism(),
        packets in prop::collection::vec((0u16..16, 0u16..16, any_class(), 0u64..64), 1..80),
    ) {
        let mesh = Mesh::new(4, 4).expect("valid");
        let mut net = Network::new(NocConfig::paper_baseline(mesh, mechanism)).expect("valid");
        let mut expected: HashMap<(u16, u64), u32> = HashMap::new();
        for (i, (src, dst, class, stagger)) in packets.iter().enumerate() {
            if src == dst {
                continue;
            }
            // Stagger injections across cycles.
            for _ in 0..(*stagger % 4) {
                net.tick();
            }
            net.inject(
                PacketSpec::new(NodeId(*src), NodeId(*dst), *class)
                    .with_block((i as u64 + 1) * 64)
                    .with_token(i as u64),
            );
            *expected.entry((*dst, i as u64)).or_insert(0) += 1;
        }
        for _ in 0..20_000 {
            net.tick();
            if net.is_quiescent() {
                break;
            }
        }
        prop_assert!(net.is_quiescent(), "network failed to drain under {}", mechanism.label());
        let mut got: HashMap<(u16, u64), u32> = HashMap::new();
        for d in 0..16u16 {
            for p in net.take_delivered(NodeId(d)) {
                *got.entry((d, p.token)).or_insert(0) += 1;
            }
        }
        prop_assert_eq!(got, expected);
    }

    /// Conservation holds with the fault layer active: every injected
    /// packet is either delivered (possibly after retransmission) or
    /// accounted as dropped-after-retries — nothing vanishes silently.
    #[test]
    fn packets_conserved_under_faults(
        mechanism in any_mechanism(),
        drop_rate in 0.0f64..0.15,
        corrupt_rate in 0.0f64..0.15,
        fault_seed in 0u64..1_000,
        packets in prop::collection::vec((0u16..16, 0u16..16, any_class(), 0u64..64), 1..60),
    ) {
        let mesh = Mesh::new(4, 4).expect("valid");
        let faults = FaultConfig {
            link_drop_rate: drop_rate,
            link_corrupt_rate: corrupt_rate,
            seed: fault_seed,
            ..FaultConfig::none()
        };
        let mut net = Network::with_faults(
            NocConfig::paper_baseline(mesh, mechanism), faults,
        ).expect("valid");
        let mut expected = 0u64;
        for (i, (src, dst, class, stagger)) in packets.iter().enumerate() {
            if src == dst {
                continue;
            }
            for _ in 0..(*stagger % 4) {
                net.tick();
            }
            net.inject(
                PacketSpec::new(NodeId(*src), NodeId(*dst), *class)
                    .with_block((i as u64 + 1) * 64)
                    .with_token(i as u64),
            );
            expected += 1;
        }
        for _ in 0..40_000 {
            net.tick();
            if net.is_quiescent() {
                break;
            }
        }
        prop_assert!(
            net.is_quiescent(),
            "faulty network failed to drain under {}", mechanism.label()
        );
        let s = net.stats();
        let delivered: u64 = (0..16u16)
            .map(|d| net.take_delivered(NodeId(d)).len() as u64)
            .sum();
        prop_assert_eq!(s.total_injected(), expected);
        prop_assert_eq!(
            s.total_injected(),
            delivered + s.dropped_packets,
            "injected must equal delivered + dropped-after-retries ({:?})",
            net.fault_stats()
        );
    }

    /// Network latency never beats the physical lower bound:
    /// 2 cycles/hop (circuit speed) plus injection+ejection.
    #[test]
    fn latency_at_least_circuit_speed(
        mechanism in any_mechanism(),
        src in 0u16..16,
        dst in 0u16..16,
    ) {
        prop_assume!(src != dst);
        let mesh = Mesh::new(4, 4).expect("valid");
        let mut net = Network::new(NocConfig::paper_baseline(mesh, mechanism)).expect("valid");
        net.inject(
            PacketSpec::new(NodeId(src), NodeId(dst), MessageClass::L1Request).with_block(64),
        );
        let mut lat = None;
        for _ in 0..500 {
            net.tick();
            if let Some(d) = net.take_delivered(NodeId(dst)).pop() {
                lat = Some(d.delivered_at - d.injected_at);
                break;
            }
        }
        let lat = lat.expect("delivered");
        let hops = mesh.distance(NodeId(src), NodeId(dst)) as u64;
        prop_assert!(lat >= 2 * hops, "{lat} cycles over {hops} hops is faster than light");
    }

    /// Multi-flit packets arrive whole and in order (flit count checked by
    /// the NI assembly assertions; this exercises them broadly).
    #[test]
    fn wormhole_streams_survive_congestion(
        mechanism in any_mechanism(),
        senders in prop::collection::vec(0u16..16, 2..10),
    ) {
        let mesh = Mesh::new(4, 4).expect("valid");
        let mut net = Network::new(NocConfig::paper_baseline(mesh, mechanism)).expect("valid");
        // Everyone streams a 5-flit message to node 0: head-of-line mess.
        let mut n = 0;
        for (i, s) in senders.iter().enumerate() {
            if *s != 0 {
                net.inject(
                    PacketSpec::new(NodeId(*s), NodeId(0), MessageClass::L2Reply)
                        .with_block((i as u64 + 1) * 64),
                );
                n += 1;
            }
        }
        for _ in 0..5_000 {
            net.tick();
        }
        prop_assert_eq!(net.take_delivered(NodeId(0)).len(), n);
    }
}
