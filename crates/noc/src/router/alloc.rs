//! Round-robin arbitration, the primitive under the two-phase VC and
//! switch allocators of the baseline router (Table 4).

use serde::{Deserialize, Serialize};

/// A rotating-priority arbiter over `n` requesters.
///
/// After each grant the priority pointer moves past the winner, giving
/// strong fairness (every continuously-requesting input is served within
/// `n` grants).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundRobin {
    next: usize,
    n: usize,
}

impl RoundRobin {
    /// An arbiter over `n` requesters.
    pub fn new(n: usize) -> Self {
        Self { next: 0, n }
    }

    /// Grants one of the requesting indices (`requests[i] == true`) and
    /// advances the priority pointer. Returns `None` when nothing requests.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len() != n`.
    pub fn grant(&mut self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.n, "request vector size mismatch");
        if self.n == 0 {
            return None;
        }
        for off in 0..self.n {
            let i = (self.next + off) % self.n;
            if requests[i] {
                self.next = (i + 1) % self.n;
                return Some(i);
            }
        }
        None
    }

    /// Like [`RoundRobin::grant`] but over an explicit candidate list of
    /// indices (not necessarily dense).
    pub fn grant_among(&mut self, candidates: &[usize]) -> Option<usize> {
        if candidates.is_empty() || self.n == 0 {
            return None;
        }
        // Pick the candidate closest after the pointer.
        let winner = candidates
            .iter()
            .copied()
            .min_by_key(|&c| (c + self.n - self.next) % self.n)?;
        self.next = (winner + 1) % self.n;
        Some(winner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotates_fairly() {
        let mut rr = RoundRobin::new(3);
        let all = [true, true, true];
        assert_eq!(rr.grant(&all), Some(0));
        assert_eq!(rr.grant(&all), Some(1));
        assert_eq!(rr.grant(&all), Some(2));
        assert_eq!(rr.grant(&all), Some(0));
    }

    #[test]
    fn skips_idle_requesters() {
        let mut rr = RoundRobin::new(4);
        assert_eq!(rr.grant(&[false, false, true, false]), Some(2));
        // Pointer is now at 3, which is idle; the grant wraps to 0.
        assert_eq!(rr.grant(&[true, false, true, false]), Some(0));
    }

    #[test]
    fn none_when_no_requests() {
        let mut rr = RoundRobin::new(2);
        assert_eq!(rr.grant(&[false, false]), None);
        assert_eq!(RoundRobin::new(0).grant(&[]), None);
    }

    #[test]
    fn grant_among_respects_pointer() {
        let mut rr = RoundRobin::new(5);
        assert_eq!(rr.grant_among(&[1, 3]), Some(1));
        // Pointer now at 2: 3 wins over 1.
        assert_eq!(rr.grant_among(&[1, 3]), Some(3));
        // Pointer now at 4: wraps to 1.
        assert_eq!(rr.grant_among(&[1, 3]), Some(1));
        assert_eq!(rr.grant_among(&[]), None);
    }

    #[test]
    fn starvation_freedom() {
        // Input 0 always requests; input 1 requests too. Both must be
        // served infinitely often.
        let mut rr = RoundRobin::new(2);
        let mut counts = [0u32; 2];
        for _ in 0..100 {
            let w = rr.grant(&[true, true]).unwrap();
            counts[w] += 1;
        }
        assert_eq!(counts, [50, 50]);
    }
}
