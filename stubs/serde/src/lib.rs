//! Offline stand-in for serde with a *working* self-describing data model.
//!
//! The original stub made `Serialize`/`Deserialize` empty marker traits, so
//! `serde_json` could only emit a `{}` placeholder and never parse anything
//! back. This version keeps the same public surface the workspace uses
//! (`serde::{Serialize, Deserialize}`, the derive macros, `#[serde(default)]`)
//! but gives the traits one real method each over a small self-describing
//! value tree ([`content::Content`]): enough for faithful JSON round-trips of
//! every type in the workspace, while staying hermetic (no crates.io).

pub use serde_derive::{Deserialize, Serialize};

pub mod content;

/// Types that can be converted into the self-describing [`content::Content`]
/// tree (the stub's whole serde data model).
pub trait Serialize {
    /// The value as a content tree.
    fn to_content(&self) -> content::Content;
}

/// Types that can be rebuilt from a [`content::Content`] tree.
///
/// The lifetime parameter exists only for signature compatibility with real
/// serde (`from_str::<T>` takes `T: Deserialize<'a>`); the stub always
/// deserializes from owned data.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds the value from a content tree.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first shape mismatch.
    fn from_content(c: &content::Content) -> Result<Self, content::Error>;
}

/// Owned-data deserialization (blanket, as in real serde).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

pub mod de {
    //! Deserialization re-exports (API compatibility).
    pub use super::{Deserialize, DeserializeOwned};
}
pub mod ser {
    //! Serialization re-exports (API compatibility).
    pub use super::Serialize;
}

use content::{Content, Error};

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let n = c.as_u64().ok_or_else(|| {
                    Error::msg(format!("expected unsigned integer, got {}", c.kind()))
                })?;
                <$t>::try_from(n).map_err(|_| Error::msg("unsigned integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let n = c.as_i64().ok_or_else(|| {
                    Error::msg(format!("expected integer, got {}", c.kind()))
                })?;
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl<'de> Deserialize<'de> for bool {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}
impl<'de> Deserialize<'de> for f64 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_f64()
            .ok_or_else(|| Error::msg(format!("expected number, got {}", c.kind())))
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}
impl<'de> Deserialize<'de> for f32 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl<'de> Deserialize<'de> for String {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}
impl<'de> Deserialize<'de> for char {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::msg(format!(
                "expected single-char string, got {}",
                other.kind()
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Reference / smart-pointer impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

// ---------------------------------------------------------------------------
// Sequence impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(Error::msg(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_content(c: &Content) -> Result<Self, Error> {
        let v: Vec<T> = Vec::from_content(c)?;
        let got = v.len();
        v.try_into()
            .map_err(|_| Error::msg(format!("expected array of length {N}, got {got}")))
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::VecDeque<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        Vec::from_content(c).map(Vec::into_iter).map(|i| i.collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, Error> {
                match c {
                    Content::Seq(items) if items.len() == [$($n),+].len() => {
                        Ok(($($t::from_content(&items[$n])?,)+))
                    }
                    other => Err(Error::msg(format!(
                        "expected {}-tuple, got {}", [$($n),+].len(), other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// ---------------------------------------------------------------------------
// Map impls (JSON object keys must stringify; unit enum variants and
// integers qualify, matching real serde_json)
// ---------------------------------------------------------------------------

fn key_to_string(c: Content) -> Result<String, Error> {
    match c {
        Content::Str(s) => Ok(s),
        Content::U64(n) => Ok(n.to_string()),
        Content::I64(n) => Ok(n.to_string()),
        other => Err(Error::msg(format!(
            "map key must serialize to a string, got {}",
            other.kind()
        ))),
    }
}

fn key_from_string<'de, K: Deserialize<'de>>(s: &str) -> Result<K, Error> {
    // Try the string itself first (String / unit-enum keys), then fall
    // back to a numeric reparse for integer-keyed maps.
    K::from_content(&Content::Str(s.to_owned())).or_else(|e| {
        if let Ok(u) = s.parse::<u64>() {
            return K::from_content(&Content::U64(u));
        }
        if let Ok(i) = s.parse::<i64>() {
            return K::from_content(&Content::I64(i));
        }
        Err(e)
    })
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        let mut entries = Vec::with_capacity(self.len());
        for (k, v) in self {
            let key = key_to_string(k.to_content()).expect("unstringifiable map key");
            entries.push((key, v.to_content()));
        }
        Content::Map(entries)
    }
}
impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_content(v)?)))
                .collect(),
            other => Err(Error::msg(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| {
                let key = key_to_string(k.to_content()).expect("unstringifiable map key");
                (key, v.to_content())
            })
            .collect();
        // Deterministic output regardless of hash order.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}
impl<'de, K, V, S> Deserialize<'de> for std::collections::HashMap<K, V, S>
where
    K: Deserialize<'de> + std::hash::Hash + Eq,
    V: Deserialize<'de>,
    S: std::hash::BuildHasher + Default,
{
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_content(v)?)))
                .collect(),
            other => Err(Error::msg(format!("expected object, got {}", other.kind()))),
        }
    }
}

// Content serializes/deserializes as itself, so `serde_json::Value`
// (an alias for it) works with the generic entry points.
impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}
impl<'de> Deserialize<'de> for Content {
    fn from_content(c: &Content) -> Result<Self, Error> {
        Ok(c.clone())
    }
}
