//! Memory controllers: fixed-latency backing store (160 cycles, Table 2).

use crate::msg::{Msg, Port};
use rcsim_core::{Cycle, MessageClass, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Per-controller counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// Line reads served.
    pub reads: u64,
    /// Line write-backs absorbed.
    pub writes: u64,
}

/// One memory controller tile: a flat backing store answering after the
/// configured latency. Both fetches and write-back acks come back as
/// `MEMORY` replies (Table 3), which are circuit-eligible.
#[derive(Debug, Clone)]
pub struct MemoryController {
    node: NodeId,
    latency: u32,
    store: HashMap<u64, u64>,
    pending: VecDeque<(Cycle, Msg)>,
    stats: MemStats,
}

impl MemoryController {
    /// A controller at `node` with the given access latency.
    pub fn new(node: NodeId, latency: u32) -> Self {
        Self {
            node,
            latency,
            store: HashMap::new(),
            pending: VecDeque::new(),
            stats: MemStats::default(),
        }
    }

    /// Event counters.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Zeroes the counters (end of warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
    }

    /// `true` when no access is in flight.
    pub fn is_quiescent(&self) -> bool {
        self.pending.is_empty()
    }

    /// The stored content of a line (0 if never written), for invariant
    /// checks.
    pub fn peek(&self, block: u64) -> u64 {
        self.store.get(&block).copied().unwrap_or(0)
    }

    /// Accepts a request; the reply is produced `latency` cycles later.
    pub fn receive(&mut self, msg: Msg, now: Cycle) {
        debug_assert!(matches!(
            msg.class,
            MessageClass::MemRequest | MessageClass::MemWbData
        ));
        self.pending.push_back((now + self.latency as Cycle, msg));
    }

    /// `true` when [`MemoryController::tick`] would emit a reply at `now`.
    /// Used by the event kernel to skip idle controllers; ticking when this
    /// is `false` is a no-op, so skipping cannot change observable state.
    pub fn has_due_work(&self, now: Cycle) -> bool {
        self.pending.front().is_some_and(|&(ready, _)| ready <= now)
    }

    /// Emits due replies.
    pub fn tick(&mut self, now: Cycle, port: &mut dyn Port) {
        while let Some(&(ready, _)) = self.pending.front() {
            if ready > now {
                break;
            }
            let (_, msg) = self.pending.pop_front().expect("front checked");
            match msg.class {
                MessageClass::MemRequest => {
                    self.stats.reads += 1;
                    let data = self.peek(msg.block);
                    port.send(
                        Msg::new(MessageClass::MemoryReply, self.node, msg.src, msg.block)
                            .with_data(data),
                        1,
                    );
                }
                MessageClass::MemWbData => {
                    self.stats.writes += 1;
                    self.store.insert(msg.block, msg.data);
                    // The ack is a single-flit MEMORY reply.
                    port.send(
                        Msg::new(MessageClass::MemoryReply, self.node, msg.src, msg.block)
                            .with_short(),
                        1,
                    );
                }
                other => panic!("memory controller got {other}"),
            }
        }
    }

    /// The full dynamic state, for checkpointing.
    pub fn snapshot(&self) -> MemSnapshot {
        let mut store: Vec<(u64, u64)> = self.store.iter().map(|(&b, &d)| (b, d)).collect();
        store.sort_unstable();
        MemSnapshot {
            store,
            pending: self.pending.clone(),
            stats: self.stats,
        }
    }

    /// Overwrites the dynamic state from a
    /// [`MemoryController::snapshot`] taken on an identically-configured
    /// controller.
    pub fn restore(&mut self, snap: MemSnapshot) {
        self.store = snap.store.into_iter().collect();
        self.pending = snap.pending;
        self.stats = snap.stats;
    }
}

/// Complete dynamic state of one [`MemoryController`], for
/// checkpointing. The backing store is sorted so the serialized form is
/// deterministic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemSnapshot {
    store: Vec<(u64, u64)>,
    pending: VecDeque<(Cycle, Msg)>,
    stats: MemStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcsim_core::circuit::CircuitKey;

    struct TestPort {
        now: Cycle,
        sent: Vec<Msg>,
    }
    impl Port for TestPort {
        fn now(&self) -> Cycle {
            self.now
        }
        fn send(&mut self, msg: Msg, _t: u32) -> bool {
            self.sent.push(msg);
            false
        }
        fn undo_circuit(&mut self, _k: CircuitKey) {}
        fn record_eliminated_ack(&mut self) {}
    }

    #[test]
    fn read_after_latency() {
        let mut mc = MemoryController::new(NodeId(0), 160);
        let mut p = TestPort {
            now: 0,
            sent: vec![],
        };
        mc.receive(
            Msg::new(MessageClass::MemRequest, NodeId(5), NodeId(0), 0x40),
            0,
        );
        mc.tick(159, &mut p);
        assert!(p.sent.is_empty(), "not before the latency elapses");
        mc.tick(160, &mut p);
        assert_eq!(p.sent.len(), 1);
        assert_eq!(p.sent[0].class, MessageClass::MemoryReply);
        assert_eq!(p.sent[0].dst, NodeId(5));
        assert!(mc.is_quiescent());
    }

    #[test]
    fn write_then_read_returns_data() {
        let mut mc = MemoryController::new(NodeId(0), 10);
        let mut p = TestPort {
            now: 0,
            sent: vec![],
        };
        mc.receive(
            Msg::new(MessageClass::MemWbData, NodeId(5), NodeId(0), 0x40).with_data(77),
            0,
        );
        mc.tick(10, &mut p);
        assert_eq!(mc.peek(0x40), 77);
        mc.receive(
            Msg::new(MessageClass::MemRequest, NodeId(6), NodeId(0), 0x40),
            10,
        );
        mc.tick(20, &mut p);
        assert_eq!(p.sent.last().unwrap().data, 77);
        assert_eq!(mc.stats().reads, 1);
        assert_eq!(mc.stats().writes, 1);
    }

    #[test]
    fn unwritten_lines_read_zero() {
        let mc = MemoryController::new(NodeId(0), 10);
        assert_eq!(mc.peek(0x1234), 0);
    }
}
