//! Topology abstraction: mesh, torus, concentrated mesh and ring behind
//! one enum, all sharing the paper's port model and the path-symmetry
//! guarantee that circuit reservation rests on (§4.1).
//!
//! # Port model
//!
//! Every router has four network ports with fixed indices — North `0`,
//! East `1`, South `2`, West `3` (matching [`Direction::index`]) — and
//! `concentration()` local ports at indices `4..4 + c`. A plain mesh,
//! torus or ring has one local port (index 4, the old `Direction::Local`),
//! so its port numbering is bit-identical to the pre-topology code. A
//! concentrated mesh (`CMesh`) attaches `c` tiles to each router through
//! distinct local ports.
//!
//! # Identity spaces
//!
//! Tiles (cores, caches, NIs) and routers are distinct spaces. For mesh,
//! torus and ring they coincide (`router_of` is the identity); for
//! `CMesh` with concentration `c`, tile `t` sits at router `t / c`, local
//! slot `t % c`, and routers form a `width × height` grid numbered
//! row-major. Flit source routes, [`TopologyHealth`] and fault events all
//! live in *router* space.
//!
//! # Wraparound and deadlock (dateline rule)
//!
//! Torus and ring links wrap. Three rules keep them deadlock-free
//! (DESIGN.md §12):
//!
//! 1. every virtual network splits its allocatable VCs into two *dateline
//!    classes*; a packet whose remaining travel in the current dimension
//!    still crosses the wrap link allocates class 0, otherwise class 1
//!    ([`Topology::vc_class`] — stateless, derived from position alone);
//! 2. wrap topologies add one extra reply VC so every VN has at least two
//!    allocatable VCs to split;
//! 3. circuit reservations never span a wrap link
//!    ([`Topology::is_wrap_hop`]), so circuit-VC dependency chains cannot
//!    close a cycle around a ring dimension.

use crate::config::ConfigError;
use crate::geometry::{Coord, Mesh};
use crate::policy::CongestionMap;
use crate::routing::{Routing, TopologyHealth};
use crate::types::{Direction, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Port indices of the four network ports (identical to
/// [`Direction::index`]); local ports follow at `4..4 + concentration`.
pub const PORT_NORTH: usize = 0;
/// East network port.
pub const PORT_EAST: usize = 1;
/// South network port.
pub const PORT_SOUTH: usize = 2;
/// West network port.
pub const PORT_WEST: usize = 3;
/// First local (injection/ejection) port.
pub const PORT_LOCAL: usize = 4;

/// The physical interconnect topology of one chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Topology {
    /// The paper's 2-D mesh (bit-identical to the pre-topology code).
    Mesh(Mesh),
    /// 2-D torus: mesh plus wraparound links in both dimensions.
    Torus {
        /// Columns of the router grid.
        width: u16,
        /// Rows of the router grid.
        height: u16,
    },
    /// Concentrated mesh: `concentration` tiles share each router through
    /// distinct local ports.
    CMesh {
        /// Columns of the router grid.
        width: u16,
        /// Rows of the router grid.
        height: u16,
        /// Tiles per router (local ports per router).
        concentration: u16,
    },
    /// 1-D bidirectional ring using the East/West ports only.
    Ring {
        /// Number of nodes (= routers) on the ring.
        nodes: u16,
    },
}

impl From<Mesh> for Topology {
    fn from(mesh: Mesh) -> Self {
        Topology::Mesh(mesh)
    }
}

impl Topology {
    /// A torus with the given router grid.
    ///
    /// # Errors
    ///
    /// Returns the dimension errors of [`Mesh::new`].
    pub fn torus(width: u16, height: u16) -> Result<Self, ConfigError> {
        Mesh::new(width, height)?;
        Ok(Topology::Torus { width, height })
    }

    /// A concentrated mesh: a `width × height` router grid with
    /// `concentration` tiles per router.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::EmptyMesh`] for a zero dimension or zero
    /// concentration and [`ConfigError::MeshTooLarge`] when the *tile*
    /// count exceeds the node-id space.
    pub fn cmesh(width: u16, height: u16, concentration: u16) -> Result<Self, ConfigError> {
        if concentration == 0 {
            return Err(ConfigError::EmptyMesh);
        }
        Mesh::new(width, height)?;
        let tiles = width as u32 * height as u32 * concentration as u32;
        if tiles > u16::MAX as u32 {
            return Err(ConfigError::MeshTooLarge);
        }
        Ok(Topology::CMesh {
            width,
            height,
            concentration,
        })
    }

    /// A ring of `nodes` routers.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::EmptyMesh`] for fewer than two nodes (a
    /// one-node ring has no links).
    pub fn ring(nodes: u16) -> Result<Self, ConfigError> {
        if nodes < 2 {
            return Err(ConfigError::EmptyMesh);
        }
        Ok(Topology::Ring { nodes })
    }

    /// Short label for bench rows and reports.
    pub fn label(&self) -> String {
        match self {
            Topology::Mesh(_) => "mesh".to_owned(),
            Topology::Torus { .. } => "torus".to_owned(),
            Topology::CMesh { concentration, .. } => format!("cmesh-{concentration}"),
            Topology::Ring { .. } => "ring".to_owned(),
        }
    }

    /// Number of tiles (cores, caches, NIs).
    pub fn nodes(&self) -> usize {
        match self {
            Topology::Mesh(m) => m.nodes(),
            Topology::Torus { width, height } => *width as usize * *height as usize,
            Topology::CMesh {
                width,
                height,
                concentration,
            } => *width as usize * *height as usize * *concentration as usize,
            Topology::Ring { nodes } => *nodes as usize,
        }
    }

    /// Number of routers (`nodes() / concentration()`).
    pub fn routers(&self) -> usize {
        self.nodes() / self.concentration()
    }

    /// Tiles per router (local ports per router); 1 except for `CMesh`.
    pub fn concentration(&self) -> usize {
        match self {
            Topology::CMesh { concentration, .. } => *concentration as usize,
            _ => 1,
        }
    }

    /// Total ports per router: four network ports plus the local ports.
    pub fn ports(&self) -> usize {
        PORT_LOCAL + self.concentration()
    }

    /// The router grid dimensions `(width, height)` (a ring is `n × 1`).
    pub fn dims(&self) -> (u16, u16) {
        match self {
            Topology::Mesh(m) => (m.width(), m.height()),
            Topology::Torus { width, height } | Topology::CMesh { width, height, .. } => {
                (*width, *height)
            }
            Topology::Ring { nodes } => (*nodes, 1),
        }
    }

    /// Iterator over all router ids, row-major.
    pub fn iter_routers(&self) -> impl Iterator<Item = NodeId> {
        (0..self.routers() as u16).map(NodeId)
    }

    /// Iterator over all tile ids.
    pub fn iter_tiles(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes() as u16).map(NodeId)
    }

    /// The router a tile hangs off.
    pub fn router_of(&self, tile: NodeId) -> NodeId {
        NodeId(tile.0 / self.concentration() as u16)
    }

    /// The local-port slot of a tile at its router (`0..concentration()`).
    pub fn local_slot(&self, tile: NodeId) -> usize {
        tile.index() % self.concentration()
    }

    /// The tile attached to `router` through local slot `slot`.
    pub fn tile_of(&self, router: NodeId, slot: usize) -> NodeId {
        NodeId(router.0 * self.concentration() as u16 + slot as u16)
    }

    /// The router port a flit ejects through to reach `tile`.
    pub fn eject_port(&self, tile: NodeId) -> usize {
        PORT_LOCAL + self.local_slot(tile)
    }

    /// `true` for injection/ejection ports.
    pub fn is_local_port(&self, port: usize) -> bool {
        port >= PORT_LOCAL
    }

    /// Coordinate of a router on the grid.
    pub fn coord(&self, router: NodeId) -> Coord {
        let (w, _) = self.dims();
        Coord {
            x: router.0 % w,
            y: router.0 / w,
        }
    }

    /// Router at a grid coordinate.
    pub fn router_at(&self, c: Coord) -> NodeId {
        let (w, _) = self.dims();
        NodeId(c.y * w + c.x)
    }

    /// The neighbouring *router* out of a network port, or `None` at a
    /// mesh edge, for a local port, or for an unused ring port.
    pub fn neighbor(&self, router: NodeId, port: usize) -> Option<NodeId> {
        match self {
            Topology::Mesh(m) => {
                if port >= PORT_LOCAL {
                    return None;
                }
                m.neighbor(router, Direction::from_index(port))
            }
            Topology::CMesh { width, height, .. } => {
                let c = self.coord(router);
                let n = match port {
                    PORT_NORTH => Coord {
                        x: c.x,
                        y: c.y.checked_sub(1)?,
                    },
                    PORT_SOUTH => {
                        if c.y + 1 >= *height {
                            return None;
                        }
                        Coord { x: c.x, y: c.y + 1 }
                    }
                    PORT_EAST => {
                        if c.x + 1 >= *width {
                            return None;
                        }
                        Coord { x: c.x + 1, y: c.y }
                    }
                    PORT_WEST => Coord {
                        x: c.x.checked_sub(1)?,
                        y: c.y,
                    },
                    _ => return None,
                };
                Some(self.router_at(n))
            }
            Topology::Torus { width, height } => {
                let c = self.coord(router);
                let n = match port {
                    PORT_NORTH if *height > 1 => Coord {
                        x: c.x,
                        y: (c.y + height - 1) % height,
                    },
                    PORT_SOUTH if *height > 1 => Coord {
                        x: c.x,
                        y: (c.y + 1) % height,
                    },
                    PORT_EAST if *width > 1 => Coord {
                        x: (c.x + 1) % width,
                        y: c.y,
                    },
                    PORT_WEST if *width > 1 => Coord {
                        x: (c.x + width - 1) % width,
                        y: c.y,
                    },
                    _ => return None,
                };
                Some(self.router_at(n))
            }
            Topology::Ring { nodes } => match port {
                PORT_EAST => Some(NodeId((router.0 + 1) % nodes)),
                PORT_WEST => Some(NodeId((router.0 + nodes - 1) % nodes)),
                _ => None,
            },
        }
    }

    /// `true` when the hop out of `port` at `router` crosses a wraparound
    /// link (torus dateline / ring seam). Always `false` on mesh/cmesh.
    pub fn is_wrap_hop(&self, router: NodeId, port: usize) -> bool {
        match self {
            Topology::Mesh(_) | Topology::CMesh { .. } => false,
            Topology::Torus { width, height } => {
                let c = self.coord(router);
                match port {
                    PORT_NORTH => *height > 1 && c.y == 0,
                    PORT_SOUTH => *height > 1 && c.y == height - 1,
                    PORT_EAST => *width > 1 && c.x == width - 1,
                    PORT_WEST => *width > 1 && c.x == 0,
                    _ => false,
                }
            }
            Topology::Ring { nodes } => match port {
                PORT_EAST => router.0 == nodes - 1,
                PORT_WEST => router.0 == 0,
                _ => false,
            },
        }
    }

    /// `true` for topologies with wraparound links (torus, ring): these
    /// need the dateline VC classes and the extra reply VC.
    pub fn has_wrap(&self) -> bool {
        matches!(self, Topology::Torus { .. } | Topology::Ring { .. })
    }

    /// Minimal hop distance between two *routers*.
    pub fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        match self {
            Topology::Mesh(m) => m.distance(a, b),
            Topology::CMesh { .. } => {
                let ca = self.coord(a);
                let cb = self.coord(b);
                (ca.x.abs_diff(cb.x) + ca.y.abs_diff(cb.y)) as u32
            }
            Topology::Torus { width, height } => {
                let ca = self.coord(a);
                let cb = self.coord(b);
                let dx = ca.x.abs_diff(cb.x);
                let dy = ca.y.abs_diff(cb.y);
                (dx.min(width - dx) + dy.min(height - dy)) as u32
            }
            Topology::Ring { nodes } => {
                let d = a.0.abs_diff(b.0);
                d.min(nodes - d) as u32
            }
        }
    }

    /// Minimal hop distance between two *tiles* (their routers).
    pub fn hop_count(&self, a: NodeId, b: NodeId) -> u32 {
        self.distance(self.router_of(a), self.router_of(b))
    }

    /// Minimal direction of travel in one wrapping dimension of size
    /// `len`: `Some(true)` = positive direction (East/South), `Some(false)`
    /// = negative, `None` = already aligned. Equal wrap distances break
    /// the tie toward the *non-wrapping* direction, which is what makes
    /// forward and reverse routes retrace each other.
    fn wrap_dir(at: u16, dst: u16, len: u16) -> Option<bool> {
        if at == dst {
            return None;
        }
        let pos = (dst + len - at) % len; // hops going positive
        let neg = (at + len - dst) % len; // hops going negative
        if pos < neg {
            Some(true)
        } else if neg < pos {
            Some(false)
        } else {
            // Tie: take the direction that does not cross the wrap link.
            Some(dst > at)
        }
    }

    /// The output port at router `at` for a packet whose destination
    /// *router* is `dst`, under dimension-order routing. Must not be
    /// called with `at == dst` (ejection is [`Topology::eject_port`],
    /// which needs the tile).
    fn min_route_port(&self, at: NodeId, dst: NodeId, algo: Routing) -> usize {
        debug_assert_ne!(at, dst, "min_route_port called at the destination");
        let (w, h) = self.dims();
        let ca = self.coord(at);
        let cd = self.coord(dst);
        let (x_dir, y_dir) = match self {
            Topology::Mesh(_) | Topology::CMesh { .. } => (
                match cd.x.cmp(&ca.x) {
                    std::cmp::Ordering::Greater => Some(PORT_EAST),
                    std::cmp::Ordering::Less => Some(PORT_WEST),
                    std::cmp::Ordering::Equal => None,
                },
                match cd.y.cmp(&ca.y) {
                    std::cmp::Ordering::Greater => Some(PORT_SOUTH),
                    std::cmp::Ordering::Less => Some(PORT_NORTH),
                    std::cmp::Ordering::Equal => None,
                },
            ),
            Topology::Torus { .. } | Topology::Ring { .. } => (
                Self::wrap_dir(ca.x, cd.x, w).map(|pos| if pos { PORT_EAST } else { PORT_WEST }),
                Self::wrap_dir(ca.y, cd.y, h).map(|pos| if pos { PORT_SOUTH } else { PORT_NORTH }),
            ),
        };
        match algo {
            Routing::Xy => x_dir.or(y_dir),
            Routing::Yx => y_dir.or(x_dir),
        }
        .expect("at != dst, so one dimension differs")
    }

    /// The output port at router `at` for a packet heading to *tile*
    /// `dst`: the ejection port when `at` is the destination's router,
    /// the DOR port otherwise.
    pub fn next_hop_port(&self, at: NodeId, dst: NodeId, algo: Routing) -> usize {
        let dst_router = self.router_of(dst);
        if at == dst_router {
            self.eject_port(dst)
        } else {
            self.min_route_port(at, dst_router, algo)
        }
    }

    /// The full sequence of *routers* a packet visits between two tiles
    /// (inclusive of both endpoint routers).
    pub fn route_path(&self, src: NodeId, dst: NodeId, algo: Routing) -> Vec<NodeId> {
        let mut at = self.router_of(src);
        let dst_router = self.router_of(dst);
        let mut path = vec![at];
        while at != dst_router {
            let port = self.min_route_port(at, dst_router, algo);
            at = self
                .neighbor(at, port)
                .expect("min_route_port returned an edge-crossing port");
            path.push(at);
        }
        path
    }

    /// Dateline VC class of the downstream input VC for a hop arriving at
    /// router `downstream` out of network port `port`, for a packet whose
    /// destination router is `dst`: class 0 while the remaining travel in
    /// the hop's dimension still crosses the wrap link, class 1 once it no
    /// longer does. Stateless — derived from position alone — and always
    /// 1 on mesh/cmesh (which never restrict by class).
    pub fn vc_class(&self, downstream: NodeId, dst: NodeId, port: usize) -> usize {
        if !self.has_wrap() {
            return 1;
        }
        let m = self.coord(downstream);
        let d = self.coord(dst);
        let wraps_ahead = match port {
            // Going East (x grows, wraps w-1 -> 0): still ahead iff the
            // destination column is behind us in East order.
            PORT_EAST => d.x < m.x,
            PORT_WEST => d.x > m.x,
            PORT_SOUTH => d.y < m.y,
            PORT_NORTH => d.y > m.y,
            _ => false,
        };
        usize::from(!wraps_ahead)
    }

    /// The network port leading from router `a` to adjacent router `b`,
    /// or `None` when the two are not neighbours. Scan order E, W, N, S
    /// matches the old mesh `direction_between`.
    pub fn port_between(&self, a: NodeId, b: NodeId) -> Option<usize> {
        [PORT_EAST, PORT_WEST, PORT_NORTH, PORT_SOUTH]
            .into_iter()
            .find(|&p| self.neighbor(a, p) == Some(b))
    }

    /// The output port at router `at` for a packet following a recorded
    /// router `path` toward tile `dst`: the ejection port at the path's
    /// end, `None` when `at` is not on the path or the recorded successor
    /// is not adjacent (caller falls back to plain DOR).
    pub fn next_hop_on_path(&self, path: &[NodeId], at: NodeId, dst: NodeId) -> Option<usize> {
        let i = path.iter().position(|&n| n == at)?;
        match path.get(i + 1) {
            None => Some(self.eject_port(dst)),
            Some(&next) => self.port_between(at, next),
        }
    }

    /// Shortest healthy router path between the routers of two tiles,
    /// avoiding dead links and routers, or `None` when the degraded
    /// network is disconnected between the two. Breadth-first search with
    /// the fixed E/W/N/S expansion order of the old mesh BFS, so mesh
    /// detours are bit-identical and every topology's detour is fully
    /// deterministic.
    pub fn route_path_healthy(
        &self,
        src: NodeId,
        dst: NodeId,
        topo: &TopologyHealth,
    ) -> Option<Vec<NodeId>> {
        let src = self.router_of(src);
        let dst = self.router_of(dst);
        if !topo.node_usable(src) || !topo.node_usable(dst) {
            return None;
        }
        if src == dst {
            return Some(vec![src]);
        }
        let n = self.routers();
        let mut prev: Vec<Option<NodeId>> = vec![None; n];
        let mut seen = vec![false; n];
        seen[src.index()] = true;
        let mut frontier = VecDeque::from([src]);
        while let Some(at) = frontier.pop_front() {
            for port in [PORT_EAST, PORT_WEST, PORT_NORTH, PORT_SOUTH] {
                let Some(nb) = self.neighbor(at, port) else {
                    continue;
                };
                if seen[nb.index()] || !topo.node_usable(nb) || !topo.link_usable(at, nb) {
                    continue;
                }
                seen[nb.index()] = true;
                prev[nb.index()] = Some(at);
                if nb == dst {
                    let mut path = vec![dst];
                    let mut n = dst;
                    while let Some(p) = prev[n.index()] {
                        path.push(p);
                        n = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                frontier.push_back(nb);
            }
        }
        None
    }

    /// Like [`Topology::route_path_healthy`], but additionally refuses to
    /// route *through* routers the [`CongestionMap`] marks hot, and —
    /// unlike the fault BFS, whose detours are rare — constrains the path
    /// to a deadlock-free *turn model*, because congestion detours happen
    /// in bulk and unrestricted paths would close cycles in a virtual
    /// network's channel-dependency graph (observed as wormhole deadlock
    /// among detoured replies):
    ///
    /// * request VN (`Routing::Xy`) — **west-first**: every West hop
    ///   precedes any other direction. XY DOR paths satisfy this (their
    ///   X phase comes first), and west-first prohibits exactly the
    ///   North→West / South→West turns that close both abstract mesh
    ///   cycles (Glass & Ni), so DOR traffic plus these detours stays
    ///   acyclic;
    /// * reply VN (`Routing::Yx`) — **east-last**: after the first East
    ///   hop, only East hops follow. YX DOR paths satisfy it (horizontal
    ///   phase last), it prohibits the East→North / East→South turns
    ///   (again one per abstract cycle), and it is exactly the *reverse*
    ///   of west-first — so a reply retracing a detoured request's
    ///   recorded route is compliant by construction.
    ///
    /// Wrap links are never taken: a detour across the torus dateline is
    /// outside the mesh turn-model argument, so detours stay on the mesh
    /// subgraph (torus DOR traffic keeps its dateline VC classes).
    ///
    /// The endpoints are exempt from the hot check — a packet cannot
    /// avoid its own source or destination router — so this returns
    /// `None` only when every healthy, model-compliant route crosses a
    /// hot interior router (callers then fall back to DOR). Fixed
    /// E/W/N/S BFS expansion order, for the same determinism guarantee
    /// as [`Topology::route_path_healthy`].
    pub fn route_path_healthy_avoiding(
        &self,
        src: NodeId,
        dst: NodeId,
        routing: Routing,
        topo: &TopologyHealth,
        cong: &CongestionMap,
    ) -> Option<Vec<NodeId>> {
        let src = self.router_of(src);
        let dst = self.router_of(dst);
        if !topo.node_usable(src) || !topo.node_usable(dst) {
            return None;
        }
        if src == dst {
            return Some(vec![src]);
        }
        let n = self.routers();
        // Two BFS layers per router: before and after the turn-model
        // commit point (west-first: the first non-West hop; east-last:
        // the first East hop).
        let idx = |r: NodeId, committed: bool| r.index() + if committed { n } else { 0 };
        let mut prev: Vec<Option<(NodeId, bool)>> = vec![None; 2 * n];
        let mut seen = vec![false; 2 * n];
        seen[idx(src, false)] = true;
        let mut frontier = VecDeque::from([(src, false)]);
        while let Some((at, committed)) = frontier.pop_front() {
            for port in [PORT_EAST, PORT_WEST, PORT_NORTH, PORT_SOUTH] {
                let Some(nb) = self.neighbor(at, port) else {
                    continue;
                };
                let (a, b) = (self.coord(at), self.coord(nb));
                if a.x.abs_diff(b.x) + a.y.abs_diff(b.y) != 1 {
                    continue; // wrap link
                }
                let next_committed = match routing {
                    Routing::Xy => {
                        if committed && port == PORT_WEST {
                            continue;
                        }
                        committed || port != PORT_WEST
                    }
                    Routing::Yx => {
                        if committed && port != PORT_EAST {
                            continue;
                        }
                        committed || port == PORT_EAST
                    }
                };
                if seen[idx(nb, next_committed)]
                    || !topo.node_usable(nb)
                    || !topo.link_usable(at, nb)
                {
                    continue;
                }
                if nb != dst && cong.is_hot(nb.index()) {
                    continue;
                }
                seen[idx(nb, next_committed)] = true;
                prev[idx(nb, next_committed)] = Some((at, committed));
                if nb == dst {
                    let mut path = vec![dst];
                    let mut cur = (at, committed);
                    loop {
                        path.push(cur.0);
                        match prev[idx(cur.0, cur.1)] {
                            Some(p) => cur = p,
                            None => break,
                        }
                    }
                    path.reverse();
                    return Some(path);
                }
                frontier.push_back((nb, next_committed));
            }
        }
        None
    }

    /// The tiles where external open-loop traffic enters the chip: every
    /// tile whose router sits in the leftmost grid column (`x == 0`).
    /// Identical to the old `Mesh::west_edge` on a mesh; a ring's single
    /// `n × 1` row pins ingress at node 0.
    pub fn edge_nodes(&self) -> Vec<NodeId> {
        let (_, h) = self.dims();
        let mut edge = Vec::new();
        for y in 0..h {
            let router = self.router_at(Coord { x: 0, y });
            for slot in 0..self.concentration() {
                edge.push(self.tile_of(router, slot));
            }
        }
        edge
    }

    /// The tiles holding memory controllers. Mesh keeps the paper's
    /// placement exactly (top and bottom edges); torus and cmesh reuse the
    /// same grid rule (cmesh maps each chosen router to its slot-0 tile);
    /// a ring spreads four controllers evenly around the circumference.
    pub fn memory_controller_tiles(&self) -> Vec<NodeId> {
        match self {
            Topology::Mesh(m) => m.memory_controller_tiles(),
            Topology::Torus { width, height } | Topology::CMesh { width, height, .. } => {
                let grid = Mesh::new(*width, *height).expect("validated at construction");
                grid.memory_controller_tiles()
                    .into_iter()
                    .map(|r| self.tile_of(r, 0))
                    .collect()
            }
            Topology::Ring { nodes } => {
                let mut tiles: Vec<NodeId> = (0..4u32)
                    .map(|i| NodeId((i * *nodes as u32 / 4) as u16))
                    .collect();
                tiles.dedup();
                tiles
            }
        }
    }
}

/// How [`SimConfig`](https://docs.rs/rcsim-system)'s `cores` knob lowers
/// to a [`Topology`]: the spec carries only the *shape*, and the concrete
/// dimensions come from the core count (squares preferred, the most
/// nearly square rectangle otherwise — exactly how plain meshes always
/// resolved).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopologySpec {
    /// Plain 2-D mesh (the default; serialization omits it so old cache
    /// keys and goldens stay valid).
    #[default]
    Mesh,
    /// 2-D torus on the same grid a mesh would use.
    Torus,
    /// Concentrated mesh with the given tiles-per-router.
    CMesh {
        /// Tiles per router.
        concentration: u16,
    },
    /// 1-D bidirectional ring over all cores.
    Ring,
}

impl TopologySpec {
    /// `true` for the default mesh spec (used by `skip_serializing_if` to
    /// keep default configurations byte-identical on disk).
    pub fn is_mesh(&self) -> bool {
        matches!(self, TopologySpec::Mesh)
    }

    /// Short label for bench rows.
    pub fn label(&self) -> String {
        match self {
            TopologySpec::Mesh => "mesh".to_owned(),
            TopologySpec::Torus => "torus".to_owned(),
            TopologySpec::CMesh { concentration } => format!("cmesh-{concentration}"),
            TopologySpec::Ring => "ring".to_owned(),
        }
    }

    /// Builds the concrete topology for `cores` tiles.
    ///
    /// # Errors
    ///
    /// Returns the dimension errors of the topology constructors (zero
    /// cores, node-id overflow, or a core count not divisible by a cmesh
    /// concentration).
    pub fn build(&self, cores: u16) -> Result<Topology, ConfigError> {
        match self {
            TopologySpec::Mesh => {
                let mesh = Mesh::square(cores).or_else(|_| Mesh::near_square(cores))?;
                Ok(Topology::Mesh(mesh))
            }
            TopologySpec::Torus => {
                let grid = Mesh::square(cores).or_else(|_| Mesh::near_square(cores))?;
                Topology::torus(grid.width(), grid.height())
            }
            TopologySpec::CMesh { concentration } => {
                if *concentration == 0 || !cores.is_multiple_of(*concentration) {
                    return Err(ConfigError::NotSquare(cores));
                }
                let routers = cores / concentration;
                let grid = Mesh::square(routers).or_else(|_| Mesh::near_square(routers))?;
                Topology::cmesh(grid.width(), grid.height(), *concentration)
            }
            TopologySpec::Ring => Topology::ring(cores),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_topologies() -> Vec<Topology> {
        vec![
            Topology::Mesh(Mesh::new(4, 4).unwrap()),
            Topology::torus(4, 4).unwrap(),
            Topology::torus(5, 3).unwrap(),
            Topology::cmesh(4, 2, 4).unwrap(),
            Topology::ring(16).unwrap(),
            Topology::ring(7).unwrap(),
        ]
    }

    #[test]
    fn constructors_validate() {
        assert!(Topology::torus(0, 4).is_err());
        assert!(Topology::cmesh(4, 4, 0).is_err());
        assert!(Topology::cmesh(256, 256, 4).is_err());
        assert!(Topology::ring(1).is_err());
        assert!(Topology::ring(2).is_ok());
    }

    #[test]
    fn mesh_matches_legacy_geometry() {
        let mesh = Mesh::new(4, 4).unwrap();
        let t = Topology::Mesh(mesh);
        assert_eq!(t.nodes(), 16);
        assert_eq!(t.routers(), 16);
        assert_eq!(t.ports(), 5);
        for r in t.iter_routers() {
            for d in Direction::ALL {
                let legacy = mesh.neighbor(r, d);
                assert_eq!(t.neighbor(r, d.index()), legacy, "r={r} d={d}");
            }
            assert_eq!(t.eject_port(r), Direction::Local.index());
        }
        assert_eq!(t.edge_nodes(), mesh.west_edge());
        assert_eq!(t.memory_controller_tiles(), mesh.memory_controller_tiles());
        use crate::routing::{next_hop, route_path};
        for s in t.iter_routers() {
            for d in [NodeId(0), NodeId(3), NodeId(10), NodeId(15)] {
                for algo in [Routing::Xy, Routing::Yx] {
                    assert_eq!(
                        t.route_path(s, d, algo),
                        route_path(&mesh, s, d, algo),
                        "s={s} d={d}"
                    );
                    assert_eq!(
                        t.next_hop_port(s, d, algo),
                        next_hop(&mesh, s, d, algo).index(),
                        "s={s} d={d}"
                    );
                }
            }
        }
    }

    #[test]
    fn neighbor_links_are_symmetric() {
        for t in all_topologies() {
            for r in t.iter_routers() {
                for (port, opp) in [
                    (PORT_NORTH, PORT_SOUTH),
                    (PORT_EAST, PORT_WEST),
                    (PORT_SOUTH, PORT_NORTH),
                    (PORT_WEST, PORT_EAST),
                ] {
                    if let Some(nb) = t.neighbor(r, port) {
                        assert_eq!(t.neighbor(nb, opp), Some(r), "{t:?} r={r} port={port}");
                    }
                }
            }
        }
    }

    #[test]
    fn paths_are_minimal_and_terminate() {
        for t in all_topologies() {
            for s in t.iter_tiles() {
                for d in t.iter_tiles() {
                    for algo in [Routing::Xy, Routing::Yx] {
                        let p = t.route_path(s, d, algo);
                        assert_eq!(p.len() as u32, t.hop_count(s, d) + 1, "{t:?} s={s} d={d}");
                        assert_eq!(p.first(), Some(&t.router_of(s)));
                        assert_eq!(p.last(), Some(&t.router_of(d)));
                        for w in p.windows(2) {
                            assert_eq!(t.distance(w[0], w[1]), 1, "{t:?} non-adjacent hop");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn xy_forward_equals_yx_reverse_everywhere() {
        // The property circuit reservation rests on (§4.1), per topology.
        for t in all_topologies() {
            for s in t.iter_tiles() {
                for d in t.iter_tiles() {
                    let fwd = t.route_path(s, d, Routing::Xy);
                    let mut back = t.route_path(d, s, Routing::Yx);
                    back.reverse();
                    assert_eq!(fwd, back, "{t:?} s={s} d={d}");
                }
            }
        }
    }

    #[test]
    fn torus_distance_uses_wraparound() {
        let t = Topology::torus(4, 4).unwrap();
        assert_eq!(t.distance(NodeId(0), NodeId(3)), 1); // wrap West
        assert_eq!(t.distance(NodeId(0), NodeId(12)), 1); // wrap North
        assert_eq!(t.distance(NodeId(0), NodeId(15)), 2);
        let r = Topology::ring(8).unwrap();
        assert_eq!(r.distance(NodeId(0), NodeId(7)), 1);
        assert_eq!(r.distance(NodeId(1), NodeId(5)), 4);
    }

    #[test]
    fn wrap_hops_only_at_the_seam() {
        let t = Topology::torus(4, 4).unwrap();
        assert!(t.is_wrap_hop(NodeId(3), PORT_EAST));
        assert!(t.is_wrap_hop(NodeId(0), PORT_WEST));
        assert!(t.is_wrap_hop(NodeId(0), PORT_NORTH));
        assert!(t.is_wrap_hop(NodeId(12), PORT_SOUTH));
        assert!(!t.is_wrap_hop(NodeId(1), PORT_EAST));
        let m = Topology::Mesh(Mesh::new(4, 4).unwrap());
        for r in m.iter_routers() {
            for p in 0..4 {
                assert!(!m.is_wrap_hop(r, p));
            }
        }
        let r = Topology::ring(8).unwrap();
        assert!(r.is_wrap_hop(NodeId(7), PORT_EAST));
        assert!(r.is_wrap_hop(NodeId(0), PORT_WEST));
        assert!(!r.is_wrap_hop(NodeId(3), PORT_EAST));
    }

    #[test]
    fn dateline_class_flips_after_the_wrap() {
        let t = Topology::torus(4, 4).unwrap();
        // Node 2 -> node 1 going East wraps at x=3: before the wrap the
        // remaining path still crosses it (class 0), after it does not.
        assert_eq!(t.vc_class(NodeId(3), NodeId(1), PORT_EAST), 0);
        assert_eq!(t.vc_class(NodeId(0), NodeId(1), PORT_EAST), 1);
        // Non-wrapping journeys are class 1 from the start.
        assert_eq!(t.vc_class(NodeId(1), NodeId(3), PORT_EAST), 1);
        // Mesh never restricts.
        let m = Topology::Mesh(Mesh::new(4, 4).unwrap());
        assert_eq!(m.vc_class(NodeId(1), NodeId(3), PORT_EAST), 1);
    }

    #[test]
    fn cmesh_identity_spaces() {
        let t = Topology::cmesh(4, 2, 4).unwrap();
        assert_eq!(t.nodes(), 32);
        assert_eq!(t.routers(), 8);
        assert_eq!(t.ports(), 8);
        assert_eq!(t.router_of(NodeId(13)), NodeId(3));
        assert_eq!(t.local_slot(NodeId(13)), 1);
        assert_eq!(t.tile_of(NodeId(3), 1), NodeId(13));
        assert_eq!(t.eject_port(NodeId(13)), PORT_LOCAL + 1);
        // Tiles on the same router are zero hops apart.
        assert_eq!(t.hop_count(NodeId(12), NodeId(13)), 0);
        assert_eq!(t.route_path(NodeId(12), NodeId(13), Routing::Xy).len(), 1);
    }

    #[test]
    fn edge_nodes_cover_column_zero() {
        let t = Topology::cmesh(4, 2, 4).unwrap();
        let edge = t.edge_nodes();
        assert_eq!(edge.len(), 8); // 2 rows x 4 tiles
        for n in &edge {
            assert_eq!(t.coord(t.router_of(*n)).x, 0);
        }
        assert_eq!(Topology::ring(8).unwrap().edge_nodes(), vec![NodeId(0)]);
        assert_eq!(Topology::torus(4, 4).unwrap().edge_nodes().len(), 4);
    }

    #[test]
    fn memory_controllers_exist_and_are_distinct() {
        for t in all_topologies() {
            let mcs = t.memory_controller_tiles();
            assert!(!mcs.is_empty(), "{t:?}");
            let mut sorted = mcs.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), mcs.len(), "{t:?} duplicate MC tiles");
            for mc in &mcs {
                assert!(mc.index() < t.nodes());
            }
        }
    }

    #[test]
    fn healthy_bfs_generalizes() {
        for t in all_topologies() {
            let health = TopologyHealth::new();
            let p = t.route_path_healthy(NodeId(0), NodeId(5), &health).unwrap();
            assert_eq!(p.first(), Some(&t.router_of(NodeId(0))));
            assert_eq!(p.last(), Some(&t.router_of(NodeId(5))));
            // BFS on a healthy network is minimal.
            assert_eq!(p.len() as u32, t.hop_count(NodeId(0), NodeId(5)) + 1);
        }
    }

    #[test]
    fn spec_builds_expected_shapes() {
        assert_eq!(
            TopologySpec::Mesh.build(64).unwrap(),
            Topology::Mesh(Mesh::new(8, 8).unwrap())
        );
        assert_eq!(
            TopologySpec::Torus.build(64).unwrap(),
            Topology::torus(8, 8).unwrap()
        );
        assert_eq!(
            TopologySpec::CMesh { concentration: 4 }.build(64).unwrap(),
            Topology::cmesh(4, 4, 4).unwrap()
        );
        assert_eq!(
            TopologySpec::Ring.build(64).unwrap(),
            Topology::ring(64).unwrap()
        );
        assert!(TopologySpec::CMesh { concentration: 3 }.build(64).is_err());
        // 1024 cores: the scale regime the bench opens.
        assert_eq!(TopologySpec::Torus.build(1024).unwrap().routers(), 1024);
        assert_eq!(
            TopologySpec::CMesh { concentration: 4 }
                .build(1024)
                .unwrap()
                .routers(),
            256
        );
    }

    #[test]
    fn spec_default_is_mesh_and_skippable() {
        assert!(TopologySpec::default().is_mesh());
        assert!(!TopologySpec::Ring.is_mesh());
        assert_eq!(TopologySpec::CMesh { concentration: 4 }.label(), "cmesh-4");
    }

    #[test]
    fn spec_serde_forms_match_docs() {
        // README documents these exact on-disk forms (the default Mesh is
        // additionally omitted at the SimConfig level via
        // skip_serializing_if, so old configs stay byte-identical).
        assert_eq!(
            serde_json::from_str::<TopologySpec>("\"Torus\"").unwrap(),
            TopologySpec::Torus
        );
        assert_eq!(
            serde_json::from_str::<TopologySpec>(r#"{"CMesh":{"concentration":4}}"#).unwrap(),
            TopologySpec::CMesh { concentration: 4 }
        );
        for spec in [
            TopologySpec::Mesh,
            TopologySpec::Torus,
            TopologySpec::CMesh { concentration: 4 },
            TopologySpec::Ring,
        ] {
            let json = serde_json::to_string(&spec).unwrap();
            let back: TopologySpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec, "round-trip of {json}");
        }
    }
}
