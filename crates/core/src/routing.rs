//! Dimension-order routing.
//!
//! The paper modifies classic DOR so that requests use XY and replies use
//! YX (§4.1): the two then traverse the *same* routers in opposite order,
//! which is what lets a request reserve circuit resources for its reply at
//! every hop. Different message types travel on different virtual networks,
//! so the XY/YX mix stays deadlock-free.

use crate::geometry::Mesh;
use crate::types::{Direction, NodeId};
use serde::{Deserialize, Serialize};

/// Deterministic routing algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Routing {
    /// X first then Y — used by the request virtual network.
    Xy,
    /// Y first then X — used by the reply virtual network.
    Yx,
}

impl Routing {
    /// The routing used by a virtual network.
    pub fn for_vnet(vnet: crate::types::Vnet) -> Routing {
        match vnet {
            crate::types::Vnet::Request => Routing::Xy,
            crate::types::Vnet::Reply => Routing::Yx,
        }
    }
}

/// The output direction to take at router `at` for a packet heading to
/// `dst`. Returns [`Direction::Local`] when `at == dst` (eject).
///
/// # Examples
///
/// ```
/// use rcsim_core::geometry::Mesh;
/// use rcsim_core::routing::{next_hop, Routing};
/// use rcsim_core::types::{Direction, NodeId};
///
/// let mesh = Mesh::new(4, 4)?;
/// // From n0 (0,0) to n5 (1,1): XY goes East first, YX goes South first.
/// assert_eq!(next_hop(&mesh, NodeId(0), NodeId(5), Routing::Xy), Direction::East);
/// assert_eq!(next_hop(&mesh, NodeId(0), NodeId(5), Routing::Yx), Direction::South);
/// # Ok::<(), rcsim_core::ConfigError>(())
/// ```
pub fn next_hop(mesh: &Mesh, at: NodeId, dst: NodeId, algo: Routing) -> Direction {
    let a = mesh.coord(at);
    let d = mesh.coord(dst);
    let x_dir = if d.x > a.x {
        Some(Direction::East)
    } else if d.x < a.x {
        Some(Direction::West)
    } else {
        None
    };
    let y_dir = if d.y > a.y {
        Some(Direction::South)
    } else if d.y < a.y {
        Some(Direction::North)
    } else {
        None
    };
    match algo {
        Routing::Xy => x_dir.or(y_dir).unwrap_or(Direction::Local),
        Routing::Yx => y_dir.or(x_dir).unwrap_or(Direction::Local),
    }
}

/// The full sequence of routers a packet visits from `src` to `dst`
/// (inclusive of both endpoints).
pub fn route_path(mesh: &Mesh, src: NodeId, dst: NodeId, algo: Routing) -> Vec<NodeId> {
    let mut path = vec![src];
    let mut at = src;
    while at != dst {
        let dir = next_hop(mesh, at, dst, algo);
        at = mesh
            .neighbor(at, dir)
            .expect("next_hop returned an edge-crossing direction");
        path.push(at);
    }
    path
}

/// Number of router-to-router hops between `src` and `dst` under DOR
/// (equals the Manhattan distance — DOR is minimal).
pub fn hop_count(mesh: &Mesh, src: NodeId, dst: NodeId) -> u32 {
    mesh.distance(src, dst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(4, 4).unwrap()
    }

    #[test]
    fn eject_at_destination() {
        let m = mesh();
        assert_eq!(
            next_hop(&m, NodeId(7), NodeId(7), Routing::Xy),
            Direction::Local
        );
        assert_eq!(
            next_hop(&m, NodeId(7), NodeId(7), Routing::Yx),
            Direction::Local
        );
    }

    #[test]
    fn xy_goes_x_first() {
        let m = mesh();
        // n0 = (0,0), n10 = (2,2)
        let p = route_path(&m, NodeId(0), NodeId(10), Routing::Xy);
        assert_eq!(
            p,
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(6), NodeId(10)]
        );
    }

    #[test]
    fn yx_goes_y_first() {
        let m = mesh();
        let p = route_path(&m, NodeId(0), NodeId(10), Routing::Yx);
        assert_eq!(
            p,
            vec![NodeId(0), NodeId(4), NodeId(8), NodeId(9), NodeId(10)]
        );
    }

    #[test]
    fn paths_are_minimal() {
        let m = Mesh::new(8, 8).unwrap();
        for s in [0u16, 9, 37, 63] {
            for d in [0u16, 5, 33, 63] {
                let (s, d) = (NodeId(s), NodeId(d));
                for algo in [Routing::Xy, Routing::Yx] {
                    let p = route_path(&m, s, d, algo);
                    assert_eq!(p.len() as u32, m.distance(s, d) + 1);
                    assert_eq!(p.first(), Some(&s));
                    assert_eq!(p.last(), Some(&d));
                }
            }
        }
    }

    #[test]
    fn xy_forward_equals_yx_reverse() {
        // The property the whole mechanism rests on (§4.1): the reply's YX
        // path visits exactly the request's XY routers, reversed.
        let m = Mesh::new(8, 8).unwrap();
        for s in 0..64u16 {
            for d in [0u16, 7, 28, 56, 63] {
                let fwd = route_path(&m, NodeId(s), NodeId(d), Routing::Xy);
                let mut back = route_path(&m, NodeId(d), NodeId(s), Routing::Yx);
                back.reverse();
                assert_eq!(fwd, back, "s={s} d={d}");
            }
        }
    }

    #[test]
    fn routing_for_vnet() {
        use crate::types::Vnet;
        assert_eq!(Routing::for_vnet(Vnet::Request), Routing::Xy);
        assert_eq!(Routing::for_vnet(Vnet::Reply), Routing::Yx);
    }
}
