//! The checkpoint/restore differential matrix: for any split cycle `k`,
//! `run(0..T)` and `run(0..k) → checkpoint → restore → run(k..T)` must
//! produce the byte-identical serialized `RunResult` — and, when traced,
//! the identical trace-event sequence — across mechanisms, kernels,
//! shard counts, fault injection, open-loop overload and the adaptive
//! runtime policies. The restore side deliberately crosses kernels and
//! shard counts (checkpoint under dense/serial, resume under
//! event/sharded and vice versa): both are host-performance knobs and
//! must stay invisible to the snapshot.

use rcsim_core::MechanismConfig;
use rcsim_system::{
    run_sim_traced_with, run_sim_with, AdaptiveConfig, FaultConfig, KernelMode, OpenLoopConfig,
    SessionSnapshot, SimConfig, SimSession, TraceConfig,
};

fn quick(cores: u16, mechanism: MechanismConfig) -> SimConfig {
    SimConfig {
        seed: 0xD1FF,
        warmup_cycles: 500,
        measure_cycles: if cores > 16 { 1_500 } else { 2_500 },
        ..SimConfig::quick(cores, mechanism, "blackscholes")
    }
}

fn light_faults(cores: u16) -> FaultConfig {
    FaultConfig {
        seed: if cores > 16 { 0x5EED1 } else { 0xFA017 },
        link_drop_rate: 0.003,
        link_corrupt_rate: 0.002,
        table_corrupt_rate: 0.001,
        ..FaultConfig::none()
    }
}

fn overloaded(cores: u16) -> SimConfig {
    let mut ol = OpenLoopConfig::poisson(0.2);
    ol.ingress.tokens_per_kilocycle = 103;
    ol.ingress.shed_timeout = 800;
    SimConfig {
        seed: 0x0BEE,
        open_loop: Some(ol),
        ..quick(cores, MechanismConfig::complete_noack())
    }
}

fn adaptive(cores: u16) -> SimConfig {
    SimConfig {
        adaptive: Some(AdaptiveConfig {
            decision_epoch: 40,
            regions: 4,
            hot_enter: 96,
            hot_exit: 48,
            min_dwell: 80,
            detour: true,
            mech_switch: true,
        }),
        ..quick(cores, MechanismConfig::complete())
    }
}

/// Runs `cfg` uninterrupted, then re-runs it split at cycle `k` through a
/// full serialize → checksum → deserialize round trip of the checkpoint,
/// optionally switching kernel/shards at the restore, and asserts the
/// serialized results are byte-identical.
fn assert_split_identical(
    cfg: &SimConfig,
    k: u64,
    save: (KernelMode, usize),
    load: (KernelMode, usize),
    label: &str,
) {
    let reference = run_sim_with(cfg, save.0, save.1).expect("reference run");
    let reference = serde_json::to_string(&reference).expect("serialize reference");

    let mut first = SimSession::new(cfg, None, save.0, save.1).expect("session");
    first.run_until(k).expect("run to split point");
    // Round-trip through the on-disk encoding, not just the in-memory
    // snapshot: the serializer is part of the contract.
    let dir = std::env::temp_dir().join(format!("rcsim-ckpt-diff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("{label}.ckpt").replace([' ', '/', ':'], "_"));
    first.checkpoint().save(&path).expect("save checkpoint");
    let snap = SessionSnapshot::load(&path).expect("load checkpoint");
    std::fs::remove_file(&path).ok();
    assert_eq!(snap.pos(), k, "checkpoint stored the wrong position");

    let mut resumed = SimSession::resume(&snap, load.0, load.1).expect("resume");
    let total = resumed.total();
    resumed.run_until(total).expect("run to completion");
    let (result, _) = resumed.finish();
    let result = serde_json::to_string(&result).expect("serialize resumed");
    assert_eq!(
        reference, result,
        "resume at k={k} diverged from the uninterrupted run on {label}"
    );
}

const DENSE1: (KernelMode, usize) = (KernelMode::Dense, 1);
const EVENT1: (KernelMode, usize) = (KernelMode::Event, 1);
const EVENT4: (KernelMode, usize) = (KernelMode::Event, 4);

/// Splits chosen to land in every phase of a run: mid-warm-up, exactly at
/// the warm-up boundary, and mid-measure.
const SPLITS: [u64; 3] = [137, 500, 1_700];

#[test]
fn every_mechanism_resumes_identically() {
    let mut mechanisms = vec![MechanismConfig::baseline()];
    mechanisms.extend(MechanismConfig::key_configs());
    for m in mechanisms {
        for k in SPLITS {
            assert_split_identical(
                &quick(16, m),
                k,
                EVENT1,
                EVENT1,
                &format!("{} k={k}", m.label()),
            );
        }
    }
}

#[test]
fn resume_crosses_kernels_and_shards() {
    let cfg = quick(16, MechanismConfig::complete_noack());
    for (save, load) in [
        (DENSE1, EVENT4),
        (EVENT4, DENSE1),
        (EVENT1, EVENT4),
        (EVENT4, EVENT1),
    ] {
        assert_split_identical(
            &cfg,
            1_700,
            save,
            load,
            &format!("cross {:?}x{} to {:?}x{}", save.0, save.1, load.0, load.1),
        );
    }
}

#[test]
fn faulty_runs_resume_identically() {
    let mut cfg = quick(16, MechanismConfig::complete());
    cfg.faults = light_faults(16);
    for k in SPLITS {
        assert_split_identical(&cfg, k, EVENT1, EVENT4, &format!("faults k={k}"));
    }
}

#[test]
fn overloaded_runs_resume_identically() {
    let cfg = overloaded(16);
    for k in SPLITS {
        assert_split_identical(&cfg, k, EVENT1, EVENT1, &format!("overload k={k}"));
    }
}

#[test]
fn adaptive_runs_resume_identically() {
    let cfg = adaptive(16);
    for k in SPLITS {
        assert_split_identical(&cfg, k, EVENT1, EVENT1, &format!("adaptive k={k}"));
    }
}

#[test]
fn non_mesh_topologies_resume_identically() {
    use rcsim_core::TopologySpec;
    for spec in [TopologySpec::Torus, TopologySpec::Ring] {
        let cfg = quick(16, MechanismConfig::complete()).with_topology(spec);
        assert_split_identical(
            &cfg,
            1_700,
            EVENT1,
            EVENT1,
            &format!("topology {}", spec.label()),
        );
    }
}

#[test]
fn large_chip_resumes_identically() {
    let mut cfg = quick(64, MechanismConfig::complete_noack());
    cfg.faults = light_faults(64);
    assert_split_identical(&cfg, 900, EVENT4, EVENT4, "64 cores faults");
}

/// Traced runs: the checkpoint carries the ring contents, so the resumed
/// run's final event stream — sequence, drop count and report — must be
/// byte-identical to the uninterrupted traced run.
#[test]
fn traced_runs_resume_with_identical_event_streams() {
    let cfg = quick(16, MechanismConfig::complete_noack());
    let trace = TraceConfig {
        capacity: 1 << 16,
        epoch: 50,
    };
    let (reference, reference_tr) =
        run_sim_traced_with(&cfg, &trace, KernelMode::Event, 1).expect("reference");
    assert!(!reference_tr.events.is_empty(), "no events traced");
    for k in SPLITS {
        let mut first = SimSession::new(&cfg, Some(&trace), KernelMode::Event, 1).expect("session");
        first.run_until(k).expect("run to split");
        let snap = first.checkpoint();
        let mut resumed = SimSession::resume(&snap, KernelMode::Event, 1).expect("resume");
        let total = resumed.total();
        resumed.run_until(total).expect("completion");
        let (result, tr) = resumed.finish();
        let tr = tr.expect("traced session yields a report");
        assert_eq!(
            serde_json::to_string(&reference).unwrap(),
            serde_json::to_string(&result).unwrap(),
            "traced result diverged at k={k}"
        );
        assert_eq!(
            reference_tr.events, tr.events,
            "trace-event sequences diverged at k={k}"
        );
        assert_eq!(reference_tr.dropped, tr.dropped, "drop counts diverged");
    }
}

/// A checkpoint written for one config must never resume a different one:
/// the resumable driver compares the embedded config field by field.
#[test]
fn stale_checkpoint_for_changed_config_is_a_clean_miss() {
    let cfg = quick(16, MechanismConfig::complete_noack());
    let mut session = SimSession::new(&cfg, None, KernelMode::Event, 1).expect("session");
    session.run_until(600).expect("run");
    let snap = session.checkpoint();
    let mut changed = cfg.clone();
    changed.seed += 1;
    assert!(
        SessionSnapshot::load(std::path::Path::new("/nonexistent/x.ckpt")).is_none(),
        "missing file must be a clean miss"
    );
    assert_ne!(
        serde_json::to_string(snap.config()).unwrap(),
        serde_json::to_string(&changed).unwrap(),
        "config comparison must distinguish the changed point"
    );
}
