//! On-disk result-cache correctness: hits only for the exact same config,
//! misses for any field change, and graceful recomputation when a cache
//! file is corrupt.

use rcsim_bench::{cache_key, SweepRunner};
use rcsim_core::MechanismConfig;
use rcsim_system::SimConfig;
use std::path::PathBuf;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rcsim-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_cfg() -> SimConfig {
    SimConfig {
        warmup_cycles: 200,
        measure_cycles: 1_000,
        ..SimConfig::quick(16, MechanismConfig::complete_noack(), "fft")
    }
}

fn job(cfg: &SimConfig) -> Vec<(String, SimConfig)> {
    vec![("cache-test".to_owned(), cfg.clone())]
}

#[test]
fn rerun_hits_and_field_change_misses() {
    let dir = tmp_dir("cache-hit");
    let runner = SweepRunner::new(1, Some(dir.clone()));
    let cfg = small_cfg();

    let cold = runner.run(&job(&cfg));
    assert_eq!(cold.stats.cached, 0);
    let first = cold.results[0].as_ref().expect("runs").clone();

    let warm = runner.run(&job(&cfg));
    assert_eq!(warm.stats.cached, 1, "identical config must hit");
    assert_eq!(warm.results[0].as_ref().expect("cached"), &first);

    // Any single field change is a different key, hence a miss.
    let mut reseeded = cfg.clone();
    reseeded.seed += 1;
    assert_ne!(cache_key(&cfg), cache_key(&reseeded));
    let miss = runner.run(&job(&reseeded));
    assert_eq!(miss.stats.cached, 0, "changed seed must miss");
    assert_ne!(
        miss.results[0].as_ref().expect("runs"),
        &first,
        "a different seed yields a different run"
    );

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn corrupt_cache_file_recomputes_not_errors() {
    let dir = tmp_dir("cache-corrupt");
    let runner = SweepRunner::new(1, Some(dir.clone()));
    let cfg = small_cfg();

    let cold = runner.run(&job(&cfg));
    let first = cold.results[0].as_ref().expect("runs").clone();
    let path = runner.cache_path(&cfg).expect("caching enabled");
    assert!(path.is_file(), "result was written to the cache");

    for garbage in ["", "{ not json", "[1,2,3]", "{\"format_version\":999}"] {
        std::fs::write(&path, garbage).unwrap();
        let again = runner.run(&job(&cfg));
        assert_eq!(again.stats.cached, 0, "corrupt file {garbage:?} must miss");
        assert_eq!(again.stats.failed, 0, "corruption is never an error");
        assert_eq!(again.results[0].as_ref().expect("recomputed"), &first);
        // The recompute healed the file: the next run hits again.
        let healed = runner.run(&job(&cfg));
        assert_eq!(healed.stats.cached, 1);
    }

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn cache_entry_for_wrong_config_is_rejected() {
    // A hash collision (or a hand-copied file) stores a full config; the
    // lookup compares it field for field and recomputes on mismatch.
    let dir = tmp_dir("cache-collide");
    let runner = SweepRunner::new(1, Some(dir.clone()));
    let cfg = small_cfg();
    let mut other = cfg.clone();
    other.seed += 7;

    runner.run(&job(&other));
    let other_path = runner.cache_path(&other).expect("caching enabled");
    let cfg_path = runner.cache_path(&cfg).expect("caching enabled");
    // Plant `other`'s (valid, well-formed) entry under `cfg`'s key.
    std::fs::copy(&other_path, &cfg_path).unwrap();

    let out = runner.run(&job(&cfg));
    assert_eq!(
        out.stats.cached, 0,
        "entry for a different config must miss"
    );
    assert_eq!(
        out.results[0].as_ref().expect("recomputed").workload,
        cfg.workload
    );

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn disabled_cache_never_touches_disk() {
    let runner = SweepRunner::new(1, None);
    let cfg = small_cfg();
    assert!(runner.cache_path(&cfg).is_none());
    let a = runner.run(&job(&cfg));
    let b = runner.run(&job(&cfg));
    assert_eq!(a.stats.cached + b.stats.cached, 0);
    assert_eq!(
        a.results[0].as_ref().expect("runs"),
        b.results[0].as_ref().expect("runs"),
        "determinism holds with caching off"
    );
}
