//! The reactive-circuit reservation engine (the paper's §4).
//!
//! A *circuit* is a per-router reservation of the crossbar path and output
//! virtual channel that a reply will need, written while its request
//! traverses the network. Three pieces cooperate:
//!
//! * [`CircuitKey`] — the identity stored at each router (requestor id +
//!   cache-line address, §4.1);
//! * [`CircuitHandle`] — the in-flight record carried in the *request*
//!   header, accumulating how much of the circuit was built and (for timed
//!   variants) the injection-window algebra of [`timing`];
//! * [`RouterCircuits`] — the per-router tables and conflict rules
//!   ([`RouterCircuits::try_reserve`] is where fragmented/complete/timed/
//!   ideal differ).

pub mod timing;

mod handle;
mod table;

pub use handle::{CircuitHandle, CircuitKey, TimingState};
pub use table::{
    CircuitEntry, ReserveError, ReserveOutcome, ReserveRequest, RouterCircuits, TableStats,
};
