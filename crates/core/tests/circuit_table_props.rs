//! Property-based tests for the circuit-table invariants the paper's
//! mechanisms rely on (§4.2): per-input storage caps, the complete-mode
//! output-conflict rule, and clean tear-down under arbitrary interleavings
//! of reserve / release / undo / begin_use / end_use.

use proptest::prelude::*;
use rcsim_core::circuit::{CircuitKey, ReserveError, ReserveRequest, RouterCircuits};
use rcsim_core::{CircuitMode, Direction, NodeId};
use std::collections::BTreeMap;

const DIRS: [Direction; 5] = [
    Direction::North,
    Direction::East,
    Direction::South,
    Direction::West,
    Direction::Local,
];

/// One step of a random table workout. Reservations are untimed so the
/// complete-mode conflict rules apply in their strictest form.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `(source, in_port index, out_port index)` — the key is derived from
    /// the op's position so every reservation has a unique identity.
    Reserve(u16, usize, usize),
    /// Target the `n`-th live circuit (modulo the live count).
    Release(usize),
    Undo(usize),
    BeginUse(usize),
    EndUse(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let reserve = || (0u16..4, 0usize..5, 0usize..5).prop_map(|(s, i, o)| Op::Reserve(s, i, o));
    prop_oneof![
        // The reserve branch is repeated to weight the mix towards
        // reservations, so tables actually fill up.
        reserve(),
        reserve(),
        reserve(),
        (0usize..16).prop_map(Op::Release),
        (0usize..16).prop_map(Op::Undo),
        (0usize..16).prop_map(Op::BeginUse),
        (0usize..16).prop_map(Op::EndUse),
    ]
}

/// What the test believes the table holds: key → (in_port, out_port,
/// source, in_use, undo_pending). Kept in sync op by op and cross-checked
/// against the table's own accounting after every step.
type Shadow = BTreeMap<u64, (Direction, Direction, NodeId, bool, bool)>;

fn nth_key(shadow: &Shadow, n: usize) -> Option<u64> {
    if shadow.is_empty() {
        return None;
    }
    shadow.keys().nth(n % shadow.len()).copied()
}

fn key(block: u64) -> CircuitKey {
    CircuitKey {
        requestor: NodeId((block % 97) as u16),
        block,
    }
}

/// Drives `ops` through a table, checking the mode's invariants after every
/// step, then tears everything down and requires an empty table.
fn workout(
    mode: CircuitMode,
    capacity: u8,
    circuit_vcs: usize,
    ops: &[Op],
) -> Result<(), TestCaseError> {
    let mut rc = RouterCircuits::new(mode, capacity, circuit_vcs);
    let mut shadow: Shadow = BTreeMap::new();

    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Reserve(source, in_idx, out_idx) => {
                let (in_port, out_port) = (DIRS[in_idx], DIRS[out_idx]);
                let block = i as u64 * 64;
                let req = ReserveRequest {
                    key: key(block),
                    source: NodeId(source),
                    in_port,
                    out_port,
                    window: None,
                    max_extra_shift: 0,
                };
                match rc.try_reserve(&req) {
                    Ok(_) => {
                        // The table accepted: the mode's conflict rules must
                        // have held *before* insertion.
                        prop_assert!(
                            shadow.values().filter(|e| e.0 == in_port).count() < capacity as usize,
                            "reservation accepted at a full input port"
                        );
                        if mode == CircuitMode::Complete {
                            prop_assert!(
                                !shadow.values().any(|e| e.0 != in_port && e.1 == out_port),
                                "two complete circuits with different input \
                                 ports share output {out_port:?}"
                            );
                            prop_assert!(
                                !shadow.values().any(|e| e.0 == in_port && e.2 != req.source),
                                "complete circuits at one input port must \
                                 share their source"
                            );
                        }
                        if mode == CircuitMode::Fragmented {
                            prop_assert!(
                                shadow.values().filter(|e| e.1 == out_port).count() < circuit_vcs,
                                "more fragmented circuits than circuit VCs \
                                 at output {out_port:?}"
                            );
                        }
                        shadow.insert(block, (in_port, out_port, req.source, false, false));
                    }
                    Err(ReserveError::NoStorage) => prop_assert_eq!(
                        shadow.values().filter(|e| e.0 == in_port).count(),
                        capacity as usize,
                        "NoStorage reported below the per-input cap"
                    ),
                    Err(_) => {}
                }
            }
            Op::Release(n) => {
                if let Some(block) = nth_key(&shadow, n) {
                    let (in_port, ..) = shadow[&block];
                    prop_assert!(rc.release(in_port, key(block)).is_some());
                    shadow.remove(&block);
                }
            }
            Op::Undo(n) => {
                if let Some(block) = nth_key(&shadow, n) {
                    let entry = shadow.get_mut(&block).expect("picked from shadow");
                    if entry.3 {
                        // In use: the undo is deferred, not applied.
                        prop_assert!(rc.undo(key(block)).is_none());
                        entry.4 = true;
                    } else {
                        let removed = rc.undo(key(block)).expect("live circuit undone");
                        prop_assert_eq!(removed.out_port, entry.1);
                        shadow.remove(&block);
                    }
                }
            }
            Op::BeginUse(n) => {
                if let Some(block) = nth_key(&shadow, n) {
                    let entry = shadow.get_mut(&block).expect("picked from shadow");
                    prop_assert!(rc.begin_use(entry.0, key(block)));
                    entry.3 = true;
                }
            }
            Op::EndUse(n) => {
                if let Some(block) = nth_key(&shadow, n) {
                    let entry = *shadow.get(&block).expect("picked from shadow");
                    let removed = rc.end_use(entry.0, key(block));
                    if entry.4 {
                        prop_assert!(removed.is_some(), "pending undo resumes at end_use");
                        shadow.remove(&block);
                    } else {
                        prop_assert!(removed.is_none());
                        shadow.get_mut(&block).expect("still live").3 = false;
                    }
                }
            }
        }

        // Global accounting invariants, every step.
        prop_assert_eq!(rc.total_entries(), shadow.len());
        for d in DIRS {
            prop_assert!(
                rc.occupancy(d) <= capacity as usize,
                "input port {d:?} holds more than {capacity} circuits"
            );
            prop_assert_eq!(
                rc.occupancy(d),
                shadow.values().filter(|e| e.0 == d).count()
            );
        }
    }

    // Tear-down: ending every active stream and undoing every survivor must
    // return the table to exactly empty — no leaked entries.
    let live: Vec<u64> = shadow.keys().copied().collect();
    for block in &live {
        let (in_port, _, _, in_use, _) = shadow[block];
        if in_use {
            rc.end_use(in_port, key(*block));
        }
    }
    for block in &live {
        rc.undo(key(*block));
    }
    prop_assert_eq!(rc.total_entries(), 0, "tear-down left entries behind");
    for d in DIRS {
        prop_assert_eq!(rc.occupancy(d), 0);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fragmented tables (2 entries per input, 2 circuit VCs) never exceed
    /// the paper's per-input cap, never oversubscribe an output's circuit
    /// VCs, and tear down to empty.
    #[test]
    fn fragmented_invariants(ops in prop::collection::vec(op_strategy(), 1..60)) {
        workout(CircuitMode::Fragmented, 2, 2, &ops)?;
    }

    /// Complete tables (5 entries per input) never exceed the cap, never
    /// hold two circuits with different input ports and the same output
    /// port, keep the same-source rule, and tear down to empty.
    #[test]
    fn complete_invariants(ops in prop::collection::vec(op_strategy(), 1..60)) {
        workout(CircuitMode::Complete, 5, 1, &ops)?;
    }

    /// A deliberately tiny table (1 entry per input) is the harshest cap
    /// check: the second reservation at any port must fail with NoStorage.
    #[test]
    fn unit_capacity_invariants(ops in prop::collection::vec(op_strategy(), 1..40)) {
        workout(CircuitMode::Complete, 1, 1, &ops)?;
    }
}
