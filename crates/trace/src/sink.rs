//! Where instrumented code sends its events.

use crate::event::TraceEvent;
use crate::ring::RingLog;
use std::sync::{Arc, Mutex};

/// The handle instrumented components hold. Cloning shares the underlying
/// ring, so one sink installed at the top of the simulator fans out to
/// every router, NI and cache.
///
/// # Cost model
///
/// The default [`TraceSink::Disabled`] path is a single enum-tag branch
/// and the event constructor closure is never invoked — disabled tracing
/// costs nothing and perturbs nothing (see the bit-identity test in
/// `rcsim-system`). Compiling the `hooks` feature out removes even the
/// branch. When enabled, the simulator is single-threaded, so the mutex
/// guarding the ring is uncontended by construction and acquisition is
/// one atomic exchange; the `Mutex` exists only to keep the sink `Send +
/// Sync` for multi-threaded benchmark harnesses that move whole simulators
/// across threads.
#[derive(Clone, Debug, Default)]
pub enum TraceSink {
    /// No tracing: `emit` is a no-op.
    #[default]
    Disabled,
    /// Events go into a shared bounded ring.
    Ring(Arc<Mutex<RingLog>>),
    /// Events go into an unbounded staging buffer, to be drained into the
    /// real sink by whoever installed it. The sharded simulation kernel
    /// hands each component its own buffer so workers record concurrently
    /// without interleaving, then replays every buffer into the shared
    /// ring in fixed component order — reproducing the serial emission
    /// order byte for byte (DESIGN.md §13). Buffers never drop events
    /// (they are drained every cycle, so they stay tick-sized).
    Buffer(Arc<Mutex<Vec<TraceEvent>>>),
}

impl TraceSink {
    /// A sink writing into a fresh ring of `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn ring(capacity: usize) -> Self {
        TraceSink::Ring(Arc::new(Mutex::new(RingLog::new(capacity))))
    }

    /// A fresh unbounded staging buffer (see [`TraceSink::Buffer`]).
    pub fn buffer() -> Self {
        TraceSink::Buffer(Arc::new(Mutex::new(Vec::new())))
    }

    /// `true` when events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        !matches!(self, TraceSink::Disabled)
    }

    /// Records the event built by `f`. The closure runs only when the sink
    /// is enabled, so argument formatting and field gathering are free on
    /// the disabled path.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> TraceEvent) {
        #[cfg(feature = "hooks")]
        match self {
            TraceSink::Disabled => {}
            TraceSink::Ring(ring) => {
                let event = f();
                ring.lock().expect("trace ring poisoned").push(event);
            }
            TraceSink::Buffer(buf) => {
                let event = f();
                buf.lock().expect("trace buffer poisoned").push(event);
            }
        }
        #[cfg(not(feature = "hooks"))]
        let _ = f;
    }

    /// Events recorded so far, in order, leaving the ring intact.
    /// Empty for a disabled sink.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        match self {
            TraceSink::Disabled => Vec::new(),
            TraceSink::Ring(ring) => ring.lock().expect("trace ring poisoned").snapshot(),
            TraceSink::Buffer(buf) => buf.lock().expect("trace buffer poisoned").clone(),
        }
    }

    /// Removes and returns all recorded events in order.
    pub fn drain(&self) -> Vec<TraceEvent> {
        match self {
            TraceSink::Disabled => Vec::new(),
            TraceSink::Ring(ring) => ring.lock().expect("trace ring poisoned").drain(),
            TraceSink::Buffer(buf) => {
                std::mem::take(&mut *buf.lock().expect("trace buffer poisoned"))
            }
        }
    }

    /// Restores the ring contents from checkpointed state (see
    /// [`RingLog::restore`]). No-op for a disabled sink.
    ///
    /// # Panics
    ///
    /// Panics on a staging buffer: buffers are per-tick transients and
    /// are never checkpointed.
    pub fn restore(&self, events: Vec<TraceEvent>, dropped: u64) {
        match self {
            TraceSink::Disabled => {}
            TraceSink::Ring(ring) => ring
                .lock()
                .expect("trace ring poisoned")
                .restore(events, dropped),
            TraceSink::Buffer(_) => panic!("staging buffers are never checkpointed"),
        }
    }

    /// Events lost to ring overflow so far (buffers are unbounded and
    /// never drop).
    pub fn dropped(&self) -> u64 {
        match self {
            TraceSink::Disabled => 0,
            TraceSink::Ring(ring) => ring.lock().expect("trace ring poisoned").dropped(),
            TraceSink::Buffer(_) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            kind: EventKind::NiInject { packet: 1, node: 0 },
        }
    }

    #[test]
    fn disabled_sink_never_runs_the_constructor() {
        let sink = TraceSink::Disabled;
        let mut called = false;
        sink.emit(|| {
            called = true;
            ev(0)
        });
        assert!(!called, "disabled sinks must not build events");
        assert!(sink.drain().is_empty());
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn clones_share_the_ring() {
        let sink = TraceSink::ring(16);
        let other = sink.clone();
        sink.emit(|| ev(1));
        other.emit(|| ev(2));
        let cycles: Vec<u64> = sink.snapshot().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![1, 2]);
        assert_eq!(sink.drain().len(), 2);
        assert!(other.snapshot().is_empty(), "drain empties the shared ring");
    }

    #[test]
    fn sink_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceSink>();
    }

    #[test]
    fn buffer_sink_stages_and_drains_in_order() {
        let sink = TraceSink::buffer();
        assert!(sink.is_enabled());
        sink.emit(|| ev(3));
        sink.emit(|| ev(1));
        let cycles: Vec<u64> = sink.snapshot().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![3, 1], "buffers preserve emission order");
        assert_eq!(sink.dropped(), 0, "buffers never drop");
        let drained = sink.drain();
        assert_eq!(drained.len(), 2);
        assert!(sink.drain().is_empty(), "drain empties the buffer");
    }
}
