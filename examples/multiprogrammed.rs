//! The multiprogrammed SPEC-like mix on a 64-core chip: message mix
//! (Table 1 view), load, and the NoAck effect on L2 line blocking.
//!
//! ```text
//! cargo run --release --example multiprogrammed
//! ```

use reactive_circuits::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Multiprogrammed mix — 64 cores, one SPEC-like app per core\n");
    let mut cfg = SimConfig::quick(64, MechanismConfig::baseline(), "mix");
    cfg.warmup_cycles = 4_000;
    cfg.measure_cycles = 25_000;
    let baseline = run_sim(&cfg)?;

    let total: u64 = baseline.messages.values().sum();
    println!("Message mix (baseline, {} messages):", total);
    let mut rows: Vec<(&String, &u64)> = baseline.messages.iter().collect();
    rows.sort_by_key(|(_, n)| std::cmp::Reverse(**n));
    for (class, n) in rows {
        println!(
            "  {:<14} {:>7}  {:>5.1}%",
            class,
            n,
            100.0 * *n as f64 / total as f64
        );
    }
    println!(
        "\nNetwork load: {:.2} flits/node/100 cycles (paper: < 4)",
        baseline.load
    );

    cfg.mechanism = MechanismConfig::complete_noack();
    let noack = run_sim(&cfg)?;
    println!("\nComplete_NoAck vs baseline:");
    println!(
        "  speedup                  {:.3}x",
        noack.speedup_over(&baseline)
    );
    println!(
        "  energy ratio             {:.3}",
        noack.energy_ratio_over(&baseline)
    );
    println!(
        "  L1_DATA_ACK messages     {} -> {}",
        baseline.messages.get("L1_DATA_ACK").unwrap_or(&0),
        noack.messages.get("L1_DATA_ACK").unwrap_or(&0)
    );
    println!(
        "  requests queued on busy L2 lines: {} -> {}",
        baseline.l2_queued_on_busy, noack.l2_queued_on_busy
    );
    Ok(())
}
