//! Property-based tests for the shard-partition invariants the sharded
//! simulation kernel relies on (`RC_SHARDS`, DESIGN.md §13): every
//! router lands in exactly one shard, domains are contiguous and
//! balanced, tiles follow their router, links cross at most one shard
//! edge, and the partition is a pure (seed-independent, deterministic)
//! function of `(topology, shard count)` — so the serial merge order,
//! which is derived from the partition, is deterministic too.

use proptest::prelude::*;
use rcsim_core::{Mesh, ShardPlan, Topology};

/// A strategy over all four topology families at mixed sizes (4–1024
/// tiles), mirroring the spread the topology benches sweep.
fn topology_strategy() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (2u16..=8, 2u16..=8).prop_map(|(w, h)| Topology::from(Mesh::new(w, h).expect("mesh dims"))),
        (2u16..=8, 2u16..=8).prop_map(|(w, h)| Topology::torus(w, h).expect("torus dims")),
        (2u16..=6, 2u16..=6, prop_oneof![Just(2u16), Just(4u16)])
            .prop_map(|(w, h, c)| Topology::cmesh(w, h, c).expect("cmesh dims")),
        (3u16..=64).prop_map(|n| Topology::ring(n).expect("ring size")),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Partition: the shard ranges are contiguous, ordered, cover
    /// 0..routers exactly once, and no shard is empty — every router is
    /// owned by exactly one worker.
    #[test]
    fn every_router_lands_in_exactly_one_shard(
        topology in topology_strategy(),
        shards in 1usize..=16,
    ) {
        let plan = ShardPlan::new(&topology, shards);
        prop_assert!(plan.shards() >= 1);
        prop_assert!(plan.shards() <= topology.routers());
        let mut next = 0;
        for s in 0..plan.shards() {
            let r = plan.router_range(s);
            prop_assert_eq!(r.start, next, "shard {} not contiguous", s);
            prop_assert!(!r.is_empty(), "shard {} empty", s);
            for i in r.clone() {
                prop_assert_eq!(plan.shard_of_router(i), s);
            }
            next = r.end;
        }
        prop_assert_eq!(next, topology.routers(), "ranges must cover every router");
    }

    /// Balance: contiguous `s * n / k` bounds keep shard sizes within one
    /// router of each other, so no worker gets starved or overloaded.
    #[test]
    fn shards_are_balanced_within_one_router(
        topology in topology_strategy(),
        shards in 1usize..=16,
    ) {
        let plan = ShardPlan::new(&topology, shards);
        let sizes: Vec<usize> = (0..plan.shards())
            .map(|s| plan.router_range(s).len())
            .collect();
        let min = *sizes.iter().min().expect("at least one shard");
        let max = *sizes.iter().max().expect("at least one shard");
        prop_assert!(max - min <= 1, "unbalanced partition: {:?}", sizes);
    }

    /// Tiles follow their router: a tile's shard is its router's shard on
    /// every topology, including concentrated meshes where several tiles
    /// share one router — the invariant that lets NI→router injection stay
    /// shard-local (no cross-shard writes in phase B).
    #[test]
    fn tiles_always_land_in_their_routers_shard(
        topology in topology_strategy(),
        shards in 1usize..=16,
    ) {
        let plan = ShardPlan::new(&topology, shards);
        for tile in topology.iter_tiles() {
            let router = topology.router_of(tile).index();
            let s = plan.shard_of_router(router);
            prop_assert_eq!(plan.shard_of_tile(tile.index()), s);
            prop_assert!(
                plan.tile_range(s).contains(&tile.index()),
                "tile {} outside its shard's tile range",
                tile
            );
        }
        // And the tile ranges tile the tile space exactly.
        let mut next = 0;
        for s in 0..plan.shards() {
            let t = plan.tile_range(s);
            prop_assert_eq!(t.start, next);
            next = t.end;
        }
        prop_assert_eq!(next, topology.nodes());
    }

    /// Boundary links: every link of the fabric either stays inside one
    /// shard or connects exactly two distinct shards — contiguous ranges
    /// make "crosses a shard edge" well-defined, which is what the
    /// boundary flit/credit exchange of the serial merge relies on.
    #[test]
    fn links_cross_at_most_one_shard_edge(
        topology in topology_strategy(),
        shards in 1usize..=16,
    ) {
        let plan = ShardPlan::new(&topology, shards);
        for router in topology.iter_routers() {
            for port in 0..4 {
                let Some(nb) = topology.neighbor(router, port) else {
                    continue;
                };
                let a = plan.shard_of_router(router.index());
                let b = plan.shard_of_router(nb.index());
                // Both endpoints are owned shards; the link is either
                // internal (a == b) or a boundary between exactly the two.
                prop_assert!(a < plan.shards());
                prop_assert!(b < plan.shards());
            }
        }
    }

    /// Purity: the plan is a deterministic function of its inputs alone —
    /// rebuilding it (in any process, from any seed) yields identical
    /// bounds, so the phase C merge order is reproducible by construction.
    #[test]
    fn partition_is_seed_independent(
        topology in topology_strategy(),
        shards in 1usize..=16,
        _noise in any::<u64>(),
    ) {
        let a = ShardPlan::new(&topology, shards);
        let b = ShardPlan::new(&topology, shards);
        prop_assert_eq!(a.shards(), b.shards());
        for s in 0..a.shards() {
            prop_assert_eq!(a.router_range(s), b.router_range(s));
            prop_assert_eq!(a.tile_range(s), b.tile_range(s));
        }
    }

    /// Clamping: asking for more shards than routers degrades gracefully
    /// to one router per shard, never to an empty domain.
    #[test]
    fn oversubscribed_shard_counts_clamp(
        topology in topology_strategy(),
        extra in 0usize..64,
    ) {
        let plan = ShardPlan::new(&topology, topology.routers() + extra);
        prop_assert_eq!(plan.shards(), topology.routers());
        for s in 0..plan.shards() {
            prop_assert_eq!(plan.router_range(s).len(), 1);
        }
    }
}
