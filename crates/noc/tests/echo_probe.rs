//! Sustained closed-loop request/reply echo under Complete circuits.
//!
//! These configurations are wedge repros for the legacy VC allocator:
//! it considered only the oldest waiting VC of the winning input port,
//! and under sustained bidirectional load the oldest VC can be
//! unallocatable (its VN's output VCs all draining) and shadow younger
//! VCs forever, closing a request/reply credit cycle into a hard
//! deadlock within a few hundred cycles. `NocConfig::va_hol_relief` —
//! now the default and the only allocator path — walks the port's
//! waiting VCs in age order instead; every configuration below must
//! drain to quiescence.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcsim_core::circuit::CircuitKey;
use rcsim_core::{MechanismConfig, Mesh, MessageClass, NodeId};
use rcsim_noc::{Network, NocConfig, PacketSpec};

/// Closed-loop echo: every node keeps at most `window` requests
/// outstanding; delivered requests bounce back as circuit-riding replies.
fn drive(cores: u16, rate: f64, window: u32, cycles: u64, seed: u64) {
    let mesh = Mesh::square(cores).unwrap();
    let cfg = NocConfig::paper_baseline(mesh, MechanismConfig::complete());
    let mut net = Network::new(cfg).unwrap();
    let n = mesh.nodes() as u16;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut outstanding = vec![0u32; n as usize];
    let mut block = 0u64;
    let echo = |net: &mut Network, outstanding: &mut [u32]| {
        for (node, d) in net.take_all_delivered() {
            if d.class == MessageClass::L1Request {
                let key = CircuitKey {
                    requestor: d.src,
                    block: d.block,
                };
                net.inject(
                    PacketSpec::new(node, d.src, MessageClass::L2Reply)
                        .with_block(d.block)
                        .with_circuit_key(key),
                );
            } else {
                outstanding[node.0 as usize] -= 1;
            }
        }
    };
    for _ in 0..cycles {
        for s in 0..n {
            if outstanding[s as usize] < window && rng.gen_bool(rate) {
                let dst = loop {
                    let d = NodeId(rng.gen_range(0..n));
                    if d != NodeId(s) {
                        break d;
                    }
                };
                block += 64;
                net.inject(
                    PacketSpec::new(NodeId(s), dst, MessageClass::L1Request).with_block(block),
                );
                outstanding[s as usize] += 1;
            }
        }
        net.tick();
        echo(&mut net, &mut outstanding);
    }
    let deadline = net.now() + 300_000;
    while !net.is_quiescent() && net.now() < deadline {
        net.tick();
        echo(&mut net, &mut outstanding);
    }
    assert!(
        net.is_quiescent(),
        "wedged: cores={cores} rate={rate} window={window} seed={seed}\n{}\n{}",
        net.health(),
        net.debug_dump()
    );
    assert!(outstanding.iter().all(|&o| o == 0), "lost replies");
}

#[test]
fn hol_relief_drains_sustained_complete_echo() {
    for (cores, rate, window) in [(16, 0.2, 8), (16, 0.4, 8), (16, 0.4, 2), (64, 0.2, 8)] {
        for seed in 0..4u64 {
            drive(cores, rate, window, 600, seed);
        }
    }
}
