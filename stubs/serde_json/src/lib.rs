//! Offline stand-in for serde_json with a *real* JSON writer and parser.
//!
//! Built on the offline serde stub's self-describing [`Content`] tree:
//! `to_string`/`to_string_pretty` render any `serde::Serialize` type as
//! actual JSON, and `from_str` parses JSON back through
//! `serde::Deserialize` — faithful round-trips, hermetically.
//!
//! Deviations from the real crate (all irrelevant to this workspace):
//! non-finite floats serialize as the strings `"inf"` / `"-inf"` / `"NaN"`
//! instead of erroring (and parse back), and `Value` is an alias for the
//! stub's [`Content`] enum rather than a distinct type.

use serde::content::Content;
use std::fmt::Write as _;

/// Errors from serialization or parsing.
#[derive(Debug)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json stub: {}", self.0)
    }
}
impl std::error::Error for Error {}

impl From<serde::content::Error> for Error {
    fn from(e: serde::content::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// A parsed JSON document (alias of the serde stub's content tree).
pub type Value = Content;

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails in the stub (kept fallible for API compatibility).
pub fn to_string<T: ?Sized + serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent, like the
/// real crate).
///
/// # Errors
///
/// Never fails in the stub (kept fallible for API compatibility).
pub fn to_string_pretty<T: ?Sized + serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), Some(2), 0);
    Ok(out)
}

/// Converts a value into a [`Value`] tree.
///
/// # Errors
///
/// Never fails in the stub (kept fallible for API compatibility).
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value> {
    Ok(value.to_content())
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<'a, T: serde::Deserialize<'a>>(s: &'a str) -> Result<T> {
    let value = Parser::new(s).parse_document()?;
    T::from_content(&value).map_err(Error::from)
}

/// Rebuilds a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] on a shape mismatch.
pub fn from_value<T: serde::DeserializeOwned>(value: Value) -> Result<T> {
    T::from_content(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Content, indent: Option<usize>, level: usize) {
    match v {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Content::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Content::F64(x) => {
            if x.is_finite() {
                // Rust's shortest round-trip float formatting is valid JSON.
                let _ = write!(out, "{x}");
            } else if x.is_nan() {
                out.push_str("\"NaN\"");
            } else if *x > 0.0 {
                out.push_str("\"inf\"");
            } else {
                out.push_str("\"-inf\"");
            }
        }
        Content::Str(s) => write_string(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * level));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(mut self) -> Result<Content> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Content) -> Result<Content> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal, expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Content::Null),
            Some(b't') => self.eat_literal("true", Content::Bool(true)),
            Some(b'f') => self.eat_literal("false", Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.err(&format!("unexpected character `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped UTF-8 runs wholesale.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.parse_unicode_escape()?;
                            s.push(cp);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (surrogate pairs supported);
    /// `self.pos` is on the `u` on entry and past the digits on exit.
    fn parse_unicode_escape(&mut self) -> Result<char> {
        let hex4 = |p: &mut Self| -> Result<u32> {
            p.pos += 1; // the `u`
            let digits = p
                .bytes
                .get(p.pos..p.pos + 4)
                .and_then(|d| std::str::from_utf8(d).ok())
                .ok_or_else(|| p.err("truncated \\u escape"))?;
            let n =
                u32::from_str_radix(digits, 16).map_err(|_| p.err("invalid \\u escape digits"))?;
            p.pos += 4;
            Ok(n)
        };
        let first = hex4(self)?;
        let cp = if (0xD800..0xDC00).contains(&first) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.peek() != Some(b'\\') {
                return Err(self.err("unpaired surrogate"));
            }
            self.pos += 1;
            if self.peek() != Some(b'u') {
                return Err(self.err("unpaired surrogate"));
            }
            let second = hex4(self)?;
            if !(0xDC00..0xE000).contains(&second) {
                return Err(self.err("invalid low surrogate"));
            }
            0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
        } else {
            first
        };
        char::from_u32(cp).ok_or_else(|| self.err("invalid unicode code point"))
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Content::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Content::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.err("invalid number"))
    }
}
