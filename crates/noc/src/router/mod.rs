//! The 4-stage wormhole VC router with Reactive Circuits extensions.
//!
//! Pipeline (Table 4): a head flit that arrives at cycle *t* is buffered
//! and route-computed during *t* (stage 1), VC-allocated at *t+1*
//! (stage 2, **in parallel with the circuit reservation** of §4.1),
//! switch-allocated at *t+2* (stage 3) and traverses the crossbar at *t+3*
//! (stage 4), reaching the next router at *t+5* after the 1-cycle link —
//! 5 cycles per hop. A reply that finds its circuit reserved bypasses
//! stages 1–3 entirely: it crosses the router the cycle it arrives and
//! reaches the next router 2 cycles later (§4.3).

pub(crate) mod alloc;
mod input;

use crate::config::{NocConfig, VcLayout};
use crate::flit::{Flit, PacketId};
use crate::stats::Activity;
use alloc::RoundRobin;
use input::{InputPort, VcState};
use rcsim_core::circuit::timing::{router_window, REQ_HOP_CYCLES};
use rcsim_core::circuit::{CircuitKey, ReserveRequest, RouterCircuits};
use rcsim_core::routing::Routing;
use rcsim_core::{CircuitMode, Cycle, MechanismConfig, NodeId, Topology, Vnet, PORT_LOCAL};
use rcsim_trace::{EventKind, TraceEvent, TraceSink};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A message leaving the router this cycle, to be routed by the network.
///
/// Ports are indices in `0..Topology::ports()`: 0–3 the N/E/S/W network
/// ports, 4.. the local (NI) ports — one per tile concentrated on this
/// router.
#[derive(Debug, Clone, PartialEq)]
pub enum Outgoing {
    /// A flit leaving through `port` (local ports eject to a tile's NI).
    Flit {
        /// Output port index.
        port: usize,
        /// The flit (its `vc` field is the downstream buffer index).
        flit: Flit,
        /// Cycle it reaches the neighbour router / NI.
        arrive: Cycle,
    },
    /// A credit returned upstream through input port `port` (local ports
    /// go to a tile's NI).
    Credit {
        /// The input port whose buffer slot was freed.
        port: usize,
        /// The VC the credit belongs to.
        vc: usize,
        /// Cycle it reaches the upstream router / NI.
        arrive: Cycle,
    },
    /// Circuit-undo information riding the credit channel (§4.4) towards
    /// the circuit destination `dst`.
    Undo {
        /// Port towards the next router on the circuit's path.
        port: usize,
        /// Circuit identity.
        key: CircuitKey,
        /// The circuit's destination node (the original requestor).
        dst: NodeId,
        /// Cycle it reaches the neighbour.
        arrive: Cycle,
    },
}

/// How one output VC is held by a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Owner {
    /// Free for VC allocation.
    Free,
    /// Held by a packet streaming from `(in_port, in_vc)`.
    Owned(usize, usize),
    /// Tail has departed; waiting for all credits to return so the
    /// downstream VC is idle again.
    Draining,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct OutputPort {
    credits: Vec<u32>,
    owner: Vec<Owner>,
    /// Crossbar output used this cycle (circuits have priority, §4.3).
    busy: bool,
}

/// Outcome of checking whether a circuit-tagged flit can bypass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BypassCheck {
    /// Reservation present and the crossbar output is free: go.
    Ready,
    /// Reservation present but the output is in use this cycle: retry.
    Busy,
    /// No usable reservation: take the normal four-stage pipeline.
    Pipeline,
}

/// A switch-allocation grant awaiting switch traversal next cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct StGrant {
    in_port: usize,
    in_vc: usize,
}

pub(crate) struct Router {
    /// Router id (`0..Topology::routers()`; equals the tile id only when
    /// the concentration is 1).
    node: NodeId,
    topology: Topology,
    /// Ports per router (`Topology::ports()`), cached.
    ports: usize,
    layout: VcLayout,
    mechanism: MechanismConfig,
    buffer_depth: u32,
    link_latency: u32,
    inject_overhead: u32,
    inputs: Vec<InputPort>,
    outputs: Vec<OutputPort>,
    pub(crate) circuits: RouterCircuits,
    st_pending: Vec<StGrant>,
    /// Reused backing store for [`Router::stage_st`]'s grant sweep.
    st_scratch: Vec<StGrant>,
    /// Reused request vector for [`Router::stage_sa`] phase 1.
    sa_requests: Vec<bool>,
    /// Reused per-port scratch for the SA/VA arbitration sweeps.
    sa_blocked: Vec<bool>,
    sa_nominee: Vec<Option<usize>>,
    arb_scratch: Vec<usize>,
    sa_rr_in: Vec<RoundRobin>,
    sa_rr_out: Vec<RoundRobin>,
    va_rr_out: Vec<RoundRobin>,
    /// Reused candidate list for the VC-allocation sweep.
    va_scratch: Vec<(Cycle, usize, Vnet, NodeId)>,
    /// Bypass flits that lost a same-cycle output conflict (ideal mode) or
    /// arrived while an earlier flit of the same stream is still queued.
    bypass_retry: Vec<VecDeque<Flit>>,
    /// `true` while this router is part of, or borders, a dead region
    /// (set by the network when scheduled permanent faults fire).
    /// Degraded routers take no part in circuits: reservations are
    /// refused and bypasses forced to the packet pipeline (DESIGN.md
    /// §10).
    degraded: bool,
    /// Whether VC allocation walks *all* of an input port's waiting VCs
    /// in age order (`true`, the default) or only the oldest one — the
    /// retired legacy behaviour, kept reachable for deadlock-diagnoser
    /// regressions (`NocConfig::va_hol_relief`).
    va_hol_relief: bool,
    pub(crate) activity: Activity,
    /// Where trace events go; disabled by default.
    sink: TraceSink,
}

impl Router {
    pub(crate) fn new(node: NodeId, cfg: &NocConfig) -> Self {
        let layout = cfg.vc_layout();
        let total = layout.total();
        let ports = cfg.topology.ports();
        let outputs = (0..ports)
            .map(|_| OutputPort {
                credits: vec![cfg.buffer_depth; total],
                owner: vec![Owner::Free; total],
                busy: false,
            })
            .collect();
        Self {
            node,
            topology: cfg.topology,
            ports,
            layout,
            mechanism: cfg.mechanism,
            buffer_depth: cfg.buffer_depth,
            link_latency: cfg.link_latency,
            inject_overhead: cfg.inject_overhead,
            inputs: (0..ports).map(|_| InputPort::new(total)).collect(),
            outputs,
            circuits: RouterCircuits::with_ports(
                cfg.mechanism.mode,
                cfg.mechanism.max_circuits_per_input,
                cfg.mechanism.circuit_vcs().max(1),
                ports,
            ),
            st_pending: Vec::new(),
            st_scratch: Vec::new(),
            sa_requests: vec![false; total],
            sa_blocked: vec![false; ports],
            sa_nominee: vec![None; ports],
            arb_scratch: Vec::with_capacity(ports),
            sa_rr_in: (0..ports).map(|_| RoundRobin::new(total)).collect(),
            sa_rr_out: (0..ports).map(|_| RoundRobin::new(ports)).collect(),
            va_rr_out: (0..ports).map(|_| RoundRobin::new(ports)).collect(),
            va_scratch: Vec::with_capacity(total),
            bypass_retry: (0..ports).map(|_| VecDeque::new()).collect(),
            degraded: false,
            va_hol_relief: cfg.va_hol_relief,
            activity: Activity::default(),
            sink: TraceSink::default(),
        }
    }

    pub(crate) fn set_trace_sink(&mut self, sink: TraceSink) {
        self.sink = sink;
    }

    /// Appends a human-readable dump of this router's non-idle pipeline
    /// state (waiting VCs, bypass retry queues, busy output VCs) — used
    /// by wedge-diagnosis assertions to show *where* traffic stuck.
    pub(crate) fn debug_dump(&self, out: &mut String) {
        use std::fmt::Write;
        for (p, port) in self.inputs.iter().enumerate() {
            for (v, vc) in port.vcs.iter().enumerate() {
                if !vc.is_idle() {
                    let head = vc
                        .buffer
                        .front()
                        .map(|f| (f.packet.0, f.kind, f.on_circuit.is_some()));
                    writeln!(
                        out,
                        "  {:?} in[{p}][{v}] state={:?} since={} route={:?} out_vc={:?} buf={} head={:?}",
                        self.node, vc.state, vc.state_since, vc.route, vc.out_vc,
                        vc.buffer.len(), head
                    )
                    .ok();
                }
            }
        }
        for (p, q) in self.bypass_retry.iter().enumerate() {
            if !q.is_empty() {
                let items: Vec<_> = q
                    .iter()
                    .map(|f| (f.packet.0, f.kind, f.vc, f.on_circuit.is_some()))
                    .collect();
                writeln!(out, "  {:?} bypass_retry[{p}]: {items:?}", self.node).ok();
            }
        }
        for (o, outp) in self.outputs.iter().enumerate() {
            let owned: Vec<_> = outp
                .owner
                .iter()
                .enumerate()
                .filter(|(_, ow)| **ow != Owner::Free)
                .map(|(v, ow)| format!("vc{v}={ow:?} cr{}", outp.credits[v]))
                .collect();
            if !owned.is_empty() {
                writeln!(out, "  {:?} out[{o}]: {owned:?}", self.node).ok();
            }
        }
        if !self.st_pending.is_empty() {
            writeln!(out, "  {:?} st_pending: {:?}", self.node, self.st_pending).ok();
        }
    }

    /// Marks this router as part of (or adjacent to) a dead region; the
    /// network re-derives the flag whenever a scheduled fault fires.
    pub(crate) fn set_degraded(&mut self, degraded: bool) {
        self.degraded = degraded;
    }

    /// Runs one cycle. `arrivals`, `credits` and `undos` are the messages
    /// reaching this router this cycle (drained in place so the caller can
    /// reuse the buffers); produced messages go into `out`.
    pub(crate) fn tick(
        &mut self,
        now: Cycle,
        arrivals: &mut Vec<(usize, Flit)>,
        credits: &mut Vec<(usize, usize)>,
        undos: &mut Vec<(CircuitKey, NodeId)>,
        out: &mut Vec<Outgoing>,
    ) {
        for o in &mut self.outputs {
            o.busy = false;
        }
        // Stamp the table's clock so leak detection can age entries.
        self.circuits.note_now(now);

        // Credits (and the undo information they may carry, §4.4).
        for (port, vc) in credits.drain(..) {
            let o = &mut self.outputs[port];
            o.credits[vc] += 1;
            if o.owner[vc] == Owner::Draining && o.credits[vc] >= self.buffer_depth {
                o.owner[vc] = Owner::Free;
            }
        }
        for (key, dst) in undos.drain(..) {
            self.process_undo(now, key, dst, out);
        }

        if self.mechanism.timed.is_timed() {
            // A few cycles of grace keep boundary-case replies (committed
            // at the very edge of their window) from losing their entries;
            // lookups are key-matched, so lingering entries are harmless.
            self.circuits.expire(now.saturating_sub(4));
        }

        // Retry queued bypass flits (in order per input), then arrivals.
        self.drain_bypass_retries(now, out);
        for (port, flit) in arrivals.drain(..) {
            self.receive(now, port, flit, out);
        }

        self.stage_st(now, out);
        self.stage_sa(now);
        self.stage_va(now, out);
    }

    /// `true` when a tick with no arriving messages could still change
    /// state: flits are buffered in the pipeline, a switch grant or
    /// bypass retry is pending, or a timed circuit entry is (over)due for
    /// expiry. A `false` router receiving nothing this cycle only resets
    /// `busy` flags, re-stamps the table clock and runs empty stage
    /// loops — all no-ops — so the event kernel may skip its tick.
    pub(crate) fn is_active(&self, now: Cycle) -> bool {
        if !self.st_pending.is_empty() || self.buffered_flits() > 0 {
            return true;
        }
        if self.bypass_retry.iter().any(|q| !q.is_empty()) {
            return true;
        }
        if self.mechanism.timed.is_timed() {
            // `tick` expires entries at `now - 4`; stay awake from the
            // cycle that check starts firing.
            if let Some(end) = self.circuits.next_expiry() {
                if now.saturating_sub(4) >= end {
                    return true;
                }
            }
        }
        false
    }

    /// Undo handling: clear the local reservation and forward the undo
    /// towards the circuit destination (it rides credits, 1 cycle/hop).
    fn process_undo(&mut self, now: Cycle, key: CircuitKey, dst: NodeId, out: &mut Vec<Outgoing>) {
        let port = match self.circuits.undo(key) {
            Some(entry) => {
                self.sink.emit(|| TraceEvent {
                    cycle: now,
                    kind: EventKind::CircuitTear {
                        node: self.node.0,
                        requestor: key.requestor.0,
                        block: key.block,
                    },
                });
                entry.out_port
            }
            // No reservation here (fragmented gap, or already expired):
            // keep following the reply path towards the destination.
            None => {
                if self.node == self.topology.router_of(dst) {
                    return;
                }
                self.topology.next_hop_port(self.node, dst, Routing::Yx)
            }
        };
        if port < PORT_LOCAL {
            self.activity.credits += 1;
            out.push(Outgoing::Undo {
                port,
                key,
                dst,
                arrive: now + self.link_latency as Cycle,
            });
        }
    }

    fn drain_bypass_retries(&mut self, now: Cycle, out: &mut Vec<Outgoing>) {
        for p in 0..self.ports {
            while let Some(flit) = self.bypass_retry[p].front().cloned() {
                match self.bypass_check(p, &flit) {
                    BypassCheck::Ready => {
                        let flit = self.bypass_retry[p].pop_front().expect("front checked");
                        self.execute_bypass(now, p, flit, out);
                    }
                    BypassCheck::Busy => break,
                    BypassCheck::Pipeline => {
                        if flit.kind.is_head() && !self.inputs[p].vcs[flit.vc].is_idle() {
                            // The fallback VC is still draining an earlier
                            // packet: hold the stream here (in order) until
                            // it idles instead of corrupting the wormhole.
                            break;
                        }
                        let flit = self.bypass_retry[p].pop_front().expect("front checked");
                        self.buffer_flit(now, p, flit);
                    }
                }
            }
        }
    }

    /// Whether a circuit-tagged flit can take the bypass path right now.
    fn bypass_check(&mut self, port: usize, flit: &Flit) -> BypassCheck {
        let Some(key) = flit.on_circuit else {
            return BypassCheck::Pipeline;
        };
        if self.degraded {
            // Circuits are disabled while this router borders a dead
            // region: drop the local reservation (if any, so it cannot
            // leak — the tail that would have released it now streams
            // through the pipeline) and fall back.
            self.circuits.release(port, key);
            return BypassCheck::Pipeline;
        }
        let Some(entry) = self.circuits.lookup(port, key).copied() else {
            // No reservation here: a fragmented gap, or a head that
            // already fell back and released the entry.
            return BypassCheck::Pipeline;
        };
        if self.mechanism.mode == CircuitMode::Fragmented
            && flit.kind.is_head()
            && entry.out_port < PORT_LOCAL
        {
            // Fragmented circuits keep buffers: the downstream circuit VC
            // must be able to hold the whole message in case its own
            // reservation there is missing (§4.2 "messages can always be
            // stored"). Without that guarantee the message takes the
            // pipeline here instead, and the local reservation is freed.
            let gvc = self
                .layout
                .circuit_vc(entry.vc as usize % self.layout.circuit_vcs);
            // A head needs the downstream VC completely idle (all credits
            // home), like the packet-switched Draining rule.
            if self.outputs[entry.out_port].credits[gvc] < self.buffer_depth {
                self.circuits.release(port, key);
                return BypassCheck::Pipeline;
            }
        }
        if self.outputs[entry.out_port].busy {
            // Ideal mode resolves collisions per cycle (§4.8); fragmented
            // circuits may share an output port through different circuit
            // VCs. The complete-circuit conflict rules make this
            // unreachable for `Complete`.
            debug_assert!(
                self.mechanism.mode != CircuitMode::None,
                "baseline never bypasses"
            );
            return BypassCheck::Busy;
        }
        BypassCheck::Ready
    }

    /// Arrival processing: circuit check first (§4.3), else stage 1
    /// (buffer write + route computation).
    fn receive(&mut self, now: Cycle, port: usize, flit: Flit, out: &mut Vec<Outgoing>) {
        if flit.on_circuit.is_some() {
            self.activity.circuit_lookups += 1;
            // Keep stream order: if earlier flits of this input are already
            // queued for retry, queue behind them.
            if !self.bypass_retry[port].is_empty() {
                self.bypass_retry[port].push_back(flit);
                return;
            }
            match self.bypass_check(port, &flit) {
                BypassCheck::Ready => {
                    self.execute_bypass(now, port, flit, out);
                    return;
                }
                BypassCheck::Busy => {
                    self.bypass_retry[port].push_back(flit);
                    return;
                }
                BypassCheck::Pipeline => {}
            }
        }
        self.buffer_flit(now, port, flit);
    }

    /// One-cycle circuit traversal: straight through the crossbar (§4.3).
    fn execute_bypass(&mut self, now: Cycle, port: usize, mut flit: Flit, out: &mut Vec<Outgoing>) {
        let key = flit.on_circuit.expect("bypass requires a circuit key");
        let entry = *self
            .circuits
            .lookup(port, key)
            .expect("caller checked the entry exists");
        if flit.kind.is_head() {
            self.circuits.begin_use(port, key);
            self.sink.emit(|| TraceEvent {
                cycle: now,
                kind: EventKind::CircuitBypass {
                    packet: flit.packet.0,
                    node: self.node.0,
                },
            });
        }
        if flit.kind.is_tail() {
            if flit.scrounger_final.is_some() && self.mechanism.scrounger_borrow {
                // Borrowing scrounger: the circuit survives for its own
                // reply. If an undo raced the borrow, the entry comes
                // back here — the undo already continued downstream, so
                // dropping it completes the teardown.
                self.circuits.end_use(port, key);
            } else {
                // The tail clears the built-circuit bit (§4.3);
                // consuming scroungers release the same way (DESIGN.md).
                self.circuits.release(port, key);
            }
        }
        // A bypassed flit never occupies the buffer slot its VC credit paid
        // for; return the credit immediately (not needed on the bufferless
        // complete-mode circuit VC, whose flits are uncredited).
        let arrived_buffered =
            !self.layout.is_circuit_vc(flit.vc) || self.mechanism.circuit_vc_buffered();
        if arrived_buffered {
            self.activity.credits += 1;
            out.push(Outgoing::Credit {
                port,
                vc: flit.vc,
                arrive: now + self.link_latency as Cycle,
            });
        }
        let o = &mut self.outputs[entry.out_port];
        o.busy = true;
        self.activity.xbar_traversals += 1;
        flit.vc = if self.layout.circuit_vcs > 0 {
            self.layout
                .circuit_vc(entry.vc as usize % self.layout.circuit_vcs.max(1))
        } else {
            flit.vc
        };
        // Fragmented circuit VCs are buffered and credited; the bypass
        // consumes the downstream slot it may need at a gap router.
        if self.mechanism.mode == CircuitMode::Fragmented && entry.out_port < PORT_LOCAL {
            o.credits[flit.vc] = o.credits[flit.vc]
                .checked_sub(1)
                .expect("fragmented bypass head verified whole-message credits");
        }
        let arrive = if entry.out_port >= PORT_LOCAL {
            now + 1
        } else {
            self.activity.link_flits += 1;
            now + 1 + self.link_latency as Cycle
        };
        out.push(Outgoing::Flit {
            port: entry.out_port,
            flit,
            arrive,
        });
    }

    /// Stage 1: buffer write and route computation.
    fn buffer_flit(&mut self, now: Cycle, port: usize, flit: Flit) {
        let vc_idx = flit.vc;
        if flit.kind.is_head() && !self.inputs[port].vcs[vc_idx].is_idle() {
            // A head whose fallback VC is still draining an earlier
            // packet — e.g. a timed circuit stream that lost its window
            // behind a stuck port and degraded to the pipeline. It must
            // wait, not corrupt the wormhole: park it with the bypass
            // retries ([`Router::drain_bypass_retries`] holds it until
            // the VC idles, and the non-empty queue keeps its body flits
            // behind it in arrival order).
            self.bypass_retry[port].push_back(flit);
            return;
        }
        let vc = &mut self.inputs[port].vcs[vc_idx];
        self.activity.buffer_writes += 1;
        if flit.kind.is_head() {
            // Detoured packets follow the source route recorded in their
            // head (DESIGN.md §10); everything else routes DOR.
            let routing = Routing::for_vnet(flit.vnet);
            let hop = flit
                .path
                .as_deref()
                .and_then(|p| self.topology.next_hop_on_path(p, self.node, flit.dst))
                .unwrap_or_else(|| self.topology.next_hop_port(self.node, flit.dst, routing));
            vc.route = Some(hop);
            vc.state = VcState::WaitVa;
            vc.state_since = now;
            vc.circuit_attempted = false;
        }
        vc.buffer.push_back(flit);
    }

    /// Stage 4: switch traversal for last cycle's SA winners. Circuit
    /// bypasses processed earlier this cycle have already claimed their
    /// output ports (crossbar priority, §4.3); blocked grants retry.
    fn stage_st(&mut self, now: Cycle, out: &mut Vec<Outgoing>) {
        // Swap the grant list into scratch so blocked grants can re-queue
        // onto `st_pending` without reallocating either vector.
        std::mem::swap(&mut self.st_pending, &mut self.st_scratch);
        for i in 0..self.st_scratch.len() {
            let g = self.st_scratch[i];
            let vc = &self.inputs[g.in_port].vcs[g.in_vc];
            let route = vc.route.expect("granted VC has a route");
            let out_vc = vc.out_vc.expect("granted VC has an output VC");
            if self.outputs[route].busy {
                self.st_pending.push(g);
                continue;
            }
            let vc = &mut self.inputs[g.in_port].vcs[g.in_vc];
            let mut flit = vc.buffer.pop_front().expect("granted VC has a flit");
            let is_tail = flit.kind.is_tail();
            if is_tail {
                vc.reset(now);
            }
            if flit.kind.is_head() {
                self.sink.emit(|| TraceEvent {
                    cycle: now,
                    kind: EventKind::StageSt {
                        packet: flit.packet.0,
                        node: self.node.0,
                    },
                });
            }
            self.activity.buffer_reads += 1;
            self.activity.xbar_traversals += 1;

            // Return the freed buffer slot upstream.
            self.activity.credits += 1;
            out.push(Outgoing::Credit {
                port: g.in_port,
                vc: g.in_vc,
                arrive: now + self.link_latency as Cycle,
            });

            let o = &mut self.outputs[route];
            o.busy = true;
            flit.vc = out_vc;
            let arrive = if route >= PORT_LOCAL {
                now + 1
            } else {
                o.credits[out_vc] = o.credits[out_vc]
                    .checked_sub(1)
                    .expect("SA checked a credit was available");
                self.activity.link_flits += 1;
                now + 1 + self.link_latency as Cycle
            };
            if is_tail {
                o.owner[out_vc] = if route >= PORT_LOCAL {
                    Owner::Free
                } else {
                    Owner::Draining
                };
            }
            out.push(Outgoing::Flit {
                port: route,
                flit,
                arrive,
            });
        }
        self.st_scratch.clear();
    }

    /// Stage 3: two-phase round-robin switch allocation; winners traverse
    /// the crossbar next cycle.
    fn stage_sa(&mut self, now: Cycle) {
        // Inputs with a grant still pending ST cannot be granted again.
        // (Scratch vectors are swapped out of `self` so the round-robin
        // arbiters can be borrowed mutably alongside them.)
        let mut blocked = std::mem::take(&mut self.sa_blocked);
        blocked.iter_mut().for_each(|b| *b = false);
        for g in &self.st_pending {
            blocked[g.in_port] = true;
        }
        // Phase 1: each input port nominates one VC.
        let mut nominee = std::mem::take(&mut self.sa_nominee);
        nominee.iter_mut().for_each(|n| *n = None);
        #[allow(clippy::needless_range_loop)] // p indexes three parallel arrays
        for p in 0..self.ports {
            if blocked[p] {
                continue;
            }
            let total = self.layout.total();
            self.sa_requests.clear();
            self.sa_requests.resize(total, false);
            for v in 0..total {
                let vc = &self.inputs[p].vcs[v];
                let stage_ok = match vc.state {
                    VcState::WaitSa => vc.state_since < now,
                    VcState::Active => true,
                    _ => false,
                };
                if !stage_ok || vc.buffer.is_empty() {
                    continue;
                }
                let route = vc.route.expect("post-VA VC has a route");
                let out_vc = vc.out_vc.expect("post-VA VC has an output VC");
                let credit_ok = route >= PORT_LOCAL
                    || self.outputs[route].credits[out_vc] > 0
                    // Circuit-class VCs are reservation-managed, not
                    // credited (fragmented gap traffic).
                    || self.layout.is_circuit_vc(out_vc);
                if credit_ok {
                    self.sa_requests[v] = true;
                }
            }
            nominee[p] = self.sa_rr_in[p].grant(&self.sa_requests);
        }
        // Phase 2: each output port picks one input.
        let mut contenders = std::mem::take(&mut self.arb_scratch);
        for out_port in 0..self.ports {
            contenders.clear();
            for (p, nom) in nominee.iter().enumerate() {
                if nom.is_some_and(|v| self.inputs[p].vcs[v].route == Some(out_port)) {
                    contenders.push(p);
                }
            }
            if let Some(winner) = self.sa_rr_out[out_port].grant_among(&contenders) {
                let v = nominee[winner].expect("winner nominated a VC");
                let vc = &mut self.inputs[winner].vcs[v];
                if vc.state == VcState::WaitSa {
                    vc.state = VcState::Active;
                    vc.state_since = now;
                    let head = vc.buffer.front().expect("granted VC holds a flit");
                    if head.kind.is_head() {
                        let packet = head.packet.0;
                        self.sink.emit(|| TraceEvent {
                            cycle: now,
                            kind: EventKind::StageSa {
                                packet,
                                node: self.node.0,
                            },
                        });
                    }
                }
                self.activity.sw_allocs += 1;
                self.st_pending.push(StGrant {
                    in_port: winner,
                    in_vc: v,
                });
            }
        }
        self.sa_blocked = blocked;
        self.sa_nominee = nominee;
        self.arb_scratch = contenders;
    }

    /// Stage 2: VC allocation — and, in parallel, the reactive-circuit
    /// reservation for request packets (§4.1).
    fn stage_va(&mut self, now: Cycle, out: &mut Vec<Outgoing>) {
        // Circuit reservations happen on the first VA attempt, whether or
        // not the VC wins allocation this cycle.
        for p in 0..self.ports {
            for v in 0..self.layout.total() {
                let vc = &self.inputs[p].vcs[v];
                if vc.state == VcState::WaitVa && vc.state_since < now && !vc.circuit_attempted {
                    self.attempt_reservation(now, p, v, out);
                }
            }
        }

        // Two-phase allocation: requesters grouped by output port; one
        // grant per output port per cycle, round-robin over input ports.
        let mut tried = std::mem::take(&mut self.arb_scratch);
        for out_port in 0..self.ports {
            tried.clear();
            for p in 0..self.ports {
                if self.inputs[p].vcs.iter().any(|vc| {
                    vc.state == VcState::WaitVa
                        && vc.state_since < now
                        && vc.route == Some(out_port)
                }) {
                    tried.push(p);
                }
            }
            // Check a free output VC exists for at least one contender
            // class; pick the winner first (RR), then the VC.
            let mut granted = false;
            while !granted && !tried.is_empty() {
                let Some(winner) = self.va_rr_out[out_port].grant_among(&tried) else {
                    break;
                };
                let pos = tried
                    .iter()
                    .position(|&p| p == winner)
                    .expect("winner came from the candidate list");
                tried.remove(pos);
                // The winning input port's WaitVa VCs for this output,
                // walked in age order: the first candidate that can
                // actually be allocated wins. (The retired legacy
                // allocator considered only the oldest VC; if its virtual
                // network had no free output VC the whole input port was
                // passed over, and since that oldest VC never changes,
                // younger VCs behind it were shadowed forever — a
                // head-of-line wait that can close a request/reply credit
                // cycle into a hard deadlock under sustained load; see
                // `NocConfig::va_hol_relief` and tests/echo_probe.rs.)
                let mut candidates = std::mem::take(&mut self.va_scratch);
                candidates.clear();
                candidates.extend(
                    self.inputs[winner]
                        .vcs
                        .iter()
                        .enumerate()
                        .filter(|(_, vc)| {
                            vc.state == VcState::WaitVa
                                && vc.state_since < now
                                && vc.route == Some(out_port)
                        })
                        .map(|(v, vc)| {
                            let head = vc.buffer.front().expect("WaitVa VC holds its head");
                            (vc.state_since, v, head.vnet, head.dst)
                        }),
                );
                candidates.sort_unstable_by_key(|&(since, v, _, _)| (since, v));
                if !self.va_hol_relief {
                    // Legacy single-candidate sweep: only the oldest VC may
                    // be allocated, recreating the head-of-line wedge the
                    // deadlock diagnoser is regression-tested against.
                    candidates.truncate(1);
                }
                for &(_, v, vnet, dst) in &candidates {
                    // Dateline deadlock avoidance: on wrap topologies a
                    // packet crossing a network link may only claim VCs of
                    // its dateline class, which breaks the dependency
                    // cycle the wraparound links would otherwise close.
                    let mut allocatable = if self.topology.has_wrap() && out_port < PORT_LOCAL {
                        let downstream = self
                            .topology
                            .neighbor(self.node, out_port)
                            .expect("network port leads to a neighbor");
                        let class = self.topology.vc_class(
                            downstream,
                            self.topology.router_of(dst),
                            out_port,
                        );
                        self.layout.allocatable_class_vcs(vnet, class as u8)
                    } else {
                        self.layout.allocatable_vcs(vnet)
                    };
                    let free_vc =
                        allocatable.find(|&ovc| self.outputs[out_port].owner[ovc] == Owner::Free);
                    if let Some(ovc) = free_vc {
                        self.outputs[out_port].owner[ovc] = Owner::Owned(winner, v);
                        let vc = &mut self.inputs[winner].vcs[v];
                        vc.out_vc = Some(ovc);
                        vc.state = VcState::WaitSa;
                        vc.state_since = now;
                        let packet = vc
                            .buffer
                            .front()
                            .expect("WaitVa VC holds its head")
                            .packet
                            .0;
                        self.sink.emit(|| TraceEvent {
                            cycle: now,
                            kind: EventKind::StageVa {
                                packet,
                                node: self.node.0,
                            },
                        });
                        self.activity.vc_allocs += 1;
                        granted = true;
                        break;
                    }
                }
                self.va_scratch = candidates;
            }
        }
        self.arb_scratch = tried;
    }

    /// Number of flits buffered across all input VCs (occupancy telemetry
    /// and whitebox tests).
    pub(crate) fn buffered_flits(&self) -> usize {
        self.inputs
            .iter()
            .flat_map(|p| p.vcs.iter())
            .map(|v| v.buffer.len())
            .sum()
    }

    /// The §4.1 reservation: while the request head sits in VA, write the
    /// reply's circuit into this router's tables.
    fn attempt_reservation(&mut self, now: Cycle, p: usize, v: usize, out: &mut Vec<Outgoing>) {
        let vc = &mut self.inputs[p].vcs[v];
        vc.circuit_attempted = true;
        let route = vc.route.expect("WaitVa VC has a route");
        let head = vc.buffer.front_mut().expect("WaitVa VC holds its head");
        let Some(handle) = head.circuit.as_deref_mut() else {
            return;
        };
        if handle.failed {
            return;
        }
        // Reply direction through this router: it arrives from where the
        // request is going and leaves where the request came from.
        let in_port_reply = route;
        let out_port_reply = p;
        if self.degraded {
            // A degraded router refuses reservations outright: complete
            // circuits are doomed like any reservation conflict, while
            // fragmented and ideal circuits simply gain a gap here.
            if self.mechanism.mode == CircuitMode::Complete {
                handle.failed = true;
                if handle.built_hops > 0 {
                    let key = handle.key;
                    self.activity.credits += 1;
                    out.push(Outgoing::Undo {
                        port: out_port_reply,
                        key,
                        dst: key.requestor,
                        arrive: now + self.link_latency as Cycle,
                    });
                }
            }
            return;
        }
        if self.topology.is_wrap_hop(self.node, in_port_reply)
            || self.topology.is_wrap_hop(self.node, out_port_reply)
        {
            // Circuit reservations never span a wraparound link: a reply
            // streaming through the bypass would skip the dateline VC
            // switch and close the channel-dependency cycle the dateline
            // exists to break. Complete circuits are doomed like any
            // reservation conflict; fragmented and ideal ones simply gain
            // a gap at the dateline router.
            if self.mechanism.mode == CircuitMode::Complete {
                handle.failed = true;
                if handle.built_hops > 0 {
                    let key = handle.key;
                    self.activity.credits += 1;
                    out.push(Outgoing::Undo {
                        port: out_port_reply,
                        key,
                        dst: key.requestor,
                        arrive: now + self.link_latency as Cycle,
                    });
                }
            }
            return;
        }
        let h_req = self
            .topology
            .distance(self.node, self.topology.router_of(head.dst));

        let (window, max_extra_shift, nominal, slack) = match handle.timing {
            Some(t) => {
                let nominal = now
                    + (REQ_HOP_CYCLES * h_req) as Cycle
                    + handle.turnaround as Cycle
                    + self.inject_overhead as Cycle;
                let slack = self.mechanism.timed.slack(handle.path_hops);
                // `nominal` is the reply's *injection* time at its NI; it
                // occupies this router one cycle later (NI→router link).
                let w = router_window(nominal + 1, t.shift, h_req, handle.reply_flits, slack);
                (Some(w), t.max_shift - t.shift, nominal, slack)
            }
            None => (None, 0, 0, 0),
        };

        let req = ReserveRequest {
            key: handle.key,
            source: handle.source,
            in_port: in_port_reply,
            out_port: out_port_reply,
            window,
            max_extra_shift,
        };
        let key = handle.key;
        match self.circuits.try_reserve(&req) {
            Ok(outcome) => {
                handle.built_hops += 1;
                self.activity.circuit_writes += 1;
                self.sink.emit(|| TraceEvent {
                    cycle: now,
                    kind: EventKind::CircuitReserve {
                        node: self.node.0,
                        requestor: key.requestor.0,
                        block: key.block,
                    },
                });
                if let Some(t) = handle.timing.as_mut() {
                    t.shift += outcome.extra_shift;
                    t.narrow(nominal, slack);
                    if !t.feasible() {
                        // A delayed request can no longer meet the earlier
                        // routers' windows: doom the circuit now.
                        handle.failed = true;
                        let key = handle.key;
                        let dst = key.requestor;
                        self.process_undo(now, key, dst, out);
                    }
                }
            }
            Err(_) => {
                self.sink.emit(|| TraceEvent {
                    cycle: now,
                    kind: EventKind::CircuitConflict {
                        node: self.node.0,
                        requestor: key.requestor.0,
                        block: key.block,
                    },
                });
                match self.mechanism.mode {
                    CircuitMode::Complete => {
                        handle.failed = true;
                        let built = handle.built_hops;
                        if built > 0 {
                            self.activity.credits += 1;
                            out.push(Outgoing::Undo {
                                port: out_port_reply,
                                key,
                                dst: key.requestor,
                                arrive: now + self.link_latency as Cycle,
                            });
                        }
                    }
                    // Fragmented circuits keep the partial prefix and try
                    // again at the next hop (§4.2).
                    CircuitMode::Fragmented => {}
                    CircuitMode::None | CircuitMode::Ideal => {
                        unreachable!("these modes never fail reservations")
                    }
                }
            }
        }
    }

    /// The full dynamic state, for checkpointing. Taken at tick
    /// boundaries, where the per-tick scratch vectors (`st_scratch`,
    /// `sa_requests`, `sa_blocked`, `sa_nominee`, `arb_scratch`,
    /// `va_scratch`) are dead and the `busy` flags stale — everything
    /// else is configuration, rebuilt from the [`NocConfig`].
    pub(crate) fn snapshot(&self) -> RouterSnapshot {
        RouterSnapshot {
            inputs: self.inputs.clone(),
            outputs: self.outputs.clone(),
            circuits: self.circuits.clone(),
            st_pending: self.st_pending.clone(),
            sa_rr_in: self.sa_rr_in.clone(),
            sa_rr_out: self.sa_rr_out.clone(),
            va_rr_out: self.va_rr_out.clone(),
            bypass_retry: self.bypass_retry.clone(),
            degraded: self.degraded,
            activity: self.activity,
        }
    }

    /// Overwrites the dynamic state from a [`Router::snapshot`] taken on
    /// an identically-configured router.
    pub(crate) fn restore(&mut self, snap: RouterSnapshot) {
        self.inputs = snap.inputs;
        self.outputs = snap.outputs;
        self.circuits = snap.circuits;
        self.st_pending = snap.st_pending;
        self.sa_rr_in = snap.sa_rr_in;
        self.sa_rr_out = snap.sa_rr_out;
        self.va_rr_out = snap.va_rr_out;
        self.bypass_retry = snap.bypass_retry;
        self.degraded = snap.degraded;
        self.activity = snap.activity;
    }

    /// Reports every input VC that is blocked on a channel resource,
    /// with the exact resources it waits on — this router's slice of
    /// the network-level wait-for graph (deadlock diagnosis). Mirrors
    /// the allocator rules: a post-VA VC is blocked when its allocated
    /// output VC has no credits; a `WaitVa` VC is blocked when *no* VC
    /// in its allocatable class is free. Only runs on the cold
    /// watchdog path, so it allocates freely.
    pub(crate) fn waiters(&self, now: Cycle, out: &mut Vec<VcWaiter>) {
        for (p, port) in self.inputs.iter().enumerate() {
            for (v, vc) in port.vcs.iter().enumerate() {
                if vc.is_idle() {
                    continue;
                }
                let Some(route) = vc.route else { continue };
                if route >= PORT_LOCAL {
                    // Ejection waits never close a channel cycle.
                    continue;
                }
                let Some(head) = vc.buffer.front() else {
                    continue;
                };
                let o = &self.outputs[route];
                let mut edges = Vec::new();
                let credits = match vc.out_vc {
                    Some(ov) => {
                        if o.credits[ov] == 0 && !self.layout.is_circuit_vc(ov) {
                            edges.push(WaitEdge::Downstream { out_vc: ov });
                        }
                        o.credits[ov]
                    }
                    None => {
                        // Under the legacy oldest-only allocator a WaitVa
                        // VC that is not the oldest same-route VC of its
                        // input port is never even tried: it waits on the
                        // shadowing VC, not on any output resource.
                        let shadow = (!self.va_hol_relief)
                            .then(|| {
                                port.vcs
                                    .iter()
                                    .enumerate()
                                    .filter(|(_, o)| {
                                        o.state == VcState::WaitVa && o.route == Some(route)
                                    })
                                    .min_by_key(|(ov, o)| (o.state_since, *ov))
                                    .map(|(ov, _)| ov)
                            })
                            .flatten()
                            .filter(|&oldest| oldest != v);
                        if let Some(oldest) = shadow {
                            edges.push(WaitEdge::Local {
                                in_port: p,
                                vc: oldest,
                            });
                        } else if vc.state == VcState::WaitVa {
                            let allocatable = if self.topology.has_wrap() && route < PORT_LOCAL {
                                let downstream = self
                                    .topology
                                    .neighbor(self.node, route)
                                    .expect("network port leads to a neighbor");
                                let class = self.topology.vc_class(
                                    downstream,
                                    self.topology.router_of(head.dst),
                                    route,
                                );
                                self.layout.allocatable_class_vcs(head.vnet, class as u8)
                            } else {
                                self.layout.allocatable_vcs(head.vnet)
                            };
                            let cands: Vec<usize> = allocatable.collect();
                            if cands.iter().all(|&ovc| o.owner[ovc] != Owner::Free) {
                                for &ovc in &cands {
                                    match o.owner[ovc] {
                                        Owner::Owned(hp, hv) => {
                                            edges.push(WaitEdge::Local {
                                                in_port: hp,
                                                vc: hv,
                                            });
                                        }
                                        Owner::Draining => {
                                            edges.push(WaitEdge::Downstream { out_vc: ovc });
                                        }
                                        Owner::Free => {}
                                    }
                                }
                            }
                        }
                        0
                    }
                };
                if edges.is_empty() {
                    continue;
                }
                edges.sort_unstable();
                edges.dedup();
                let held_by_circuit = self
                    .circuits
                    .stale_entries(now, 0)
                    .into_iter()
                    .find(|(_, e, _)| e.out_port == route)
                    .map(|(_, e, _)| e.key);
                out.push(VcWaiter {
                    in_port: p,
                    vc: v,
                    packet: Some(head.packet),
                    wants_port: route,
                    out_vc: vc.out_vc,
                    credits,
                    held_by_circuit,
                    edges,
                });
            }
        }
    }
}

/// How one blocked input VC waits on another resource, as reported by
/// [`Router::waiters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum WaitEdge {
    /// Waits for a same-router input VC to finish streaming: the wanted
    /// output VC is owned by it.
    Local {
        /// Input port of the owning VC.
        in_port: usize,
        /// VC index of the owning VC.
        vc: usize,
    },
    /// Waits for the downstream input VC to drain: the wanted output VC
    /// has no credits left, or is draining back to idle.
    Downstream {
        /// The output VC waited on (equals the downstream input VC).
        out_vc: usize,
    },
}

/// One blocked input VC and everything it waits on — a node of the
/// network's wait-for graph plus its outgoing edges.
#[derive(Debug, Clone)]
pub(crate) struct VcWaiter {
    /// Input port of the blocked VC.
    pub in_port: usize,
    /// VC index of the blocked VC.
    pub vc: usize,
    /// Head packet buffered in it.
    pub packet: Option<PacketId>,
    /// Output port the route computation picked.
    pub wants_port: usize,
    /// Allocated output VC, if VC allocation already succeeded.
    pub out_vc: Option<usize>,
    /// Credits left on the allocated output VC (0 when credit-blocked
    /// or still waiting for allocation).
    pub credits: u32,
    /// Circuit reservation pinning the wanted output port, if any.
    pub held_by_circuit: Option<CircuitKey>,
    /// Everything this VC is blocked behind (never empty).
    pub edges: Vec<WaitEdge>,
}

/// Complete dynamic state of one [`Router`], for checkpointing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct RouterSnapshot {
    inputs: Vec<InputPort>,
    outputs: Vec<OutputPort>,
    circuits: RouterCircuits,
    st_pending: Vec<StGrant>,
    sa_rr_in: Vec<RoundRobin>,
    sa_rr_out: Vec<RoundRobin>,
    va_rr_out: Vec<RoundRobin>,
    bypass_retry: Vec<VecDeque<Flit>>,
    degraded: bool,
    activity: Activity,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitKind, PacketId};
    use rcsim_core::{MechanismConfig, Mesh, MessageClass, Vnet, PORT_EAST, PORT_NORTH, PORT_WEST};

    fn router(mechanism: MechanismConfig) -> Router {
        let mesh = Mesh::new(4, 4).expect("valid");
        // Router at n5 = (1,1): all four neighbours exist.
        Router::new(NodeId(5), &NocConfig::paper_baseline(mesh, mechanism))
    }

    fn flit(kind: FlitKind, seq: u32, len: u32, dst: u16, vc: usize) -> Flit {
        Flit {
            packet: PacketId(1),
            kind,
            seq,
            len,
            src: NodeId(4),
            dst: NodeId(dst),
            class: MessageClass::L1Request,
            vnet: Vnet::Request,
            vc,
            circuit: None,
            on_circuit: None,
            scrounger_final: None,
            block: 0x40,
            token: 0,
            created_at: 0,
            injected_at: 0,
            corrupted: false,
            path: None,
        }
    }

    fn tick(r: &mut Router, now: Cycle, mut arrivals: Vec<(usize, Flit)>) -> Vec<Outgoing> {
        let mut out = Vec::new();
        r.tick(
            now,
            &mut arrivals,
            &mut Vec::new(),
            &mut Vec::new(),
            &mut out,
        );
        out
    }

    /// The Table 4 pipeline takes exactly four cycles in the router: a
    /// head arriving at cycle 0 departs on the link during the tick at
    /// cycle 3 (RC@0, VA@1, SA@2, ST@3).
    #[test]
    fn single_flit_takes_four_router_cycles() {
        let mut r = router(MechanismConfig::baseline());
        // Head-tail toward n6 = (2,1): East of n5, arriving from the West.
        let f = flit(FlitKind::HeadTail, 0, 1, 6, 0);
        let out = tick(&mut r, 0, vec![(PORT_WEST, f)]);
        assert!(out.is_empty(), "cycle 0: buffered + route computed");
        assert!(tick(&mut r, 1, vec![]).is_empty(), "cycle 1: VC allocation");
        assert!(
            tick(&mut r, 2, vec![]).is_empty(),
            "cycle 2: switch allocation"
        );
        let out = tick(&mut r, 3, vec![]);
        let sent = out
            .iter()
            .find_map(|o| match o {
                Outgoing::Flit { port, arrive, .. } => Some((*port, *arrive)),
                _ => None,
            })
            .expect("cycle 3: switch traversal");
        assert_eq!(sent.0, PORT_EAST);
        assert_eq!(sent.1, 3 + 2, "one ST cycle + one link cycle");
        // The freed buffer slot returns upstream as a credit.
        assert!(out.iter().any(|o| matches!(
            o,
            Outgoing::Credit {
                port: PORT_WEST,
                vc: 0,
                ..
            }
        )));
        assert_eq!(r.buffered_flits(), 0);
    }

    /// Body flits stream one per cycle behind the head.
    #[test]
    fn multiflit_streams_at_one_per_cycle() {
        let mut r = router(MechanismConfig::baseline());
        let mut departures = Vec::new();
        for now in 0..16u64 {
            let arrivals = if now < 5 {
                let seq = now as u32;
                vec![(
                    PORT_WEST,
                    flit(FlitKind::for_position(seq, 5), seq, 5, 6, 0),
                )]
            } else {
                vec![]
            };
            for o in tick(&mut r, now, arrivals) {
                if let Outgoing::Flit { .. } = o {
                    departures.push(now);
                }
            }
        }
        // Head departs at cycle 3 (after RC/VA/SA); the other four flits
        // stream back-to-back behind it.
        assert_eq!(departures, vec![3, 4, 5, 6, 7], "1 flit/cycle streaming");
        assert_eq!(r.buffered_flits(), 0);
    }

    /// Two heads contending for one output port: switch allocation
    /// serializes them round-robin; both eventually depart.
    #[test]
    fn output_contention_is_arbitrated() {
        let mut r = router(MechanismConfig::baseline());
        let a = flit(FlitKind::HeadTail, 0, 1, 6, 0);
        let mut b = flit(FlitKind::HeadTail, 0, 1, 6, 0);
        b.packet = PacketId(2);
        b.src = NodeId(1);
        let _ = tick(&mut r, 0, vec![(PORT_WEST, a), (PORT_NORTH, b)]);
        let mut departures = 0;
        for now in 1..10 {
            for o in tick(&mut r, now, vec![]) {
                if let Outgoing::Flit { port, .. } = o {
                    assert_eq!(port, PORT_EAST);
                    departures += 1;
                }
            }
        }
        assert_eq!(departures, 2, "both packets cross, serialized");
    }

    /// A request head reserves the reply circuit during its VA cycle,
    /// with the reply's ports mirrored from the request's.
    #[test]
    fn reservation_happens_at_va_with_mirrored_ports() {
        let mut r = router(MechanismConfig::complete());
        let mut f = flit(FlitKind::HeadTail, 0, 1, 6, 0);
        f.circuit = Some(Box::new(rcsim_core::circuit::CircuitHandle::new(
            NodeId(4),
            0x40,
            NodeId(6),
            2,
            5,
            7,
        )));
        let _ = tick(&mut r, 0, vec![(PORT_WEST, f)]);
        assert_eq!(r.circuits.total_entries(), 0, "not during RC");
        let _ = tick(&mut r, 1, vec![]);
        assert_eq!(
            r.circuits.total_entries(),
            1,
            "reserved in parallel with VA"
        );
        // Reply arrives from where the request went (East) and leaves
        // where it came from (West).
        let key = rcsim_core::circuit::CircuitKey {
            requestor: NodeId(4),
            block: 0x40,
        };
        let e = r
            .circuits
            .lookup(PORT_EAST, key)
            .expect("entry at East input");
        assert_eq!(e.out_port, PORT_WEST);
    }

    /// A reply flit with a matching reservation crosses in the arrival
    /// cycle (1-cycle bypass) and releases the circuit at its tail.
    #[test]
    fn bypass_crosses_in_one_cycle_and_releases() {
        let mut r = router(MechanismConfig::complete());
        let key = rcsim_core::circuit::CircuitKey {
            requestor: NodeId(4),
            block: 0x40,
        };
        r.circuits
            .try_reserve(&ReserveRequest {
                key,
                source: NodeId(6),
                in_port: PORT_EAST,
                out_port: PORT_WEST,
                window: None,
                max_extra_shift: 0,
            })
            .expect("reservation succeeds");
        let mut f = flit(FlitKind::HeadTail, 0, 1, 4, 3);
        f.class = MessageClass::L2Reply;
        f.vnet = Vnet::Reply;
        f.on_circuit = Some(key);
        let out = tick(&mut r, 10, vec![(PORT_EAST, f)]);
        let (port, arrive) = out
            .iter()
            .find_map(|o| match o {
                Outgoing::Flit { port, arrive, .. } => Some((*port, *arrive)),
                _ => None,
            })
            .expect("bypass departs the same cycle");
        assert_eq!(port, PORT_WEST);
        assert_eq!(arrive, 12, "1 router cycle + 1 link cycle");
        assert_eq!(r.circuits.total_entries(), 0, "tail released the circuit");
        assert_eq!(r.buffered_flits(), 0, "bypassed flits are never stored");
    }

    /// An undo notification removes the local entry and is forwarded
    /// towards the circuit destination.
    #[test]
    fn undo_propagates_towards_destination() {
        let mut r = router(MechanismConfig::complete());
        let key = rcsim_core::circuit::CircuitKey {
            requestor: NodeId(4),
            block: 0x40,
        };
        r.circuits
            .try_reserve(&ReserveRequest {
                key,
                source: NodeId(6),
                in_port: PORT_EAST,
                out_port: PORT_WEST,
                window: None,
                max_extra_shift: 0,
            })
            .expect("reservation succeeds");
        let mut out = Vec::new();
        r.tick(
            5,
            &mut Vec::new(),
            &mut Vec::new(),
            &mut vec![(key, NodeId(4))],
            &mut out,
        );
        assert_eq!(r.circuits.total_entries(), 0);
        assert!(out.iter().any(|o| matches!(
            o,
            Outgoing::Undo {
                port: PORT_WEST,
                ..
            }
        )));
    }
}
