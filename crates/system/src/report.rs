//! Machine-readable results of one simulation run — the raw material for
//! every paper table and figure.

use rcsim_noc::{CircuitOutcome, HealthReport, MessageGroup, NocStats};
use rcsim_power::EnergyBreakdown;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Mean network and queueing latency of one Figure 7 message group.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencyRow {
    /// Mean cycles in the network (injection → tail delivery).
    pub network: f64,
    /// Mean cycles queued at the NI before injection.
    pub queueing: f64,
    /// 99th-percentile network latency (histogram-approximate; 0 when the
    /// group saw no traffic).
    #[serde(default)]
    pub p99: f64,
    /// 99.9th-percentile network latency (histogram-approximate; 0 when
    /// the group saw no traffic).
    #[serde(default)]
    pub p999: f64,
    /// Messages measured.
    pub count: u64,
}

/// Open-loop external-traffic totals for one run. All-zero (the serde
/// default) when the run had no open-loop ingress configured.
///
/// Counters are cumulative over the whole run — warm-up included — so the
/// conservation identity holds regardless of the stats-reset boundary:
/// `offered == completed + shed + gave_up + in_flight` (and `unaccounted`,
/// the residue of that identity, must be zero). The latency fields and
/// `completed_measured`/`completed_in_slo` cover only the measurement
/// window.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ExternalSummary {
    /// First-time arrivals offered to edge ingress queues.
    pub offered: u64,
    /// Re-offers of previously rejected arrivals (retry-after contract).
    pub reoffers: u64,
    /// Offers rejected by admission control (token bucket or full queue).
    pub rejected: u64,
    /// Arrivals shed from an ingress queue after the shed timeout.
    pub shed: u64,
    /// Arrivals that exhausted their client retry budget after rejections.
    pub gave_up: u64,
    /// Request/reply round trips completed over the whole run.
    pub completed: u64,
    /// Round trips completed inside the measurement window.
    pub completed_measured: u64,
    /// Measurement-window completions within the SLO latency bound.
    pub completed_in_slo: u64,
    /// Mean end-to-end latency (edge arrival → reply delivered), cycles.
    pub latency_mean: f64,
    /// Median end-to-end latency, cycles.
    pub latency_p50: f64,
    /// 99th-percentile end-to-end latency, cycles.
    pub latency_p99: f64,
    /// 99.9th-percentile end-to-end latency, cycles.
    pub latency_p999: f64,
    /// Work still in flight at run end: queued at ingress, in the network,
    /// in service at a server tile, or awaiting a client retry.
    pub in_flight: u64,
    /// Conservation residue `offered - (completed + shed + gave_up +
    /// in_flight)`. Anything nonzero is a lost-packet bug.
    pub unaccounted: i64,
}

/// Everything measured in one (workload, chip size, mechanism) run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Workload name.
    pub workload: String,
    /// Mechanism label (paper legend name).
    pub mechanism: String,
    /// Core count.
    pub cores: usize,
    /// Measured cycles.
    pub cycles: u64,
    /// Instructions retired in the window (the Figure 9/10 performance
    /// metric: fixed window, more instructions = faster).
    pub instructions: u64,

    /// Message counts by class label (Table 1).
    pub messages: BTreeMap<String, u64>,
    /// Latencies by Figure 7 group label.
    pub latency: BTreeMap<String, LatencyRow>,
    /// Reply-outcome fractions by Figure 6 label.
    pub outcomes: BTreeMap<String, f64>,
    /// Circuit reservations by in-port position (Table 5 numerators).
    pub reservations_at_index: Vec<u64>,
    /// Failed reservation attempts (Table 5 "failed").
    pub reservations_failed: u64,
    /// Failure breakdown: `[storage, same-source, output-port, window]`.
    pub reservation_failures: [u64; 4],
    /// Injected flits per node per 100 cycles (the paper's load metric).
    pub load: f64,

    /// Network energy breakdown.
    pub energy: EnergyBreakdown,
    /// Router area savings vs the baseline router (Table 6).
    pub area_savings: f64,

    /// L1 miss rate over core accesses.
    pub l1_miss_rate: f64,
    /// `L1_DATA_ACK`s elided (§4.6).
    pub acks_elided: u64,
    /// L2 requests that queued behind busy lines.
    pub l2_queued_on_busy: u64,

    /// End-of-run network liveness snapshot: quiescence, suspected
    /// circuit-table leaks and the fault-injection counters.
    #[serde(default)]
    pub health: HealthReport,

    /// Open-loop external traffic totals (all-zero for closed-loop runs).
    #[serde(default)]
    pub external: ExternalSummary,
}

impl RunResult {
    /// Instructions per cycle per core.
    pub fn ipc_per_core(&self) -> f64 {
        if self.cycles == 0 || self.cores == 0 {
            0.0
        } else {
            self.instructions as f64 / (self.cycles as f64 * self.cores as f64)
        }
    }

    /// Speedup of this run over a baseline run of the same workload
    /// (ratio of instructions retired in equal windows).
    pub fn speedup_over(&self, baseline: &RunResult) -> f64 {
        if baseline.instructions == 0 {
            0.0
        } else {
            self.instructions as f64 / baseline.instructions as f64
        }
    }

    /// Network energy normalized to a baseline run, **per unit of work**
    /// (energy/instruction ratio). The paper measures whole parallel
    /// regions — fixed work — so a faster configuration also spends less
    /// static energy; our fixed-cycle windows must fold the speedup back
    /// in to be comparable.
    pub fn energy_ratio_over(&self, baseline: &RunResult) -> f64 {
        let b = baseline.energy.total_pj();
        if b == 0.0 || self.instructions == 0 || baseline.instructions == 0 {
            return 0.0;
        }
        (self.energy.total_pj() / self.instructions as f64) / (b / baseline.instructions as f64)
    }

    /// Builds the latency/outcome maps from network statistics.
    pub fn fill_noc_summaries(&mut self, stats: &NocStats) {
        for (class, n) in &stats.injected {
            *self.messages.entry(class.label().to_owned()).or_insert(0) += n;
        }
        for group in [
            MessageGroup::Request,
            MessageGroup::CircuitRep,
            MessageGroup::NoCircuitRep,
        ] {
            let net = stats.network_latency.get(&group);
            let queue = stats.queueing_latency.get(&group);
            self.latency.insert(
                group.label().to_owned(),
                LatencyRow {
                    network: net.map_or(0.0, |s| s.mean()),
                    queueing: queue.map_or(0.0, |s| s.mean()),
                    p99: net.and_then(|s| s.p99()).unwrap_or(0.0),
                    p999: net.and_then(|s| s.p999()).unwrap_or(0.0),
                    count: net.map_or(0, |s| s.count()),
                },
            );
        }
        for outcome in CircuitOutcome::ALL {
            self.outcomes
                .insert(outcome.label().to_owned(), stats.outcome_fraction(outcome));
        }
        self.reservations_at_index = stats.tables.reserved_at_index.to_vec();
        self.reservations_failed = stats.tables.total_failed();
        self.reservation_failures = [
            stats.tables.failed_storage,
            stats.tables.failed_source,
            stats.tables.failed_output,
            stats.tables.failed_window,
        ];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank() -> RunResult {
        RunResult {
            workload: "x".into(),
            mechanism: "Baseline".into(),
            cores: 16,
            cycles: 1000,
            instructions: 8000,
            messages: BTreeMap::new(),
            latency: BTreeMap::new(),
            outcomes: BTreeMap::new(),
            reservations_at_index: vec![],
            reservations_failed: 0,
            reservation_failures: [0; 4],
            load: 0.0,
            energy: EnergyBreakdown::default(),
            area_savings: 0.0,
            l1_miss_rate: 0.0,
            acks_elided: 0,
            l2_queued_on_busy: 0,
            health: HealthReport::default(),
            external: ExternalSummary::default(),
        }
    }

    #[test]
    fn ipc_and_speedup() {
        let base = blank();
        assert!((base.ipc_per_core() - 0.5).abs() < 1e-12);
        let mut faster = blank();
        faster.instructions = 8800;
        assert!((faster.speedup_over(&base) - 1.1).abs() < 1e-12);
    }

    #[test]
    fn json_roundtrip() {
        let mut r = blank();
        r.messages.insert("L1_REQ".into(), 42);
        r.latency.insert(
            "Request".into(),
            LatencyRow {
                network: 17.25,
                queueing: 3.5,
                p99: 60.0,
                p999: 95.0,
                count: 42,
            },
        );
        r.outcomes.insert("circuit".into(), 0.375);
        let s = serde_json::to_string(&r).unwrap();
        let back: RunResult = serde_json::from_str(&s).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn json_roundtrip_preserves_defaulted_fields() {
        // `#[serde(default)]` fields must tolerate older documents that
        // omit them.
        let r = blank();
        let s = serde_json::to_string(&r).unwrap();
        let stripped = s.replace("\"health\":", "\"health_unknown\":");
        let back: RunResult = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.health, HealthReport::default());
    }
}
