//! Fault-injection and progress-watchdog integration tests: a wedged
//! network is declared dead within the stall window, the zero-fault
//! configuration perturbs nothing, and a dropped circuit reply limps home
//! over the wormhole pipeline as `FaultDegraded`.

use rcsim_core::circuit::CircuitKey;
use rcsim_core::{MechanismConfig, Mesh, MessageClass, NodeId};
use rcsim_noc::{CircuitOutcome, FaultConfig, Network, NocConfig, PacketSpec, WatchdogConfig};

fn cfg(mechanism: MechanismConfig) -> NocConfig {
    NocConfig::paper_baseline(Mesh::new(4, 4).expect("valid"), mechanism)
}

/// Total credit loss wedges the mesh; the watchdog must declare the
/// deadlock within its stall window instead of letting the run spin
/// forever.
#[test]
fn credit_loss_deadlock_is_detected_within_window() {
    let faults = FaultConfig {
        credit_loss_rate: 1.0,
        ..FaultConfig::none()
    };
    let mut net = Network::with_faults(cfg(MechanismConfig::baseline()), faults).expect("valid");
    let window = 200;
    net.set_watchdog(WatchdogConfig {
        stall_window: window,
        ..WatchdogConfig::default()
    });

    // Enough multi-hop traffic to exhaust the never-returned credits:
    // each 5-flit reply eats a full VC's credits on every link it
    // crosses, so a few waves wedge every row and column.
    for round in 0..8u64 {
        for s in 0..16u16 {
            let d = (s + 5) % 16;
            net.inject(
                PacketSpec::new(NodeId(s), NodeId(d), MessageClass::L2Reply)
                    .with_block((round * 16 + u64::from(s)) * 64),
            );
        }
        for _ in 0..4 {
            net.tick();
        }
    }

    let mut stalled_at = None;
    for _ in 0..window * 20 {
        net.tick();
        if net.stalled() {
            stalled_at = Some(net.now());
            break;
        }
    }
    let stalled_at = stalled_at.expect("watchdog never declared the wedged network dead");

    let report = net.health();
    assert!(report.stalled);
    assert!(report.in_flight > 0, "stall must have traffic outstanding");
    assert!(!report.quiescent);
    assert!(!report.healthy());
    assert!(report.faults.credits_lost > 0);
    assert!(
        stalled_at <= report.last_progress + window + 1,
        "declared at {stalled_at}, last progress {}, window {window}",
        report.last_progress
    );
    assert!(
        !report.stuck_messages.is_empty(),
        "report must name the stuck messages"
    );
    let oldest = report.oldest_age.expect("oldest age of in-flight traffic");
    assert!(oldest >= window);
    // The report renders the evidence a human needs.
    let text = report.to_string();
    assert!(text.contains("STALLED"), "{text}");
}

/// `FaultConfig::none()` must be invisible: the fault RNG is never
/// consulted, so deliveries and statistics are bit-identical to a network
/// built without the fault layer.
#[test]
fn no_faults_is_bit_identical_to_baseline() {
    let mechanism = MechanismConfig::complete_noack();
    let mut plain = Network::new(cfg(mechanism)).expect("valid");
    let mut gated = Network::with_faults(cfg(mechanism), FaultConfig::none()).expect("valid");

    let mut plain_trace = Vec::new();
    let mut gated_trace = Vec::new();
    for step in 0..400u64 {
        if step < 200 && step % 3 == 0 {
            let s = (step * 7 % 16) as u16;
            let d = (s + 1 + (step % 11) as u16) % 16;
            if s != d {
                let spec = PacketSpec::new(NodeId(s), NodeId(d), MessageClass::L1Request)
                    .with_block(step * 64);
                plain.inject(spec);
                gated.inject(spec);
            }
        }
        plain.tick();
        gated.tick();
        plain_trace.extend(plain.take_all_delivered());
        gated_trace.extend(gated.take_all_delivered());
    }

    assert_eq!(plain_trace, gated_trace, "delivery traces diverged");
    assert_eq!(
        format!("{:?}", plain.stats()),
        format!("{:?}", gated.stats()),
        "statistics diverged"
    );
    assert_eq!(gated.fault_stats(), Default::default());
    assert!(gated.health().healthy());
}

/// A dropped circuit reply is retransmitted by the source NI, arrives
/// over the plain 5-cycle wormhole pipeline, and is accounted as
/// `FaultDegraded` — the circuit fault degrades latency, never loses the
/// message.
#[test]
fn dropped_reply_is_retransmitted_and_counted_fault_degraded() {
    let faults = FaultConfig {
        link_drop_rate: 0.05,
        seed: 0xD0_5E,
        ..FaultConfig::none()
    };
    let mut net = Network::with_faults(cfg(MechanismConfig::complete()), faults).expect("valid");

    for i in 0..60u64 {
        let block = (i + 1) * 64;
        let (src, dst) = (0u16, 15u16);
        // Request west→east to (maybe) build the circuit; a dropped
        // request is itself retried and simply fails to reserve.
        net.inject(
            PacketSpec::new(NodeId(src), NodeId(dst), MessageClass::L1Request).with_block(block),
        );
        let mut got_request = false;
        for _ in 0..2_000 {
            net.tick();
            if !net.take_delivered(NodeId(dst)).is_empty() {
                got_request = true;
                break;
            }
        }
        assert!(got_request, "request {block} lost despite retransmission");

        let key = CircuitKey {
            requestor: NodeId(src),
            block,
        };
        net.inject(
            PacketSpec::new(NodeId(dst), NodeId(src), MessageClass::L2Reply)
                .with_block(block)
                .with_circuit_key(key),
        );
        let mut got_reply = false;
        for _ in 0..2_000 {
            net.tick();
            if !net.take_delivered(NodeId(src)).is_empty() {
                got_reply = true;
                break;
            }
        }
        assert!(got_reply, "reply {block} lost despite retransmission");
    }

    let fs = net.fault_stats();
    assert!(fs.packets_dropped > 0, "5% drop over 120 packets must hit");
    assert!(fs.retransmissions > 0, "drops must trigger retransmissions");
    assert_eq!(fs.packets_abandoned, 0, "retry budget must suffice here");

    let s = net.stats();
    assert!(
        s.outcome_fraction(CircuitOutcome::FaultDegraded) > 0.0,
        "a dropped committed reply must be reclassified FaultDegraded: {:?}",
        s.outcomes
    );
    // Conservation with faults on: everything injected was delivered
    // (nothing abandoned in this run).
    assert_eq!(s.total_injected(), s.total_delivered() + s.dropped_packets);
    assert_eq!(s.dropped_packets, 0);
}

/// The eventual quiescence check knows about retransmission: after
/// in-flight traffic drains (including retries), the network reports
/// quiescent and leak-free even with faults enabled.
#[test]
fn faulty_network_quiesces_after_drain() {
    let faults = FaultConfig {
        link_drop_rate: 0.10,
        seed: 7,
        ..FaultConfig::none()
    };
    let mut net = Network::with_faults(cfg(MechanismConfig::baseline()), faults).expect("valid");
    for i in 0..40u64 {
        let s = (i % 16) as u16;
        let d = (s + 3) % 16;
        net.inject(PacketSpec::new(NodeId(s), NodeId(d), MessageClass::WbData).with_block(i * 64));
        net.tick();
    }
    for _ in 0..20_000 {
        net.tick();
        if net.is_quiescent() {
            break;
        }
    }
    assert!(net.is_quiescent(), "faulty traffic must eventually drain");
    let report = net.health();
    assert!(report.quiescent);
    assert!(!report.stalled);
    let s = net.stats();
    assert_eq!(s.total_injected(), s.total_delivered() + s.dropped_packets);
}
