//! Golden regression tests: the headline metrics of `SimConfig::quick`
//! runs are pinned in `tests/golden_quick.json`. The simulator is
//! seed-deterministic, so any drift here is a behaviour change — either a
//! bug or an intentional model change. For the latter, regenerate with
//!
//! ```text
//! RC_UPDATE_GOLDEN=1 cargo test -p rcsim-bench --test golden
//! ```
//!
//! and review the diff of the golden file like any other code change.

use rcsim_bench::SweepRunner;
use rcsim_core::MechanismConfig;
use rcsim_system::{RunResult, SimConfig};
use serde::{Deserialize, Serialize};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_quick.json");
const WORKLOAD: &str = "blackscholes";
const CORES: u16 = 16;

/// The pinned slice of a [`RunResult`]: enough to catch behaviour drift in
/// the core, protocol and NoC layers without freezing every last counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GoldenPoint {
    mechanism: String,
    /// Instructions retired in the fixed window (the performance metric).
    instructions: u64,
    /// Total messages injected into the network.
    total_messages: u64,
    /// Count-weighted mean network latency over all message groups.
    avg_latency: f64,
    /// Fraction of replies delivered over a circuit.
    circuit_hit_rate: f64,
    /// Failed reservation attempts.
    reservations_failed: u64,
}

impl GoldenPoint {
    fn from_run(r: &RunResult) -> Self {
        let (mut lat_sum, mut lat_n) = (0.0, 0u64);
        for row in r.latency.values() {
            lat_sum += row.network * row.count as f64;
            lat_n += row.count;
        }
        GoldenPoint {
            mechanism: r.mechanism.clone(),
            instructions: r.instructions,
            total_messages: r.messages.values().sum(),
            avg_latency: lat_sum / lat_n.max(1) as f64,
            circuit_hit_rate: r.outcomes.get("circuit").copied().unwrap_or(0.0),
            reservations_failed: r.reservations_failed,
        }
    }
}

fn mechanisms() -> [MechanismConfig; 3] {
    [
        MechanismConfig::baseline(),
        MechanismConfig::fragmented(),
        MechanismConfig::complete(),
    ]
}

fn measure() -> Vec<GoldenPoint> {
    let jobs: Vec<(String, SimConfig)> = mechanisms()
        .into_iter()
        .map(|mechanism| {
            (
                format!("golden/{}", mechanism.label()),
                SimConfig::quick(CORES, mechanism, WORKLOAD),
            )
        })
        .collect();
    // Serial, uncached: goldens must reflect a fresh simulation.
    SweepRunner::new(1, None)
        .run(&jobs)
        .results
        .iter()
        .map(|r| GoldenPoint::from_run(r.as_ref().expect("quick configs run")))
        .collect()
}

#[test]
fn quick_runs_match_goldens() {
    let measured = measure();
    if std::env::var("RC_UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        let json = serde_json::to_string_pretty(&measured).unwrap();
        std::fs::write(GOLDEN_PATH, json + "\n").unwrap();
        eprintln!("golden file regenerated: {GOLDEN_PATH}");
        return;
    }
    let text = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file present (regenerate with RC_UPDATE_GOLDEN=1)");
    let golden: Vec<GoldenPoint> = serde_json::from_str(&text).expect("golden file parses");
    assert_eq!(golden.len(), measured.len(), "golden point count");
    for (g, m) in golden.iter().zip(&measured) {
        assert_eq!(g.mechanism, m.mechanism);
        assert_eq!(
            g.instructions, m.instructions,
            "[{}] instructions drifted (RC_UPDATE_GOLDEN=1 if intended)",
            g.mechanism
        );
        assert_eq!(
            g.total_messages, m.total_messages,
            "[{}] message count drifted",
            g.mechanism
        );
        assert_eq!(
            g.reservations_failed, m.reservations_failed,
            "[{}] failed-reservation count drifted",
            g.mechanism
        );
        // Floats: the simulation is deterministic and the golden file
        // round-trips f64 exactly, so a tiny tolerance only guards against
        // hand-edited files.
        assert!(
            (g.avg_latency - m.avg_latency).abs() <= 1e-9 * g.avg_latency.abs().max(1.0),
            "[{}] avg latency drifted: golden {} vs measured {}",
            g.mechanism,
            g.avg_latency,
            m.avg_latency
        );
        assert!(
            (g.circuit_hit_rate - m.circuit_hit_rate).abs() <= 1e-12,
            "[{}] circuit hit rate drifted: golden {} vs measured {}",
            g.mechanism,
            g.circuit_hit_rate,
            m.circuit_hit_rate
        );
    }
}

#[test]
fn goldens_are_distinct_per_mechanism() {
    // Sanity on the golden file itself: the three mechanisms must pin
    // genuinely different behaviour (a copy-paste golden would hide bugs).
    if std::env::var("RC_UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        // The sibling test is rewriting the file; don't race its writes.
        return;
    }
    let text = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file present (regenerate with RC_UPDATE_GOLDEN=1)");
    let golden: Vec<GoldenPoint> = serde_json::from_str(&text).expect("golden file parses");
    assert_eq!(golden.len(), 3);
    assert_eq!(golden[0].mechanism, "Baseline");
    assert_eq!(
        golden[0].circuit_hit_rate, 0.0,
        "the baseline builds no circuits"
    );
    assert!(
        golden[1].circuit_hit_rate > 0.0 && golden[2].circuit_hit_rate > 0.0,
        "circuit mechanisms must actually use circuits"
    );
}
