//! Chrome trace-event export: turn a raw event stream into a JSON
//! document that Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing`
//! open directly.
//!
//! Mapping: cycles become microseconds one-to-one (the viewers have no
//! notion of cycles), each packet becomes one complete (`"X"`) slice from
//! injection to delivery on the track of its *source* node, circuit-table
//! transitions become instant (`"i"`) events on the router's track, and
//! epoch occupancy samples become counter (`"C"`) series.

use crate::event::{EventKind, TraceEvent};
use serde_json::Value;
use std::collections::HashMap;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Map(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn s(v: &str) -> Value {
    Value::Str(v.to_owned())
}

fn common(name: &str, ph: &str, ts: u64, tid: u64) -> Vec<(&'static str, Value)> {
    vec![
        ("name", s(name)),
        ("ph", s(ph)),
        ("ts", Value::U64(ts)),
        ("pid", Value::U64(0)),
        ("tid", Value::U64(tid)),
    ]
}

/// Builds the trace document. Events must be in emission order (the order
/// the sink returns them).
pub fn chrome_trace(events: &[TraceEvent]) -> Value {
    let mut out: Vec<Value> = Vec::new();
    // packet → (inject cycle, src node, class)
    let mut open: HashMap<u64, (u64, u16, &'static str)> = HashMap::new();
    let mut classes: HashMap<u64, &'static str> = HashMap::new();
    for e in events {
        match e.kind {
            EventKind::NiEnqueue { packet, class, .. } => {
                classes.insert(packet, class);
            }
            EventKind::NiInject { packet, node } => {
                let class = classes.get(&packet).copied().unwrap_or("packet");
                open.entry(packet).or_insert((e.cycle, node, class));
            }
            EventKind::NiEject {
                packet,
                node,
                rode_circuit,
                retries,
            } => {
                if let Some((start, src, class)) = open.remove(&packet) {
                    let mut fields = common(class, "X", start, src as u64);
                    fields.push(("dur", Value::U64(e.cycle.saturating_sub(start).max(1))));
                    fields.push(("cat", s(if rode_circuit { "circuit" } else { "packet" })));
                    fields.push((
                        "args",
                        obj(vec![
                            ("packet", Value::U64(packet)),
                            ("dst", Value::U64(node as u64)),
                            ("retries", Value::U64(retries as u64)),
                        ]),
                    ));
                    out.push(obj(fields));
                }
            }
            EventKind::CircuitReserve {
                node,
                requestor,
                block,
            }
            | EventKind::CircuitConflict {
                node,
                requestor,
                block,
            }
            | EventKind::CircuitConfirm {
                node,
                requestor,
                block,
            }
            | EventKind::CircuitTear {
                node,
                requestor,
                block,
            } => {
                let mut fields = common(e.kind.name(), "i", e.cycle, node as u64);
                fields.push(("cat", s("circuit")));
                fields.push(("s", s("t")));
                fields.push((
                    "args",
                    obj(vec![
                        ("requestor", Value::U64(requestor as u64)),
                        ("block", Value::U64(block)),
                    ]),
                ));
                out.push(obj(fields));
            }
            EventKind::EpochSample {
                circuit_entries,
                buffered_flits,
                ni_backlog,
            } => {
                let mut fields = common("noc_occupancy", "C", e.cycle, 0);
                fields.push((
                    "args",
                    obj(vec![
                        ("circuit_entries", Value::U64(circuit_entries)),
                        ("buffered_flits", Value::U64(buffered_flits)),
                        ("ni_backlog", Value::U64(ni_backlog)),
                    ]),
                ));
                out.push(obj(fields));
            }
            _ => {}
        }
    }
    obj(vec![
        ("traceEvents", Value::Seq(out)),
        ("displayTimeUnit", s("ms")),
        (
            "otherData",
            obj(vec![("timeUnit", s("1 ts = 1 simulated cycle"))]),
        ),
    ])
}

/// [`chrome_trace`] serialized to a JSON string ready to write to disk.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    serde_json::to_string(&chrome_trace(events)).expect("trace document always serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, kind: EventKind) -> TraceEvent {
        TraceEvent { cycle, kind }
    }

    #[test]
    fn packet_becomes_complete_slice() {
        let events = vec![
            ev(
                0,
                EventKind::NiEnqueue {
                    packet: 1,
                    src: 0,
                    dst: 5,
                    class: "L2_Reply",
                },
            ),
            ev(3, EventKind::NiInject { packet: 1, node: 0 }),
            ev(
                23,
                EventKind::NiEject {
                    packet: 1,
                    node: 5,
                    rode_circuit: true,
                    retries: 0,
                },
            ),
        ];
        let doc = chrome_trace(&events);
        let traced = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(traced.len(), 1);
        let slice = &traced[0];
        assert_eq!(slice.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(slice.get("name").unwrap().as_str(), Some("L2_Reply"));
        assert_eq!(slice.get("ts").unwrap().as_u64(), Some(3));
        assert_eq!(slice.get("dur").unwrap().as_u64(), Some(20));
        assert_eq!(slice.get("cat").unwrap().as_str(), Some("circuit"));
    }

    #[test]
    fn samples_become_counters_and_document_parses_back() {
        let events = vec![ev(
            100,
            EventKind::EpochSample {
                circuit_entries: 3,
                buffered_flits: 12,
                ni_backlog: 2,
            },
        )];
        let json = chrome_trace_json(&events);
        let doc: Value = serde_json::from_str(&json).unwrap();
        let traced = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(traced[0].get("ph").unwrap().as_str(), Some("C"));
        let args = traced[0].get("args").unwrap();
        assert_eq!(args.get("buffered_flits").unwrap().as_u64(), Some(12));
    }
}
