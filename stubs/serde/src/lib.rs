//! Offline stand-in for serde: the trait names exist (satisfied by every
//! type via blanket impls) and the derive macros expand to nothing.
pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}
pub mod ser {
    pub use super::Serialize;
}
