//! Shared L2 bank with the directory: owner/sharer tracking, per-line
//! busy states with request queueing (lines stay blocked until the
//! `L1_DATA_ACK` — unless a complete circuit eliminated it, §4.6),
//! forwarding to exclusive owners (with circuit undo, §4.4), invalidation
//! collection and the memory-side miss/replacement flows.

use crate::cache::CacheArray;
use crate::config::ProtocolConfig;
use crate::msg::{Msg, Port, ReqKind};
use rcsim_core::{Cycle, MessageClass, NodeId, Topology};
use rcsim_trace::{EventKind, TraceEvent, TraceSink};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

fn bit(n: NodeId) -> u64 {
    1u64 << n.index()
}

fn nodes_of(mask: u64) -> impl Iterator<Item = NodeId> {
    (0..64u16).filter(move |i| mask & (1 << i) != 0).map(NodeId)
}

/// Why a cached line is blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Busy {
    /// Data reply sent; waiting for the requestor's `L1_DATA_ACK`.
    WaitDataAck {
        requestor: NodeId,
        wb_ack_owed: Option<NodeId>,
    },
    /// Forward sent to the old owner; waiting for the requestor's ack.
    WaitFwdAck {
        requestor: NodeId,
        kind: ReqKind,
        old_owner: NodeId,
        wb_ack_owed: bool,
    },
    /// Invalidations out for a GetX; reply follows the last ack.
    WaitInvAcks { requestor: NodeId, pending: u64 },
    /// The owner re-requested its own line: its write-back is in flight.
    WaitOwnerWb,
    /// The line is being evicted (L1 copies being invalidated) to make
    /// room for `fetch_for`.
    Evicting { pending: u64, fetch_for: u64 },
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct L2Line {
    data: u64,
    dirty: bool,
    owner: Option<NodeId>,
    sharers: u64,
    busy: Option<Busy>,
    queue: VecDeque<Msg>,
}

impl L2Line {
    fn fresh(data: u64) -> Self {
        Self {
            data,
            dirty: false,
            owner: None,
            sharers: 0,
            busy: None,
            queue: VecDeque::new(),
        }
    }
}

/// An in-flight line fetch.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Mshr {
    /// `Some(victim)` while the victim's L1 copies are being invalidated.
    evicting_victim: Option<u64>,
    queue: VecDeque<Msg>,
}

/// Per-bank event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct L2Stats {
    /// Requests served from the bank.
    pub hits: u64,
    /// Requests that missed to memory.
    pub misses: u64,
    /// Requests forwarded to an exclusive owner.
    pub forwards: u64,
    /// Invalidations sent.
    pub invalidations: u64,
    /// Victim lines evicted.
    pub evictions: u64,
    /// Requests that found their line busy and had to queue.
    pub queued_on_busy: u64,
    /// Total cycles requests spent queued on busy lines (the contention
    /// NoAck reduces, §4.6).
    pub busy_wait_cycles: u64,
    /// Replies whose `L1_DATA_ACK` was self-acknowledged thanks to a
    /// committed complete circuit (§4.6).
    pub self_acked: u64,
}

/// One bank of the shared, inclusive L2 cache, holding the directory for
/// the lines it homes.
#[derive(Debug, Clone)]
pub struct L2Bank {
    node: NodeId,
    cfg: ProtocolConfig,
    array: CacheArray<L2Line>,
    mshrs: HashMap<u64, Mshr>,
    /// Victim blocks written back to memory, with requests that must wait
    /// for the `MEMORY` ack before re-fetching them.
    wb_pending: HashMap<u64, VecDeque<Msg>>,
    /// Ways already promised to in-flight fetches, per set index.
    reserved_ways: HashMap<usize, usize>,
    /// Incoming messages delayed by the bank access latency.
    inbox: VecDeque<(Cycle, Msg)>,
    /// Requests that found no evictable victim; retried every cycle.
    stalled: VecDeque<Msg>,
    stats: L2Stats,
    /// Where trace events go; disabled by default.
    sink: TraceSink,
}

impl L2Bank {
    /// An empty bank at `node`.
    ///
    /// # Panics
    ///
    /// Panics for meshes of more than 64 tiles (the sharer set is a
    /// 64-bit mask, enough for the paper's 16- and 64-core chips).
    pub fn new(node: NodeId, topology: Topology, cfg: ProtocolConfig) -> Self {
        assert!(
            topology.nodes() <= 64,
            "sharer bitmask supports up to 64 tiles"
        );
        let array = CacheArray::new(cfg.l2);
        let _ = topology;
        Self {
            node,
            cfg,
            array,
            mshrs: HashMap::new(),
            wb_pending: HashMap::new(),
            reserved_ways: HashMap::new(),
            inbox: VecDeque::new(),
            stalled: VecDeque::new(),
            stats: L2Stats::default(),
            sink: TraceSink::default(),
        }
    }

    /// Installs a trace sink (share one across the chip to get a single
    /// event log). Pass [`TraceSink::Disabled`] to turn tracing back off.
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.sink = sink;
    }

    /// Event counters.
    pub fn stats(&self) -> &L2Stats {
        &self.stats
    }

    /// Zeroes the counters (end of warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = L2Stats::default();
    }

    /// `true` when no transaction is in flight at this bank.
    pub fn is_quiescent(&self) -> bool {
        self.mshrs.is_empty()
            && self.wb_pending.is_empty()
            && self.inbox.is_empty()
            && self.stalled.is_empty()
            && self
                .array
                .iter()
                .all(|(_, l)| l.busy.is_none() && l.queue.is_empty())
    }

    fn set_index(&self, block: u64) -> usize {
        ((block >> self.cfg.l2.index_shift) as usize) & (self.cfg.l2.sets - 1)
    }

    fn proc_latency(&self, class: MessageClass) -> u32 {
        match class {
            MessageClass::L1Request | MessageClass::WbData | MessageClass::MemoryReply => {
                self.cfg.l2_hit_latency
            }
            _ => 1,
        }
    }

    /// Accepts a message addressed to this bank; it takes effect after the
    /// bank access latency (7 cycles for array accesses, 1 for acks).
    pub fn receive(&mut self, msg: Msg, now: Cycle) {
        let ready = now + self.proc_latency(msg.class) as Cycle;
        self.inbox.push_back((ready, msg));
    }

    /// `true` when [`L2Bank::tick`] would do any work at `now`: a message
    /// has become due, or a stalled request needs its every-cycle retry.
    /// Used by the event kernel to skip quiescent banks; a bank for which
    /// this is `false` ticks as a no-op, so skipping it cannot change
    /// observable state.
    pub fn has_due_work(&self, now: Cycle) -> bool {
        !self.stalled.is_empty() || self.inbox.front().is_some_and(|&(ready, _)| ready <= now)
    }

    /// Processes everything that has become due.
    pub fn tick(&mut self, now: Cycle, port: &mut dyn Port) {
        while let Some(&(ready, _)) = self.inbox.front() {
            if ready > now {
                break;
            }
            let (_, msg) = self.inbox.pop_front().expect("front checked");
            self.process(msg, port);
        }
        // Retry requests that previously found no evictable way.
        for _ in 0..self.stalled.len() {
            let msg = self.stalled.pop_front().expect("len checked");
            self.on_request(msg, port);
        }
    }

    fn process(&mut self, msg: Msg, port: &mut dyn Port) {
        match msg.class {
            MessageClass::L1Request => self.on_request(msg, port),
            MessageClass::WbData => self.on_wb_data(msg, port),
            MessageClass::L1DataAck => self.on_data_ack(msg, port),
            MessageClass::L1InvAck => self.on_ack_from(msg.src, msg.block, false, 0, port),
            MessageClass::MemoryReply => self.on_mem_reply(msg, port),
            other => panic!("L2 {} received unexpected {other}", self.node),
        }
    }

    fn on_request(&mut self, msg: Msg, port: &mut dyn Port) {
        let block = msg.block;
        if let Some(mshr) = self.mshrs.get_mut(&block) {
            self.stats.queued_on_busy += 1;
            mshr.queue.push_back(msg);
            return;
        }
        if let Some(q) = self.wb_pending.get_mut(&block) {
            self.stats.queued_on_busy += 1;
            q.push_back(msg);
            return;
        }
        if self.array.peek(block).is_some() {
            let line = self.array.peek_mut(block).expect("peeked");
            if line.busy.is_some() {
                if self.on_duplicate_request(&msg, port) {
                    return;
                }
                let line = self.array.peek_mut(block).expect("peeked");
                self.stats.queued_on_busy += 1;
                line.queue.push_back(msg);
                return;
            }
            self.serve(msg, port);
        } else {
            self.start_fetch(msg, port);
        }
    }

    /// Handles a request for a busy line that duplicates the transaction
    /// the line is busy on — a reissue (DESIGN.md §10) after the original
    /// reply, forward or ack was lost on a dead resource. Queueing such a
    /// request would deadlock (the transaction it waits on can never
    /// finish), so the bank recovers instead. Returns `false` when the
    /// request belongs to a different transaction and must queue normally.
    fn on_duplicate_request(&mut self, msg: &Msg, port: &mut dyn Port) -> bool {
        let block = msg.block;
        let line = self.array.peek_mut(block).expect("caller checked");
        match line.busy {
            Some(Busy::WaitDataAck {
                requestor,
                wb_ack_owed,
            }) if requestor == msg.src => {
                // The data reply (or its ack) was lost: unblock the line
                // and serve the retry from the current directory state.
                line.busy = None;
                if let Some(owner) = wb_ack_owed {
                    port.send(Msg::new(MessageClass::L2WbAck, self.node, owner, block), 1);
                }
                self.serve(*msg, port);
                true
            }
            Some(Busy::WaitFwdAck {
                requestor,
                kind,
                old_owner,
                ..
            }) if requestor == msg.src => {
                // The forward, its L1-to-L1 data, or the requestor's ack
                // was lost: re-send the forward. If the old owner no
                // longer holds the line it answers "not here" and the
                // bank serves the requestor from its own copy.
                self.stats.forwards += 1;
                port.send(
                    Msg::new(MessageClass::FwdRequest, self.node, old_owner, block)
                        .with_req(kind)
                        .with_requestor(requestor),
                    1,
                );
                true
            }
            Some(Busy::WaitInvAcks { requestor, pending }) if requestor == msg.src => {
                // The reply goes out when the last ack lands, but one of
                // the invalidations (or its ack) may be what was lost:
                // re-send to every still-pending sharer. Duplicate
                // invalidations are harmless — an L1 without the line
                // answers with a plain ack, and stale acks are ignored.
                for n in nodes_of(pending) {
                    self.stats.invalidations += 1;
                    port.send(Msg::new(MessageClass::Invalidation, self.node, n, block), 1);
                }
                true
            }
            _ => false,
        }
    }

    /// Serves a request against a present, idle line.
    fn serve(&mut self, msg: Msg, port: &mut dyn Port) {
        let requestor = msg.src;
        let kind = msg.req.expect("L1 requests carry their kind");
        let block = msg.block;
        self.stats.hits += 1;
        self.sink.emit(|| TraceEvent {
            cycle: port.now(),
            kind: EventKind::L2Access {
                node: self.node.0,
                block,
                hit: true,
            },
        });
        let line = self
            .array
            .get_mut(block)
            .expect("serve requires a cached line");

        if line.owner == Some(requestor) {
            if msg.wb_race {
                // The owner's own write-back is racing this request: wait
                // for the data to come home, then serve from the queue.
                line.busy = Some(Busy::WaitOwnerWb);
                line.queue.push_front(msg);
                return;
            }
            // The requestor silently dropped its clean Exclusive copy:
            // the directory record is stale and the L2 data is current.
            line.owner = None;
        }
        if let Some(owner) = line.owner {
            line.busy = Some(Busy::WaitFwdAck {
                requestor,
                kind,
                old_owner: owner,
                wb_ack_owed: false,
            });
            self.stats.forwards += 1;
            port.send(
                Msg::new(MessageClass::FwdRequest, self.node, owner, block)
                    .with_req(kind)
                    .with_requestor(requestor),
                1,
            );
            // The circuit reserved for our reply will never be used (§4.4).
            port.undo_circuit(Msg::circuit_key_for(requestor, block));
            return;
        }

        match kind {
            ReqKind::GetS => {
                let exclusive = line.sharers == 0;
                if exclusive {
                    line.owner = Some(requestor);
                } else {
                    line.sharers |= bit(requestor);
                }
                let data = line.data;
                self.reply_data(requestor, block, data, exclusive, None, port);
            }
            ReqKind::GetX => {
                let others = line.sharers & !bit(requestor);
                if others != 0 {
                    line.busy = Some(Busy::WaitInvAcks {
                        requestor,
                        pending: others,
                    });
                    for n in nodes_of(others) {
                        self.stats.invalidations += 1;
                        port.send(Msg::new(MessageClass::Invalidation, self.node, n, block), 1);
                    }
                } else {
                    line.sharers = 0;
                    line.owner = Some(requestor);
                    let data = line.data;
                    self.reply_data(requestor, block, data, true, None, port);
                }
            }
        }
    }

    /// Sends a data reply and either self-acknowledges (committed complete
    /// circuit + NoAck, §4.6) or blocks the line until the `L1_DATA_ACK`.
    fn reply_data(
        &mut self,
        requestor: NodeId,
        block: u64,
        data: u64,
        exclusive: bool,
        wb_ack_owed: Option<NodeId>,
        port: &mut dyn Port,
    ) {
        let mut reply =
            Msg::new(MessageClass::L2Reply, self.node, requestor, block).with_data(data);
        if exclusive {
            reply = reply.with_exclusive();
        }
        let committed = port.send(reply, 1);
        let line = self.array.peek_mut(block).expect("reply for a cached line");
        if committed && self.cfg.eliminate_acks {
            // Delivery over a complete circuit is guaranteed and ordered:
            // acknowledge on the reply's behalf and unblock immediately.
            self.stats.self_acked += 1;
            port.record_eliminated_ack();
            line.busy = None;
            if let Some(owner) = wb_ack_owed {
                port.send(Msg::new(MessageClass::L2WbAck, self.node, owner, block), 1);
            }
            self.drain_line_queue(block, port);
        } else {
            line.busy = Some(Busy::WaitDataAck {
                requestor,
                wb_ack_owed,
            });
        }
    }

    fn on_data_ack(&mut self, msg: Msg, port: &mut dyn Port) {
        let block = msg.block;
        // Reissued requests can produce duplicate replies, and those
        // duplicate (or late) acks can land after the transaction already
        // resolved — possibly after the line was even evicted. Anything
        // that does not match the ack the line is waiting for is ignored.
        let Some(line) = self.array.peek_mut(block) else {
            return;
        };
        match line.busy {
            Some(Busy::WaitDataAck {
                requestor,
                wb_ack_owed,
            }) if requestor == msg.src => {
                line.busy = None;
                if let Some(owner) = wb_ack_owed {
                    port.send(Msg::new(MessageClass::L2WbAck, self.node, owner, block), 1);
                }
            }
            Some(Busy::WaitFwdAck {
                requestor,
                kind,
                old_owner,
                wb_ack_owed,
            }) if requestor == msg.src => {
                match kind {
                    ReqKind::GetS => {
                        line.owner = None;
                        line.sharers |= bit(old_owner) | bit(requestor);
                    }
                    ReqKind::GetX => {
                        line.owner = Some(requestor);
                        line.sharers = 0;
                    }
                }
                line.busy = None;
                if wb_ack_owed {
                    port.send(
                        Msg::new(MessageClass::L2WbAck, self.node, old_owner, block),
                        1,
                    );
                }
            }
            _ => return, // stale or duplicate ack
        }
        self.drain_line_queue(block, port);
    }

    /// A node answered an invalidation — with a plain ack, or with its
    /// dirty data (`with_data == true`).
    fn on_ack_from(
        &mut self,
        from: NodeId,
        block: u64,
        with_data: bool,
        data: u64,
        port: &mut dyn Port,
    ) {
        let Some(line) = self.array.peek_mut(block) else {
            // The eviction this ack belongs to has already completed (the
            // node answered both with a write-back and a late ack).
            return;
        };
        match line.busy {
            Some(Busy::WaitInvAcks { requestor, pending }) => {
                let pending = pending & !bit(from);
                if with_data {
                    line.data = data;
                    line.dirty = true;
                }
                if pending == 0 {
                    line.sharers = 0;
                    line.owner = Some(requestor);
                    let data = line.data;
                    self.reply_data(requestor, block, data, true, None, port);
                } else {
                    line.busy = Some(Busy::WaitInvAcks { requestor, pending });
                }
            }
            Some(Busy::Evicting { pending, fetch_for }) => {
                let pending = pending & !bit(from);
                if with_data {
                    line.data = data;
                    line.dirty = true;
                }
                if pending == 0 {
                    self.finish_eviction(block, fetch_for, port);
                } else {
                    line.busy = Some(Busy::Evicting { pending, fetch_for });
                }
            }
            Some(Busy::WaitFwdAck {
                requestor,
                kind,
                old_owner,
                wb_ack_owed,
            }) if !with_data && from == old_owner => {
                // The forward found nothing: the owner had silently
                // dropped its clean copy. The L2 data is current — serve
                // the requestor directly.
                debug_assert!(!wb_ack_owed, "a received WB contradicts a stale forward");
                line.owner = None;
                line.busy = None;
                let retry =
                    Msg::new(MessageClass::L1Request, requestor, self.node, block).with_req(kind);
                line.queue.push_front(retry);
                self.drain_line_queue(block, port);
            }
            _ if !with_data => {
                // A stale inv-ack from a silent-drop race: ignore.
            }
            ref other => panic!(
                "L2 {} inv response for line {block:#x} in state {other:?}",
                self.node
            ),
        }
    }

    fn on_wb_data(&mut self, msg: Msg, port: &mut dyn Port) {
        let block = msg.block;
        let from = msg.src;
        let Some(line) = self.array.peek_mut(block) else {
            panic!(
                "L2 {} write-back for absent line {block:#x} (inclusion violated)",
                self.node
            );
        };
        match line.busy {
            // A write-back is only *current* while the directory still
            // regards the writer as the owner; anything else is a stale
            // WB that lost a race to an ownership transfer — its data
            // must be discarded (the line has moved on), but the writer's
            // WB buffer still needs its ack (final catch-all arm).
            None if line.owner == Some(from) => {
                line.data = msg.data;
                line.dirty = true;
                line.owner = None;
                port.send(Msg::new(MessageClass::L2WbAck, self.node, from, block), 1);
            }
            Some(Busy::WaitOwnerWb) if line.owner == Some(from) => {
                line.data = msg.data;
                line.dirty = true;
                line.owner = None;
                line.busy = None;
                port.send(Msg::new(MessageClass::L2WbAck, self.node, from, block), 1);
                self.drain_line_queue(block, port);
            }
            Some(Busy::WaitFwdAck {
                requestor,
                kind,
                old_owner,
                ..
            }) if old_owner == from => {
                // Either the owner's eviction racing our forward, or the
                // dirty-downgrade sync of a GetS forward. Absorb the data;
                // the WB ack is deferred until the forward completes so the
                // owner can still serve the forward from its WB buffer.
                line.data = msg.data;
                line.dirty = true;
                line.busy = Some(Busy::WaitFwdAck {
                    requestor,
                    kind,
                    old_owner,
                    wb_ack_owed: true,
                });
            }
            Some(Busy::WaitDataAck {
                requestor,
                wb_ack_owed,
            }) if requestor == from => {
                // The new owner evicted before its ack arrived (reply-VN /
                // request-VN reordering). Absorb and defer the WB ack.
                debug_assert!(wb_ack_owed.is_none());
                line.data = msg.data;
                line.dirty = true;
                if line.owner == Some(from) {
                    line.owner = None;
                }
                line.busy = Some(Busy::WaitDataAck {
                    requestor,
                    wb_ack_owed: Some(from),
                });
            }
            Some(Busy::Evicting { pending, .. }) | Some(Busy::WaitInvAcks { pending, .. })
                if pending & bit(from) != 0 =>
            {
                // Dirty data arriving as the response to an invalidation.
                port.send(Msg::new(MessageClass::L2WbAck, self.node, from, block), 1);
                self.on_ack_from(from, block, true, msg.data, port);
            }
            _ => {
                // Stale write-back (ownership already moved on): discard
                // the data, release the writer's WB buffer.
                port.send(Msg::new(MessageClass::L2WbAck, self.node, from, block), 1);
            }
        }
    }

    fn drain_line_queue(&mut self, block: u64, port: &mut dyn Port) {
        loop {
            let Some(line) = self.array.peek_mut(block) else {
                return;
            };
            if line.busy.is_some() {
                return;
            }
            let Some(msg) = line.queue.pop_front() else {
                return;
            };
            self.stats.busy_wait_cycles += 1;
            self.serve(msg, port);
        }
    }

    /// Begins fetching an absent line from memory, evicting a victim if
    /// the set is full.
    fn start_fetch(&mut self, msg: Msg, port: &mut dyn Port) {
        let block = msg.block;
        self.stats.misses += 1;
        self.sink.emit(|| TraceEvent {
            cycle: port.now(),
            kind: EventKind::L2Access {
                node: self.node.0,
                block,
                hit: false,
            },
        });
        if self.cfg.undo_on_l2_miss {
            // §4.4 ablation: release the circuit while the request goes to
            // memory (the paper found keeping it performs better).
            port.undo_circuit(Msg::circuit_key_for(msg.src, block));
        }
        let set = self.set_index(block);
        let reserved = self.reserved_ways.get(&set).copied().unwrap_or(0);
        if self.array.free_ways(block) > reserved {
            *self.reserved_ways.entry(set).or_insert(0) += 1;
            self.mshrs.insert(
                block,
                Mshr {
                    evicting_victim: None,
                    queue: VecDeque::from([msg]),
                },
            );
            self.fetch_from_memory(block, port);
            return;
        }
        // Pick a victim. Preference order: (1) the PLRU choice if idle and
        // without L1 copies, (2) any idle line without L1 copies — this
        // avoids inclusion victims, i.e. invalidating lines that are hot
        // in an L1 but invisible to the L2's recency — then (3) the idle
        // PLRU choice, (4) any idle line.
        let victim = {
            let plru = self.array.victim_for(block);
            let idle = |b: &u64| {
                self.array
                    .peek(*b)
                    .is_some_and(|l| l.busy.is_none() && l.queue.is_empty())
            };
            let uncopied = |b: &u64| {
                self.array
                    .peek(*b)
                    .is_some_and(|l| l.sharers == 0 && l.owner.is_none())
            };
            plru.filter(|b| idle(b) && uncopied(b))
                .or_else(|| {
                    self.array
                        .set_blocks(block)
                        .into_iter()
                        .find(|b| idle(b) && uncopied(b))
                })
                .or_else(|| plru.filter(idle))
                .or_else(|| self.array.set_blocks(block).into_iter().find(idle))
        };
        let Some(victim) = victim else {
            // Every line in the set is mid-transaction: retry next cycle.
            self.stats.misses -= 1;
            self.stalled.push_back(msg);
            return;
        };
        self.stats.evictions += 1;
        let vline = self.array.peek_mut(victim).expect("victim cached");
        let copies = vline.sharers | vline.owner.map_or(0, bit);
        if copies == 0 {
            // No L1 copies: evict immediately.
            self.mshrs.insert(
                block,
                Mshr {
                    evicting_victim: None,
                    queue: VecDeque::from([msg]),
                },
            );
            *self.reserved_ways.entry(set).or_insert(0) += 1;
            self.drop_victim(victim, port);
            self.fetch_from_memory(block, port);
        } else {
            vline.busy = Some(Busy::Evicting {
                pending: copies,
                fetch_for: block,
            });
            self.mshrs.insert(
                block,
                Mshr {
                    evicting_victim: Some(victim),
                    queue: VecDeque::from([msg]),
                },
            );
            for n in nodes_of(copies) {
                self.stats.invalidations += 1;
                port.send(
                    Msg::new(MessageClass::Invalidation, self.node, n, victim),
                    1,
                );
            }
        }
    }

    /// Removes a victim whose L1 copies are gone, writing dirty data back
    /// to memory.
    fn drop_victim(&mut self, victim: u64, port: &mut dyn Port) {
        let line = self.array.remove(victim).expect("victim cached");
        if line.dirty {
            self.wb_pending.insert(victim, VecDeque::new());
            port.send(
                Msg::new(
                    MessageClass::MemWbData,
                    self.node,
                    self.cfg.memory_controller(victim),
                    victim,
                )
                .with_data(line.data),
                self.cfg.mem_latency,
            );
        }
    }

    fn finish_eviction(&mut self, victim: u64, fetch_for: u64, port: &mut dyn Port) {
        let set = self.set_index(fetch_for);
        *self.reserved_ways.entry(set).or_insert(0) += 1;
        self.drop_victim(victim, port);
        let mshr = self
            .mshrs
            .get_mut(&fetch_for)
            .expect("fetch waiting on eviction");
        mshr.evicting_victim = None;
        self.fetch_from_memory(fetch_for, port);
    }

    fn fetch_from_memory(&mut self, block: u64, port: &mut dyn Port) {
        port.send(
            Msg::new(
                MessageClass::MemRequest,
                self.node,
                self.cfg.memory_controller(block),
                block,
            ),
            self.cfg.mem_latency,
        );
    }

    fn on_mem_reply(&mut self, msg: Msg, port: &mut dyn Port) {
        let block = msg.block;
        if let Some(mshr) = self.mshrs.remove(&block) {
            debug_assert!(mshr.evicting_victim.is_none(), "fetch before eviction done");
            let set = self.set_index(block);
            let r = self.reserved_ways.get_mut(&set).expect("way was reserved");
            *r -= 1;
            if *r == 0 {
                self.reserved_ways.remove(&set);
            }
            let evicted = self.array.insert(block, L2Line::fresh(msg.data));
            assert!(evicted.is_none(), "reserved way was taken");
            for msg in mshr.queue {
                self.on_request(msg, port);
            }
        } else if let Some(waiters) = self.wb_pending.remove(&block) {
            // The MEMORY ack for a victim write-back; deferred requests
            // can now re-fetch the block.
            for msg in waiters {
                self.on_request(msg, port);
            }
        } else {
            // A duplicate memory reply (a retransmitted fetch raced the
            // original): the fetch already resolved, nothing to do.
        }
    }

    /// Directory view of a block, for invariant checks:
    /// `(owner, sharer_mask)` when cached.
    pub fn probe(&self, block: u64) -> Option<(Option<NodeId>, u64)> {
        self.array.peek(block).map(|l| (l.owner, l.sharers))
    }

    /// The full dynamic state, for checkpointing (the configuration and
    /// trace sink are rebuilt by the caller on resume).
    pub fn snapshot(&self) -> L2Snapshot {
        let mut mshrs: Vec<(u64, Mshr)> = self.mshrs.iter().map(|(&b, m)| (b, m.clone())).collect();
        mshrs.sort_unstable_by_key(|&(b, _)| b);
        let mut wb_pending: Vec<(u64, VecDeque<Msg>)> = self
            .wb_pending
            .iter()
            .map(|(&b, q)| (b, q.clone()))
            .collect();
        wb_pending.sort_unstable_by_key(|&(b, _)| b);
        let mut reserved_ways: Vec<(usize, usize)> =
            self.reserved_ways.iter().map(|(&s, &n)| (s, n)).collect();
        reserved_ways.sort_unstable();
        L2Snapshot {
            array: self.array.clone(),
            mshrs,
            wb_pending,
            reserved_ways,
            inbox: self.inbox.clone(),
            stalled: self.stalled.clone(),
            stats: self.stats,
        }
    }

    /// Overwrites the dynamic state from an [`L2Bank::snapshot`] taken
    /// on an identically-configured bank.
    pub fn restore(&mut self, snap: L2Snapshot) {
        self.array = snap.array;
        self.mshrs = snap.mshrs.into_iter().collect();
        self.wb_pending = snap.wb_pending.into_iter().collect();
        self.reserved_ways = snap.reserved_ways.into_iter().collect();
        self.inbox = snap.inbox;
        self.stalled = snap.stalled;
        self.stats = snap.stats;
    }
}

/// Complete dynamic state of one [`L2Bank`], for checkpointing. Hash
/// maps are stored as sorted vectors so the serialized form is
/// deterministic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct L2Snapshot {
    array: CacheArray<L2Line>,
    mshrs: Vec<(u64, Mshr)>,
    wb_pending: Vec<(u64, VecDeque<Msg>)>,
    reserved_ways: Vec<(usize, usize)>,
    inbox: VecDeque<(Cycle, Msg)>,
    stalled: VecDeque<Msg>,
    stats: L2Stats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcsim_core::circuit::CircuitKey;

    struct TestPort {
        now: Cycle,
        sent: Vec<Msg>,
        commit_replies: bool,
        undone: Vec<CircuitKey>,
        eliminated: u64,
    }

    impl TestPort {
        fn new() -> Self {
            Self {
                now: 0,
                sent: Vec::new(),
                commit_replies: false,
                undone: Vec::new(),
                eliminated: 0,
            }
        }
        fn take(&mut self) -> Vec<Msg> {
            std::mem::take(&mut self.sent)
        }
    }

    impl Port for TestPort {
        fn now(&self) -> Cycle {
            self.now
        }
        fn send(&mut self, msg: Msg, _turnaround: u32) -> bool {
            let commit = self.commit_replies && msg.class == MessageClass::L2Reply;
            self.sent.push(msg);
            commit
        }
        fn undo_circuit(&mut self, key: CircuitKey) {
            self.undone.push(key);
        }
        fn record_eliminated_ack(&mut self) {
            self.eliminated += 1;
        }
    }

    fn bank() -> (L2Bank, TestPort) {
        let mesh: Topology = rcsim_core::Mesh::new(4, 4).unwrap().into();
        let cfg = ProtocolConfig::small_for_tests(&mesh);
        (L2Bank::new(NodeId(0), mesh, cfg), TestPort::new())
    }

    /// Runs the bank until its inbox is empty.
    fn settle(l2: &mut L2Bank, p: &mut TestPort) {
        for _ in 0..50 {
            p.now += 1;
            l2.tick(p.now, p);
        }
    }

    fn gets(from: u16, block: u64) -> Msg {
        Msg::new(MessageClass::L1Request, NodeId(from), NodeId(0), block).with_req(ReqKind::GetS)
    }

    fn getx(from: u16, block: u64) -> Msg {
        Msg::new(MessageClass::L1Request, NodeId(from), NodeId(0), block).with_req(ReqKind::GetX)
    }

    fn ack(from: u16, block: u64) -> Msg {
        Msg::new(MessageClass::L1DataAck, NodeId(from), NodeId(0), block)
    }

    fn mem_reply(l2: &L2Bank, block: u64, data: u64) -> Msg {
        Msg::new(
            MessageClass::MemoryReply,
            l2.cfg.memory_controller(block),
            NodeId(0),
            block,
        )
        .with_data(data)
    }

    /// Cold GetS: fetch from memory, exclusive grant, ack unblocks.
    #[test]
    fn cold_miss_goes_to_memory_and_grants_exclusive() {
        let (mut l2, mut p) = bank();
        l2.receive(gets(3, 0x100), 0);
        settle(&mut l2, &mut p);
        let sent = p.take();
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].class, MessageClass::MemRequest);
        assert_eq!(l2.stats().misses, 1);

        l2.receive(mem_reply(&l2, 0x100, 42), p.now);
        settle(&mut l2, &mut p);
        let sent = p.take();
        assert_eq!(sent.len(), 1);
        let r = &sent[0];
        assert_eq!(
            (r.class, r.dst, r.data),
            (MessageClass::L2Reply, NodeId(3), 42)
        );
        assert!(r.exclusive, "sole requestor gets Exclusive");
        assert_eq!(l2.probe(0x100), Some((Some(NodeId(3)), 0)));

        // Line is busy until the ack.
        l2.receive(gets(5, 0x100), p.now);
        settle(&mut l2, &mut p);
        assert!(
            p.take().is_empty(),
            "second request queues behind the busy line"
        );
        l2.receive(ack(3, 0x100), p.now);
        settle(&mut l2, &mut p);
        // Now the queued GetS is served: owner 3 gets a forward.
        let sent = p.take();
        assert_eq!(sent[0].class, MessageClass::FwdRequest);
        assert_eq!(sent[0].dst, NodeId(3));
        assert_eq!(sent[0].requestor, Some(NodeId(5)));
        assert_eq!(p.undone, vec![Msg::circuit_key_for(NodeId(5), 0x100)]);
    }

    #[test]
    fn second_sharer_gets_shared_data() {
        let (mut l2, mut p) = bank();
        l2.receive(gets(3, 0x100), 0);
        settle(&mut l2, &mut p);
        l2.receive(mem_reply(&l2, 0x100, 1), p.now);
        settle(&mut l2, &mut p);
        l2.receive(ack(3, 0x100), p.now);
        settle(&mut l2, &mut p);
        p.take();

        // Forward flow: 5 requests, 3 owns E.
        l2.receive(gets(5, 0x100), p.now);
        settle(&mut l2, &mut p);
        p.take();
        // Requestor 5 acks after receiving L1_TO_L1.
        l2.receive(ack(5, 0x100), p.now);
        settle(&mut l2, &mut p);
        assert_eq!(
            l2.probe(0x100),
            Some((None, bit(NodeId(3)) | bit(NodeId(5))))
        );

        // A third GetS is now served directly from the bank, Shared.
        l2.receive(gets(7, 0x100), p.now);
        settle(&mut l2, &mut p);
        let sent = p.take();
        assert_eq!(sent[0].class, MessageClass::L2Reply);
        assert!(!sent[0].exclusive);
    }

    #[test]
    fn getx_invalidates_sharers_then_replies() {
        let (mut l2, mut p) = bank();
        // Install sharers 3 and 5 (via cold fetch + downgrades shortcut:
        // drive the protocol messages directly).
        l2.receive(gets(3, 0x100), 0);
        settle(&mut l2, &mut p);
        l2.receive(mem_reply(&l2, 0x100, 1), p.now);
        settle(&mut l2, &mut p);
        l2.receive(ack(3, 0x100), p.now);
        settle(&mut l2, &mut p);
        l2.receive(gets(5, 0x100), p.now);
        settle(&mut l2, &mut p);
        l2.receive(ack(5, 0x100), p.now);
        settle(&mut l2, &mut p);
        p.take();

        // Node 7 writes: sharers 3 and 5 must be invalidated first.
        l2.receive(getx(7, 0x100), p.now);
        settle(&mut l2, &mut p);
        let sent = p.take();
        let invs: Vec<_> = sent
            .iter()
            .filter(|m| m.class == MessageClass::Invalidation)
            .map(|m| m.dst)
            .collect();
        assert_eq!(invs.len(), 2);
        assert!(invs.contains(&NodeId(3)) && invs.contains(&NodeId(5)));
        assert!(
            !sent.iter().any(|m| m.class == MessageClass::L2Reply),
            "reply waits for the acks"
        );

        l2.receive(
            Msg::new(MessageClass::L1InvAck, NodeId(3), NodeId(0), 0x100),
            p.now,
        );
        settle(&mut l2, &mut p);
        assert!(p.take().is_empty());
        l2.receive(
            Msg::new(MessageClass::L1InvAck, NodeId(5), NodeId(0), 0x100),
            p.now,
        );
        settle(&mut l2, &mut p);
        let sent = p.take();
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].class, MessageClass::L2Reply);
        assert!(sent[0].exclusive);
        l2.receive(ack(7, 0x100), p.now);
        settle(&mut l2, &mut p);
        assert_eq!(l2.probe(0x100), Some((Some(NodeId(7)), 0)));
    }

    #[test]
    fn noack_self_acknowledges_committed_replies() {
        let (mut l2, mut p) = bank();
        l2.cfg.eliminate_acks = true;
        p.commit_replies = true;
        l2.receive(gets(3, 0x100), 0);
        settle(&mut l2, &mut p);
        l2.receive(mem_reply(&l2, 0x100, 1), p.now);
        settle(&mut l2, &mut p);
        p.take();
        assert_eq!(p.eliminated, 1);
        assert_eq!(l2.stats().self_acked, 1);
        // Line is immediately serviceable — no ack needed.
        l2.receive(gets(5, 0x100), p.now);
        settle(&mut l2, &mut p);
        let sent = p.take();
        assert_eq!(
            sent[0].class,
            MessageClass::FwdRequest,
            "line was not blocked"
        );
    }

    #[test]
    fn writeback_absorbed_and_acked() {
        let (mut l2, mut p) = bank();
        l2.receive(gets(3, 0x100), 0);
        settle(&mut l2, &mut p);
        l2.receive(mem_reply(&l2, 0x100, 1), p.now);
        settle(&mut l2, &mut p);
        l2.receive(ack(3, 0x100), p.now);
        settle(&mut l2, &mut p);
        p.take();

        let wb = Msg::new(MessageClass::WbData, NodeId(3), NodeId(0), 0x100).with_data(99);
        l2.receive(wb, p.now);
        settle(&mut l2, &mut p);
        let sent = p.take();
        assert_eq!(sent.len(), 1);
        assert_eq!(
            (sent[0].class, sent[0].dst),
            (MessageClass::L2WbAck, NodeId(3))
        );
        assert_eq!(l2.probe(0x100), Some((None, 0)));
    }

    #[test]
    fn owner_rerequest_waits_for_its_writeback() {
        let (mut l2, mut p) = bank();
        // 3 owns 0x100 exclusively.
        l2.receive(gets(3, 0x100), 0);
        settle(&mut l2, &mut p);
        l2.receive(mem_reply(&l2, 0x100, 1), p.now);
        settle(&mut l2, &mut p);
        l2.receive(ack(3, 0x100), p.now);
        settle(&mut l2, &mut p);
        p.take();

        // 3 evicted it (dirty) and re-requests; the GetS overtook the
        // WbData, and says so.
        l2.receive(gets(3, 0x100).with_wb_race(), p.now);
        settle(&mut l2, &mut p);
        assert!(p.take().is_empty(), "bank waits for the write-back");

        let wb = Msg::new(MessageClass::WbData, NodeId(3), NodeId(0), 0x100).with_data(7);
        l2.receive(wb, p.now);
        settle(&mut l2, &mut p);
        let sent = p.take();
        let classes: Vec<_> = sent.iter().map(|m| m.class).collect();
        assert!(classes.contains(&MessageClass::L2WbAck));
        let reply = sent
            .iter()
            .find(|m| m.class == MessageClass::L2Reply)
            .unwrap();
        assert_eq!(reply.data, 7, "re-fetch sees the written-back data");
    }

    #[test]
    fn eviction_invalidates_l1_copies_before_reuse() {
        let (mut l2, mut p) = bank();
        // Fill all 8 ways of set 0 with owned lines (blocks ≡ 0 mod 64).
        let set_stride = (l2.cfg.l2.sets as u64) << l2.cfg.l2.index_shift;
        for i in 0..8u64 {
            let b = 0x1000 + i * set_stride;
            l2.receive(gets((i + 1) as u16, b), p.now);
            settle(&mut l2, &mut p);
            l2.receive(mem_reply(&l2, b, i), p.now);
            settle(&mut l2, &mut p);
            l2.receive(ack((i + 1) as u16, b), p.now);
            settle(&mut l2, &mut p);
        }
        p.take();
        // A ninth block in the same set forces an eviction.
        let b9 = 0x1000 + 8 * set_stride;
        l2.receive(gets(12, b9), p.now);
        settle(&mut l2, &mut p);
        let sent = p.take();
        let inv = sent
            .iter()
            .find(|m| m.class == MessageClass::Invalidation)
            .unwrap();
        assert!(
            !sent.iter().any(|m| m.class == MessageClass::MemRequest),
            "fetch must wait until the victim's L1 copy is invalidated"
        );
        // The owner answers (clean): eviction completes, fetch proceeds.
        let victim = inv.block;
        let owner = inv.dst;
        l2.receive(
            Msg::new(MessageClass::L1InvAck, owner, NodeId(0), victim),
            p.now,
        );
        settle(&mut l2, &mut p);
        let sent = p.take();
        assert!(sent
            .iter()
            .any(|m| m.class == MessageClass::MemRequest && m.block == b9));
        assert!(l2.probe(victim).is_none());
    }

    #[test]
    fn silent_drop_rerequest_served_directly() {
        let (mut l2, mut p) = bank();
        l2.receive(gets(3, 0x100), 0);
        settle(&mut l2, &mut p);
        l2.receive(mem_reply(&l2, 0x100, 9), p.now);
        settle(&mut l2, &mut p);
        l2.receive(ack(3, 0x100), p.now);
        settle(&mut l2, &mut p);
        p.take();
        // 3 silently dropped its clean Exclusive copy and asks again
        // (no wb_race flag): the bank serves from its current data.
        l2.receive(gets(3, 0x100), p.now);
        settle(&mut l2, &mut p);
        let sent = p.take();
        let r = sent
            .iter()
            .find(|m| m.class == MessageClass::L2Reply)
            .unwrap();
        assert_eq!(r.data, 9);
        assert!(r.exclusive);
    }

    #[test]
    fn stale_forward_recovers_from_l2_copy() {
        let (mut l2, mut p) = bank();
        l2.receive(gets(3, 0x100), 0);
        settle(&mut l2, &mut p);
        l2.receive(mem_reply(&l2, 0x100, 9), p.now);
        settle(&mut l2, &mut p);
        l2.receive(ack(3, 0x100), p.now);
        settle(&mut l2, &mut p);
        p.take();
        // 5 requests; the bank forwards to owner 3, which has silently
        // dropped the line and answers with an inv-ack "not here".
        l2.receive(gets(5, 0x100), p.now);
        settle(&mut l2, &mut p);
        assert!(p.take().iter().any(|m| m.class == MessageClass::FwdRequest));
        l2.receive(
            Msg::new(MessageClass::L1InvAck, NodeId(3), NodeId(0), 0x100),
            p.now,
        );
        settle(&mut l2, &mut p);
        let sent = p.take();
        let r = sent
            .iter()
            .find(|m| m.class == MessageClass::L2Reply)
            .unwrap();
        assert_eq!((r.dst, r.data), (NodeId(5), 9));
    }

    #[test]
    fn duplicate_request_during_wait_data_ack_reserves_again() {
        let (mut l2, mut p) = bank();
        l2.receive(gets(3, 0x100), 0);
        settle(&mut l2, &mut p);
        l2.receive(mem_reply(&l2, 0x100, 42), p.now);
        settle(&mut l2, &mut p);
        let first = p.take();
        assert!(first.iter().any(|m| m.class == MessageClass::L2Reply));

        // The reply was lost on a dead link; after the timeout the L1
        // reissues. The bank must serve again, not queue behind an ack
        // that will never come.
        l2.receive(gets(3, 0x100), p.now);
        settle(&mut l2, &mut p);
        let sent = p.take();
        let replies: Vec<_> = sent
            .iter()
            .filter(|m| m.class == MessageClass::L2Reply)
            .collect();
        assert_eq!(replies.len(), 1, "retry re-served: {sent:?}");
        assert_eq!(replies[0].dst, NodeId(3));
        assert_eq!(replies[0].data, 42);
        // The eventual ack resolves the line normally.
        l2.receive(ack(3, 0x100), p.now);
        settle(&mut l2, &mut p);
        assert!(l2.is_quiescent());
    }

    #[test]
    fn duplicate_request_during_wait_fwd_ack_resends_forward() {
        let (mut l2, mut p) = bank();
        // 3 owns the line exclusively.
        l2.receive(gets(3, 0x100), 0);
        settle(&mut l2, &mut p);
        l2.receive(mem_reply(&l2, 0x100, 9), p.now);
        settle(&mut l2, &mut p);
        l2.receive(ack(3, 0x100), p.now);
        settle(&mut l2, &mut p);
        // 5 requests; the forward goes to 3.
        l2.receive(gets(5, 0x100), p.now);
        settle(&mut l2, &mut p);
        p.take();

        // The forward (or its data) was lost; 5 reissues.
        l2.receive(gets(5, 0x100), p.now);
        settle(&mut l2, &mut p);
        let sent = p.take();
        let fwds: Vec<_> = sent
            .iter()
            .filter(|m| m.class == MessageClass::FwdRequest)
            .collect();
        assert_eq!(fwds.len(), 1, "forward re-sent: {sent:?}");
        assert_eq!(fwds[0].dst, NodeId(3));
        assert_eq!(fwds[0].requestor, Some(NodeId(5)));
        // Old owner answers, requestor acks: transaction completes.
        l2.receive(
            Msg::new(MessageClass::L1InvAck, NodeId(3), NodeId(0), 0x100),
            p.now,
        );
        settle(&mut l2, &mut p);
        l2.receive(ack(5, 0x100), p.now);
        settle(&mut l2, &mut p);
        assert!(l2.is_quiescent());
    }

    #[test]
    fn duplicate_request_during_wait_inv_acks_resends_invalidations() {
        let (mut l2, mut p) = bank();
        // Install sharers 3 and 5.
        l2.receive(gets(3, 0x100), 0);
        settle(&mut l2, &mut p);
        l2.receive(mem_reply(&l2, 0x100, 1), p.now);
        settle(&mut l2, &mut p);
        l2.receive(ack(3, 0x100), p.now);
        settle(&mut l2, &mut p);
        l2.receive(gets(5, 0x100), p.now);
        settle(&mut l2, &mut p);
        l2.receive(ack(5, 0x100), p.now);
        settle(&mut l2, &mut p);
        // 7 writes; invalidations go out to 3 and 5.
        l2.receive(getx(7, 0x100), p.now);
        settle(&mut l2, &mut p);
        p.take();

        // 7 reissues while the acks are still collecting: the pending
        // invalidations are re-sent (one of them may be what was lost),
        // but no reply or new transaction starts.
        l2.receive(getx(7, 0x100), p.now);
        settle(&mut l2, &mut p);
        let resent = p.take();
        assert_eq!(resent.len(), 2, "{resent:?}");
        assert!(resent.iter().all(|m| m.class == MessageClass::Invalidation));

        // The collection still completes and replies exactly once.
        l2.receive(
            Msg::new(MessageClass::L1InvAck, NodeId(3), NodeId(0), 0x100),
            p.now,
        );
        l2.receive(
            Msg::new(MessageClass::L1InvAck, NodeId(5), NodeId(0), 0x100),
            p.now,
        );
        settle(&mut l2, &mut p);
        let sent = p.take();
        assert_eq!(
            sent.iter()
                .filter(|m| m.class == MessageClass::L2Reply)
                .count(),
            1
        );
        l2.receive(ack(7, 0x100), p.now);
        settle(&mut l2, &mut p);
        assert!(l2.is_quiescent());
    }

    #[test]
    fn stale_acks_and_duplicate_memory_replies_are_ignored() {
        let (mut l2, mut p) = bank();
        // Ack for a block the bank has never seen: no panic, no effect.
        l2.receive(ack(3, 0x200), 0);
        settle(&mut l2, &mut p);
        assert!(p.take().is_empty());

        // Idle line + stale ack from an old transaction: ignored.
        l2.receive(gets(3, 0x100), p.now);
        settle(&mut l2, &mut p);
        l2.receive(mem_reply(&l2, 0x100, 1), p.now);
        settle(&mut l2, &mut p);
        l2.receive(ack(3, 0x100), p.now);
        settle(&mut l2, &mut p);
        p.take();
        l2.receive(ack(3, 0x100), p.now);
        settle(&mut l2, &mut p);
        assert!(p.take().is_empty());

        // Duplicate memory reply after the fetch resolved: ignored.
        l2.receive(mem_reply(&l2, 0x100, 77), p.now);
        settle(&mut l2, &mut p);
        assert!(p.take().is_empty());
        assert!(l2.is_quiescent());
    }

    #[test]
    fn undo_on_l2_miss_ablation() {
        let (mut l2, mut p) = bank();
        l2.cfg.undo_on_l2_miss = true;
        l2.receive(gets(3, 0x100), 0);
        settle(&mut l2, &mut p);
        assert_eq!(p.undone, vec![Msg::circuit_key_for(NodeId(3), 0x100)]);
    }
}
