//! Differential and edge-case layer for the adaptive runtime policies
//! (DESIGN.md §14).
//!
//! Two obligations, mirroring the `kernel_diff` matrix:
//!
//! * **Off-path**: with `adaptive: None` — the default — the policy
//!   hooks must be invisible. Serialized configs must not mention the
//!   field (cache keys and goldens predate it), and full runs must stay
//!   byte-identical across the (kernel × shard) matrix on mesh and
//!   torus, trace streams included.
//! * **On-path**: with the controller enabled the simulation is still a
//!   deterministic function of the config — bit-reproducible across
//!   repeated runs and invariant to `RC_KERNEL` and `RC_SHARDS`, which
//!   is what pins the controller to the serial tick prologue.
//!
//! Plus the epoch edge cases: decision epochs that do not divide the run
//! length, all-idle regions (sampling must not perturb), a fault onset
//! landing exactly on a decision tick, and decisions spanning the
//! warm-up/measure stats reset.

use rcsim_core::MechanismConfig;
use rcsim_system::{
    run_sim_traced_with, run_sim_with, AdaptiveConfig, DeadLinkEvent, KernelMode, SimConfig,
    TraceConfig,
};

fn quick(cores: u16, mechanism: MechanismConfig) -> SimConfig {
    SimConfig {
        seed: 0xADA9,
        warmup_cycles: 500,
        measure_cycles: 2_500,
        ..SimConfig::quick(cores, mechanism, "blackscholes")
    }
}

/// Aggressive knobs for the quick coherence workloads: thresholds low
/// enough that ordinary L1 miss traffic heats regions and dwell short
/// enough that they also cool, so detours, suppression and teardowns all
/// fire inside a 3 000-cycle run.
fn aggressive() -> AdaptiveConfig {
    AdaptiveConfig {
        decision_epoch: 40,
        regions: 4,
        hot_enter: 96,
        hot_exit: 48,
        min_dwell: 80,
        detour: true,
        mech_switch: true,
    }
}

fn trace_cfg() -> TraceConfig {
    TraceConfig {
        capacity: 1 << 20,
        epoch: 0,
    }
}

/// Runs `cfg` traced across the (kernel × shards) matrix and asserts
/// every serialized report *and* trace-event sequence is identical to
/// the dense serial reference. Returns the reference run.
fn assert_traced_matrix_agrees(
    cfg: &SimConfig,
    label: &str,
) -> (rcsim_system::RunResult, Vec<rcsim_trace::TraceEvent>) {
    let trace = trace_cfg();
    let (reference, reference_tr) =
        run_sim_traced_with(cfg, &trace, KernelMode::Dense, 1).expect("dense serial run");
    let reference_json = serde_json::to_string(&reference).expect("serialize reference");
    for kernel in [KernelMode::Dense, KernelMode::Event] {
        for shards in [1usize, 4] {
            if kernel == KernelMode::Dense && shards == 1 {
                continue;
            }
            let (run, tr) = run_sim_traced_with(cfg, &trace, kernel, shards).expect("matrix run");
            assert_eq!(
                reference_json,
                serde_json::to_string(&run).expect("serialize run"),
                "{kernel:?} × {shards} shards diverged from the dense serial \
                 reference on {label}"
            );
            assert_eq!(
                reference_tr.events, tr.events,
                "trace-event sequences diverged at {kernel:?} × {shards} on {label}"
            );
        }
    }
    (reference, reference_tr.events)
}

/// The `adaptive` field must be absent from serialized configs when off
/// (cache keys and goldens predate the field) and present when set.
#[test]
fn serialized_config_omits_adaptive_when_off() {
    let cfg = quick(16, MechanismConfig::complete());
    let json = serde_json::to_string(&cfg).expect("serialize config");
    assert!(
        !json.contains("adaptive"),
        "adaptive-off config leaks the field: {json}"
    );
    let round: SimConfig = serde_json::from_str(&json).expect("deserialize config");
    assert_eq!(round, cfg, "config round-trip changed the value");

    let mut on = cfg;
    on.adaptive = Some(AdaptiveConfig::default());
    let json = serde_json::to_string(&on).expect("serialize config");
    assert!(
        json.contains("adaptive"),
        "adaptive-on config lost the field"
    );
    let round: SimConfig = serde_json::from_str(&json).expect("deserialize config");
    assert_eq!(round, on, "adaptive config round-trip changed the value");
}

/// Adaptive absent: the full traced (kernel × shards) matrix must stay
/// byte-identical on mesh and torus with the policy hooks compiled in.
#[test]
fn adaptive_off_matrix_is_byte_identical() {
    use rcsim_core::TopologySpec;
    for spec in [TopologySpec::Mesh, TopologySpec::Torus] {
        let cfg = quick(16, MechanismConfig::complete()).with_topology(spec);
        let (run, events) = assert_traced_matrix_agrees(
            &cfg,
            &format!("adaptive off, complete @ 16 cores on {}", spec.label()),
        );
        assert_eq!(
            run.health.adaptive,
            Default::default(),
            "adaptive counters must stay zero when the policy is off"
        );
        assert!(
            !events.iter().any(|e| e.kind.name() == "policy_switch"),
            "policy events emitted with the policy off"
        );
    }
}

/// Adaptive on: the run is bit-reproducible and (kernel × shard)
/// invariant, the controller actually fires (decisions, switches in both
/// directions, suppressed circuits), and every switch appears in the
/// trace stream.
#[test]
fn adaptive_on_is_reproducible_and_matrix_invariant() {
    use rcsim_core::TopologySpec;
    for spec in [TopologySpec::Mesh, TopologySpec::Torus] {
        let mut cfg = quick(16, MechanismConfig::complete()).with_topology(spec);
        // No warm-up: events before the stats reset are drained from the
        // trace, so the traced-switch count only matches the whole-run
        // counter when the whole run is the measure window.
        cfg.warmup_cycles = 0;
        cfg.adaptive = Some(aggressive());
        let label = format!("adaptive on, complete @ 16 cores on {}", spec.label());
        let (run, events) = assert_traced_matrix_agrees(&cfg, &label);
        let (again, again_events) =
            run_sim_traced_with(&cfg, &trace_cfg(), KernelMode::Dense, 1).expect("repeat run");
        assert_eq!(
            serde_json::to_string(&run).unwrap(),
            serde_json::to_string(&again).unwrap(),
            "repeated adaptive run was not bit-reproducible on {label}"
        );
        assert_eq!(
            events, again_events.events,
            "repeated trace diverged on {label}"
        );
        let ad = &run.health.adaptive;
        assert!(ad.decisions > 0, "controller never ran on {label}");
        assert!(ad.hot_switches > 0, "no region ever heated on {label}");
        let switch_events = events
            .iter()
            .filter(|e| e.kind.name() == "policy_switch")
            .count() as u64;
        assert_eq!(
            switch_events,
            ad.hot_switches + ad.calm_switches,
            "every switch must be traced on {label}"
        );
    }
}

/// A decision epoch that does not divide the warm-up or measure length:
/// the controller must still fire on every multiple inside the run and
/// the matrix must stay invariant. 2 500 + 500 cycles with a 33-cycle
/// epoch puts decisions at awkward offsets relative to both boundaries.
#[test]
fn epoch_not_dividing_run_length_is_matrix_invariant() {
    let mut cfg = quick(16, MechanismConfig::complete());
    cfg.adaptive = Some(AdaptiveConfig {
        decision_epoch: 33,
        ..aggressive()
    });
    let (run, _) = assert_traced_matrix_agrees(&cfg, "33-cycle epoch");
    // Decisions start at the first epoch boundary and continue through
    // warm-up and measure: 3 000 / 33 = 90 full epochs.
    assert_eq!(run.health.adaptive.decisions, 3_000 / 33);
}

/// All-idle regions: with thresholds no sane run can reach, the
/// controller samples every epoch but never switches — and because
/// sampling is pure observation, the run's traffic statistics are
/// identical to the adaptive-off run bit for bit.
#[test]
fn all_idle_regions_never_switch_and_never_perturb() {
    let off = quick(16, MechanismConfig::complete());
    let mut on = off.clone();
    on.adaptive = Some(AdaptiveConfig {
        hot_enter: u64::MAX,
        hot_exit: u64::MAX / 2,
        ..aggressive()
    });
    let off_run = run_sim_with(&off, KernelMode::Event, 1).expect("off run");
    let on_run = run_sim_with(&on, KernelMode::Event, 1).expect("on run");
    let ad = &on_run.health.adaptive;
    assert!(ad.decisions > 0, "controller never sampled");
    assert_eq!(ad.hot_switches, 0);
    assert_eq!(ad.calm_switches, 0);
    assert_eq!(ad.circuits_suppressed, 0);
    assert_eq!(ad.congestion_detours, 0);
    // Everything measured about the traffic must match the off run; only
    // the adaptive decision counter itself may differ.
    assert_eq!(off_run.messages, on_run.messages);
    assert_eq!(off_run.latency, on_run.latency);
    assert_eq!(off_run.outcomes, on_run.outcomes);
    assert_eq!(off_run.energy, on_run.energy);
    assert_eq!(off_run.health.in_flight, on_run.health.in_flight);
}

/// A fault onset landing exactly on a decision tick: the fault pre-pass
/// (teardown, purge, reroute) and the policy decision run back to back
/// in the same serial prologue, and the matrix must not notice.
#[test]
fn fault_onset_on_a_decision_tick_is_matrix_invariant() {
    let mut cfg = quick(16, MechanismConfig::complete());
    cfg.adaptive = Some(aggressive());
    // Epoch 40 ⇒ decisions at 40, 80, …, 2 000, … — the link dies at
    // t = 2 000, exactly a decision tick, inside the measure window.
    cfg.faults.dead_links = vec![DeadLinkEvent {
        a: rcsim_core::NodeId(5),
        b: rcsim_core::NodeId(6),
        at: 2_000,
        duration: None,
    }];
    let (run, _) = assert_traced_matrix_agrees(&cfg, "fault onset on decision tick");
    assert!(run.health.adaptive.decisions > 0);
    assert_eq!(run.health.dead_links.len(), 1, "link never died");
}

/// Decisions spanning the warm-up/measure boundary: the stats reset at
/// the end of warm-up zeroes the traffic counters but must not disturb
/// the controller (mode, dwell clocks, decision phase) — the decision
/// count covers the whole run and the matrix stays invariant.
#[test]
fn warmup_drain_keeps_controller_state_across_stats_reset() {
    let mut cfg = quick(16, MechanismConfig::complete());
    cfg.warmup_cycles = 1_000;
    cfg.measure_cycles = 2_000;
    cfg.adaptive = Some(aggressive());
    let (run, _) = assert_traced_matrix_agrees(&cfg, "decisions across warm-up reset");
    // Ticks cover t = 0 … 2 999, so decisions land at every multiple of
    // 40 up to 2 960: ⌊2 999 / 40⌋ = 74 in total, the first 24 during
    // warm-up — none lost to the reset.
    assert_eq!(run.health.adaptive.decisions, 74);
}
