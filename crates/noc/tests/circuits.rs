//! End-to-end tests of the Reactive Circuits machinery at network level:
//! request→reserve, reply→bypass, undo, timed windows, fragmented partial
//! circuits, ideal mode and scrounger reuse.

use rcsim_core::circuit::CircuitKey;
use rcsim_core::{MechanismConfig, Mesh, MessageClass, NodeId};
use rcsim_noc::{CircuitOutcome, MessageGroup, Network, NocConfig, PacketSpec};

fn net(mechanism: MechanismConfig) -> Network {
    let mesh = Mesh::new(4, 4).unwrap();
    Network::new(NocConfig::paper_baseline(mesh, mechanism)).unwrap()
}

fn net8(mechanism: MechanismConfig) -> Network {
    let mesh = Mesh::new(8, 8).unwrap();
    Network::new(NocConfig::paper_baseline(mesh, mechanism)).unwrap()
}

fn run(n: &mut Network, cycles: u64) {
    for _ in 0..cycles {
        n.tick();
    }
}

/// Sends a request, waits for delivery, returns the circuit key.
fn send_request(n: &mut Network, src: u16, dst: u16, block: u64) -> CircuitKey {
    n.inject(PacketSpec::new(NodeId(src), NodeId(dst), MessageClass::L1Request).with_block(block));
    for _ in 0..200 {
        n.tick();
        let d = n.take_delivered(NodeId(dst));
        if !d.is_empty() {
            assert_eq!(d[0].class, MessageClass::L1Request);
            return CircuitKey {
                requestor: NodeId(src),
                block,
            };
        }
    }
    panic!("request {src}->{dst} never delivered");
}

/// Sends the data reply over the (possibly) reserved circuit and returns
/// (network latency, rode_circuit, commit flag).
fn send_reply(n: &mut Network, src: u16, dst: u16, block: u64) -> (u64, bool, bool) {
    let key = CircuitKey {
        requestor: NodeId(dst),
        block,
    };
    let (_, committed) = n.inject(
        PacketSpec::new(NodeId(src), NodeId(dst), MessageClass::L2Reply)
            .with_block(block)
            .with_circuit_key(key),
    );
    for _ in 0..400 {
        n.tick();
        let d = n.take_delivered(NodeId(dst));
        if !d.is_empty() {
            assert_eq!(d[0].class, MessageClass::L2Reply);
            return (
                d[0].delivered_at - d[0].injected_at,
                d[0].rode_circuit,
                committed,
            );
        }
    }
    panic!("reply {src}->{dst} never delivered");
}

#[test]
fn complete_circuit_is_built_and_registered() {
    let mut n = net(MechanismConfig::complete());
    let key = send_request(&mut n, 0, 15, 0x40);
    assert!(n.has_circuit_origin(NodeId(15), key));
}

#[test]
fn reply_rides_complete_circuit_at_two_cycles_per_hop() {
    // 3-hop and 1-hop circuits: the latency difference must be exactly
    // 2 cycles per extra hop (§4.3).
    let mut n = net(MechanismConfig::complete());
    send_request(&mut n, 0, 3, 0x40);
    let (lat3, rode3, committed3) = send_reply(&mut n, 3, 0, 0x40);
    assert!(rode3 && committed3);

    let mut n = net(MechanismConfig::complete());
    send_request(&mut n, 0, 1, 0x40);
    let (lat1, rode1, _) = send_reply(&mut n, 1, 0, 0x40);
    assert!(rode1);
    assert_eq!(
        lat3 - lat1,
        4,
        "2 cycles per extra hop (1-hop {lat1}, 3-hop {lat3})"
    );
}

#[test]
fn circuit_reply_is_faster_than_baseline_reply() {
    let mut base = net(MechanismConfig::baseline());
    base.inject(PacketSpec::new(NodeId(15), NodeId(0), MessageClass::L2Reply).with_block(0x40));
    let mut base_lat = 0;
    for _ in 0..400 {
        base.tick();
        let d = base.take_delivered(NodeId(0));
        if !d.is_empty() {
            base_lat = d[0].delivered_at - d[0].injected_at;
            break;
        }
    }
    assert!(base_lat > 0);

    let mut n = net(MechanismConfig::complete());
    send_request(&mut n, 0, 15, 0x40);
    let (circ_lat, rode, _) = send_reply(&mut n, 15, 0, 0x40);
    assert!(rode);
    assert!(
        circ_lat * 2 < base_lat,
        "circuit reply ({circ_lat}) should be well under half the baseline ({base_lat})"
    );
}

#[test]
fn circuit_outcome_recorded() {
    let mut n = net(MechanismConfig::complete());
    send_request(&mut n, 0, 15, 0x40);
    send_reply(&mut n, 15, 0, 0x40);
    let s = n.stats();
    assert_eq!(s.outcomes.get(&CircuitOutcome::OnCircuit), Some(&1));
}

#[test]
fn undo_tears_down_circuit() {
    let mut n = net(MechanismConfig::complete());
    let key = send_request(&mut n, 0, 15, 0x40);
    assert!(n.undo_circuit(NodeId(15), key));
    assert!(!n.has_circuit_origin(NodeId(15), key));
    run(&mut n, 30); // undo propagates at 1 cycle/hop
    let s = n.stats();
    assert_eq!(s.outcomes.get(&CircuitOutcome::Undone), Some(&1));
    // A later reply for the same key goes packet-switched.
    let (_, rode, committed) = send_reply(&mut n, 15, 0, 0x40);
    assert!(!rode && !committed);
}

#[test]
fn conflicting_circuits_fail_and_are_undone() {
    // Two requests whose replies would need different inputs into the
    // same output at some router (the Figure 4b scenario). In a 4x4 mesh:
    // request A: 0 -> 15 (replies come back 15 -> 0, YX: through col 0? no:
    // reply YX from 15 to 0 goes north along column 3, then west along row 0).
    // request B: 12 -> 3 (reply 3 -> 12 goes south along column 3, then west).
    // Both replies use column 3 in opposite directions, then row boundary —
    // pick pairs that demonstrably conflict instead: two requests from
    // different sources to destinations whose replies share a router output.
    // Request A: 1 -> 15, reply YX 15->1: col 3 north to (3,0)? no.
    // Simplest deterministic conflict: A: 0 -> 3, B: 4 -> 3. Replies:
    // 3 -> 0 goes west along row 0; 3 -> 4: YX south to (3,1) then west.
    // No shared hop. Use A: 0 -> 3 and B: 8 -> 7: reply B 7->8 YX: (3,1)->
    // south (3,2)? dst 8=(0,2): south col3 to (3,2), then west row 2. Still
    // disjoint from row 0. Take A: 0->3 (reply west along row 0) and
    // B: 1->3 (reply 3->1 west along row 0): same direction, same output
    // ports, but B's reply path is a suffix of A's; at router 2, A's reply
    // enters East and exits West; B's reply enters East too — same input,
    // but different *source*? Both replies start at 3: same source, so
    // complete-mode rules allow them. Conflict needs different sources and
    // same output: A: 0->3 (reply from 3 heads west through router 2,
    // entering East, leaving West) and B: 2->14? reply 14->2: YX north
    // along column 2 to router 2, entering South, leaving Local — no.
    // B: 6->1? request 6=(2,1) -> 1=(1,0): XY west to (1,1) then north.
    // Reply 1->6: YX south (1,0)->(1,1), then east to (2,1). At router 5
    // (1,1), reply B enters North, exits East.
    // A: 4->6: request (0,1)->(2,1) east; reply 6->4 enters East at router 5
    // and exits West. Different inputs (N vs E), different outputs (E vs W).
    // Still no conflict!
    //
    // Deterministic conflict at router 5 output West: reply entering North
    // (circuit for request 4->... hmm). Request C: 5->6: reply 6->5 enters
    // router 5 via East, exits Local... Use replies exiting West at router 5:
    // any reply crossing row 1 westwards into router 4: from sources east of
    // x=1 with destination 4=(0,1): requests from 4 to 6 (reply 6->4: enters
    // 5 East, exits West) and from 4 to 9=(1,2): reply 9->4: YX north
    // (1,2)->(1,1)=router 5 entering South, exits West. Same requestor (4)!
    // Keys differ by block; sources differ (6 vs 9): at router 5, circuit 1
    // occupies (in E, out W), circuit 2 wants (in S, out W): output conflict.
    let mut n = net(MechanismConfig::complete());
    let k1 = send_request(&mut n, 4, 6, 0x40);
    assert!(n.has_circuit_origin(NodeId(6), k1));
    // Second request: its circuit must fail at router 5 and be undone.
    n.inject(PacketSpec::new(NodeId(4), NodeId(9), MessageClass::L1Request).with_block(0x80));
    run(&mut n, 100);
    let d = n.take_delivered(NodeId(9));
    assert_eq!(d.len(), 1);
    let h = d[0].circuit.expect("request carried a handle");
    assert!(h.failed, "second circuit must conflict at router 5");
    assert!(!n.has_circuit_origin(
        NodeId(9),
        CircuitKey {
            requestor: NodeId(4),
            block: 0x80
        }
    ));
    // The failed reply travels packet-switched and counts as failed.
    let (_, rode, committed) = send_reply(&mut n, 9, 4, 0x80);
    assert!(!rode && !committed);
    let s = n.stats();
    assert_eq!(s.outcomes.get(&CircuitOutcome::Failed), Some(&1));
    // Both requests come from node 4, so their replies share the final
    // input port at node 4's router: the same-source rule fires there
    // (§4.2), before the downstream output-port conflict is even reached.
    assert!(s.tables.total_failed() >= 1);
    assert!(s.tables.failed_source >= 1);
}

#[test]
fn fragmented_partial_circuit_still_delivers() {
    let mut n = net(MechanismConfig::fragmented());
    let k1 = send_request(&mut n, 4, 6, 0x40);
    let k2 = send_request(&mut n, 4, 9, 0x80);
    assert!(n.has_circuit_origin(NodeId(6), k1));
    assert!(
        n.has_circuit_origin(NodeId(9), k2),
        "fragmented keeps partial prefixes"
    );
    let (_, _, committed) = send_reply(&mut n, 9, 4, 0x80);
    assert!(
        !committed,
        "fragmented never commits (NoAck needs complete)"
    );
    let (lat, rode, _) = send_reply(&mut n, 6, 4, 0x40);
    assert!(rode, "fully reserved fragmented circuit rides");
    assert!(lat < 30);
}

#[test]
fn ideal_mode_builds_conflicting_circuits() {
    let mut n = net(MechanismConfig::ideal());
    let k1 = send_request(&mut n, 4, 6, 0x40);
    let k2 = send_request(&mut n, 4, 9, 0x80);
    assert!(n.has_circuit_origin(NodeId(6), k1));
    assert!(
        n.has_circuit_origin(NodeId(9), k2),
        "ideal never fails reservations"
    );
    let (_, rode1, _) = send_reply(&mut n, 6, 4, 0x40);
    let (_, rode2, _) = send_reply(&mut n, 9, 4, 0x80);
    assert!(rode1 && rode2);
}

#[test]
fn timed_circuit_rides_when_prompt() {
    let mut n = net(MechanismConfig::timed_noack());
    send_request(&mut n, 0, 15, 0x40);
    // Reply sent immediately after request delivery, with the default
    // 7-cycle turnaround the request advertised: the window is met.
    run(&mut n, 7);
    let (_, rode, committed) = send_reply(&mut n, 15, 0, 0x40);
    assert!(
        rode && committed,
        "prompt reply must meet the exact timed window"
    );
    let s = n.stats();
    assert_eq!(s.outcomes.get(&CircuitOutcome::OnCircuit), Some(&1));
}

#[test]
fn timed_circuit_missed_window_is_undone() {
    let mut n = net(MechanismConfig::timed_noack());
    send_request(&mut n, 0, 15, 0x40);
    run(&mut n, 300); // far beyond the reserved slot
    let (_, rode, committed) = send_reply(&mut n, 15, 0, 0x40);
    assert!(!rode && !committed);
    let s = n.stats();
    assert_eq!(s.outcomes.get(&CircuitOutcome::Undone), Some(&1));
}

#[test]
fn slack_tolerates_moderate_delay() {
    // 6-hop path with 4 cycles/hop slack: 24 cycles of tolerance.
    let mut n = net(MechanismConfig::slack(4));
    send_request(&mut n, 0, 15, 0x40);
    run(&mut n, 7 + 15);
    let (_, rode, committed) = send_reply(&mut n, 15, 0, 0x40);
    assert!(
        rode && committed,
        "slack must absorb a 15-cycle turnaround overrun"
    );
}

#[test]
fn timed_windows_free_table_capacity() {
    // After the window passes, the reservation expires and the tables are
    // reusable — one of the scalability arguments of §5.5.
    let mut n = net(MechanismConfig::timed_noack());
    send_request(&mut n, 0, 15, 0x40);
    run(&mut n, 400);
    // Five new circuits through the same column still succeed.
    for (i, block) in [
        (1u16, 0x100u64),
        (2, 0x140),
        (4, 0x180),
        (5, 0x1c0),
        (6, 0x200),
    ] {
        let key = send_request(&mut n, i, 15, block);
        let _ = key;
    }
    let s = n.stats();
    assert_eq!(s.tables.failed_storage, 0);
}

#[test]
fn scrounger_rides_foreign_circuit() {
    let mut n = net8(MechanismConfig::reuse_noack());
    // Build a circuit 63 -> 0 (14 hops).
    send_request(&mut n, 0, 63, 0x40);
    // Scroungers only take circuits that have sat idle for a while
    // (memory-latency transactions; see DESIGN.md §4b).
    run(&mut n, 150);
    // A non-eligible reply 63 -> 1 has no circuit; the circuit to 0 ends
    // 1 hop from node 1, much closer than 13 hops from 63.
    n.inject(PacketSpec::new(NodeId(63), NodeId(1), MessageClass::L1InvAck).with_block(0x999));
    let mut lat = None;
    for _ in 0..400 {
        n.tick();
        let d = n.take_delivered(NodeId(1));
        if !d.is_empty() {
            assert_eq!(d[0].class, MessageClass::L1InvAck);
            lat = Some(d[0].delivered_at - d[0].injected_at);
            break;
        }
    }
    let lat = lat.expect("scrounger must arrive");
    let s = n.stats();
    assert_eq!(s.outcomes.get(&CircuitOutcome::Scrounger), Some(&1));
    // 14 hops on circuit (2/hop) + re-injection + 1 hop packet-switched:
    // must beat the ~75-cycle packet-switched path comfortably.
    assert!(lat < 60, "scrounger latency {lat}");
    // The scrounged circuit was consumed.
    assert!(!n.has_circuit_origin(
        NodeId(63),
        CircuitKey {
            requestor: NodeId(0),
            block: 0x40
        }
    ));
}

#[test]
fn undo_leaves_unrelated_circuits_intact() {
    // Two circuits from the same source (same-source circuits coexist on
    // shared input ports, §4.2); undoing one must not damage the other.
    let mut n = net(MechanismConfig::complete());
    let k1 = send_request(&mut n, 0, 15, 0x40);
    let k2 = send_request(&mut n, 0, 15, 0x80);
    assert!(n.undo_circuit(NodeId(15), k1));
    run(&mut n, 30); // let the undo propagate the whole path
    assert!(!n.has_circuit_origin(NodeId(15), k1));
    assert!(n.has_circuit_origin(NodeId(15), k2));
    let (lat, rode, committed) = send_reply(&mut n, 15, 0, 0x80);
    assert!(rode && committed, "the surviving circuit still works");
    assert!(lat < 25);
}

#[test]
fn noack_elimination_is_counted() {
    let mut n = net(MechanismConfig::complete_noack());
    send_request(&mut n, 0, 15, 0x40);
    let (_, _, committed) = send_reply(&mut n, 15, 0, 0x40);
    assert!(committed);
    // The protocol would skip the L1_DATA_ACK and record it:
    n.record_eliminated_ack();
    let s = n.stats();
    assert_eq!(s.outcomes.get(&CircuitOutcome::Eliminated), Some(&1));
}

#[test]
fn latency_groups_are_tracked() {
    let mut n = net(MechanismConfig::complete());
    send_request(&mut n, 0, 15, 0x40);
    send_reply(&mut n, 15, 0, 0x40);
    n.inject(PacketSpec::new(
        NodeId(3),
        NodeId(12),
        MessageClass::L1InvAck,
    ));
    run(&mut n, 200);
    let s = n.stats();
    assert_eq!(s.network_latency[&MessageGroup::Request].count(), 1);
    assert_eq!(s.network_latency[&MessageGroup::CircuitRep].count(), 1);
    assert_eq!(s.network_latency[&MessageGroup::NoCircuitRep].count(), 1);
    assert!(
        s.network_latency[&MessageGroup::CircuitRep].mean()
            < s.network_latency[&MessageGroup::NoCircuitRep].mean() + 50.0
    );
}

#[test]
fn activity_counters_move() {
    let mut n = net(MechanismConfig::complete());
    send_request(&mut n, 0, 15, 0x40);
    send_reply(&mut n, 15, 0, 0x40);
    let s = n.stats();
    let a = &s.activity;
    assert!(a.buffer_writes > 0);
    assert!(a.xbar_traversals > 0);
    assert!(a.link_flits > 0);
    assert!(
        a.circuit_writes >= 7,
        "one reservation per router on a 6-hop path"
    );
    assert!(a.circuit_lookups > 0);
    assert!(a.vc_allocs > 0 && a.sw_allocs > 0 && a.credits > 0);
}

#[test]
fn borrowing_scrounger_leaves_circuit_for_its_reply() {
    let mut n = net8(MechanismConfig::reuse_borrow_noack());
    send_request(&mut n, 0, 63, 0x40);
    run(&mut n, 150); // pass the scrounge idle-age gate
                      // A scrounger borrows the 63 -> 0 circuit to get near node 1.
    n.inject(PacketSpec::new(NodeId(63), NodeId(1), MessageClass::L1InvAck).with_block(0x999));
    run(&mut n, 120);
    assert_eq!(n.take_delivered(NodeId(1)).len(), 1);
    // The circuit survived the borrow...
    let key = CircuitKey {
        requestor: NodeId(0),
        block: 0x40,
    };
    assert!(n.has_circuit_origin(NodeId(63), key));
    // ...and its own reply still rides it.
    let (lat, rode, committed) = send_reply(&mut n, 63, 0, 0x40);
    assert!(rode && committed, "borrowed circuit still serves its owner");
    assert!(lat < 40);
    let s = n.stats();
    assert_eq!(s.outcomes.get(&CircuitOutcome::Scrounger), Some(&1));
    assert_eq!(s.outcomes.get(&CircuitOutcome::OnCircuit), Some(&1));
}

#[test]
fn undo_racing_a_borrowing_scrounger_is_safe() {
    let mut n = net8(MechanismConfig::reuse_borrow_noack());
    let key = send_request(&mut n, 0, 63, 0x40);
    run(&mut n, 150);
    // Scrounger starts borrowing; the protocol undoes the circuit while
    // the scrounger is still in flight.
    n.inject(PacketSpec::new(NodeId(63), NodeId(1), MessageClass::L1InvAck).with_block(0x999));
    run(&mut n, 3); // a few flits under way
    assert!(n.undo_circuit(NodeId(63), key));
    run(&mut n, 400);
    // The scrounger still arrives, the circuit is gone, and nothing wedges.
    assert_eq!(n.take_delivered(NodeId(1)).len(), 1);
    assert!(!n.has_circuit_origin(NodeId(63), key));
    let (_, rode, committed) = send_reply(&mut n, 63, 0, 0x40);
    assert!(!rode && !committed, "the undone circuit is really gone");
    assert!(n.is_quiescent());
}
