//! Bounded open-loop ingress at the mesh edge: token-bucket admission,
//! bounded per-edge queues with explicit backpressure, and deterministic
//! load-shedding.
//!
//! The design rule is *no silent loss and no unbounded queue*. Every
//! external arrival offered to an edge meets exactly one of four typed
//! fates, each counted and traced:
//!
//! 1. **Admitted** — a token was available and the bounded queue had
//!    room; the arrival waits its turn in FIFO order.
//! 2. **Rejected (`NoToken`)** — the admission controller's token bucket
//!    was empty. The client is told how long to wait before re-offering
//!    (the retry-after/backoff contract).
//! 3. **Rejected (`QueueFull`)** — the bounded queue was at capacity;
//!    retry after the configured backoff.
//! 4. **Shed (`ShedTimeout`)** — admitted, but the queue did not drain
//!    before the shed timeout; the arrival is dropped *explicitly* at the
//!    head of the queue (old work is the least useful work under
//!    overload) and the drop is counted and traced.
//!
//! Release into the network is paced at one arrival per edge per cycle
//! and gated on the edge NI's backlog (backpressure): when the NI is
//! congested the queue holds rather than piling more packets onto it.
//! The [`OverloadReport`] exposes the full ledger; its conservation
//! identity `admitted == released + shed + queued` holds at every cycle,
//! and offered arrivals that were rejected are exactly the difference
//! `offered - admitted`.

use rcsim_core::{Cycle, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// One token in units of 1/1024 — the fixed-point scale of the bucket.
const TOKEN_SCALE: u64 = 1024;

/// Configuration of the edge ingress layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IngressConfig {
    /// Bound on each edge's ingress queue (entries). Never exceeded.
    pub queue_cap: usize,
    /// An admitted arrival still queued after this many cycles is shed.
    pub shed_timeout: u64,
    /// Enables the token-bucket admission controller. With admission off
    /// the bucket is ignored and only the queue bound protects the edge —
    /// the "collapse" configuration the overload bench measures against.
    pub admission: bool,
    /// Token-bucket refill rate: whole tokens granted per 1024 cycles
    /// (i.e. `rate * 1024` for a per-cycle admission rate `rate`).
    pub tokens_per_kilocycle: u64,
    /// Token-bucket burst capacity, in whole tokens.
    pub bucket_cap: u64,
    /// Release an arrival into the edge NI only while the NI's backlog is
    /// below this many packets (explicit backpressure).
    pub backpressure_threshold: usize,
    /// Retry-after told to clients rejected for a full queue, cycles.
    pub retry_backoff: u64,
}

impl Default for IngressConfig {
    fn default() -> Self {
        Self {
            queue_cap: 32,
            shed_timeout: 2_000,
            admission: true,
            tokens_per_kilocycle: 256, // 0.25 admits/cycle/edge
            bucket_cap: 16,
            backpressure_threshold: 8,
            retry_backoff: 64,
        }
    }
}

/// Why an offer was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The token bucket was empty (admission control).
    NoToken,
    /// The bounded ingress queue was at capacity.
    QueueFull,
}

/// The typed outcome of offering one external arrival to an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Queued; `depth` is the queue depth after the admit.
    Admitted {
        /// Ingress queue depth including this arrival.
        depth: u32,
    },
    /// Refused; re-offer no sooner than `retry_after` cycles from now.
    Rejected {
        /// Which limit refused the offer.
        reason: RejectReason,
        /// Cycles the client should back off before retrying.
        retry_after: u64,
    },
}

/// An admitted arrival released from an ingress queue this cycle; the
/// driver is expected to inject it into the network immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReleasedArrival {
    /// Edge node whose queue released the arrival.
    pub edge: NodeId,
    /// Destination (server) tile.
    pub dst: NodeId,
    /// External block address carried by the request.
    pub block: u64,
    /// Cycle the arrival was admitted at the edge.
    pub arrived_at: Cycle,
    /// Cycles spent waiting in the ingress queue.
    pub waited: u64,
}

/// An arrival shed from a queue head after exceeding the shed timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedArrival {
    /// Edge node that shed it.
    pub edge: NodeId,
    /// Cycles it waited before being shed.
    pub waited: u64,
}

/// The overload ledger surfaced through `HealthReport` — queue pressure
/// high-water marks, the admit/reject/shed counters and time spent under
/// overload. All counters are cumulative from cycle 0 (warm-up resets
/// never touch them) so conservation can be checked at any instant.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OverloadReport {
    /// Offers seen, including client re-offers after a rejection.
    pub offered: u64,
    /// Offers admitted into a bounded queue.
    pub admitted: u64,
    /// Admitted arrivals released into the network.
    pub released: u64,
    /// Offers refused because the token bucket was empty.
    pub rejected_no_token: u64,
    /// Offers refused because the bounded queue was full.
    pub rejected_queue_full: u64,
    /// Admitted arrivals shed after waiting past the shed timeout.
    pub shed_timeout: u64,
    /// Arrivals currently waiting in ingress queues.
    pub queued: u64,
    /// Deepest any single edge queue has ever been.
    pub depth_high_water: u32,
    /// Cycles that ended with at least one non-empty ingress queue.
    pub time_in_overload: u64,
}

impl OverloadReport {
    /// Total refused offers.
    pub fn rejected(&self) -> u64 {
        self.rejected_no_token + self.rejected_queue_full
    }

    /// The ingress conservation residue; zero in a correct simulator.
    /// Every offer is admitted or rejected, and every admit is released,
    /// shed, or still queued.
    pub fn unaccounted(&self) -> i64 {
        let offers = self.offered as i64 - self.rejected() as i64 - self.admitted as i64;
        let admits = self.admitted as i64
            - self.released as i64
            - self.shed_timeout as i64
            - self.queued as i64;
        offers + admits
    }
}

impl fmt::Display for OverloadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "offered {} (admitted {}, rejected {}+{}, shed {}), released {}, queued {}, \
             high-water {}, {} cy in overload",
            self.offered,
            self.admitted,
            self.rejected_no_token,
            self.rejected_queue_full,
            self.shed_timeout,
            self.released,
            self.queued,
            self.depth_high_water,
            self.time_in_overload
        )
    }
}

/// One queued external arrival.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct QueuedArrival {
    dst: NodeId,
    block: u64,
    arrived_at: Cycle,
}

/// Per-edge queue plus token bucket.
#[derive(Debug)]
struct EdgeIngress {
    node: NodeId,
    queue: VecDeque<QueuedArrival>,
    /// Fixed-point token level, `TOKEN_SCALE` units per whole token.
    tokens: u64,
}

/// The whole ingress layer: one [`EdgeIngress`] per configured edge node
/// plus the cumulative [`OverloadReport`] counters.
#[derive(Debug)]
pub(crate) struct IngressState {
    cfg: IngressConfig,
    edges: Vec<EdgeIngress>,
    report: OverloadReport,
}

impl IngressState {
    pub(crate) fn new(cfg: IngressConfig, edges: Vec<NodeId>) -> Self {
        let edges = edges
            .into_iter()
            .map(|node| EdgeIngress {
                node,
                queue: VecDeque::new(),
                // Start full so a cold-start burst up to `bucket_cap` is
                // admitted rather than spuriously rejected at cycle 0.
                tokens: cfg.bucket_cap * TOKEN_SCALE,
            })
            .collect();
        Self {
            cfg,
            edges,
            report: OverloadReport::default(),
        }
    }

    /// The configured edge nodes, in offer/drain order.
    pub(crate) fn edge_nodes(&self) -> Vec<NodeId> {
        self.edges.iter().map(|e| e.node).collect()
    }

    /// Index of `edge` in the configured edge list.
    fn edge_index(&self, edge: NodeId) -> usize {
        self.edges
            .iter()
            .position(|e| e.node == edge)
            .expect("offer_external at a node configured as an ingress edge")
    }

    /// Offers one arrival at `edge`; the typed outcome is final for this
    /// cycle (a rejected client may re-offer after `retry_after`).
    pub(crate) fn offer(&mut self, now: Cycle, edge: NodeId, dst: NodeId, block: u64) -> Admission {
        let i = self.edge_index(edge);
        let cfg = self.cfg;
        self.report.offered += 1;
        let e = &mut self.edges[i];
        if cfg.admission && e.tokens < TOKEN_SCALE {
            self.report.rejected_no_token += 1;
            // How long until one whole token accumulates at the refill
            // rate (at least one cycle; fall back to the generic backoff
            // when refill is off).
            let deficit = TOKEN_SCALE - e.tokens;
            let retry_after = if cfg.tokens_per_kilocycle == 0 {
                cfg.retry_backoff
            } else {
                deficit.div_ceil(cfg.tokens_per_kilocycle).max(1)
            };
            return Admission::Rejected {
                reason: RejectReason::NoToken,
                retry_after,
            };
        }
        if e.queue.len() >= cfg.queue_cap {
            self.report.rejected_queue_full += 1;
            return Admission::Rejected {
                reason: RejectReason::QueueFull,
                retry_after: cfg.retry_backoff.max(1),
            };
        }
        if cfg.admission {
            e.tokens -= TOKEN_SCALE;
        }
        e.queue.push_back(QueuedArrival {
            dst,
            block,
            arrived_at: now,
        });
        self.report.admitted += 1;
        self.report.queued += 1;
        let depth = e.queue.len() as u32;
        self.report.depth_high_water = self.report.depth_high_water.max(depth);
        Admission::Admitted { depth }
    }

    /// One cycle of ingress service: refill token buckets, shed queue
    /// heads older than the shed timeout, then release at most one
    /// arrival per edge whose NI backlog (`backlogs[i]`, indexed like the
    /// edge list) is below the backpressure threshold.
    pub(crate) fn drain(
        &mut self,
        now: Cycle,
        backlogs: &[usize],
        released: &mut Vec<ReleasedArrival>,
        shed: &mut Vec<ShedArrival>,
    ) {
        debug_assert_eq!(backlogs.len(), self.edges.len());
        let cfg = self.cfg;
        for (i, e) in self.edges.iter_mut().enumerate() {
            if cfg.admission {
                e.tokens = (e.tokens + cfg.tokens_per_kilocycle).min(cfg.bucket_cap * TOKEN_SCALE);
            }
            while let Some(head) = e.queue.front() {
                let waited = now.saturating_sub(head.arrived_at);
                if waited < cfg.shed_timeout {
                    break;
                }
                e.queue.pop_front();
                self.report.shed_timeout += 1;
                self.report.queued -= 1;
                shed.push(ShedArrival {
                    edge: e.node,
                    waited,
                });
            }
            if backlogs[i] < cfg.backpressure_threshold {
                if let Some(head) = e.queue.pop_front() {
                    self.report.released += 1;
                    self.report.queued -= 1;
                    released.push(ReleasedArrival {
                        edge: e.node,
                        dst: head.dst,
                        block: head.block,
                        arrived_at: head.arrived_at,
                        waited: now.saturating_sub(head.arrived_at),
                    });
                }
            }
        }
        if self.edges.iter().any(|e| !e.queue.is_empty()) {
            self.report.time_in_overload += 1;
        }
    }

    /// Arrivals currently queued across all edges.
    pub(crate) fn queued(&self) -> u64 {
        self.report.queued
    }

    /// A copy of the cumulative ledger.
    pub(crate) fn report(&self) -> OverloadReport {
        self.report
    }

    /// The full dynamic state, for checkpointing: per-edge queues and
    /// token levels (in edge order) plus the cumulative ledger.
    pub(crate) fn snapshot(&self) -> IngressSnapshot {
        IngressSnapshot {
            edges: self
                .edges
                .iter()
                .map(|e| (e.queue.clone(), e.tokens))
                .collect(),
            report: self.report,
        }
    }

    /// Overwrites the dynamic state from an [`IngressState::snapshot`]
    /// taken under the same ingress configuration and edge list.
    pub(crate) fn restore(&mut self, snap: IngressSnapshot) {
        assert_eq!(
            snap.edges.len(),
            self.edges.len(),
            "ingress snapshot edge count mismatch"
        );
        for (e, (queue, tokens)) in self.edges.iter_mut().zip(snap.edges) {
            e.queue = queue;
            e.tokens = tokens;
        }
        self.report = snap.report;
    }
}

/// Complete dynamic state of the ingress layer, for checkpointing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct IngressSnapshot {
    edges: Vec<(VecDeque<QueuedArrival>, u64)>,
    report: OverloadReport,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> IngressConfig {
        IngressConfig {
            queue_cap: 4,
            shed_timeout: 100,
            admission: true,
            tokens_per_kilocycle: TOKEN_SCALE, // 1 token/cycle
            bucket_cap: 2,
            backpressure_threshold: 4,
            retry_backoff: 16,
        }
    }

    fn node(i: u16) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn bucket_bounds_burst_admits() {
        let mut s = IngressState::new(cfg(), vec![node(0)]);
        // bucket_cap = 2 tokens, no refill yet: third offer bounces.
        assert!(matches!(
            s.offer(0, node(0), node(5), 1),
            Admission::Admitted { depth: 1 }
        ));
        assert!(matches!(
            s.offer(0, node(0), node(5), 2),
            Admission::Admitted { depth: 2 }
        ));
        match s.offer(0, node(0), node(5), 3) {
            Admission::Rejected {
                reason: RejectReason::NoToken,
                retry_after,
            } => assert!(retry_after >= 1),
            other => panic!("expected NoToken reject, got {other:?}"),
        }
        assert_eq!(s.report().rejected_no_token, 1);
    }

    #[test]
    fn queue_bound_is_never_exceeded() {
        let mut c = cfg();
        c.admission = false; // isolate the queue bound
        let mut s = IngressState::new(c, vec![node(0)]);
        for b in 0..10u64 {
            s.offer(0, node(0), node(5), b);
        }
        let r = s.report();
        assert_eq!(r.admitted, 4);
        assert_eq!(r.rejected_queue_full, 6);
        assert_eq!(r.queued, 4);
        assert_eq!(r.depth_high_water, 4);
        assert_eq!(r.unaccounted(), 0);
    }

    #[test]
    fn drain_releases_fifo_and_respects_backpressure() {
        let mut c = cfg();
        c.admission = false;
        let mut s = IngressState::new(c, vec![node(0)]);
        s.offer(0, node(0), node(5), 10);
        s.offer(0, node(0), node(6), 11);
        let (mut rel, mut shed) = (Vec::new(), Vec::new());
        s.drain(1, &[0], &mut rel, &mut shed);
        assert_eq!(rel.len(), 1);
        assert_eq!(rel[0].block, 10);
        assert_eq!(rel[0].waited, 1);
        // NI congested: nothing released.
        rel.clear();
        s.drain(2, &[4], &mut rel, &mut shed);
        assert!(rel.is_empty());
        assert_eq!(s.queued(), 1);
        assert!(shed.is_empty());
        assert_eq!(s.report().unaccounted(), 0);
    }

    #[test]
    fn stale_heads_are_shed_not_lost() {
        let mut c = cfg();
        c.admission = false;
        let mut s = IngressState::new(c, vec![node(0)]);
        s.offer(0, node(0), node(5), 1);
        s.offer(0, node(0), node(5), 2);
        let (mut rel, mut shed) = (Vec::new(), Vec::new());
        // Past the shed timeout with the NI congested the whole time:
        // both entries go out the shed path, explicitly.
        s.drain(150, &[4], &mut rel, &mut shed);
        assert!(rel.is_empty());
        assert_eq!(shed.len(), 2);
        assert_eq!(shed[0].waited, 150);
        let r = s.report();
        assert_eq!(r.shed_timeout, 2);
        assert_eq!(r.queued, 0);
        assert_eq!(r.unaccounted(), 0);
    }

    #[test]
    fn tokens_refill_over_time() {
        let mut c = cfg();
        c.tokens_per_kilocycle = TOKEN_SCALE / 4; // 0.25/cycle
        c.bucket_cap = 1;
        let mut s = IngressState::new(c, vec![node(0)]);
        assert!(matches!(
            s.offer(0, node(0), node(5), 1),
            Admission::Admitted { .. }
        ));
        let reject = s.offer(0, node(0), node(5), 2);
        match reject {
            Admission::Rejected { retry_after, .. } => assert_eq!(retry_after, 4),
            other => panic!("expected reject, got {other:?}"),
        }
        let (mut rel, mut shed) = (Vec::new(), Vec::new());
        for t in 1..=4 {
            s.drain(t, &[0], &mut rel, &mut shed);
        }
        assert!(matches!(
            s.offer(5, node(0), node(5), 3),
            Admission::Admitted { .. }
        ));
    }

    #[test]
    fn overload_time_tracks_nonempty_queues() {
        let mut c = cfg();
        c.admission = false;
        let mut s = IngressState::new(c, vec![node(0), node(4)]);
        s.offer(0, node(0), node(5), 1);
        s.offer(0, node(0), node(5), 2);
        let (mut rel, mut shed) = (Vec::new(), Vec::new());
        s.drain(1, &[0, 0], &mut rel, &mut shed); // releases one, one left
        s.drain(2, &[0, 0], &mut rel, &mut shed); // releases the last
        s.drain(3, &[0, 0], &mut rel, &mut shed); // empty now
        assert_eq!(s.report().time_in_overload, 1);
        assert_eq!(s.report().released, 2);
    }
}
