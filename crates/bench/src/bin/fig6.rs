//! Figure 6 — percentage of replies that travel on a circuit / with a
//! failed circuit / with an undone circuit / as scroungers / not eligible
//! / eliminated, for every circuit-building configuration, on 16- and
//! 64-core chips.

use rcsim_bench::{cores_list, mean_outcomes, run_apps, save_json};
use rcsim_core::MechanismConfig;

fn main() {
    println!("Figure 6 — reply outcome breakdown per configuration\n");
    println!("Paper landmarks: Complete builds more circuits than Fragmented;");
    println!("NoAck eliminates 20-30% of replies; timed circuits without slack");
    println!("fail more; slack recovers them but large slack re-creates conflicts;");
    println!("Ideal is the upper bound; ~40%+ of replies are never eligible.\n");

    let mut raw = Vec::new();
    for cores in cores_list() {
        println!("== {cores} cores ==");
        println!(
            "{:<22} {:>9} {:>9} {:>9} {:>10} {:>13} {:>12}",
            "configuration",
            "circuit",
            "failed",
            "undone",
            "scrounger",
            "not_eligible",
            "eliminated"
        );
        for mechanism in MechanismConfig::figure6_grid() {
            let results = run_apps(cores, mechanism, 1);
            let o = mean_outcomes(&results);
            println!(
                "{:<22} {:>8.1}% {:>8.1}% {:>8.1}% {:>9.1}% {:>12.1}% {:>11.1}%",
                mechanism.label(),
                100.0 * o["circuit"],
                100.0 * o["failed"],
                100.0 * o["undone"],
                100.0 * o["scrounger"],
                100.0 * o["not_eligible"],
                100.0 * o["eliminated"],
            );
            raw.push((cores, mechanism.label(), o));
        }
        println!();
    }
    save_json("fig6", &raw);
}
