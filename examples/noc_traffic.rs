//! Network-only view: drive the NoC with synthetic request/reply traffic
//! at increasing injection rates and watch where complete circuits stop
//! helping (the congestion-threshold discussion of §5.5).
//!
//! ```text
//! cargo run --release --example noc_traffic
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reactive_circuits::core::circuit::CircuitKey;
use reactive_circuits::prelude::*;

/// Runs request→reply traffic at `rate` packets/node/cycle; returns the
/// mean network latency of the circuit-eligible replies.
fn reply_latency(mechanism: MechanismConfig, rate: f64, seed: u64) -> f64 {
    let mesh = Mesh::new(8, 8).expect("valid mesh");
    let mut net = Network::new(NocConfig::paper_baseline(mesh, mechanism)).expect("valid config");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = mesh.nodes() as u16;
    let mut block = 0u64;
    for _ in 0..6_000 {
        for s in 0..n {
            if rng.gen_bool(rate) {
                let dst = loop {
                    let d = NodeId(rng.gen_range(0..n));
                    if d != NodeId(s) {
                        break d;
                    }
                };
                block += 64;
                net.inject(
                    PacketSpec::new(NodeId(s), dst, MessageClass::L1Request).with_block(block),
                );
            }
        }
        net.tick();
        for (node, d) in net.take_all_delivered() {
            if d.class == MessageClass::L1Request {
                let key = CircuitKey {
                    requestor: d.src,
                    block: d.block,
                };
                net.inject(
                    PacketSpec::new(node, d.src, MessageClass::L2Reply)
                        .with_block(d.block)
                        .with_circuit_key(key),
                );
            }
        }
    }
    let stats = net.stats();
    stats
        .network_latency
        .get(&MessageGroup::CircuitRep)
        .map_or(0.0, |a| a.mean())
}

fn main() {
    println!("Reply latency vs injection rate — 8x8 mesh, request/reply traffic\n");
    println!(
        "{:>12} {:>12} {:>12} {:>10}",
        "rate", "Baseline", "Complete", "gain"
    );
    for rate in [0.002, 0.005, 0.01, 0.02, 0.04, 0.08] {
        let base = reply_latency(MechanismConfig::baseline(), rate, 42);
        let comp = reply_latency(MechanismConfig::complete(), rate, 42);
        println!(
            "{:>12.3} {:>12.1} {:>12.1} {:>9.1}%",
            rate,
            base,
            comp,
            100.0 * (base - comp) / base
        );
    }
    println!("\nAs the load rises, conflicts make complete circuits harder to");
    println!("build and the latency gain shrinks — the paper's §5.5 threshold.");
}
