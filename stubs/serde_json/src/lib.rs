//! Offline stand-in for serde_json. Serialization returns a placeholder
//! document; deserialization always errors. Tests that assert on real JSON
//! content will fail under this stub (expected local-only artifact).
use std::fmt;

#[derive(Debug)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub: {}", self.0)
    }
}
impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    Ok("{}".to_owned())
}

pub fn to_string_pretty<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    Ok("{}".to_owned())
}

pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T> {
    Err(Error("deserialization unavailable in offline stub".to_owned()))
}
