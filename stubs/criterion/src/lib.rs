//! Offline stand-in for criterion: runs each benchmark body a handful of
//! times and prints wall-clock timings, with no statistics machinery.

use std::time::Instant;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.iters {
            black_box(f());
        }
    }
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            black_box(routine(input));
        }
    }
}

#[derive(Debug)]
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 3 }
    }
}

fn run_one(name: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { iters };
    let start = Instant::now();
    f(&mut b);
    let elapsed = start.elapsed();
    println!(
        "bench {name}: {iters} iters in {:.3} ms",
        elapsed.as_secs_f64() * 1e3
    );
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).clamp(1, 10);
        self
    }
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{name}", self.name), self.sample_size, &mut f);
        self
    }
    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
