//! Integration coverage for the area and energy models: monotonicity in
//! mesh size and injection rate (driven by real simulated traffic), and
//! pinned Table 6 goldens in `tests/power_golden.json`. Regenerate the
//! goldens after an intentional model change with
//!
//! ```text
//! RC_UPDATE_GOLDEN=1 cargo test -p rcsim-power --test power_model
//! ```
//!
//! and review the diff like any other code change.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rcsim_core::{MechanismConfig, Mesh};
use rcsim_noc::traffic::Generator;
use rcsim_noc::{Network, NocConfig, NocStats};
use rcsim_power::{area_savings, EnergyBreakdown, EnergyModel, RouterArea};
use serde::{Deserialize, Serialize};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/power_golden.json");

/// Drives a `w`×`h` network with uniform-random traffic at
/// `injection_rate` flits/node/cycle for a fixed window and returns the
/// activity counters.
fn run_traffic(w: u16, h: u16, injection_rate: f64, cycles: u64) -> NocStats {
    let mesh = Mesh::new(w, h).expect("valid mesh");
    let mut net = Network::new(NocConfig::paper_baseline(mesh, MechanismConfig::baseline()))
        .expect("valid network");
    let gen = Generator::uniform(injection_rate);
    let mut rng = ChaCha8Rng::seed_from_u64(0x70E4);
    let mut next_block = 1u64;
    for _ in 0..cycles {
        gen.step(&mut net, &mut rng, &mut next_block);
        net.tick();
    }
    // Drain so late deliveries don't depend on the injection window edge.
    for _ in 0..5_000 {
        if net.is_quiescent() {
            break;
        }
        net.tick();
    }
    net.stats()
}

/// More offered traffic must never cost less energy: every dynamic
/// component and the total are non-decreasing in the injection rate
/// (strictly increasing at the extremes).
#[test]
fn energy_monotonic_in_injection_rate() {
    let model = EnergyModel::default_32nm();
    let m = MechanismConfig::baseline();
    let rates = [0.01, 0.02, 0.05, 0.10];
    let energies: Vec<EnergyBreakdown> = rates
        .iter()
        .map(|&r| model.network_energy(&run_traffic(4, 4, r, 3_000), &m, 4, 4))
        .collect();
    for (pair, rate) in energies.windows(2).zip(rates.windows(2)) {
        assert!(
            pair[1].router_dynamic_pj >= pair[0].router_dynamic_pj,
            "router dynamic energy fell from rate {} to {}",
            rate[0],
            rate[1]
        );
        assert!(
            pair[1].link_dynamic_pj >= pair[0].link_dynamic_pj,
            "link dynamic energy fell from rate {} to {}",
            rate[0],
            rate[1]
        );
    }
    let first = energies.first().expect("nonempty");
    let last = energies.last().expect("nonempty");
    assert!(
        last.router_dynamic_pj > first.router_dynamic_pj * 2.0,
        "10x the offered load should far more than double the dynamic energy"
    );
    assert!(last.total_pj() > first.total_pj());
}

/// A bigger mesh has more routers and links: with traffic scaled the same
/// way, both static components and the total must grow strictly.
#[test]
fn energy_monotonic_in_mesh_size() {
    let model = EnergyModel::default_32nm();
    let m = MechanismConfig::baseline();
    let sizes = [(2u16, 2u16), (4, 4), (8, 8)];
    let energies: Vec<EnergyBreakdown> = sizes
        .iter()
        .map(|&(w, h)| {
            model.network_energy(&run_traffic(w, h, 0.03, 2_000), &m, w as usize, h as usize)
        })
        .collect();
    for (pair, size) in energies.windows(2).zip(sizes.windows(2)) {
        assert!(
            pair[1].router_static_pj > pair[0].router_static_pj,
            "router static energy fell from {:?} to {:?}",
            size[0],
            size[1]
        );
        assert!(
            pair[1].link_static_pj > pair[0].link_static_pj,
            "link static energy fell from {:?} to {:?}",
            size[0],
            size[1]
        );
        assert!(pair[1].total_pj() > pair[0].total_pj());
    }
}

/// Area monotonicity across the mechanism axis of Table 6:
/// removing the circuit-VC buffer shrinks the router, adding circuit
/// storage (more entries, timed counters, wider destination ids) grows
/// it back predictably.
#[test]
fn area_monotonicity_across_mechanisms_and_cores() {
    let base = RouterArea::for_mechanism(&MechanismConfig::baseline(), 16).total();
    let fragmented = RouterArea::for_mechanism(&MechanismConfig::fragmented(), 16).total();
    let complete = RouterArea::for_mechanism(&MechanismConfig::complete(), 16).total();
    let timed = RouterArea::for_mechanism(&MechanismConfig::timed_noack(), 16).total();
    // Fragmented adds a buffered reply VC on top of the baseline.
    assert!(fragmented > base, "fragmented {fragmented} <= base {base}");
    // Complete removes the circuit VC's buffers: net shrink (Table 6).
    assert!(complete < base, "complete {complete} >= base {base}");
    // Timed entries carry countdown counters: wider tables, more area.
    assert!(timed > complete, "timed {timed} <= complete {complete}");

    // Wider destination ids at 64 cores can only grow circuit tables.
    for m in MechanismConfig::figure6_grid() {
        let a16 = RouterArea::for_mechanism(&m, 16);
        let a64 = RouterArea::for_mechanism(&m, 64);
        assert!(
            a64.circuit_tables >= a16.circuit_tables,
            "{}: circuit-table area fell with core count",
            m.label()
        );
        assert!(a64.total() >= a16.total());
        // And therefore the relative saving over the baseline shrinks.
        assert!(
            area_savings(&m, 64) <= area_savings(&m, 16) + 1e-12,
            "{}: area savings grew with core count",
            m.label()
        );
    }
}

/// The pinned slice of the area/energy models for goldens: Table 6's
/// per-mechanism router area and savings at both paper chip sizes, plus
/// an energy breakdown over a fixed synthetic activity vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GoldenEntry {
    mechanism: String,
    cores: usize,
    buffers: f64,
    crossbar: f64,
    allocators: f64,
    circuit_tables: f64,
    other: f64,
    total: f64,
    savings_pct: f64,
    energy_total_pj: f64,
    energy_static_share: f64,
}

/// A fixed, synthetic activity vector (no simulation): the golden pins
/// the model itself, independent of simulator behaviour drift.
fn synthetic_stats() -> NocStats {
    let mut s = NocStats {
        cycles: 10_000,
        ..Default::default()
    };
    s.activity.buffer_writes = 40_000;
    s.activity.buffer_reads = 38_000;
    s.activity.xbar_traversals = 45_000;
    s.activity.link_flits = 52_000;
    s.activity.vc_allocs = 9_000;
    s.activity.sw_allocs = 44_000;
    s.activity.credits = 39_000;
    s.activity.circuit_writes = 1_500;
    s.activity.circuit_lookups = 6_000;
    s
}

fn measure_goldens() -> Vec<GoldenEntry> {
    let model = EnergyModel::default_32nm();
    let stats = synthetic_stats();
    let mut all = vec![MechanismConfig::baseline()];
    all.extend(MechanismConfig::figure6_grid());
    let mut out = Vec::new();
    for cores in [16usize, 64] {
        let (w, h) = if cores == 16 { (4, 4) } else { (8, 8) };
        for m in &all {
            let a = RouterArea::for_mechanism(m, cores);
            let e = model.network_energy(&stats, m, w, h);
            out.push(GoldenEntry {
                mechanism: m.label(),
                cores,
                buffers: a.buffers,
                crossbar: a.crossbar,
                allocators: a.allocators,
                circuit_tables: a.circuit_tables,
                other: a.other,
                total: a.total(),
                savings_pct: area_savings(m, cores),
                energy_total_pj: e.total_pj(),
                energy_static_share: e.static_share(),
            });
        }
    }
    out
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(1.0)
}

#[test]
fn table6_quick_goldens_match() {
    let measured = measure_goldens();
    if std::env::var("RC_UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        let json = serde_json::to_string_pretty(&measured).unwrap();
        std::fs::write(GOLDEN_PATH, json + "\n").unwrap();
        eprintln!("golden file regenerated: {GOLDEN_PATH}");
        return;
    }
    let text = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file present (regenerate with RC_UPDATE_GOLDEN=1)");
    let golden: Vec<GoldenEntry> = serde_json::from_str(&text).expect("golden file parses");
    assert_eq!(golden.len(), measured.len(), "golden entry count");
    for (g, m) in golden.iter().zip(&measured) {
        assert_eq!(
            (g.mechanism.as_str(), g.cores),
            (m.mechanism.as_str(), m.cores)
        );
        for (what, gv, mv) in [
            ("buffers", g.buffers, m.buffers),
            ("crossbar", g.crossbar, m.crossbar),
            ("allocators", g.allocators, m.allocators),
            ("circuit_tables", g.circuit_tables, m.circuit_tables),
            ("other", g.other, m.other),
            ("total", g.total, m.total),
            ("savings_pct", g.savings_pct, m.savings_pct),
            ("energy_total_pj", g.energy_total_pj, m.energy_total_pj),
            (
                "energy_static_share",
                g.energy_static_share,
                m.energy_static_share,
            ),
        ] {
            assert!(
                close(gv, mv),
                "[{}/{}c] {what} drifted: golden {gv} vs measured {mv} \
                 (RC_UPDATE_GOLDEN=1 if intended)",
                g.mechanism,
                g.cores
            );
        }
    }
}

#[test]
fn goldens_are_distinct_per_mechanism() {
    if std::env::var("RC_UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        // The sibling test is rewriting the file; don't race its writes.
        return;
    }
    let text = std::fs::read_to_string(GOLDEN_PATH).expect("golden file present");
    let golden: Vec<GoldenEntry> = serde_json::from_str(&text).expect("golden file parses");
    // The baseline must differ in total area from every circuit mechanism
    // (a copy-paste golden would hide model bugs).
    let base = golden
        .iter()
        .find(|g| g.mechanism == "Baseline" && g.cores == 16)
        .expect("baseline entry");
    for g in golden.iter().filter(|g| g.cores == 16) {
        if g.mechanism != "Baseline" {
            assert!(
                !close(base.total, g.total),
                "{} has the same total area as the baseline",
                g.mechanism
            );
        }
    }
}
