//! The whole network: routers, links, NIs and the cycle loop — plus the
//! fault-injection hooks (flits and credits crossing inter-router links,
//! circuit tables, input ports) and the always-on progress watchdog.

use crate::config::NocConfig;
use crate::fault::{FaultConfig, FaultSnapshot, FaultState, FaultStats, LinkFate};
use crate::flit::{Delivered, Flit, PacketId, PacketSpec};
use crate::health::{
    AdaptiveReport, DeadlockReport, DeadlockResource, HealthReport, LeakedCircuit, StuckMessage,
    WatchdogConfig,
};
use crate::ingress::{
    Admission, IngressConfig, IngressSnapshot, IngressState, OverloadReport, ReleasedArrival,
    ShedArrival,
};
use crate::ni::{Ni, NiOut, NiSnapshot};
use crate::router::{Outgoing, Router, RouterSnapshot, VcWaiter, WaitEdge};
use crate::stats::{CircuitOutcome, NocStats};
use rcsim_core::circuit::CircuitKey;
use rcsim_core::routing::{path_is_healthy, Routing};
use rcsim_core::{
    shards_from_env, AdaptiveConfig, ConfigError, CongestionMap, CongestionSnapshot, Cycle,
    Direction, KernelMode, MessageClass, NodeId, PolicyController, RegionMode, RegionSample,
    ShardPlan, Topology, TopologyHealth, TopologyHealthSnapshot, WakeTimes, PORT_LOCAL,
};
use rcsim_trace::{EventKind, TraceSink};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A whole-network occupancy snapshot, taken between cycles. Feeds the
/// trace layer's periodic `EpochSample` events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetworkTelemetry {
    /// Live circuit-table entries across all routers.
    pub circuit_entries: u64,
    /// Flits sitting in router input VC buffers.
    pub buffered_flits: u64,
    /// Packets queued or streaming at the NIs.
    pub ni_backlog: u64,
}

/// The input port a flit sent out of network port `port` arrives on at
/// the downstream router. All four network ports are grid-directional
/// (N↔S, E↔W), so the opposite is a single XOR — valid on every
/// topology, including wraparound links and 2-wide rings where both of a
/// router's horizontal ports reach the same neighbour.
fn opposite_port(port: usize) -> usize {
    debug_assert!(port < PORT_LOCAL, "only network ports have an opposite");
    port ^ 2
}

/// Messages in flight towards one router.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RouterInbox {
    /// Flits per input port, with arrival cycle.
    flits: Vec<Vec<(Cycle, Flit)>>,
    /// Credits per *output* port (they return upstream).
    credits: Vec<Vec<(Cycle, usize)>>,
    /// Undo notifications.
    undos: Vec<(Cycle, CircuitKey, NodeId)>,
}

impl RouterInbox {
    fn new(ports: usize) -> Self {
        RouterInbox {
            flits: vec![Vec::new(); ports],
            credits: vec![Vec::new(); ports],
            undos: Vec::new(),
        }
    }

    /// Earliest arrival cycle across every queue (`Cycle::MAX` if empty).
    fn next_due(&self) -> Cycle {
        let mut t = Cycle::MAX;
        for q in &self.flits {
            for &(a, _) in q {
                t = t.min(a);
            }
        }
        for q in &self.credits {
            for &(a, _) in q {
                t = t.min(a);
            }
        }
        for &(a, _, _) in &self.undos {
            t = t.min(a);
        }
        t
    }
}

/// Messages in flight towards one NI.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct NiInbox {
    flits: Vec<(Cycle, Flit)>,
    credits: Vec<(Cycle, usize)>,
}

impl NiInbox {
    /// Earliest arrival cycle across both queues (`Cycle::MAX` if empty).
    fn next_due(&self) -> Cycle {
        let f = self
            .flits
            .iter()
            .map(|&(a, _)| a)
            .min()
            .unwrap_or(Cycle::MAX);
        let c = self
            .credits
            .iter()
            .map(|&(a, _)| a)
            .min()
            .unwrap_or(Cycle::MAX);
        f.min(c)
    }
}

/// Moves every entry due at `now` from `v` into `due`, preserving the
/// enqueue order of the due items (the cycle-accurate contract: arrival
/// processing order equals emission order).
fn drain_due_into<T>(v: &mut Vec<(Cycle, T)>, now: Cycle, due: &mut Vec<T>) {
    let mut i = 0;
    while i < v.len() {
        if v[i].0 <= now {
            due.push(v.remove(i).1);
        } else {
            i += 1;
        }
    }
}

/// Reusable per-tick buffers — the cycle loop's arena. Taken out of
/// `self` at the top of [`Network::tick`] (sidestepping borrow
/// conflicts) and put back at the end, so the steady-state loop performs
/// no per-flit heap allocation.
#[derive(Debug, Default)]
struct Scratch {
    ejected: Vec<Flit>,
    ni_credits: Vec<usize>,
    ni_out: NiOut,
    arrivals: Vec<(usize, Flit)>,
    credits: Vec<(usize, usize)>,
    undos: Vec<(CircuitKey, NodeId)>,
    outgoing: Vec<Outgoing>,
    stuck: Vec<bool>,
}

/// One shard worker's state: reusable per-tick buffers (the sharded
/// equivalent of [`Scratch`]) plus the per-tick merge staging the serial
/// phase C consumes. Owned by the network so the steady-state loop
/// allocates nothing, and lent to exactly one worker per tick.
#[derive(Debug, Default)]
struct ShardLocal {
    // Worker-private tick buffers (mirror `Scratch`).
    ejected: Vec<Flit>,
    ni_credits: Vec<usize>,
    ni_out: NiOut,
    arrivals: Vec<(usize, Flit)>,
    credits: Vec<(usize, usize)>,
    undos: Vec<(CircuitKey, NodeId)>,
    outgoing_tmp: Vec<Outgoing>,
    // Staged outputs for the serial merge.
    /// `true` when any flit moved in this shard this tick.
    moved: bool,
    /// One entry per NI whose tick produced observable output, in tile
    /// order (NIs with nothing to report are skipped — by definition they
    /// have no effect on the merge).
    ni_merge: Vec<NiMerge>,
    /// This shard's deliveries this tick, in (tile, ejection) order;
    /// sliced by [`NiMerge::n_delivered`].
    delivered: Vec<Delivered>,
    /// Corrupt-discarded packets, same ordering, sliced by
    /// [`NiMerge::n_corrupt`].
    corrupt: Vec<PacketId>,
    /// `(router index, outgoing count)` per router with output, in router
    /// order.
    router_merge: Vec<(usize, usize)>,
    /// Concatenated router outputs, sliced by [`ShardLocal::router_merge`].
    outgoing: Vec<Outgoing>,
}

/// The merge-relevant summary of one NI's tick: everything the serial
/// phase C must replay, in the serial path's per-NI order (deliveries,
/// then the at-most-one injection, then reroutes, then retries).
#[derive(Debug)]
struct NiMerge {
    tile: usize,
    n_delivered: usize,
    n_corrupt: usize,
    injection: Option<(MessageClass, u32)>,
    reroutes: u64,
    congestion_reroutes: u64,
}

/// The disjoint slice of network state one shard worker owns for a tick:
/// its tile range's NIs, inboxes and wake slots, its router range's
/// routers, inboxes and wake slots, and its [`ShardLocal`]. Built by
/// progressive `split_at_mut` over the network's vectors, so workers can
/// run concurrently without any sharing — a tile's router is always in
/// the tile's own shard ([`ShardPlan`] cuts on router boundaries).
struct ShardWork<'a> {
    tile0: usize,
    router0: usize,
    nis: &'a mut [Ni],
    ni_inboxes: &'a mut [NiInbox],
    ni_wake: &'a mut [Cycle],
    routers: &'a mut [Router],
    router_inboxes: &'a mut [RouterInbox],
    router_wake: &'a mut [Cycle],
    local: &'a mut ShardLocal,
}

/// Phase B of the sharded tick: one shard's NI and router loops. The
/// body is the serial loops verbatim minus everything order-sensitive —
/// statistics, retry scheduling, delivery bookkeeping and
/// `route_outgoing` are staged into the shard's [`ShardLocal`] for the
/// serial phase C to replay in fixed order. Writes go only through `w`'s
/// disjoint slices, so any number of workers may run concurrently; see
/// DESIGN.md §13 for the byte-identity argument.
#[allow(clippy::too_many_arguments)]
fn shard_phase_b(
    w: &mut ShardWork<'_>,
    now: Cycle,
    event: bool,
    topology: Topology,
    topo: &TopologyHealth,
    cong: &CongestionMap,
    stuck: &[bool],
    ports: usize,
) {
    let l = &mut *w.local;
    l.moved = false;
    l.ni_merge.clear();
    l.delivered.clear();
    l.corrupt.clear();
    l.router_merge.clear();
    l.outgoing.clear();

    // NIs first (same order as the serial loop).
    for t in 0..w.nis.len() {
        let due = w.ni_wake[t] <= now;
        if event && !due && !w.nis[t].is_active() {
            continue;
        }
        if due {
            drain_due_into(&mut w.ni_inboxes[t].flits, now, &mut l.ejected);
            drain_due_into(&mut w.ni_inboxes[t].credits, now, &mut l.ni_credits);
            w.ni_wake[t] = w.ni_inboxes[t].next_due();
        }
        l.moved |= !l.ejected.is_empty();
        l.ni_out.clear();
        w.nis[t].tick(
            now,
            &mut l.ejected,
            &mut l.ni_credits,
            topo,
            cong,
            &mut l.ni_out,
        );
        l.moved |= !l.ni_out.flits.is_empty() || !l.ni_out.delivered.is_empty();
        let tile = NodeId((w.tile0 + t) as u16);
        let router = topology.router_of(tile).index() - w.router0;
        let inject_port = topology.eject_port(tile);
        for flit in l.ni_out.flits.drain(..) {
            // Injection targets the tile's own router, which is always in
            // this shard — the min-merge wake and push are local. Items
            // arrive at `now + 1`, so a wake slot can only move to
            // `now + 1`; it was `> now` (otherwise `due` already held and
            // `set` ran first) either way, so the serial `set`-after-push
            // and this `set`-before-push agree.
            w.router_wake[router] = w.router_wake[router].min(now + 1);
            w.router_inboxes[router].flits[inject_port].push((now + 1, flit));
        }
        for (key, dst) in l.ni_out.undos.drain(..) {
            w.router_wake[router] = w.router_wake[router].min(now + 1);
            w.router_inboxes[router].undos.push((now + 1, key, dst));
        }
        let injection = l.ni_out.injection.take();
        if !l.ni_out.delivered.is_empty()
            || !l.ni_out.corrupt_discards.is_empty()
            || injection.is_some()
            || l.ni_out.reroutes > 0
            || l.ni_out.congestion_reroutes > 0
        {
            l.ni_merge.push(NiMerge {
                tile: w.tile0 + t,
                n_delivered: l.ni_out.delivered.len(),
                n_corrupt: l.ni_out.corrupt_discards.len(),
                injection,
                reroutes: l.ni_out.reroutes,
                congestion_reroutes: l.ni_out.congestion_reroutes,
            });
            l.delivered.append(&mut l.ni_out.delivered);
            l.corrupt.append(&mut l.ni_out.corrupt_discards);
        }
    }

    // Routers (the fault pre-pass already ran densely in phase A; this
    // loop only reads its flattened stuck flags).
    for r in 0..w.routers.len() {
        let i = w.router0 + r;
        let flags = &stuck[i * ports..(i + 1) * ports];
        let due = w.router_wake[r] <= now;
        if event && !due && !w.routers[r].is_active(now) {
            continue;
        }
        if due {
            let inbox = &mut w.router_inboxes[r];
            for (p, port_stuck) in flags.iter().enumerate() {
                if *port_stuck {
                    continue;
                }
                let q = &mut inbox.flits[p];
                let mut j = 0;
                while j < q.len() {
                    if q[j].0 <= now {
                        l.arrivals.push((p, q.remove(j).1));
                    } else {
                        j += 1;
                    }
                }
            }
            for p in 0..ports {
                let q = &mut inbox.credits[p];
                let mut j = 0;
                while j < q.len() {
                    if q[j].0 <= now {
                        l.credits.push((p, q.remove(j).1));
                    } else {
                        j += 1;
                    }
                }
            }
            let mut j = 0;
            while j < inbox.undos.len() {
                if inbox.undos[j].0 <= now {
                    let (_, k, d) = inbox.undos.remove(j);
                    l.undos.push((k, d));
                } else {
                    j += 1;
                }
            }
            w.router_wake[r] = w.router_inboxes[r].next_due();
        }
        l.moved |= !l.arrivals.is_empty();
        l.outgoing_tmp.clear();
        w.routers[r].tick(
            now,
            &mut l.arrivals,
            &mut l.credits,
            &mut l.undos,
            &mut l.outgoing_tmp,
        );
        if !l.outgoing_tmp.is_empty() {
            l.router_merge.push((i, l.outgoing_tmp.len()));
            l.outgoing.append(&mut l.outgoing_tmp);
        }
    }
}

/// One scheduled permanent-fault transition, precomputed at construction
/// from the [`FaultConfig`] and applied densely at the top of the cycle
/// loop (RNG-free, so both kernels see the identical fault stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TopoChange {
    /// The link between two adjacent routers dies.
    LinkDown(NodeId, NodeId),
    /// A bounded dead-link window ends.
    LinkUp(NodeId, NodeId),
    /// A whole router dies (all five of its links with it).
    RouterDown(NodeId),
    /// A bounded dead-router window ends.
    RouterUp(NodeId),
}

/// Runtime state of the adaptive policy layer (DESIGN.md §14): the knobs,
/// the region map (its *own* `ShardPlan`, independent of the `RC_SHARDS`
/// execution plan so decisions are shard-invariant), the deterministic
/// controller, the cumulative counters and the next decision cycle.
/// Boxed behind `Option` so the default (adaptive-off) network carries a
/// single extra pointer.
#[derive(Debug)]
struct AdaptiveState {
    cfg: AdaptiveConfig,
    plan: ShardPlan,
    controller: PolicyController,
    report: AdaptiveReport,
    next_decision: Cycle,
}

/// One injected packet, tracked until delivery or abandonment: the raw
/// material for per-message watchdog ages and end-to-end retransmission.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Outstanding {
    src: NodeId,
    dst: NodeId,
    class: MessageClass,
    len: u32,
    block: u64,
    token: u64,
    created_at: Cycle,
    /// The reply committed to riding its own complete circuit at inject.
    committed: bool,
    /// The circuit key the reply intended to ride, if any.
    circuit_key: Option<CircuitKey>,
    /// End-to-end retransmissions issued so far.
    retries: u32,
}

/// A mesh NoC instance.
///
/// Drive it with [`Network::tick`]; submit packets with
/// [`Network::inject`]; collect arrivals with [`Network::take_delivered`].
/// See the crate docs for a complete example.
///
/// Fault injection is enabled with [`Network::with_faults`]; liveness is
/// observable at any time through [`Network::health`] and
/// [`Network::stalled`]. The watchdog bookkeeping is always on and purely
/// observational, so it never perturbs the simulation.
pub struct Network {
    cfg: NocConfig,
    routers: Vec<Router>,
    nis: Vec<Ni>,
    router_inboxes: Vec<RouterInbox>,
    ni_inboxes: Vec<NiInbox>,
    delivered: Vec<Vec<Delivered>>,
    stats: NocStats,
    now: Cycle,
    next_packet: u64,
    /// `Some` only when the fault configuration can actually fire — a
    /// fault-free network carries no fault state at all, which is what
    /// makes `FaultConfig::none()` bit-identical to no fault layer.
    faults: Option<FaultState>,
    /// The live dead-link / dead-router map, updated as the scheduled
    /// fault events in [`Network::fault_schedule`] fire. Routing and the
    /// NIs consult it; a healthy map costs one boolean check per packet.
    topo: TopologyHealth,
    /// Scheduled permanent-fault transitions, sorted by cycle.
    fault_schedule: Vec<(Cycle, TopoChange)>,
    /// First not-yet-applied entry of `fault_schedule`.
    fault_cursor: usize,
    watchdog: WatchdogConfig,
    /// Every injected, not-yet-delivered packet (src == dst traffic never
    /// enters the network and is not tracked).
    outstanding: HashMap<PacketId, Outstanding>,
    /// Scheduled end-to-end retransmissions: (due cycle, packet).
    retry_queue: Vec<(Cycle, PacketId)>,
    /// Circuits hit by table corruption or dead-resource teardown;
    /// consumed when their reply is delivered to reclassify it as
    /// `FaultDegraded`.
    faulted_circuits: HashSet<CircuitKey>,
    /// Packets whose head flit died at a dead link; their remaining flits
    /// are eaten silently at the same link (packet-atomic loss).
    dead_eating: HashSet<PacketId>,
    /// Last cycle any flit moved (arrived, ejected or was delivered).
    last_progress: Cycle,
    /// Which kernel drives the per-cycle loops (see [`KernelMode`]).
    kernel: KernelMode,
    /// Earliest due inbox item per NI (event-kernel wake times).
    ni_wake: WakeTimes,
    /// Earliest due inbox item per router (event-kernel wake times).
    router_wake: WakeTimes,
    /// Reusable per-tick buffers.
    scratch: Scratch,
    /// Open-loop edge ingress (bounded queues + admission control);
    /// `None` unless [`Network::configure_ingress`] was called, so
    /// closed-loop runs carry no ingress state at all.
    ingress: Option<Box<IngressState>>,
    /// Where trace events go; [`TraceSink::Disabled`] by default.
    sink: TraceSink,
    /// In-tick domain decomposition; `None` selects the serial path. See
    /// [`Network::set_shards`].
    shard_plan: Option<ShardPlan>,
    /// One [`ShardLocal`] per shard (empty on the serial path).
    shard_locals: Vec<ShardLocal>,
    /// Per-NI staging buffers, installed while sharded tracing is active
    /// (see [`Network::rewire_sinks`]); empty otherwise.
    ni_stage: Vec<TraceSink>,
    /// Per-router staging buffers for sharded tracing; empty otherwise.
    router_stage: Vec<TraceSink>,
    /// Adaptive policy layer; `None` (the default) is the exact seed
    /// behavior. See [`Network::enable_adaptive`].
    adaptive: Option<Box<AdaptiveState>>,
    /// Which routers the adaptive policy currently marks hot, plus the
    /// staleness era for recorded detour paths. Always present (an
    /// all-calm map when adaptation is off) because the era also fences
    /// fault-heal staleness: it bumps on every link/router revival, so
    /// post-heal replies stop riding detours recorded under the fault.
    congestion: CongestionMap,
}

impl Network {
    /// Builds the network for a configuration, without fault injection.
    ///
    /// # Errors
    ///
    /// Returns the mechanism's [`ConfigError`] when the configuration is
    /// internally inconsistent (see
    /// [`MechanismConfig::validate`](rcsim_core::MechanismConfig::validate)).
    pub fn new(cfg: NocConfig) -> Result<Self, ConfigError> {
        Network::with_faults(cfg, FaultConfig::none())
    }

    /// Builds the network with a fault-injection configuration. Passing
    /// [`FaultConfig::none`] is exactly equivalent to [`Network::new`].
    ///
    /// # Errors
    ///
    /// Returns the mechanism's [`ConfigError`] when the configuration is
    /// internally inconsistent.
    pub fn with_faults(cfg: NocConfig, faults: FaultConfig) -> Result<Self, ConfigError> {
        cfg.mechanism.validate()?;
        faults.validate(&cfg.topology)?;
        let tiles = cfg.topology.nodes();
        let routers_n = cfg.topology.routers();
        let ports = cfg.topology.ports();
        let mut fault_schedule = Vec::new();
        for e in &faults.dead_links {
            fault_schedule.push((e.at, TopoChange::LinkDown(e.a, e.b)));
            if let Some(h) = e.heals_at() {
                fault_schedule.push((h, TopoChange::LinkUp(e.a, e.b)));
            }
        }
        for e in &faults.dead_routers {
            fault_schedule.push((e.at, TopoChange::RouterDown(e.node)));
            if let Some(h) = e.heals_at() {
                fault_schedule.push((h, TopoChange::RouterUp(e.node)));
            }
        }
        fault_schedule.sort_by_key(|&(t, _)| t);
        let mut net = Self {
            cfg,
            routers: cfg
                .topology
                .iter_routers()
                .map(|id| Router::new(id, &cfg))
                .collect(),
            nis: cfg
                .topology
                .iter_tiles()
                .map(|id| Ni::new(id, &cfg))
                .collect(),
            router_inboxes: (0..routers_n).map(|_| RouterInbox::new(ports)).collect(),
            ni_inboxes: (0..tiles).map(|_| NiInbox::default()).collect(),
            delivered: vec![Vec::new(); tiles],
            stats: NocStats::default(),
            now: 0,
            next_packet: 0,
            faults: if faults.is_none() {
                None
            } else {
                Some(FaultState::new(faults))
            },
            topo: TopologyHealth::new(),
            fault_schedule,
            fault_cursor: 0,
            watchdog: WatchdogConfig::default(),
            outstanding: HashMap::new(),
            retry_queue: Vec::new(),
            faulted_circuits: HashSet::new(),
            dead_eating: HashSet::new(),
            last_progress: 0,
            kernel: KernelMode::from_env(),
            ni_wake: WakeTimes::new(tiles),
            router_wake: WakeTimes::new(routers_n),
            scratch: Scratch::default(),
            ingress: None,
            sink: TraceSink::default(),
            shard_plan: None,
            shard_locals: Vec::new(),
            ni_stage: Vec::new(),
            router_stage: Vec::new(),
            adaptive: None,
            congestion: CongestionMap::new(routers_n),
        };
        // Like the kernel, the shard count is an environment knob rather
        // than part of the (serialized, cache-keyed) configuration:
        // results are byte-identical at any count, so it must never
        // invalidate caches or goldens.
        net.set_shards(shards_from_env());
        Ok(net)
    }

    /// Selects the in-tick shard count: `1` (the default) is the serial
    /// path; `n > 1` partitions the fabric into `n` contiguous router
    /// domains ticked on `n` scoped worker threads per cycle. Results are
    /// required — and tested, see `rcsim-system/tests/kernel_diff.rs` —
    /// to be byte-identical at every count, making this purely a host
    /// parallelism knob (the in-tick analogue of `RC_JOBS`). Counts above
    /// the router count are clamped. Construction honours the
    /// `RC_SHARDS` environment knob.
    pub fn set_shards(&mut self, shards: usize) {
        let shards = shards.clamp(1, self.cfg.topology.routers().max(1));
        if shards <= 1 {
            self.shard_plan = None;
            self.shard_locals.clear();
        } else {
            let plan = ShardPlan::new(&self.cfg.topology, shards);
            self.shard_locals = (0..plan.shards()).map(|_| ShardLocal::default()).collect();
            self.shard_plan = Some(plan);
        }
        self.rewire_sinks();
    }

    /// The active in-tick shard count.
    pub fn shards(&self) -> usize {
        self.shard_plan.as_ref().map_or(1, ShardPlan::shards)
    }

    /// Selects the simulation kernel. Both kernels are required to
    /// produce byte-identical results; `Event` (the default, overridable
    /// via `RC_KERNEL=dense`) skips provably idle components.
    pub fn set_kernel(&mut self, kernel: KernelMode) {
        self.kernel = kernel;
    }

    /// The active simulation kernel.
    pub fn kernel(&self) -> KernelMode {
        self.kernel
    }

    /// Installs the adaptive runtime-policy layer (DESIGN.md §14): a
    /// deterministic per-region controller that, every
    /// [`AdaptiveConfig::decision_epoch`] cycles — in the serial tick
    /// prologue, so `RC_KERNEL` and `RC_SHARDS` byte-identity is
    /// preserved — samples occupancy telemetry per region and flips
    /// regions between calm and hot with hysteresis and min-dwell. While
    /// a region is hot, requests whose reply path would cross it skip
    /// circuit construction (path-sensitive mechanism switch; the
    /// established circuits through it are torn down via §4.4 undo), and
    /// congestion-aware detours route traffic around its routers — per
    /// the config's `mech_switch` / `detour` switches.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::AdaptivePolicy`] when the knobs violate
    /// their invariants (see [`AdaptiveConfig::validate`]).
    pub fn enable_adaptive(&mut self, cfg: AdaptiveConfig) -> Result<(), ConfigError> {
        cfg.validate()?;
        let plan = ShardPlan::new(&self.cfg.topology, cfg.regions);
        let controller = PolicyController::new(cfg, plan.shards());
        self.congestion.set_features(cfg.detour, cfg.mech_switch);
        self.adaptive = Some(Box::new(AdaptiveState {
            cfg,
            plan,
            controller,
            report: AdaptiveReport::default(),
            next_decision: self.now + cfg.decision_epoch,
        }));
        Ok(())
    }

    /// The adaptive-policy counters (all zero when adaptation is off).
    pub fn adaptive_report(&self) -> AdaptiveReport {
        self.adaptive
            .as_ref()
            .map(|a| {
                let mut r = a.report;
                r.hot_regions = a.controller.hot_regions();
                r.circuits_suppressed = self.nis.iter().map(|ni| ni.circuits_suppressed()).sum();
                r
            })
            .unwrap_or_default()
    }

    /// Installs a trace sink, fanning it out to every NI and router so the
    /// whole fabric records into one shared event log. Pass
    /// [`TraceSink::Disabled`] to turn tracing back off.
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.sink = sink;
        self.rewire_sinks();
    }

    /// (Re)installs per-component sinks for the active shard/trace
    /// combination: direct clones of the shared sink on the serial path
    /// (or when tracing is off), per-component staging buffers when the
    /// sharded path is active with tracing on. Workers then record
    /// concurrently without interleaving, and the merge replays every
    /// buffer into the shared sink in fixed component order — reproducing
    /// the serial emission order exactly. NIs and routers emit only from
    /// inside their `tick`, so a staging buffer never carries events
    /// across a cycle boundary.
    fn rewire_sinks(&mut self) {
        if self.shard_plan.is_some() && self.sink.is_enabled() {
            self.ni_stage = self.nis.iter().map(|_| TraceSink::buffer()).collect();
            self.router_stage = self.routers.iter().map(|_| TraceSink::buffer()).collect();
            for (ni, stage) in self.nis.iter_mut().zip(&self.ni_stage) {
                ni.set_trace_sink(stage.clone());
            }
            for (r, stage) in self.routers.iter_mut().zip(&self.router_stage) {
                r.set_trace_sink(stage.clone());
            }
        } else {
            self.ni_stage.clear();
            self.router_stage.clear();
            for ni in &mut self.nis {
                ni.set_trace_sink(self.sink.clone());
            }
            for r in &mut self.routers {
                r.set_trace_sink(self.sink.clone());
            }
        }
    }

    /// The occupancy snapshot the trace layer samples once per epoch.
    pub fn telemetry(&self) -> NetworkTelemetry {
        NetworkTelemetry {
            circuit_entries: self
                .routers
                .iter()
                .map(|r| r.circuits.total_entries() as u64)
                .sum(),
            buffered_flits: self.routers.iter().map(|r| r.buffered_flits() as u64).sum(),
            ni_backlog: self.nis.iter().map(|ni| ni.backlog() as u64).sum(),
        }
    }

    /// Replaces the watchdog thresholds.
    pub fn set_watchdog(&mut self, watchdog: WatchdogConfig) {
        self.watchdog = watchdog;
    }

    /// The active watchdog thresholds.
    pub fn watchdog(&self) -> &WatchdogConfig {
        &self.watchdog
    }

    /// Installs the open-loop ingress layer at `edges` (bounded queues,
    /// token-bucket admission, shed timeouts — see [`IngressConfig`]).
    /// Until this is called, [`Network::offer_external`] panics and the
    /// network carries no ingress state.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty or names a node outside the mesh.
    pub fn configure_ingress(&mut self, cfg: IngressConfig, edges: Vec<NodeId>) {
        assert!(!edges.is_empty(), "ingress needs at least one edge node");
        for e in &edges {
            assert!(
                e.index() < self.cfg.topology.nodes(),
                "ingress edge {e} outside mesh"
            );
        }
        self.ingress = Some(Box::new(IngressState::new(cfg, edges)));
    }

    /// Offers one external arrival at ingress edge `edge`, destined for
    /// `dst` with external block address `block`. Returns the typed
    /// admission outcome; rejected clients should re-offer no sooner than
    /// the returned `retry_after`. Emits an `ingress_admit` or
    /// `ingress_reject` trace event either way — refusal is never silent.
    ///
    /// # Panics
    ///
    /// Panics when no ingress layer is configured or `edge` is not one of
    /// its edges.
    pub fn offer_external(&mut self, edge: NodeId, dst: NodeId, block: u64) -> Admission {
        let now = self.now;
        let ingress = self
            .ingress
            .as_mut()
            .expect("configure_ingress before offer_external");
        let outcome = ingress.offer(now, edge, dst, block);
        self.sink.emit(|| rcsim_trace::TraceEvent {
            cycle: now,
            kind: match outcome {
                Admission::Admitted { depth } => EventKind::IngressAdmit {
                    node: edge.0,
                    depth,
                },
                Admission::Rejected {
                    reason,
                    retry_after,
                } => EventKind::IngressReject {
                    node: edge.0,
                    queue_full: reason == crate::ingress::RejectReason::QueueFull,
                    retry_after,
                },
            },
        });
        outcome
    }

    /// One cycle of ingress service, to be called once per cycle *before*
    /// [`Network::tick`]: refills token buckets, sheds queue heads older
    /// than the shed timeout (emitting `ingress_shed` events), and
    /// releases at most one arrival per edge whose NI backlog is under
    /// the backpressure threshold. Released arrivals are appended to
    /// `out`; the caller injects them this same cycle. A no-op when no
    /// ingress layer is configured.
    pub fn drain_ingress(&mut self, out: &mut Vec<ReleasedArrival>) {
        let Some(mut ingress) = self.ingress.take() else {
            return;
        };
        let backlogs: Vec<usize> = ingress
            .edge_nodes()
            .iter()
            .map(|e| self.nis[e.index()].backlog())
            .collect();
        let mut shed: Vec<ShedArrival> = Vec::new();
        ingress.drain(self.now, &backlogs, out, &mut shed);
        self.ingress = Some(ingress);
        for s in &shed {
            self.sink.emit(|| rcsim_trace::TraceEvent {
                cycle: self.now,
                kind: EventKind::IngressShed {
                    node: s.edge.0,
                    waited: s.waited,
                },
            });
        }
    }

    /// The cumulative ingress ledger (all-zero when no ingress layer is
    /// configured).
    pub fn overload_report(&self) -> OverloadReport {
        self.ingress
            .as_ref()
            .map(|i| i.report())
            .unwrap_or_default()
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Current simulation cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Submits a packet at its source NI. Returns the packet id and, for
    /// replies, whether the packet committed to riding its own complete
    /// circuit — the condition under which the protocol may eliminate the
    /// `L1_DATA_ACK` (§4.6).
    ///
    /// A packet with `src == dst` never enters the network: it is
    /// delivered directly on the next cycle (tile-local traffic).
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` are outside the mesh.
    pub fn inject(&mut self, spec: PacketSpec) -> (PacketId, bool) {
        assert!(
            spec.src.index() < self.cfg.topology.nodes(),
            "src out of range"
        );
        assert!(
            spec.dst.index() < self.cfg.topology.nodes(),
            "dst out of range"
        );
        let id = PacketId(self.next_packet);
        self.next_packet += 1;
        self.sink.emit(|| rcsim_trace::TraceEvent {
            cycle: self.now,
            kind: EventKind::NiEnqueue {
                packet: id.0,
                src: spec.src.0,
                dst: spec.dst.0,
                class: spec.class.label(),
            },
        });
        if spec.src == spec.dst {
            // Tile-local traffic never enters the network; record its
            // ejection here so the lifecycle invariant (one terminal event
            // per enqueue) holds for every packet.
            self.sink.emit(|| rcsim_trace::TraceEvent {
                cycle: self.now + 1,
                kind: EventKind::NiEject {
                    packet: id.0,
                    node: spec.dst.0,
                    rode_circuit: false,
                    retries: 0,
                },
            });
            self.delivered[spec.dst.index()].push(Delivered {
                packet: id,
                src: spec.src,
                dst: spec.dst,
                class: spec.class,
                block: spec.block,
                token: spec.token,
                created_at: self.now,
                injected_at: self.now,
                delivered_at: self.now + 1,
                circuit: None,
                rode_circuit: false,
            });
            return (id, false);
        }
        let committed = self.nis[spec.src.index()].enqueue(
            spec,
            id,
            self.now,
            &self.congestion,
            &mut self.stats,
        );
        self.outstanding.insert(
            id,
            Outstanding {
                src: spec.src,
                dst: spec.dst,
                class: spec.class,
                len: spec
                    .flits_override
                    .unwrap_or_else(|| spec.class.flits(self.cfg.flit_bytes)),
                block: spec.block,
                token: spec.token,
                created_at: self.now,
                committed,
                circuit_key: spec.circuit_key,
                retries: 0,
            },
        );
        (id, committed)
    }

    /// Tears down an unused circuit whose origin is `node`'s NI — the
    /// protocol calls this when the L2 forwards a request to an owning L1
    /// instead of replying itself (§4.4). Returns `false` when no such
    /// circuit is registered.
    pub fn undo_circuit(&mut self, node: NodeId, key: CircuitKey) -> bool {
        self.nis[node.index()].undo_circuit(key, &mut self.stats)
    }

    /// `true` when `node`'s NI holds a fully built circuit origin for
    /// `key` (diagnostic / test helper).
    pub fn has_circuit_origin(&self, node: NodeId, key: CircuitKey) -> bool {
        self.nis[node.index()].has_origin(key)
    }

    /// Records an `L1_DATA_ACK` eliminated by the protocol (§4.6) so the
    /// Figure 6 outcome breakdown stays complete.
    pub fn record_eliminated_ack(&mut self) {
        self.stats
            .record_outcome(crate::stats::CircuitOutcome::Eliminated);
    }

    /// Records a reply outcome classified by the protocol layer (e.g. the
    /// logical reply of a forwarded transaction whose circuit had already
    /// failed mid-path and so was never registered at an NI).
    pub fn record_reply_outcome(&mut self, outcome: crate::stats::CircuitOutcome) {
        self.stats.record_outcome(outcome);
    }

    /// Packets fully received at `node` since the last call.
    pub fn take_delivered(&mut self, node: NodeId) -> Vec<Delivered> {
        std::mem::take(&mut self.delivered[node.index()])
    }

    /// Packets fully received anywhere since the last call, as
    /// `(node, packet)` pairs.
    pub fn take_all_delivered(&mut self) -> Vec<(NodeId, Delivered)> {
        let mut all = Vec::new();
        for (i, v) in self.delivered.iter_mut().enumerate() {
            for d in v.drain(..) {
                all.push((NodeId(i as u16), d));
            }
        }
        all
    }

    /// Advances the network by one clock cycle.
    ///
    /// Under [`KernelMode::Event`] the NI and router loops skip
    /// components with no due inbox traffic and no internal activity
    /// (see [`Ni::is_active`] / [`Router::is_active`] for the no-op
    /// argument); everything else — iteration order, drain order, fault
    /// RNG draws, statistics — is shared verbatim with the dense kernel.
    /// With [`Network::set_shards`] above 1, the sharded path runs
    /// instead — byte-identical by construction, see
    /// [`Network::tick_sharded`].
    pub fn tick(&mut self) {
        if self.shard_plan.is_some() {
            self.tick_sharded();
        } else {
            self.tick_serial();
        }
    }

    /// The serial prologue shared by both tick paths: scheduled fault
    /// transitions, due end-to-end retransmissions, and the dense fault
    /// pre-pass (all order-sensitive, none shardable).
    fn tick_prologue(&mut self, now: Cycle, stuck: &mut Vec<bool>) {
        // Scheduled dead-link / dead-router transitions fire first, before
        // anything moves this cycle: they are dense (kernel-independent)
        // and draw no fault RNG.
        self.process_fault_onsets(now);

        // Adaptive policy decisions come next, after the fault map has
        // settled (a sample taken exactly at a fault-onset tick sees the
        // post-onset state). Serial, dense, RNG-free: decisions — and the
        // trace events and teardowns they trigger — land at the same
        // point of every tick path, which is the whole byte-identity
        // argument for `RC_KERNEL` × `RC_SHARDS` under adaptation.
        self.adaptive_tick(now);

        // Due end-to-end retransmissions re-enter their source NI.
        let mut due_retries = Vec::new();
        self.retry_queue.retain(|&(t, id)| {
            if t <= now {
                due_retries.push(id);
                false
            } else {
                true
            }
        });
        for id in due_retries {
            if let Some(rec) = self.outstanding.get(&id) {
                self.nis[rec.src.index()].reenqueue_retry(
                    id,
                    rec.src,
                    rec.dst,
                    rec.class,
                    rec.len,
                    rec.block,
                    rec.token,
                    rec.created_at,
                    now,
                );
            }
        }

        self.fault_pre_pass(now, stuck);
    }

    /// One adaptive-policy step: on decision-epoch boundaries, samples
    /// every region's occupancy, runs the controller, and applies the
    /// switched regions' effects — circuit suppression flags, congestion
    /// map updates (with an era bump when a region cools, staling
    /// recorded detours through it), region circuit teardown, event
    /// wake-ups and trace events. A no-op (one `Option` check) when
    /// adaptation is off.
    fn adaptive_tick(&mut self, now: Cycle) {
        let Some(mut ad) = self.adaptive.take() else {
            return;
        };
        if now >= ad.next_decision {
            while ad.next_decision <= now {
                ad.next_decision += ad.cfg.decision_epoch;
            }
            let samples = self.region_samples(&ad.plan);
            // Threshold-calibration aid: `RC_ADAPT_DEBUG=1` dumps every
            // epoch's region scores to stderr so `hot_enter`/`hot_exit`
            // can be placed relative to a workload's calm and burst
            // bands. Output only — never feeds back into decisions.
            if std::env::var_os("RC_ADAPT_DEBUG").is_some() {
                let scores: Vec<u64> = samples.iter().map(|s| s.score()).collect();
                eprintln!("[adaptive] t={now} scores={scores:?}");
            }
            let decisions = ad.controller.decide(now, &samples);
            ad.report.decisions += 1;
            let mut newly_hot: Vec<usize> = Vec::new();
            for d in decisions.iter().filter(|d| d.switched) {
                let hot = d.mode == RegionMode::Hot;
                self.sink.emit(|| rcsim_trace::TraceEvent {
                    cycle: now,
                    kind: EventKind::PolicySwitch {
                        region: d.region as u16,
                        hot,
                        score: d.score,
                    },
                });
                if hot {
                    ad.report.hot_switches += 1;
                    if ad.cfg.mech_switch {
                        newly_hot.push(d.region);
                    }
                } else {
                    ad.report.calm_switches += 1;
                }
                // Both features key off the hot-router map: detours avoid
                // hot routers, the mechanism switch suppresses circuits
                // whose reply path crosses one. Which of the two actually
                // fires is gated by the feature bits armed on the map at
                // [`Network::enable_adaptive`] time.
                if ad.cfg.detour || ad.cfg.mech_switch {
                    for r in ad.plan.router_range(d.region) {
                        self.congestion.set_hot(r, hot);
                    }
                    if !hot {
                        // The blocking condition cleared: recorded detour
                        // paths through this region are stale from now on.
                        self.congestion.bump_era();
                    }
                }
                // Wake the region so the event kernel re-evaluates its
                // components under the new policy this very cycle.
                for t in ad.plan.tile_range(d.region) {
                    self.ni_wake.wake_at(t, now);
                }
                for r in ad.plan.router_range(d.region) {
                    self.router_wake.wake_at(r, now);
                }
            }
            if !newly_hot.is_empty() {
                ad.report.circuits_torn_on_switch +=
                    self.teardown_regions(now, &ad.plan, &newly_hot);
            }
            ad.report.hot_regions = ad.controller.hot_regions();
        }
        self.adaptive = Some(ad);
    }

    /// Per-region occupancy sums (the [`Network::telemetry`] quantities,
    /// split over the region plan's contiguous router/tile ranges).
    fn region_samples(&self, plan: &ShardPlan) -> Vec<RegionSample> {
        (0..plan.shards())
            .map(|s| {
                let rr = plan.router_range(s);
                let routers = rr.len() as u64;
                RegionSample {
                    buffered_flits: self.routers[rr.clone()]
                        .iter()
                        .map(|r| r.buffered_flits() as u64)
                        .sum(),
                    circuit_entries: self.routers[rr]
                        .iter()
                        .map(|r| r.circuits.total_entries() as u64)
                        .sum(),
                    ni_backlog: self.nis[plan.tile_range(s)]
                        .iter()
                        .map(|ni| ni.backlog() as u64)
                        .sum(),
                    routers,
                }
            })
            .collect()
    }

    /// Mechanism-switch circuit teardown. Unlike the fault path
    /// ([`Network::teardown_circuits`]), which may rip table entries out
    /// directly because the dead resource also kills any flit that still
    /// references them, a policy switch happens on a *healthy* fabric:
    /// requests may still be mid-flight writing reservations, scroungers
    /// may be borrowing, and a direct release would strand headless body
    /// flits. So the teardown goes through each circuit's NI *origin*
    /// instead: every built circuit whose reply path (YX
    /// source→requestor) crosses a newly-hot region has its origin
    /// forgotten and §4.4 undo propagation started
    /// ([`Ni::teardown_origin`]) — the proven abort path, which releases
    /// entries hop by hop and defers in-use entries to the passing tail.
    /// NIs are visited in index order and keys in sorted order, so the
    /// teardown (and its `CircuitTear` trace stream) is deterministic.
    /// Returns the circuits torn.
    fn teardown_regions(&mut self, now: Cycle, plan: &ShardPlan, regions: &[usize]) -> u64 {
        let topology = self.cfg.topology;
        let mut torn = 0u64;
        for i in 0..self.nis.len() {
            let node = NodeId(i as u16);
            for key in self.nis[i].origin_keys() {
                let reply_path = topology.route_path(node, key.requestor, Routing::Yx);
                if reply_path
                    .iter()
                    .any(|r| regions.contains(&plan.shard_of_router(r.index())))
                    && self.nis[i].teardown_origin(key)
                {
                    torn += 1;
                    self.ni_wake.wake_at(i, now);
                }
            }
        }
        torn
    }

    /// The dense per-cycle fault pre-pass, hoisted ahead of the NI and
    /// router loops: computes every router's stuck-port flags into
    /// `stuck` (flattened `router × port`), counts stuck-port cycles, and
    /// rolls each router's table-corruption draw. It runs for every
    /// router in index order regardless of kernel or shard count, so the
    /// fault RNG stream is `corrupt(0..n)` then `links(0..n)` — identical
    /// across kernels and shard counts. Scheduled stuck-port windows
    /// freeze individual input ports: their arrivals stay queued on the
    /// link until the window ends.
    fn fault_pre_pass(&mut self, now: Cycle, stuck: &mut Vec<bool>) {
        let routers_n = self.cfg.topology.routers();
        let ports = self.cfg.topology.ports();
        stuck.clear();
        stuck.resize(routers_n * ports, false);
        if self.faults.is_none() {
            return;
        }
        for i in 0..routers_n {
            let flags = &mut stuck[i * ports..(i + 1) * ports];
            if let Some(fs) = &self.faults {
                for (p, st) in flags.iter_mut().enumerate() {
                    // Scheduled stuck-port events name network ports by
                    // direction; every local port maps to `Local`.
                    let dir = if p < PORT_LOCAL {
                        Direction::from_index(p)
                    } else {
                        Direction::Local
                    };
                    *st = fs.port_stuck(i, dir, now);
                }
            }
            if let Some(fs) = self.faults.as_mut() {
                fs.stats.stuck_port_cycles += flags.iter().filter(|&&st| st).count() as u64;
            }
            // Soft errors in the reservation SRAM: one random entry of one
            // random port evaporates; the riding reply (if any) degrades
            // to the ordinary pipeline at this router.
            if let Some((port, draw)) = self
                .faults
                .as_mut()
                .and_then(|fs| fs.roll_table_corruption(ports))
            {
                let occ = self.routers[i].circuits.port_occupancy(port);
                if occ > 0 {
                    if let Some(e) = self.routers[i].circuits.fault_remove(port, draw % occ) {
                        self.faulted_circuits.insert(e.key);
                        if let Some(fs) = self.faults.as_mut() {
                            fs.stats.table_entries_corrupted += 1;
                        }
                    }
                }
            }
        }
    }

    /// The serial (single-shard) tick path.
    fn tick_serial(&mut self) {
        let now = self.now;
        let tiles = self.cfg.topology.nodes();
        let routers_n = self.cfg.topology.routers();
        let ports = self.cfg.topology.ports();
        let mut moved = false;
        let event = self.kernel == KernelMode::Event;
        let mut s = std::mem::take(&mut self.scratch);

        self.tick_prologue(now, &mut s.stuck);

        // NIs first: they consume flits/credits produced last cycle and
        // inject at most one flit each into their router's local port.
        for i in 0..tiles {
            let due = self.ni_wake.due(i, now);
            if event && !due && !self.nis[i].is_active() {
                // Nothing due and nothing queued or streaming: the tick
                // would be a no-op; skip it.
                continue;
            }
            if due {
                drain_due_into(&mut self.ni_inboxes[i].flits, now, &mut s.ejected);
                drain_due_into(&mut self.ni_inboxes[i].credits, now, &mut s.ni_credits);
                self.ni_wake.set(i, self.ni_inboxes[i].next_due());
            }
            moved |= !s.ejected.is_empty();
            s.ni_out.clear();
            self.nis[i].tick(
                now,
                &mut s.ejected,
                &mut s.ni_credits,
                &self.topo,
                &self.congestion,
                &mut s.ni_out,
            );
            moved |= !s.ni_out.flits.is_empty() || !s.ni_out.delivered.is_empty();
            // Replay the tick's deferred statistics in the canonical
            // per-NI order — deliveries (in ejection order), then the
            // at-most-one injection, then reroutes. The sharded merge
            // replays the same sequence from its staging buffers, which
            // is what keeps f64 accumulation order (and therefore every
            // statistic) byte-identical across shard counts.
            for d in &s.ni_out.delivered {
                self.stats.record_delivery(
                    d.class,
                    d.injected_at - d.created_at,
                    d.delivered_at - d.injected_at,
                );
            }
            if let Some((class, len)) = s.ni_out.injection.take() {
                self.stats.record_injection(class, len);
            }
            if s.ni_out.reroutes > 0 {
                if let Some(fs) = self.faults.as_mut() {
                    fs.stats.packets_rerouted += s.ni_out.reroutes;
                }
            }
            if s.ni_out.congestion_reroutes > 0 {
                if let Some(ad) = self.adaptive.as_mut() {
                    ad.report.congestion_detours += s.ni_out.congestion_reroutes;
                }
            }
            let tile = NodeId(i as u16);
            let router = self.cfg.topology.router_of(tile).index();
            let inject_port = self.cfg.topology.eject_port(tile);
            for flit in s.ni_out.flits.drain(..) {
                self.router_wake.wake_at(router, now + 1);
                self.router_inboxes[router].flits[inject_port].push((now + 1, flit));
            }
            for (key, dst) in s.ni_out.undos.drain(..) {
                self.router_wake.wake_at(router, now + 1);
                self.router_inboxes[router].undos.push((now + 1, key, dst));
            }
            for id in s.ni_out.corrupt_discards.drain(..) {
                self.schedule_retry(id, now);
            }
            for mut d in s.ni_out.delivered.drain(..) {
                let retries = self.note_delivered(&mut d);
                self.sink.emit(|| rcsim_trace::TraceEvent {
                    cycle: now,
                    kind: EventKind::NiEject {
                        packet: d.packet.0,
                        node: d.dst.0,
                        rode_circuit: d.rode_circuit,
                        retries,
                    },
                });
                self.delivered[i].push(d);
            }
        }

        // Routers. The fault pre-pass already ran densely for every
        // router (see [`Network::fault_pre_pass`]); this loop only reads
        // its flattened per-router stuck flags.
        for i in 0..routers_n {
            let flags = &s.stuck[i * ports..(i + 1) * ports];
            let due = self.router_wake.due(i, now);
            if event && !due && !self.routers[i].is_active(now) {
                // Nothing due, nothing buffered or pending: skip. A stuck
                // port never hides work — its queued arrivals stay in the
                // inbox, keeping the wake time due until the window ends.
                continue;
            }
            if due {
                let inbox = &mut self.router_inboxes[i];
                for (p, port_stuck) in flags.iter().enumerate() {
                    if *port_stuck {
                        continue;
                    }
                    let q = &mut inbox.flits[p];
                    let mut j = 0;
                    while j < q.len() {
                        if q[j].0 <= now {
                            s.arrivals.push((p, q.remove(j).1));
                        } else {
                            j += 1;
                        }
                    }
                }
                for p in 0..ports {
                    let q = &mut inbox.credits[p];
                    let mut j = 0;
                    while j < q.len() {
                        if q[j].0 <= now {
                            s.credits.push((p, q.remove(j).1));
                        } else {
                            j += 1;
                        }
                    }
                }
                let mut j = 0;
                while j < inbox.undos.len() {
                    if inbox.undos[j].0 <= now {
                        let (_, k, d) = inbox.undos.remove(j);
                        s.undos.push((k, d));
                    } else {
                        j += 1;
                    }
                }
                self.router_wake.set(i, self.router_inboxes[i].next_due());
            }
            moved |= !s.arrivals.is_empty();
            s.outgoing.clear();
            self.routers[i].tick(
                now,
                &mut s.arrivals,
                &mut s.credits,
                &mut s.undos,
                &mut s.outgoing,
            );
            self.route_outgoing(NodeId(i as u16), &s.outgoing);
        }

        if moved {
            self.last_progress = now;
        }
        self.stats.cycles += 1;
        self.now = now + 1;
        self.scratch = s;
    }

    /// The sharded tick (`RC_SHARDS > 1`), in three phases:
    ///
    /// * **Phase A (serial):** the shared prologue — scheduled fault
    ///   transitions, due retransmissions, the dense fault pre-pass.
    ///   Everything here is order-sensitive (trace events, RNG draws,
    ///   cross-shard NI mutation) and cheap, so it stays serial.
    /// * **Phase B (parallel):** each shard's NI and router loops run on
    ///   their own scoped worker thread ([`shard_phase_b`]); shard 0 runs
    ///   inline on the calling thread. Workers write only their own
    ///   disjoint state slices — a tile's router is always in the tile's
    ///   shard — and stage every order-sensitive effect.
    /// * **Phase C (serial):** the merge replays the staged effects in
    ///   fixed shard-then-index order: per-NI trace buffers, delivery
    ///   statistics, injections, reroutes, retry scheduling, delivery
    ///   bookkeeping; then per-router trace buffers and
    ///   [`Network::route_outgoing`] (boundary flits/credits/undos plus
    ///   the link-fault RNG draws).
    ///
    /// Because phases A and C execute the serial path's order-sensitive
    /// operations in the serial path's exact order, and phase B's work is
    /// order-insensitive by construction, the result is byte-identical to
    /// the serial tick at any shard count (DESIGN.md §13).
    fn tick_sharded(&mut self) {
        let now = self.now;
        let ports = self.cfg.topology.ports();
        let topology = self.cfg.topology;
        let event = self.kernel == KernelMode::Event;
        let plan = self
            .shard_plan
            .clone()
            .expect("sharded tick without a plan");
        let mut s = std::mem::take(&mut self.scratch);
        let mut locals = std::mem::take(&mut self.shard_locals);

        // Phase A.
        self.tick_prologue(now, &mut s.stuck);

        // Phase B.
        {
            let topo = &self.topo;
            let cong = &self.congestion;
            let stuck = &s.stuck[..];
            let mut works: Vec<ShardWork<'_>> = Vec::with_capacity(plan.shards());
            let mut nis = &mut self.nis[..];
            let mut ni_inboxes = &mut self.ni_inboxes[..];
            let mut ni_wake = self.ni_wake.as_mut_slice();
            let mut routers = &mut self.routers[..];
            let mut router_inboxes = &mut self.router_inboxes[..];
            let mut router_wake = self.router_wake.as_mut_slice();
            let mut locals_rest = &mut locals[..];
            for sh in 0..plan.shards() {
                let tiles = plan.tile_range(sh);
                let rr = plan.router_range(sh);
                let (a, rest) = std::mem::take(&mut nis).split_at_mut(tiles.len());
                nis = rest;
                let (b, rest) = std::mem::take(&mut ni_inboxes).split_at_mut(tiles.len());
                ni_inboxes = rest;
                let (c, rest) = std::mem::take(&mut ni_wake).split_at_mut(tiles.len());
                ni_wake = rest;
                let (d, rest) = std::mem::take(&mut routers).split_at_mut(rr.len());
                routers = rest;
                let (e, rest) = std::mem::take(&mut router_inboxes).split_at_mut(rr.len());
                router_inboxes = rest;
                let (f, rest) = std::mem::take(&mut router_wake).split_at_mut(rr.len());
                router_wake = rest;
                let (l, rest) = std::mem::take(&mut locals_rest).split_at_mut(1);
                locals_rest = rest;
                works.push(ShardWork {
                    tile0: tiles.start,
                    router0: rr.start,
                    nis: a,
                    ni_inboxes: b,
                    ni_wake: c,
                    routers: d,
                    router_inboxes: e,
                    router_wake: f,
                    local: &mut l[0],
                });
            }
            std::thread::scope(|scope| {
                let mut works = works.into_iter();
                let mut first = works.next().expect("plans have at least one shard");
                let handles: Vec<_> = works
                    .map(|mut w| {
                        scope.spawn(move || {
                            shard_phase_b(&mut w, now, event, topology, topo, cong, stuck, ports);
                        })
                    })
                    .collect();
                shard_phase_b(&mut first, now, event, topology, topo, cong, stuck, ports);
                for h in handles {
                    h.join().expect("shard worker panicked");
                }
            });
        }

        // Phase C.
        let tracing = self.sink.is_enabled();
        let mut moved = false;
        for l in &locals {
            moved |= l.moved;
        }
        // NI effects first (tile order), matching the serial NI-then-router
        // loop order.
        for (sh, local) in locals.iter_mut().enumerate() {
            let ShardLocal {
                ni_merge,
                delivered,
                corrupt,
                ..
            } = local;
            let mut deliveries = delivered.drain(..);
            let mut entries = ni_merge.iter().peekable();
            let mut corrupt_at = 0;
            for tile in plan.tile_range(sh) {
                if tracing {
                    for ev in self.ni_stage[tile].drain() {
                        self.sink.emit(move || ev);
                    }
                }
                let Some(e) = entries.next_if(|e| e.tile == tile) else {
                    continue;
                };
                let mut batch: Vec<Delivered> = deliveries.by_ref().take(e.n_delivered).collect();
                for d in &batch {
                    self.stats.record_delivery(
                        d.class,
                        d.injected_at - d.created_at,
                        d.delivered_at - d.injected_at,
                    );
                }
                if let Some((class, len)) = e.injection {
                    self.stats.record_injection(class, len);
                }
                if e.reroutes > 0 {
                    if let Some(fs) = self.faults.as_mut() {
                        fs.stats.packets_rerouted += e.reroutes;
                    }
                }
                if e.congestion_reroutes > 0 {
                    if let Some(ad) = self.adaptive.as_mut() {
                        ad.report.congestion_detours += e.congestion_reroutes;
                    }
                }
                for k in 0..e.n_corrupt {
                    self.schedule_retry(corrupt[corrupt_at + k], now);
                }
                corrupt_at += e.n_corrupt;
                for mut d in batch.drain(..) {
                    let retries = self.note_delivered(&mut d);
                    self.sink.emit(|| rcsim_trace::TraceEvent {
                        cycle: now,
                        kind: EventKind::NiEject {
                            packet: d.packet.0,
                            node: d.dst.0,
                            rode_circuit: d.rode_circuit,
                            retries,
                        },
                    });
                    self.delivered[tile].push(d);
                }
            }
        }
        // Router effects (router order): staged trace events, then the
        // outgoing batch — `route_outgoing` performs the boundary
        // wake/enqueue and every link-fault RNG draw, in the serial order.
        for (sh, local) in locals.iter_mut().enumerate() {
            let ShardLocal {
                router_merge,
                outgoing,
                ..
            } = local;
            let mut entries = router_merge.iter().peekable();
            let mut off = 0;
            for i in plan.router_range(sh) {
                if tracing {
                    for ev in self.router_stage[i].drain() {
                        self.sink.emit(move || ev);
                    }
                }
                let Some(&(_, cnt)) = entries.next_if(|&&(r, _)| r == i) else {
                    continue;
                };
                self.route_outgoing(NodeId(i as u16), &outgoing[off..off + cnt]);
                off += cnt;
            }
        }

        if moved {
            self.last_progress = now;
        }
        self.stats.cycles += 1;
        self.now = now + 1;
        self.scratch = s;
        self.shard_locals = locals;
    }

    /// Watchdog bookkeeping at delivery: closes the packet's outstanding
    /// record and, when a committed circuit ride was hit by a fault along
    /// the way (retransmitted, or its circuit corrupted out of a table),
    /// reclassifies its Figure 6 outcome as `FaultDegraded` and keeps the
    /// delivery's `rode_circuit` flag consistent with the sender's §4.6
    /// NoAck commitment. Returns the packet's end-to-end retry count.
    fn note_delivered(&mut self, d: &mut Delivered) -> u32 {
        let Some(rec) = self.outstanding.remove(&d.packet) else {
            return 0;
        };
        let key_faulted = rec
            .circuit_key
            .is_some_and(|k| self.faulted_circuits.remove(&k));
        if rec.committed && (rec.retries > 0 || key_faulted) {
            self.stats
                .reclassify_outcome(CircuitOutcome::OnCircuit, CircuitOutcome::FaultDegraded);
            // The sender committed to the NoAck condition; the receiver
            // must still elide its ack even though the reply limped home.
            d.rode_circuit = true;
        }
        rec.retries
    }

    /// Marks `id` as hit by a fault and schedules its next end-to-end
    /// retransmission (linear backoff), or abandons it once the retry
    /// budget is spent. No-op without fault injection.
    fn schedule_retry(&mut self, id: PacketId, at: Cycle) {
        let Some(fs) = self.faults.as_mut() else {
            return;
        };
        let Some(rec) = self.outstanding.get_mut(&id) else {
            return;
        };
        if rec.retries < fs.cfg.max_retries {
            rec.retries += 1;
            fs.stats.retransmissions += 1;
            let attempt = rec.retries;
            let backoff = fs.cfg.retry_backoff.max(1) * attempt as Cycle;
            self.retry_queue.push((at + backoff, id));
            self.sink.emit(|| rcsim_trace::TraceEvent {
                cycle: at,
                kind: EventKind::NiRetry {
                    packet: id.0,
                    attempt,
                },
            });
        } else {
            fs.stats.packets_abandoned += 1;
            self.stats.dropped_packets += 1;
            let retries = rec.retries;
            self.outstanding.remove(&id);
            self.sink.emit(|| rcsim_trace::TraceEvent {
                cycle: at,
                kind: EventKind::PacketDropped {
                    packet: id.0,
                    retries,
                },
            });
        }
    }

    fn route_outgoing(&mut self, from: NodeId, outgoing: &[Outgoing]) {
        for o in outgoing {
            match o {
                Outgoing::Flit { port, flit, arrive } => {
                    if *port >= PORT_LOCAL {
                        // Ejection: local port `4 + slot` reaches the NI of
                        // the tile in that slot of this router.
                        let tile = self.cfg.topology.tile_of(from, *port - PORT_LOCAL);
                        self.ni_wake.wake_at(tile.index(), *arrive);
                        self.ni_inboxes[tile.index()]
                            .flits
                            .push((*arrive, flit.clone()));
                        continue;
                    }
                    let Some(nb) = self.cfg.topology.neighbor(from, *port) else {
                        // Invariant: XY/YX routing never crosses the mesh
                        // edge. Losing one flit beats tearing down a long
                        // experiment run, and the watchdog will flag the
                        // wedged packet.
                        debug_assert!(false, "routing crossed the mesh edge at {from}/{port}");
                        continue;
                    };
                    if !self.topo.hop_usable(from, nb)
                        && (flit.kind.is_head() || self.dead_eating.contains(&flit.packet))
                    {
                        // The link (or an endpoint router) is dead: the
                        // packet is lost from its head flit on. Synthesize
                        // the credits it would have earned, tear the
                        // reservations it orphans and schedule the
                        // end-to-end retransmission — without touching the
                        // fault RNG, so the random-fault stream is
                        // unchanged by scheduled dead resources. A packet
                        // whose head crossed *before* the link died drains
                        // whole instead (the `else` path): cutting a
                        // wormhole mid-stream would wedge the downstream
                        // VC forever.
                        if flit.kind.is_head() && !flit.kind.is_tail() {
                            self.dead_eating.insert(flit.packet);
                        }
                        if flit.kind.is_tail() {
                            self.dead_eating.remove(&flit.packet);
                        }
                        if let Some(fs) = self.faults.as_mut() {
                            fs.stats.dead_flits_lost += 1;
                        }
                        self.drop_on_link(from, nb, *port, flit, *arrive);
                        continue;
                    }
                    let mut flit = flit.clone();
                    if let Some(fs) = self.faults.as_mut() {
                        match fs.on_link_flit(from.index(), *port, &flit) {
                            LinkFate::Deliver => {}
                            LinkFate::Corrupt => flit.corrupted = true,
                            LinkFate::Drop => {
                                self.drop_on_link(from, nb, *port, &flit, *arrive);
                                continue;
                            }
                        }
                    }
                    self.router_wake.wake_at(nb.index(), *arrive);
                    self.router_inboxes[nb.index()].flits[opposite_port(*port)]
                        .push((*arrive, flit));
                }
                Outgoing::Credit { port, vc, arrive } => {
                    if *port >= PORT_LOCAL {
                        let tile = self.cfg.topology.tile_of(from, *port - PORT_LOCAL);
                        self.ni_wake.wake_at(tile.index(), *arrive);
                        self.ni_inboxes[tile.index()].credits.push((*arrive, *vc));
                        continue;
                    }
                    let Some(nb) = self.cfg.topology.neighbor(from, *port) else {
                        // Invariant: credits return along existing links.
                        debug_assert!(false, "credit crossed the mesh edge at {from}/{port}");
                        continue;
                    };
                    if self.faults.as_mut().is_some_and(FaultState::on_link_credit) {
                        continue;
                    }
                    // Credits deliberately survive dead links: the credit
                    // backchannel is the recovery path's control plane, and
                    // without it every VC that ever crossed the link would
                    // wedge permanently (DESIGN.md §10). Credit loss stays
                    // its own (random) fault class.
                    self.router_wake.wake_at(nb.index(), *arrive);
                    self.router_inboxes[nb.index()].credits[opposite_port(*port)]
                        .push((*arrive, *vc));
                }
                Outgoing::Undo {
                    port,
                    key,
                    dst,
                    arrive,
                } => {
                    let Some(nb) = self.cfg.topology.neighbor(from, *port) else {
                        // Invariant: undo propagation follows the reserved
                        // path, which never leaves the mesh.
                        debug_assert!(false, "undo crossed the mesh edge at {from}/{port}");
                        continue;
                    };
                    if !self.topo.hop_usable(from, nb) {
                        // Undo propagation dies with the link; the entries
                        // beyond it were removed by the scheduled-fault
                        // teardown, so nothing is left to clean up.
                        continue;
                    }
                    self.router_wake.wake_at(nb.index(), *arrive);
                    self.router_inboxes[nb.index()]
                        .undos
                        .push((*arrive, *key, *dst));
                }
            }
        }
    }

    /// Handles one flit dropped on the link `from → nb`: synthesizes the
    /// downstream credit it will never earn (credit loss is its own fault
    /// class; drops must not wedge the fabric by themselves), tears down
    /// the circuit reservations the packet leaves orphaned, and schedules
    /// the end-to-end retransmission.
    fn drop_on_link(&mut self, from: NodeId, nb: NodeId, port: usize, flit: &Flit, arrive: Cycle) {
        // Mirror the downstream router's credit-return rule: circuit VCs
        // are only credited when they are buffered (fragmented mode).
        let layout = self.cfg.vc_layout();
        if !layout.is_circuit_vc(flit.vc) || self.cfg.mechanism.circuit_vc_buffered() {
            self.router_wake.wake_at(from.index(), arrive);
            self.router_inboxes[from.index()].credits[port].push((arrive, flit.vc));
        }
        if flit.kind.is_head() {
            if let Some(h) = &flit.circuit {
                // A dropped circuit-building request: undo the prefix of
                // reservations it made, starting from the last router it
                // crossed (the retransmission goes plain packet-switched).
                self.router_wake.wake_at(from.index(), arrive);
                self.router_inboxes[from.index()]
                    .undos
                    .push((arrive, h.key, h.key.requestor));
            } else if let Some(key) = flit.on_circuit {
                // A dropped circuit ride: the not-yet-used suffix of the
                // circuit (from the next router on) is torn down; routers
                // it already crossed were released by normal streaming.
                self.router_wake.wake_at(nb.index(), arrive);
                self.router_inboxes[nb.index()]
                    .undos
                    .push((arrive, key, key.requestor));
            }
            self.schedule_retry(flit.packet, arrive);
        }
    }

    /// Applies every scheduled dead-link / dead-router transition due
    /// this cycle: updates the topology-health map, re-derives each
    /// router's degraded flag, emits the fault trace events, and on each
    /// onset tears down every circuit whose reply path crosses a dead
    /// resource. Dense and RNG-free, so the fault stream (and therefore
    /// the whole run) is identical across kernels and worker counts.
    fn process_fault_onsets(&mut self, now: Cycle) {
        while self.fault_cursor < self.fault_schedule.len()
            && self.fault_schedule[self.fault_cursor].0 <= now
        {
            let (_, change) = self.fault_schedule[self.fault_cursor];
            self.fault_cursor += 1;
            match change {
                TopoChange::LinkDown(a, b) => {
                    self.topo.kill_link(a, b);
                    self.sink.emit(|| rcsim_trace::TraceEvent {
                        cycle: now,
                        kind: EventKind::LinkDead { a: a.0, b: b.0 },
                    });
                }
                TopoChange::LinkUp(a, b) => {
                    self.topo.revive_link(a, b);
                    self.sink.emit(|| rcsim_trace::TraceEvent {
                        cycle: now,
                        kind: EventKind::LinkHealed { a: a.0, b: b.0 },
                    });
                }
                TopoChange::RouterDown(node) => {
                    self.topo.kill_router(node);
                    self.sink.emit(|| rcsim_trace::TraceEvent {
                        cycle: now,
                        kind: EventKind::RouterDead { node: node.0 },
                    });
                }
                TopoChange::RouterUp(node) => {
                    self.topo.revive_router(node);
                    self.sink.emit(|| rcsim_trace::TraceEvent {
                        cycle: now,
                        kind: EventKind::RouterHealed { node: node.0 },
                    });
                }
            }
            self.refresh_degraded();
            if matches!(
                change,
                TopoChange::LinkDown(..) | TopoChange::RouterDown(..)
            ) {
                self.teardown_circuits(now);
            } else {
                // A heal invalidates recorded detour paths: any reply path
                // an NI memorised before this cycle may now be worse than
                // DOR, so stale it via the era fence.
                self.congestion.bump_era();
            }
        }
    }

    /// Re-derives each router's degraded flag: a router is degraded while
    /// it is dead itself or any of its links is unusable. Degraded
    /// routers take no part in circuits — reservations are refused and
    /// bypasses forced to the packet pipeline — so reactive traffic
    /// adjacent to the dead region falls back to plain packet switching
    /// (DESIGN.md §10).
    fn refresh_degraded(&mut self) {
        for i in 0..self.cfg.topology.routers() {
            let id = NodeId(i as u16);
            let degraded = self.topo.is_degraded()
                && (!self.topo.node_usable(id)
                    || (0..PORT_LOCAL).any(|p| {
                        self.cfg
                            .topology
                            .neighbor(id, p)
                            .is_some_and(|nb| !self.topo.hop_usable(id, nb))
                    }));
            self.routers[i].set_degraded(degraded);
        }
    }

    /// Fault-onset circuit recovery: removes every circuit-table entry —
    /// at every router and input port — belonging to a circuit whose
    /// reply path (YX from the circuit's source to its requestor, the
    /// route the reply itself would take) crosses a dead resource, and
    /// purges the matching NI origins. A reply already committed to a
    /// torn circuit limps home through the pipeline and is reclassified
    /// `FaultDegraded` on delivery; one not yet enqueued finds its origin
    /// gone and records `TornDown`.
    fn teardown_circuits(&mut self, now: Cycle) {
        let topology = self.cfg.topology;
        let ports = topology.ports();
        let mut doomed: HashSet<CircuitKey> = HashSet::new();
        for i in 0..topology.routers() {
            let node = NodeId(i as u16);
            for (_, e, _) in self.routers[i].circuits.stale_entries(now, 0) {
                if doomed.contains(&e.key) {
                    continue;
                }
                let reply_path = topology.route_path(e.source, e.key.requestor, Routing::Yx);
                if !self.topo.node_usable(node) || !path_is_healthy(&reply_path, &self.topo) {
                    doomed.insert(e.key);
                }
            }
        }
        if doomed.is_empty() {
            return;
        }
        for i in 0..topology.routers() {
            for key in &doomed {
                for p in 0..ports {
                    if self.routers[i].circuits.release(p, *key).is_some() {
                        self.sink.emit(|| rcsim_trace::TraceEvent {
                            cycle: now,
                            kind: EventKind::CircuitTear {
                                node: i as u16,
                                requestor: key.requestor.0,
                                block: key.block,
                            },
                        });
                    }
                }
            }
        }
        for ni in &mut self.nis {
            ni.purge_origins(&doomed);
        }
        if let Some(fs) = self.faults.as_mut() {
            fs.stats.circuits_torn += doomed.len() as u64;
        }
        self.faulted_circuits.extend(doomed.iter().copied());
    }

    /// Zeroes every statistic (latencies, outcomes, activity, table
    /// counters, cycle count) without disturbing in-flight traffic —
    /// called at the end of a warm-up phase.
    pub fn reset_stats(&mut self) {
        self.stats = NocStats::default();
        for r in &mut self.routers {
            r.activity = Default::default();
            r.circuits.reset_stats();
        }
    }

    /// A snapshot of all statistics, including per-router activity and
    /// circuit-table counters.
    pub fn stats(&self) -> NocStats {
        let mut s = self.stats.clone();
        for r in &self.routers {
            s.activity.merge(&r.activity);
            s.tables.merge(r.circuits.stats());
        }
        s
    }

    /// `true` when nothing is queued or travelling. Packets abandoned by
    /// the fault layer after exhausting their retries count as resolved.
    pub fn is_quiescent(&self) -> bool {
        self.nis.iter().all(|ni| ni.backlog() == 0)
            && self
                .router_inboxes
                .iter()
                .all(|ib| ib.flits.iter().all(Vec::is_empty) && ib.undos.is_empty())
            && self.ni_inboxes.iter().all(|ib| ib.flits.is_empty())
            && self.retry_queue.is_empty()
            && self.ingress.as_ref().is_none_or(|i| i.queued() == 0)
            && self.stats.total_injected()
                == self.stats.total_delivered() + self.stats.dropped_packets
    }

    /// `true` when packets are in flight but no flit has moved for at
    /// least the watchdog's stall window — a deadlock (e.g. lost credits)
    /// or total livelock.
    pub fn stalled(&self) -> bool {
        !self.outstanding.is_empty()
            && self.now.saturating_sub(self.last_progress) >= self.watchdog.stall_window
    }

    /// The fault-injection counters (all zero when faults are disabled).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults
            .as_ref()
            .map(|f| f.stats.clone())
            .unwrap_or_default()
    }

    /// Human-readable dump of every router's non-idle pipeline state and
    /// every NI backlog. Tests print this next to [`Network::health`] when
    /// a drain assertion fails, so a wedge report shows exactly which VCs
    /// and credits are stuck (see `tests/echo_probe.rs`).
    #[doc(hidden)]
    pub fn debug_dump(&self) -> String {
        let mut s = String::new();
        for r in &self.routers {
            r.debug_dump(&mut s);
        }
        for (i, ni) in self.nis.iter().enumerate() {
            if ni.backlog() > 0 {
                use std::fmt::Write;
                writeln!(s, "  ni[{i}] backlog={}", ni.backlog()).ok();
            }
        }
        s
    }

    /// Assembles a structured liveness snapshot: stall state, in-flight
    /// and queued traffic, the oldest stuck messages, suspected
    /// circuit-table leaks and the fault counters. Purely observational
    /// and deterministic (messages are ordered by age, then packet id).
    pub fn health(&self) -> HealthReport {
        let mut msgs: Vec<StuckMessage> = self
            .outstanding
            .iter()
            .map(|(id, rec)| StuckMessage {
                packet: *id,
                src: rec.src,
                dst: rec.dst,
                class: rec.class,
                age: self.now.saturating_sub(rec.created_at),
                retries: rec.retries,
            })
            .collect();
        msgs.sort_by_key(|m| (std::cmp::Reverse(m.age), m.packet));
        let oldest_age = msgs.first().map(|m| m.age);
        msgs.truncate(self.watchdog.max_report_entries);

        let mut leaked = Vec::new();
        'scan: for (i, r) in self.routers.iter().enumerate() {
            for (in_port, e, age) in r
                .circuits
                .stale_entries(self.now.saturating_sub(1), self.watchdog.leak_age)
            {
                if leaked.len() >= self.watchdog.max_report_entries {
                    break 'scan;
                }
                leaked.push(LeakedCircuit {
                    node: NodeId(i as u16),
                    in_port,
                    key: e.key,
                    age,
                    in_use: e.in_use,
                });
            }
        }

        let mut dead_links = self.topo.dead_links_sorted();
        dead_links.truncate(self.watchdog.max_report_entries);
        let mut dead_routers = self.topo.dead_routers_sorted();
        dead_routers.truncate(self.watchdog.max_report_entries);

        HealthReport {
            cycle: self.now,
            stalled: self.stalled(),
            last_progress: self.last_progress,
            in_flight: self.outstanding.len() as u64,
            ni_backlog: self.nis.iter().map(|ni| ni.backlog() as u64).sum(),
            quiescent: self.is_quiescent(),
            oldest_age,
            stuck_messages: msgs,
            leaked_circuits: leaked,
            faults: self.fault_stats(),
            dead_links,
            dead_routers,
            l1_reissues: 0,
            overload: self.overload_report(),
            adaptive: self.adaptive_report(),
            deadlock: if self.stalled() {
                self.deadlock_report()
            } else {
                None
            },
        }
    }

    /// The wait-for-graph deadlock diagnoser. Builds the blocked-VC
    /// graph — nodes are input-VC channel resources, an edge runs from
    /// a blocked VC to the resource it waits on (the downstream VC it
    /// needs credits from, or the same-router VC owning its wanted
    /// output) — then walks it with a deterministic DFS (routers in id
    /// order, edges sorted) and reports the first cycle. Returns `None`
    /// when no cycle exists, so a stall caused by livelock or lost
    /// credits is not misreported as a deadlock.
    pub fn deadlock_report(&self) -> Option<Box<DeadlockReport>> {
        let ports = self.cfg.topology.ports();
        let vcs = self.cfg.vc_layout().total();
        let idx = |n: usize, p: usize, v: usize| (n * ports + p) * vcs + v;
        let total = self.routers.len() * ports * vcs;
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); total];
        let mut waiters: Vec<Option<(NodeId, VcWaiter)>> = vec![None; total];
        let mut buf = Vec::new();
        for (i, r) in self.routers.iter().enumerate() {
            buf.clear();
            r.waiters(self.now, &mut buf);
            for w in buf.drain(..) {
                let src = idx(i, w.in_port, w.vc);
                for e in &w.edges {
                    match *e {
                        WaitEdge::Local { in_port, vc } => edges[src].push(idx(i, in_port, vc)),
                        WaitEdge::Downstream { out_vc } => {
                            let Some(nb) =
                                self.cfg.topology.neighbor(NodeId(i as u16), w.wants_port)
                            else {
                                continue;
                            };
                            edges[src].push(idx(
                                nb.0 as usize,
                                opposite_port(w.wants_port),
                                out_vc,
                            ));
                        }
                    }
                }
                waiters[src] = Some((NodeId(i as u16), w));
            }
        }
        // Deterministic iterative DFS with tree-edge parents; a back
        // edge to a gray node closes the cycle.
        let mut color = vec![0u8; total]; // 0 white, 1 gray, 2 black
        let mut parent = vec![usize::MAX; total];
        for start in 0..total {
            if color[start] != 0 || waiters[start].is_none() {
                continue;
            }
            color[start] = 1;
            let mut stack = vec![(start, 0usize)];
            while let Some(&mut (node, ref mut ei)) = stack.last_mut() {
                if *ei >= edges[node].len() {
                    color[node] = 2;
                    stack.pop();
                    continue;
                }
                let next = edges[node][*ei];
                *ei += 1;
                if waiters[next].is_none() {
                    // Waiting on an idle or progressing VC: a dangling
                    // edge, never part of a cycle.
                    continue;
                }
                match color[next] {
                    0 => {
                        color[next] = 1;
                        parent[next] = node;
                        stack.push((next, 0));
                    }
                    1 => {
                        // Walk the tree path next → … → node; with the
                        // back edge node → next it is the cycle, in
                        // wait order (each entry waits on the next).
                        let mut cycle = Vec::new();
                        let mut cur = node;
                        while cur != next {
                            cycle.push(cur);
                            cur = parent[cur];
                        }
                        cycle.push(next);
                        cycle.reverse();
                        let cycle_len = cycle.len();
                        let cap = self.watchdog.max_report_entries;
                        let resources = cycle
                            .iter()
                            .take(cap)
                            .map(|&ix| {
                                let (node, w) =
                                    waiters[ix].as_ref().expect("cycle nodes are waiters");
                                DeadlockResource {
                                    node: *node,
                                    in_port: w.in_port,
                                    vc: w.vc,
                                    packet: w.packet,
                                    wants_port: w.wants_port,
                                    out_vc: w.out_vc,
                                    credits: w.credits,
                                    held_by_circuit: w.held_by_circuit,
                                }
                            })
                            .collect();
                        return Some(Box::new(DeadlockReport {
                            resources,
                            cycle_len,
                            truncated: cycle_len > cap,
                        }));
                    }
                    _ => {}
                }
            }
        }
        None
    }

    /// Captures every piece of dynamic network state. Must be taken
    /// between ticks: the per-tick scratch and shard staging buffers are
    /// empty there, which is what makes the snapshot identical across
    /// `RC_KERNEL` and `RC_SHARDS` settings.
    pub fn snapshot(&self) -> NetworkSnapshot {
        let mut outstanding: Vec<(PacketId, Outstanding)> = self
            .outstanding
            .iter()
            .map(|(id, rec)| (*id, rec.clone()))
            .collect();
        outstanding.sort_unstable_by_key(|&(id, _)| id);
        let mut faulted_circuits: Vec<CircuitKey> = self.faulted_circuits.iter().copied().collect();
        faulted_circuits.sort_unstable_by_key(|k| (k.requestor, k.block));
        let mut dead_eating: Vec<PacketId> = self.dead_eating.iter().copied().collect();
        dead_eating.sort_unstable();
        NetworkSnapshot {
            routers: self.routers.iter().map(Router::snapshot).collect(),
            nis: self.nis.iter().map(Ni::snapshot).collect(),
            router_inboxes: self.router_inboxes.clone(),
            ni_inboxes: self.ni_inboxes.clone(),
            delivered: self.delivered.clone(),
            stats: self.stats.clone(),
            now: self.now,
            next_packet: self.next_packet,
            faults: self.faults.as_ref().map(FaultState::snapshot),
            topo: self.topo.snapshot(),
            fault_cursor: self.fault_cursor,
            outstanding,
            retry_queue: self.retry_queue.clone(),
            faulted_circuits,
            dead_eating,
            last_progress: self.last_progress,
            ni_wake: self.ni_wake.clone(),
            router_wake: self.router_wake.clone(),
            ingress: self.ingress.as_deref().map(IngressState::snapshot),
            adaptive: self.adaptive.as_deref().map(|a| AdaptiveSnapshot {
                controller: a.controller.snapshot(),
                report: a.report,
                next_decision: a.next_decision,
            }),
            congestion: self.congestion.snapshot(),
        }
    }

    /// Overwrites this network's dynamic state with a snapshot taken by
    /// [`Network::snapshot`]. `self` must have been freshly constructed
    /// from the *same* configuration (topology, mechanism, faults,
    /// ingress, adaptive) that produced the snapshot: configuration-
    /// derived objects — routing, the fault schedule, shard plans, trace
    /// sinks — are kept and only dynamic state is replaced. Mismatched
    /// shapes panic rather than limp along.
    pub fn restore(&mut self, snap: &NetworkSnapshot) {
        assert_eq!(
            self.routers.len(),
            snap.routers.len(),
            "network snapshot router count mismatch"
        );
        for (r, s) in self.routers.iter_mut().zip(&snap.routers) {
            r.restore(s.clone());
        }
        for (ni, s) in self.nis.iter_mut().zip(&snap.nis) {
            ni.restore(s.clone());
        }
        self.router_inboxes = snap.router_inboxes.clone();
        self.ni_inboxes = snap.ni_inboxes.clone();
        self.delivered = snap.delivered.clone();
        self.stats = snap.stats.clone();
        self.now = snap.now;
        self.next_packet = snap.next_packet;
        match (&mut self.faults, &snap.faults) {
            (Some(f), Some(s)) => f.restore(s.clone()),
            (None, None) => {}
            _ => panic!("network snapshot fault-state presence mismatch"),
        }
        self.topo = TopologyHealth::from_snapshot(&snap.topo);
        self.fault_cursor = snap.fault_cursor;
        self.outstanding = snap.outstanding.iter().cloned().collect();
        self.retry_queue = snap.retry_queue.clone();
        self.faulted_circuits = snap.faulted_circuits.iter().copied().collect();
        self.dead_eating = snap.dead_eating.iter().copied().collect();
        self.last_progress = snap.last_progress;
        self.ni_wake = snap.ni_wake.clone();
        self.router_wake = snap.router_wake.clone();
        match (&mut self.ingress, &snap.ingress) {
            (Some(i), Some(s)) => i.restore(s.clone()),
            (None, None) => {}
            _ => panic!("network snapshot ingress presence mismatch"),
        }
        match (&mut self.adaptive, &snap.adaptive) {
            (Some(a), Some(s)) => {
                a.controller.restore(&s.controller);
                a.report = s.report;
                a.next_decision = s.next_decision;
            }
            (None, None) => {}
            _ => panic!("network snapshot adaptive presence mismatch"),
        }
        self.congestion.restore(&snap.congestion);
        self.refresh_degraded();
    }
}

/// Complete dynamic state of a [`Network`], captured between ticks by
/// [`Network::snapshot`] and re-applied with [`Network::restore`] onto a
/// freshly constructed, identically-configured network (DESIGN.md §15).
/// Configuration-derived objects (routing tables, the fault schedule,
/// shard plans, trace sinks, kernel mode) are deliberately excluded: they
/// are rebuilt from the simulation config on resume, and only cursor and
/// ownership state travels. Hash-map state is stored as sorted vectors so
/// the serialized form is deterministic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkSnapshot {
    routers: Vec<RouterSnapshot>,
    nis: Vec<NiSnapshot>,
    router_inboxes: Vec<RouterInbox>,
    ni_inboxes: Vec<NiInbox>,
    delivered: Vec<Vec<Delivered>>,
    stats: NocStats,
    now: Cycle,
    next_packet: u64,
    faults: Option<FaultSnapshot>,
    topo: TopologyHealthSnapshot,
    fault_cursor: usize,
    outstanding: Vec<(PacketId, Outstanding)>,
    retry_queue: Vec<(Cycle, PacketId)>,
    faulted_circuits: Vec<CircuitKey>,
    dead_eating: Vec<PacketId>,
    last_progress: Cycle,
    ni_wake: WakeTimes,
    router_wake: WakeTimes,
    ingress: Option<IngressSnapshot>,
    adaptive: Option<AdaptiveSnapshot>,
    congestion: CongestionSnapshot,
}

/// Dynamic slice of [`AdaptiveState`] (the config and region plan are
/// rebuilt from the simulation config on resume).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct AdaptiveSnapshot {
    controller: Vec<(RegionMode, Option<Cycle>)>,
    report: AdaptiveReport,
    next_decision: Cycle,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcsim_core::{MechanismConfig, Mesh, MessageClass};

    fn net(mechanism: MechanismConfig) -> Network {
        let mesh = Mesh::new(4, 4).unwrap();
        Network::new(NocConfig::paper_baseline(mesh, mechanism)).unwrap()
    }

    fn run(net: &mut Network, cycles: u64) {
        for _ in 0..cycles {
            net.tick();
        }
    }

    #[test]
    fn single_packet_crosses_baseline() {
        let mut n = net(MechanismConfig::baseline());
        n.inject(PacketSpec::new(
            NodeId(0),
            NodeId(15),
            MessageClass::L1Request,
        ));
        run(&mut n, 60);
        let d = n.take_delivered(NodeId(15));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].src, NodeId(0));
        assert_eq!(d[0].class, MessageClass::L1Request);
        assert!(n.is_quiescent());
    }

    #[test]
    fn request_hop_latency_is_five_cycles() {
        // Uncontended: injection + 5 cycles/hop + ejection pipeline.
        let mut n = net(MechanismConfig::baseline());
        n.inject(PacketSpec::new(
            NodeId(0),
            NodeId(1),
            MessageClass::L1Request,
        ));
        run(&mut n, 40);
        let d = n.take_delivered(NodeId(1));
        assert_eq!(d.len(), 1);
        let lat1 = d[0].delivered_at - d[0].injected_at;

        let mut n = net(MechanismConfig::baseline());
        n.inject(PacketSpec::new(
            NodeId(0),
            NodeId(3),
            MessageClass::L1Request,
        ));
        run(&mut n, 60);
        let d = n.take_delivered(NodeId(3));
        let lat3 = d[0].delivered_at - d[0].injected_at;
        assert_eq!(
            lat3 - lat1,
            10,
            "each extra hop must cost 5 cycles (got {lat1} for 1 hop, {lat3} for 3)"
        );
    }

    #[test]
    fn local_delivery_bypasses_network() {
        let mut n = net(MechanismConfig::baseline());
        n.inject(PacketSpec::new(
            NodeId(5),
            NodeId(5),
            MessageClass::L1Request,
        ));
        let d = n.take_delivered(NodeId(5));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn multiflit_packet_arrives_whole() {
        let mut n = net(MechanismConfig::baseline());
        n.inject(PacketSpec::new(NodeId(0), NodeId(12), MessageClass::WbData));
        run(&mut n, 80);
        let d = n.take_delivered(NodeId(12));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].class, MessageClass::WbData);
    }

    #[test]
    fn many_packets_all_arrive() {
        let mut n = net(MechanismConfig::baseline());
        let mut expected = [0usize; 16];
        for s in 0..16u16 {
            for d in 0..16u16 {
                if s != d {
                    n.inject(
                        PacketSpec::new(NodeId(s), NodeId(d), MessageClass::L1Request)
                            .with_block((s as u64) << 16 | d as u64),
                    );
                    expected[d as usize] += 1;
                }
            }
        }
        run(&mut n, 3000);
        for d in 0..16u16 {
            assert_eq!(
                n.take_delivered(NodeId(d)).len(),
                expected[d as usize],
                "node {d}"
            );
        }
        assert!(n.is_quiescent());
    }
}
