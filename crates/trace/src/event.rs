//! The event vocabulary: everything the instrumented simulator can report.
//!
//! Events are small `Copy` records — a cycle stamp plus a flat payload of
//! plain integers — so emitting one is a couple of stores. Identifiers are
//! raw (`packet` ids as `u64`, nodes as `u16`, circuit keys as
//! `(requestor, block)`) rather than the simulator's newtypes: this crate
//! sits *below* `rcsim-core` in the dependency graph so every layer of the
//! stack can emit into the same sink.

use serde::{Deserialize, Serialize};

/// One traced occurrence, stamped with the simulation cycle it happened on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TraceEvent {
    /// Simulation cycle of the occurrence.
    pub cycle: u64,
    /// What happened.
    pub kind: EventKind,
}

/// What happened. Grouped by the layer that emits it: network-interface
/// packet lifecycle, router pipeline stages, circuit-table transitions,
/// cache-protocol message lifecycle and periodic occupancy samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum EventKind {
    /// A packet entered its source NI's injection queue.
    NiEnqueue {
        /// Packet id.
        packet: u64,
        /// Source node.
        src: u16,
        /// Destination node.
        dst: u16,
        /// Message-class label (e.g. `"L2_Reply"`).
        class: &'static str,
    },
    /// The packet's head flit left the NI into the router's local port.
    NiInject {
        /// Packet id.
        packet: u64,
        /// Injecting node.
        node: u16,
    },
    /// The packet was fully reassembled and delivered at its destination.
    NiEject {
        /// Packet id.
        packet: u64,
        /// Receiving node.
        node: u16,
        /// `true` when the packet rode its own complete circuit.
        rode_circuit: bool,
        /// End-to-end retransmissions this packet needed (faults only).
        retries: u32,
    },
    /// The fault layer scheduled an end-to-end retransmission.
    NiRetry {
        /// Packet id.
        packet: u64,
        /// Retry number (1-based).
        attempt: u32,
    },
    /// The packet exhausted its retry budget and was abandoned.
    PacketDropped {
        /// Packet id.
        packet: u64,
        /// Retries spent before giving up.
        retries: u32,
    },
    /// A head flit won VC allocation (router pipeline stage 2).
    StageVa {
        /// Packet id.
        packet: u64,
        /// Router node.
        node: u16,
    },
    /// A head flit won switch allocation (router pipeline stage 3).
    StageSa {
        /// Packet id.
        packet: u64,
        /// Router node.
        node: u16,
    },
    /// A head flit traversed the crossbar (router pipeline stage 4).
    StageSt {
        /// Packet id.
        packet: u64,
        /// Router node.
        node: u16,
    },
    /// A head flit crossed a router on its circuit in a single cycle.
    CircuitBypass {
        /// Packet id.
        packet: u64,
        /// Router node.
        node: u16,
    },
    /// A request head wrote a circuit reservation into a router's table.
    CircuitReserve {
        /// Router node.
        node: u16,
        /// Circuit key: the original requestor…
        requestor: u16,
        /// …and the cache block.
        block: u64,
    },
    /// A reservation attempt failed (storage, same-source, output-port or
    /// window conflict).
    CircuitConflict {
        /// Router node.
        node: u16,
        /// Circuit key requestor.
        requestor: u16,
        /// Circuit key block.
        block: u64,
    },
    /// The reply registered a (fully or partially) built circuit origin at
    /// the responder's NI — the circuit is ready to use.
    CircuitConfirm {
        /// NI node.
        node: u16,
        /// Circuit key requestor.
        requestor: u16,
        /// Circuit key block.
        block: u64,
    },
    /// A router tore its reservation down (undo propagation).
    CircuitTear {
        /// Router node.
        node: u16,
        /// Circuit key requestor.
        requestor: u16,
        /// Circuit key block.
        block: u64,
    },
    /// An L1 miss started (request issued towards the home L2 bank).
    L1MissStart {
        /// L1 node.
        node: u16,
        /// Missing block.
        block: u64,
    },
    /// The outstanding L1 miss completed (fill arrived).
    L1MissEnd {
        /// L1 node.
        node: u16,
        /// Filled block.
        block: u64,
    },
    /// An L2 bank served (or started fetching) a request.
    L2Access {
        /// L2 node.
        node: u16,
        /// Accessed block.
        block: u64,
        /// `true` when the bank held the line.
        hit: bool,
    },
    /// A scheduled permanent fault killed an inter-router link.
    LinkDead {
        /// One endpoint of the link.
        a: u16,
        /// The other endpoint.
        b: u16,
    },
    /// A bounded dead-link window ended; the link carries data again.
    LinkHealed {
        /// One endpoint of the link.
        a: u16,
        /// The other endpoint.
        b: u16,
    },
    /// A scheduled permanent fault killed a whole router.
    RouterDead {
        /// The dead router.
        node: u16,
    },
    /// A bounded dead-router window ended.
    RouterHealed {
        /// The healed router.
        node: u16,
    },
    /// A source NI sent a packet on a recorded detour because its DOR path
    /// crossed a dead link or router.
    NiReroute {
        /// Packet id.
        packet: u64,
        /// Source node.
        node: u16,
    },
    /// An L1 reissued a coherence request whose reply never arrived
    /// (permanent-fault recovery, bounded exponential backoff).
    L1Reissue {
        /// L1 node.
        node: u16,
        /// The block of the outstanding miss.
        block: u64,
        /// Reissue number (1-based).
        attempt: u32,
    },
    /// An open-loop external arrival was admitted into an edge ingress
    /// queue (token available, queue below its bound).
    IngressAdmit {
        /// Edge node the arrival entered at.
        node: u16,
        /// Ingress queue depth after the admit.
        depth: u32,
    },
    /// An open-loop external arrival was refused at the edge — either the
    /// token bucket was empty or the bounded ingress queue was full. The
    /// refusal is explicit and typed: the client is told when to retry.
    IngressReject {
        /// Edge node the arrival was refused at.
        node: u16,
        /// `true` when the bounded queue was full, `false` when the
        /// admission controller was out of tokens.
        queue_full: bool,
        /// Cycles the client should wait before re-offering.
        retry_after: u64,
    },
    /// An admitted arrival was shed from an ingress queue after waiting
    /// past the shed timeout — deterministic load-shedding, never silent.
    IngressShed {
        /// Edge node that shed the arrival.
        node: u16,
        /// Cycles the arrival waited in the queue before being shed.
        waited: u64,
    },
    /// The adaptive policy controller switched a region between calm and
    /// hot (hysteresis + min-dwell; see DESIGN.md §14). Emitted once per
    /// region switch, from the serial tick prologue.
    PolicySwitch {
        /// Region index in the controller's region plan.
        region: u16,
        /// `true` when the region entered the hot state, `false` when it
        /// cooled back to calm.
        hot: bool,
        /// The fixed-point occupancy score (×256 per router) the decision
        /// was based on.
        score: u64,
    },
    /// A periodic whole-network occupancy sample.
    EpochSample {
        /// Live circuit-table entries across all routers.
        circuit_entries: u64,
        /// Flits sitting in router VC buffers.
        buffered_flits: u64,
        /// Packets queued or streaming at the NIs.
        ni_backlog: u64,
    },
}

/// An owned, deserializable mirror of [`TraceEvent`] for checkpoint
/// files. The live event borrows the message-class label as a
/// `&'static str` (so emitting stays a couple of stores); the portable
/// form owns it as a `String` so checkpoints can be read back. The two
/// serialize identically, byte for byte.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortableEvent {
    /// Simulation cycle of the occurrence.
    pub cycle: u64,
    /// What happened (owned mirror of [`EventKind`]).
    pub kind: PortableKind,
}

impl From<TraceEvent> for PortableEvent {
    fn from(e: TraceEvent) -> Self {
        Self {
            cycle: e.cycle,
            kind: e.kind.into(),
        }
    }
}

impl From<PortableEvent> for TraceEvent {
    fn from(e: PortableEvent) -> Self {
        Self {
            cycle: e.cycle,
            kind: e.kind.into(),
        }
    }
}

/// Returns the `'static` interned form of a message-class label read
/// back from a checkpoint. Every label the simulator emits is known
/// statically; an unrecognised one (a checkpoint from a newer build) is
/// leaked once to satisfy the lifetime — bounded by ring capacity.
fn intern_class(class: &str) -> &'static str {
    const KNOWN: [&str; 13] = [
        "Request",
        "FwdRequest",
        "Invalidation",
        "WbData",
        "MemRequest",
        "MemWbData",
        "L2_Reply",
        "L1_DATA_ACK",
        "L2_WB_ACK",
        "L1_INV_ACK",
        "MEMORY",
        "L1_TO_L1",
        "L1_REQ",
    ];
    for k in KNOWN {
        if k == class {
            return k;
        }
    }
    Box::leak(class.to_owned().into_boxed_str())
}

/// Generates [`PortableKind`] plus both conversions. `NiEnqueue` is the
/// one hand-written variant (its label becomes an owned `String`); every
/// other variant is mirrored field for field.
macro_rules! portable_kinds {
    ( $( $variant:ident { $( $field:ident : $ty:ty ),* $(,)? } ),* $(,)? ) => {
        /// Owned mirror of [`EventKind`] for checkpoint files — identical
        /// shape and serialized form, with the class label owned.
        #[allow(missing_docs)]
        #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
        pub enum PortableKind {
            NiEnqueue { packet: u64, src: u16, dst: u16, class: String },
            $( $variant { $( $field : $ty ),* } ),*
        }

        impl From<EventKind> for PortableKind {
            fn from(k: EventKind) -> Self {
                match k {
                    EventKind::NiEnqueue { packet, src, dst, class } => {
                        PortableKind::NiEnqueue { packet, src, dst, class: class.to_owned() }
                    }
                    $( EventKind::$variant { $( $field ),* } =>
                        PortableKind::$variant { $( $field ),* } ),*
                }
            }
        }

        impl From<PortableKind> for EventKind {
            fn from(k: PortableKind) -> Self {
                match k {
                    PortableKind::NiEnqueue { packet, src, dst, class } => {
                        EventKind::NiEnqueue { packet, src, dst, class: intern_class(&class) }
                    }
                    $( PortableKind::$variant { $( $field ),* } =>
                        EventKind::$variant { $( $field ),* } ),*
                }
            }
        }
    };
}

portable_kinds! {
    NiInject { packet: u64, node: u16 },
    NiEject { packet: u64, node: u16, rode_circuit: bool, retries: u32 },
    NiRetry { packet: u64, attempt: u32 },
    PacketDropped { packet: u64, retries: u32 },
    StageVa { packet: u64, node: u16 },
    StageSa { packet: u64, node: u16 },
    StageSt { packet: u64, node: u16 },
    CircuitBypass { packet: u64, node: u16 },
    CircuitReserve { node: u16, requestor: u16, block: u64 },
    CircuitConflict { node: u16, requestor: u16, block: u64 },
    CircuitConfirm { node: u16, requestor: u16, block: u64 },
    CircuitTear { node: u16, requestor: u16, block: u64 },
    L1MissStart { node: u16, block: u64 },
    L1MissEnd { node: u16, block: u64 },
    L2Access { node: u16, block: u64, hit: bool },
    LinkDead { a: u16, b: u16 },
    LinkHealed { a: u16, b: u16 },
    RouterDead { node: u16 },
    RouterHealed { node: u16 },
    NiReroute { packet: u64, node: u16 },
    L1Reissue { node: u16, block: u64, attempt: u32 },
    IngressAdmit { node: u16, depth: u32 },
    IngressReject { node: u16, queue_full: bool, retry_after: u64 },
    IngressShed { node: u16, waited: u64 },
    PolicySwitch { region: u16, hot: bool, score: u64 },
    EpochSample { circuit_entries: u64, buffered_flits: u64, ni_backlog: u64 },
}

impl EventKind {
    /// Stable lower-snake name of the event kind (metrics keys, Chrome
    /// trace names).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::NiEnqueue { .. } => "ni_enqueue",
            EventKind::NiInject { .. } => "ni_inject",
            EventKind::NiEject { .. } => "ni_eject",
            EventKind::NiRetry { .. } => "ni_retry",
            EventKind::PacketDropped { .. } => "packet_dropped",
            EventKind::StageVa { .. } => "stage_va",
            EventKind::StageSa { .. } => "stage_sa",
            EventKind::StageSt { .. } => "stage_st",
            EventKind::CircuitBypass { .. } => "circuit_bypass",
            EventKind::CircuitReserve { .. } => "circuit_reserve",
            EventKind::CircuitConflict { .. } => "circuit_conflict",
            EventKind::CircuitConfirm { .. } => "circuit_confirm",
            EventKind::CircuitTear { .. } => "circuit_tear",
            EventKind::L1MissStart { .. } => "l1_miss_start",
            EventKind::L1MissEnd { .. } => "l1_miss_end",
            EventKind::L2Access { .. } => "l2_access",
            EventKind::LinkDead { .. } => "link_dead",
            EventKind::LinkHealed { .. } => "link_healed",
            EventKind::RouterDead { .. } => "router_dead",
            EventKind::RouterHealed { .. } => "router_healed",
            EventKind::NiReroute { .. } => "ni_reroute",
            EventKind::L1Reissue { .. } => "l1_reissue",
            EventKind::IngressAdmit { .. } => "ingress_admit",
            EventKind::IngressReject { .. } => "ingress_reject",
            EventKind::IngressShed { .. } => "ingress_shed",
            EventKind::PolicySwitch { .. } => "policy_switch",
            EventKind::EpochSample { .. } => "epoch_sample",
        }
    }

    /// The packet this event is about, for lifecycle matching (`None` for
    /// circuit-table, cache and sampling events).
    pub fn packet(&self) -> Option<u64> {
        match self {
            EventKind::NiEnqueue { packet, .. }
            | EventKind::NiInject { packet, .. }
            | EventKind::NiEject { packet, .. }
            | EventKind::NiRetry { packet, .. }
            | EventKind::PacketDropped { packet, .. }
            | EventKind::StageVa { packet, .. }
            | EventKind::StageSa { packet, .. }
            | EventKind::StageSt { packet, .. }
            | EventKind::CircuitBypass { packet, .. }
            | EventKind::NiReroute { packet, .. } => Some(*packet),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_distinct() {
        let kinds = [
            EventKind::NiEnqueue {
                packet: 1,
                src: 0,
                dst: 1,
                class: "L1_REQ",
            },
            EventKind::NiInject { packet: 1, node: 0 },
            EventKind::EpochSample {
                circuit_entries: 0,
                buffered_flits: 0,
                ni_backlog: 0,
            },
        ];
        let names: Vec<_> = kinds.iter().map(EventKind::name).collect();
        assert_eq!(names, vec!["ni_enqueue", "ni_inject", "epoch_sample"]);
    }

    #[test]
    fn packet_extraction() {
        let k = EventKind::NiEject {
            packet: 7,
            node: 3,
            rode_circuit: true,
            retries: 0,
        };
        assert_eq!(k.packet(), Some(7));
        let s = EventKind::EpochSample {
            circuit_entries: 1,
            buffered_flits: 2,
            ni_backlog: 3,
        };
        assert_eq!(s.packet(), None);
    }

    #[test]
    fn events_serialize_to_json() {
        let e = TraceEvent {
            cycle: 42,
            kind: EventKind::NiInject { packet: 9, node: 4 },
        };
        let s = serde_json::to_string(&e).unwrap();
        assert!(s.contains("\"cycle\":42"), "{s}");
        assert!(s.contains("NiInject"), "{s}");
    }
}
