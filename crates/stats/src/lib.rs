//! Summary statistics, histograms and counters for the Reactive Circuits
//! simulator.
//!
//! The evaluation methodology of the paper reports means with standard
//! errors and 95% confidence intervals across applications (its §5.5 cites
//! Jain's *The Art of Computer Systems Performance Analysis*). This crate
//! provides the small, dependency-free building blocks used by every other
//! crate in the workspace to produce those numbers:
//!
//! * [`Accumulator`] — running count/mean/variance (Welford), standard
//!   error and CI95 half-width;
//! * [`Histogram`] — fixed-width binned latency distributions with
//!   percentile queries;
//! * [`LatencyStat`] — an accumulator and a histogram fed by one `record`
//!   call, so mean and p50/p99 can never drift apart;
//! * [`geometric_mean`] / [`harmonic_mean`] — the means used for speedup
//!   aggregation.
//!
//! # Examples
//!
//! ```
//! use rcsim_stats::Accumulator;
//!
//! let mut lat = Accumulator::new();
//! for x in [10.0, 12.0, 11.0, 13.0] {
//!     lat.add(x);
//! }
//! assert_eq!(lat.count(), 4);
//! assert!((lat.mean() - 11.5).abs() < 1e-12);
//! assert!(lat.std_err() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accumulator;
mod histogram;
mod latency;
mod means;

pub use accumulator::Accumulator;
pub use histogram::Histogram;
pub use latency::LatencyStat;
pub use means::{geometric_mean, harmonic_mean, weighted_mean};
