//! Dimension-order routing.
//!
//! The paper modifies classic DOR so that requests use XY and replies use
//! YX (§4.1): the two then traverse the *same* routers in opposite order,
//! which is what lets a request reserve circuit resources for its reply at
//! every hop. Different message types travel on different virtual networks,
//! so the XY/YX mix stays deadlock-free.

use crate::geometry::Mesh;
use crate::types::{Direction, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Deterministic routing algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Routing {
    /// X first then Y — used by the request virtual network.
    Xy,
    /// Y first then X — used by the reply virtual network.
    Yx,
}

impl Routing {
    /// The routing used by a virtual network.
    pub fn for_vnet(vnet: crate::types::Vnet) -> Routing {
        match vnet {
            crate::types::Vnet::Request => Routing::Xy,
            crate::types::Vnet::Reply => Routing::Yx,
        }
    }
}

/// The output direction to take at router `at` for a packet heading to
/// `dst`. Returns [`Direction::Local`] when `at == dst` (eject).
///
/// # Examples
///
/// ```
/// use rcsim_core::geometry::Mesh;
/// use rcsim_core::routing::{next_hop, Routing};
/// use rcsim_core::types::{Direction, NodeId};
///
/// let mesh = Mesh::new(4, 4)?;
/// // From n0 (0,0) to n5 (1,1): XY goes East first, YX goes South first.
/// assert_eq!(next_hop(&mesh, NodeId(0), NodeId(5), Routing::Xy), Direction::East);
/// assert_eq!(next_hop(&mesh, NodeId(0), NodeId(5), Routing::Yx), Direction::South);
/// # Ok::<(), rcsim_core::ConfigError>(())
/// ```
pub fn next_hop(mesh: &Mesh, at: NodeId, dst: NodeId, algo: Routing) -> Direction {
    let a = mesh.coord(at);
    let d = mesh.coord(dst);
    let x_dir = if d.x > a.x {
        Some(Direction::East)
    } else if d.x < a.x {
        Some(Direction::West)
    } else {
        None
    };
    let y_dir = if d.y > a.y {
        Some(Direction::South)
    } else if d.y < a.y {
        Some(Direction::North)
    } else {
        None
    };
    match algo {
        Routing::Xy => x_dir.or(y_dir).unwrap_or(Direction::Local),
        Routing::Yx => y_dir.or(x_dir).unwrap_or(Direction::Local),
    }
}

/// The full sequence of routers a packet visits from `src` to `dst`
/// (inclusive of both endpoints).
pub fn route_path(mesh: &Mesh, src: NodeId, dst: NodeId, algo: Routing) -> Vec<NodeId> {
    let mut path = vec![src];
    let mut at = src;
    while at != dst {
        let dir = next_hop(mesh, at, dst, algo);
        at = mesh
            .neighbor(at, dir)
            .expect("next_hop returned an edge-crossing direction");
        path.push(at);
    }
    path
}

/// Number of router-to-router hops between `src` and `dst` under DOR
/// (equals the Manhattan distance — DOR is minimal).
pub fn hop_count(mesh: &Mesh, src: NodeId, dst: NodeId) -> u32 {
    mesh.distance(src, dst)
}

/// Live health map of the mesh: which links and routers are currently
/// dead (the permanent-fault model, DESIGN.md §10). Links are
/// bidirectional — killing `(a, b)` kills both directions — and a dead
/// router implicitly kills every link touching it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TopologyHealth {
    /// Dead links, stored as normalized `(min, max)` node pairs.
    dead_links: HashSet<(NodeId, NodeId)>,
    /// Dead routers: nothing may enter, leave or cross them.
    dead_routers: HashSet<NodeId>,
}

fn norm(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a.0 <= b.0 {
        (a, b)
    } else {
        (b, a)
    }
}

impl TopologyHealth {
    /// A fully healthy topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when any link or router is currently dead.
    pub fn is_degraded(&self) -> bool {
        !self.dead_links.is_empty() || !self.dead_routers.is_empty()
    }

    /// Marks the `a`–`b` link dead in both directions.
    pub fn kill_link(&mut self, a: NodeId, b: NodeId) {
        self.dead_links.insert(norm(a, b));
    }

    /// Heals the `a`–`b` link (end of a bounded dead window).
    pub fn revive_link(&mut self, a: NodeId, b: NodeId) {
        self.dead_links.remove(&norm(a, b));
    }

    /// Marks router `n` dead.
    pub fn kill_router(&mut self, n: NodeId) {
        self.dead_routers.insert(n);
    }

    /// Heals router `n`.
    pub fn revive_router(&mut self, n: NodeId) {
        self.dead_routers.remove(&n);
    }

    /// `true` when router `n` is alive.
    pub fn node_usable(&self, n: NodeId) -> bool {
        !self.dead_routers.contains(&n)
    }

    /// `true` when the `a`–`b` link itself is alive (endpoint routers are
    /// checked separately via [`TopologyHealth::node_usable`]).
    pub fn link_usable(&self, a: NodeId, b: NodeId) -> bool {
        !self.dead_links.contains(&norm(a, b))
    }

    /// `true` when a flit may cross from `a` to `b`: the link and both
    /// endpoint routers are alive.
    pub fn hop_usable(&self, a: NodeId, b: NodeId) -> bool {
        self.link_usable(a, b) && self.node_usable(a) && self.node_usable(b)
    }

    /// Currently dead links, sorted, for deterministic reporting.
    pub fn dead_links_sorted(&self) -> Vec<(NodeId, NodeId)> {
        let mut v: Vec<_> = self.dead_links.iter().copied().collect();
        v.sort_unstable_by_key(|&(a, b)| (a.0, b.0));
        v
    }

    /// Currently dead routers, sorted, for deterministic reporting.
    pub fn dead_routers_sorted(&self) -> Vec<NodeId> {
        let mut v: Vec<_> = self.dead_routers.iter().copied().collect();
        v.sort_unstable_by_key(|n| n.0);
        v
    }

    /// The full health state as sorted lists, for checkpointing.
    pub fn snapshot(&self) -> TopologyHealthSnapshot {
        TopologyHealthSnapshot {
            dead_links: self.dead_links_sorted(),
            dead_routers: self.dead_routers_sorted(),
        }
    }

    /// Rebuilds health state from a [`TopologyHealth::snapshot`].
    pub fn from_snapshot(snap: &TopologyHealthSnapshot) -> Self {
        let mut h = TopologyHealth::new();
        for &(a, b) in &snap.dead_links {
            h.kill_link(a, b);
        }
        for &n in &snap.dead_routers {
            h.kill_router(n);
        }
        h
    }
}

/// Serializable state of a [`TopologyHealth`] map (sorted, so equal maps
/// serialize identically regardless of insertion history).
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TopologyHealthSnapshot {
    /// Dead links as normalized `(min, max)` pairs, sorted.
    pub dead_links: Vec<(NodeId, NodeId)>,
    /// Dead routers, sorted.
    pub dead_routers: Vec<NodeId>,
}

/// `true` when every router on `path` is alive and every consecutive hop
/// crosses a live link.
pub fn path_is_healthy(path: &[NodeId], topo: &TopologyHealth) -> bool {
    path.iter().all(|&n| topo.node_usable(n))
        && path.windows(2).all(|w| topo.link_usable(w[0], w[1]))
}

/// The direction of travel from `a` to an adjacent node `b`, or `None`
/// when the two are not mesh neighbours.
pub fn direction_between(mesh: &Mesh, a: NodeId, b: NodeId) -> Option<Direction> {
    [
        Direction::East,
        Direction::West,
        Direction::North,
        Direction::South,
    ]
    .into_iter()
    .find(|&dir| mesh.neighbor(a, dir) == Some(b))
}

/// The output direction at `at` for a packet following a recorded `path`:
/// [`Direction::Local`] at the path's end, `None` when `at` is not on the
/// path or the recorded successor is not adjacent (caller falls back to
/// plain DOR).
pub fn next_hop_on_path(mesh: &Mesh, path: &[NodeId], at: NodeId) -> Option<Direction> {
    let i = path.iter().position(|&n| n == at)?;
    match path.get(i + 1) {
        None => Some(Direction::Local),
        Some(&next) => direction_between(mesh, at, next),
    }
}

/// Shortest healthy path from `src` to `dst` avoiding dead links and
/// routers, or `None` when the degraded mesh is disconnected between the
/// two. Breadth-first search with a fixed E/W/N/S expansion order, so the
/// detour is fully deterministic. Detours are *not* restricted to
/// dimension order: deadlock freedom is no longer guaranteed in theory on
/// a degraded mesh (the watchdog catches wedges); in practice single-fault
/// detours stay minimal-plus-two and do not close dependency cycles.
pub fn route_path_healthy(
    mesh: &Mesh,
    src: NodeId,
    dst: NodeId,
    topo: &TopologyHealth,
) -> Option<Vec<NodeId>> {
    if !topo.node_usable(src) || !topo.node_usable(dst) {
        return None;
    }
    if src == dst {
        return Some(vec![src]);
    }
    let mut prev: Vec<Option<NodeId>> = vec![None; mesh.nodes()];
    let mut seen = vec![false; mesh.nodes()];
    seen[src.index()] = true;
    let mut frontier = std::collections::VecDeque::from([src]);
    while let Some(at) = frontier.pop_front() {
        for dir in [
            Direction::East,
            Direction::West,
            Direction::North,
            Direction::South,
        ] {
            let Some(nb) = mesh.neighbor(at, dir) else {
                continue;
            };
            if seen[nb.index()] || !topo.node_usable(nb) || !topo.link_usable(at, nb) {
                continue;
            }
            seen[nb.index()] = true;
            prev[nb.index()] = Some(at);
            if nb == dst {
                let mut path = vec![dst];
                let mut n = dst;
                while let Some(p) = prev[n.index()] {
                    path.push(p);
                    n = p;
                }
                path.reverse();
                return Some(path);
            }
            frontier.push_back(nb);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(4, 4).unwrap()
    }

    #[test]
    fn eject_at_destination() {
        let m = mesh();
        assert_eq!(
            next_hop(&m, NodeId(7), NodeId(7), Routing::Xy),
            Direction::Local
        );
        assert_eq!(
            next_hop(&m, NodeId(7), NodeId(7), Routing::Yx),
            Direction::Local
        );
    }

    #[test]
    fn xy_goes_x_first() {
        let m = mesh();
        // n0 = (0,0), n10 = (2,2)
        let p = route_path(&m, NodeId(0), NodeId(10), Routing::Xy);
        assert_eq!(
            p,
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(6), NodeId(10)]
        );
    }

    #[test]
    fn yx_goes_y_first() {
        let m = mesh();
        let p = route_path(&m, NodeId(0), NodeId(10), Routing::Yx);
        assert_eq!(
            p,
            vec![NodeId(0), NodeId(4), NodeId(8), NodeId(9), NodeId(10)]
        );
    }

    #[test]
    fn paths_are_minimal() {
        let m = Mesh::new(8, 8).unwrap();
        for s in [0u16, 9, 37, 63] {
            for d in [0u16, 5, 33, 63] {
                let (s, d) = (NodeId(s), NodeId(d));
                for algo in [Routing::Xy, Routing::Yx] {
                    let p = route_path(&m, s, d, algo);
                    assert_eq!(p.len() as u32, m.distance(s, d) + 1);
                    assert_eq!(p.first(), Some(&s));
                    assert_eq!(p.last(), Some(&d));
                }
            }
        }
    }

    #[test]
    fn xy_forward_equals_yx_reverse() {
        // The property the whole mechanism rests on (§4.1): the reply's YX
        // path visits exactly the request's XY routers, reversed.
        let m = Mesh::new(8, 8).unwrap();
        for s in 0..64u16 {
            for d in [0u16, 7, 28, 56, 63] {
                let fwd = route_path(&m, NodeId(s), NodeId(d), Routing::Xy);
                let mut back = route_path(&m, NodeId(d), NodeId(s), Routing::Yx);
                back.reverse();
                assert_eq!(fwd, back, "s={s} d={d}");
            }
        }
    }

    #[test]
    fn routing_for_vnet() {
        use crate::types::Vnet;
        assert_eq!(Routing::for_vnet(Vnet::Request), Routing::Xy);
        assert_eq!(Routing::for_vnet(Vnet::Reply), Routing::Yx);
    }

    #[test]
    fn healthy_topology_accepts_dor_paths() {
        let m = mesh();
        let topo = TopologyHealth::new();
        assert!(!topo.is_degraded());
        let p = route_path(&m, NodeId(0), NodeId(10), Routing::Xy);
        assert!(path_is_healthy(&p, &topo));
    }

    #[test]
    fn dead_link_breaks_path_and_bfs_detours() {
        let m = mesh();
        let mut topo = TopologyHealth::new();
        // Kill the (1)-(2) link on n0 -> n10's XY path.
        topo.kill_link(NodeId(2), NodeId(1));
        assert!(topo.is_degraded());
        assert!(!topo.link_usable(NodeId(1), NodeId(2)));
        assert!(!topo.hop_usable(NodeId(1), NodeId(2)));
        let dor = route_path(&m, NodeId(0), NodeId(10), Routing::Xy);
        assert!(!path_is_healthy(&dor, &topo));

        let detour = route_path_healthy(&m, NodeId(0), NodeId(10), &topo).unwrap();
        assert_eq!(detour.first(), Some(&NodeId(0)));
        assert_eq!(detour.last(), Some(&NodeId(10)));
        assert!(path_is_healthy(&detour, &topo));
        // Single dead link off the bounding box: detour stays minimal.
        assert_eq!(detour.len() as u32, m.distance(NodeId(0), NodeId(10)) + 1);

        topo.revive_link(NodeId(1), NodeId(2));
        assert!(path_is_healthy(&dor, &topo));
    }

    #[test]
    fn dead_router_blocks_traversal_and_endpoints() {
        let m = mesh();
        let mut topo = TopologyHealth::new();
        topo.kill_router(NodeId(5));
        assert!(!topo.node_usable(NodeId(5)));
        // Paths through n5 detour around it.
        let p = route_path_healthy(&m, NodeId(4), NodeId(6), &topo).unwrap();
        assert!(!p.contains(&NodeId(5)));
        assert!(path_is_healthy(&p, &topo));
        // Paths *to* a dead router do not exist.
        assert!(route_path_healthy(&m, NodeId(0), NodeId(5), &topo).is_none());
        topo.revive_router(NodeId(5));
        assert!(route_path_healthy(&m, NodeId(0), NodeId(5), &topo).is_some());
    }

    #[test]
    fn disconnected_corner_returns_none() {
        let m = mesh();
        let mut topo = TopologyHealth::new();
        // Cut both links of corner n0 = (0,0): n1 (east) and n4 (south).
        topo.kill_link(NodeId(0), NodeId(1));
        topo.kill_link(NodeId(0), NodeId(4));
        assert!(route_path_healthy(&m, NodeId(0), NodeId(15), &topo).is_none());
        assert!(route_path_healthy(&m, NodeId(15), NodeId(0), &topo).is_none());
    }

    #[test]
    fn bfs_detour_is_deterministic() {
        let m = Mesh::new(8, 8).unwrap();
        let mut topo = TopologyHealth::new();
        topo.kill_link(NodeId(9), NodeId(10));
        topo.kill_router(NodeId(27));
        for s in 0..64u16 {
            for d in [0u16, 7, 35, 63] {
                let a = route_path_healthy(&m, NodeId(s), NodeId(d), &topo);
                let b = route_path_healthy(&m, NodeId(s), NodeId(d), &topo);
                assert_eq!(a, b, "s={s} d={d}");
            }
        }
    }

    #[test]
    fn next_hop_on_path_follows_recording() {
        let m = mesh();
        let p = vec![NodeId(0), NodeId(1), NodeId(5), NodeId(6)];
        assert_eq!(next_hop_on_path(&m, &p, NodeId(0)), Some(Direction::East));
        assert_eq!(next_hop_on_path(&m, &p, NodeId(1)), Some(Direction::South));
        assert_eq!(next_hop_on_path(&m, &p, NodeId(6)), Some(Direction::Local));
        // Off-path routers fall back to DOR (None).
        assert_eq!(next_hop_on_path(&m, &p, NodeId(9)), None);
        // Non-adjacent successor (corrupt recording) also falls back.
        let bad = vec![NodeId(0), NodeId(10)];
        assert_eq!(next_hop_on_path(&m, &bad, NodeId(0)), None);
    }

    #[test]
    fn health_report_accessors_sorted() {
        let mut topo = TopologyHealth::new();
        topo.kill_link(NodeId(9), NodeId(8));
        topo.kill_link(NodeId(3), NodeId(2));
        topo.kill_router(NodeId(12));
        topo.kill_router(NodeId(4));
        assert_eq!(
            topo.dead_links_sorted(),
            vec![(NodeId(2), NodeId(3)), (NodeId(8), NodeId(9))]
        );
        assert_eq!(topo.dead_routers_sorted(), vec![NodeId(4), NodeId(12)]);
    }
}
