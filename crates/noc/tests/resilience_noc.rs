//! Network-level tests of the permanent-fault machinery: dead links and
//! routers, detour routing, recorded reverse paths for replies, circuit
//! teardown at fault onset, healing, and graceful abandonment when a node
//! is fully cut off.

use rcsim_core::circuit::CircuitKey;
use rcsim_core::{MechanismConfig, Mesh, MessageClass, NodeId};
use rcsim_noc::{
    CircuitOutcome, DeadLinkEvent, DeadRouterEvent, FaultConfig, Network, NocConfig, PacketSpec,
};

fn faulty_net(mechanism: MechanismConfig, faults: FaultConfig) -> Network {
    let mesh = Mesh::new(4, 4).unwrap();
    Network::with_faults(NocConfig::paper_baseline(mesh, mechanism), faults).unwrap()
}

fn run(n: &mut Network, cycles: u64) {
    for _ in 0..cycles {
        n.tick();
    }
}

fn dead_link(a: u16, b: u16, at: u64, duration: Option<u64>) -> FaultConfig {
    let mut f = FaultConfig::none();
    f.dead_links.push(DeadLinkEvent {
        a: NodeId(a),
        b: NodeId(b),
        at,
        duration,
    });
    f
}

#[test]
fn dead_link_from_start_reroutes_and_delivers() {
    // 0 -> 3 normally rides the bottom row 0-1-2-3; link 1-2 is dead from
    // cycle 0, so the head must leave on a detour and still arrive.
    let mut n = faulty_net(MechanismConfig::baseline(), dead_link(1, 2, 0, None));
    n.inject(PacketSpec::new(
        NodeId(0),
        NodeId(3),
        MessageClass::L1Request,
    ));
    run(&mut n, 300);
    let d = n.take_delivered(NodeId(3));
    assert_eq!(d.len(), 1, "rerouted packet must still arrive");
    assert_eq!(d[0].src, NodeId(0));
    assert!(n.is_quiescent());
    let h = n.health();
    assert_eq!(h.faults.packets_rerouted, 1);
    assert_eq!(h.faults.packets_abandoned, 0);
    assert_eq!(h.dead_links, vec![(NodeId(1), NodeId(2))]);
    assert!(h.healthy(), "{h}");
}

#[test]
fn reply_detours_back_over_recorded_reverse_path() {
    // Round trip across a dead link: the request detours, the responder's
    // NI records the traversed path, and the reply walks it in reverse.
    // Both directions count as reroutes and both arrive.
    let mut n = faulty_net(MechanismConfig::complete(), dead_link(1, 2, 0, None));
    n.inject(PacketSpec::new(NodeId(0), NodeId(3), MessageClass::L1Request).with_block(0x40));
    run(&mut n, 300);
    assert_eq!(n.take_delivered(NodeId(3)).len(), 1);

    let key = CircuitKey {
        requestor: NodeId(0),
        block: 0x40,
    };
    // Detoured requests never reserve circuits.
    assert!(!n.has_circuit_origin(NodeId(3), key));
    n.inject(
        PacketSpec::new(NodeId(3), NodeId(0), MessageClass::L2Reply)
            .with_block(0x40)
            .with_circuit_key(key),
    );
    run(&mut n, 300);
    let d = n.take_delivered(NodeId(0));
    assert_eq!(d.len(), 1, "reply must arrive over the reverse detour");
    assert_eq!(d[0].class, MessageClass::L2Reply);
    assert!(!d[0].rode_circuit);
    let h = n.health();
    assert_eq!(h.faults.packets_rerouted, 2);
    assert_eq!(h.faults.packets_abandoned, 0);
    assert!(h.healthy(), "{h}");
}

#[test]
fn onset_tears_circuit_and_reply_records_torn_down() {
    // Build a complete circuit fault-free, then kill a link on its reply
    // path. The onset must tear every table entry for the circuit, purge
    // the responder-side origin, and the late reply must be reclassified
    // as TornDown while still arriving via a detour.
    let mut n = faulty_net(MechanismConfig::complete(), dead_link(1, 2, 300, None));
    n.inject(PacketSpec::new(NodeId(0), NodeId(15), MessageClass::L1Request).with_block(0x80));
    run(&mut n, 250);
    assert_eq!(n.take_delivered(NodeId(15)).len(), 1);
    let key = CircuitKey {
        requestor: NodeId(0),
        block: 0x80,
    };
    assert!(
        n.has_circuit_origin(NodeId(15), key),
        "circuit built fault-free"
    );

    run(&mut n, 100); // crosses the onset at cycle 300
    assert!(
        !n.has_circuit_origin(NodeId(15), key),
        "origin purged at onset"
    );
    let h = n.health();
    assert!(h.faults.circuits_torn >= 1, "{h}");

    n.inject(
        PacketSpec::new(NodeId(15), NodeId(0), MessageClass::L2Reply)
            .with_block(0x80)
            .with_circuit_key(key),
    );
    run(&mut n, 400);
    let d = n.take_delivered(NodeId(0));
    assert_eq!(d.len(), 1, "reply must survive the torn circuit");
    assert!(!d[0].rode_circuit);
    let stats = n.stats();
    assert_eq!(
        stats.outcomes.get(&CircuitOutcome::TornDown).copied(),
        Some(1),
        "late reply must be classified TornDown: {:?}",
        stats.outcomes
    );
    assert!(n.health().healthy());
}

#[test]
fn dead_router_routes_around() {
    // Node 5 dies at cycle 0; 1 -> 9 normally goes straight through it
    // (1-5-9). The packet must detour and arrive; health lists the router.
    let mut f = FaultConfig::none();
    f.dead_routers.push(DeadRouterEvent {
        node: NodeId(5),
        at: 0,
        duration: None,
    });
    let mut n = faulty_net(MechanismConfig::baseline(), f);
    n.inject(PacketSpec::new(
        NodeId(1),
        NodeId(9),
        MessageClass::L1Request,
    ));
    run(&mut n, 300);
    assert_eq!(n.take_delivered(NodeId(9)).len(), 1);
    let h = n.health();
    assert_eq!(h.faults.packets_rerouted, 1);
    assert_eq!(h.dead_routers, vec![NodeId(5)]);
    assert!(h.healthy(), "{h}");
}

#[test]
fn temporary_dead_link_heals_and_dor_resumes() {
    // The link is only dead for cycles 100..300. Traffic injected after
    // the heal must take the plain DOR path (no reroute counted).
    let mut n = faulty_net(MechanismConfig::baseline(), dead_link(1, 2, 100, Some(200)));
    run(&mut n, 150);
    assert_eq!(n.health().dead_links, vec![(NodeId(1), NodeId(2))]);
    run(&mut n, 250); // past the heal at cycle 300
    let h = n.health();
    assert!(h.dead_links.is_empty(), "{h}");

    n.inject(PacketSpec::new(
        NodeId(0),
        NodeId(3),
        MessageClass::L1Request,
    ));
    run(&mut n, 100);
    assert_eq!(n.take_delivered(NodeId(3)).len(), 1);
    assert_eq!(n.health().faults.packets_rerouted, 0);
}

#[test]
fn isolated_node_abandons_after_retries() {
    // Both of corner node 0's links die, cutting it off entirely. A packet
    // from 0 has no healthy path: every emission dies on the dead link and
    // the retry machinery must eventually abandon it instead of wedging.
    let mut f = dead_link(0, 1, 0, None);
    f.dead_links.push(DeadLinkEvent {
        a: NodeId(0),
        b: NodeId(4),
        at: 0,
        duration: None,
    });
    let mut n = faulty_net(MechanismConfig::baseline(), f);
    n.inject(PacketSpec::new(
        NodeId(0),
        NodeId(15),
        MessageClass::L1Request,
    ));
    run(&mut n, 20_000);
    assert!(n.take_delivered(NodeId(15)).is_empty());
    let h = n.health();
    assert_eq!(h.faults.packets_abandoned, 1, "{h}");
    assert!(h.faults.dead_flits_lost >= 1);
    assert!(!h.stalled, "abandonment must not read as a stall: {h}");
    assert!(!h.healthy());
}

#[test]
fn reply_after_heal_ignores_stale_recorded_path() {
    // Regression: recorded reverse paths are keyed (dst, block) and
    // era-stamped. A request detours around a dead link and its reversed
    // route is recorded at the responder — but the link heals before the
    // reply is sent, so the reply must ride plain DOR, not retrace the
    // now-pointless detour. Observable two ways: the reroute counter
    // stays at 1 (the request only), and the reply's in-network latency
    // equals that of a control reply that never had a recorded path.
    let mut n = faulty_net(MechanismConfig::complete(), dead_link(1, 2, 0, Some(400)));
    n.inject(PacketSpec::new(NodeId(0), NodeId(3), MessageClass::L1Request).with_block(0x40));
    run(&mut n, 300);
    assert_eq!(n.take_delivered(NodeId(3)).len(), 1);
    assert_eq!(n.health().faults.packets_rerouted, 1, "request detoured");

    run(&mut n, 200); // past the heal at cycle 400 (bumps the path era)
    assert!(n.health().dead_links.is_empty());

    // Control: a reply between the same endpoints with a block no request
    // ever recorded a path for — pure DOR by construction.
    let control_key = CircuitKey {
        requestor: NodeId(0),
        block: 0x999,
    };
    n.inject(
        PacketSpec::new(NodeId(3), NodeId(0), MessageClass::L2Reply)
            .with_block(0x999)
            .with_circuit_key(control_key),
    );
    run(&mut n, 100);
    let control = n.take_delivered(NodeId(0));
    assert_eq!(control.len(), 1);
    let dor_latency = control[0].delivered_at - control[0].injected_at;

    // The reply to the detoured request: its recorded path is stale.
    let key = CircuitKey {
        requestor: NodeId(0),
        block: 0x40,
    };
    n.inject(
        PacketSpec::new(NodeId(3), NodeId(0), MessageClass::L2Reply)
            .with_block(0x40)
            .with_circuit_key(key),
    );
    run(&mut n, 100);
    let d = n.take_delivered(NodeId(0));
    assert_eq!(d.len(), 1);
    assert_eq!(
        d[0].delivered_at - d[0].injected_at,
        dor_latency,
        "post-heal reply must match the control's DOR latency, \
         not retrace the recorded detour"
    );
    assert_eq!(
        n.health().faults.packets_rerouted,
        1,
        "no reroute may be charged to the post-heal reply"
    );
    assert!(n.health().healthy());
}

#[test]
fn reply_after_region_cools_ignores_stale_congestion_detour() {
    // The congestion twin of the heal test: a request detours around a
    // hot region and its reversed route is recorded — then the region
    // cools (which bumps the staleness era) before the reply is sent.
    // The reply must ride plain DOR: the congestion-detour counter stays
    // at the request's 1 and the reply's latency matches a control.
    use rcsim_core::AdaptiveConfig;
    let mesh = Mesh::new(4, 4).unwrap();
    let mut n = Network::new(NocConfig::paper_baseline(mesh, MechanismConfig::baseline())).unwrap();
    n.enable_adaptive(AdaptiveConfig {
        decision_epoch: 10,
        regions: 4, // rows of the 4×4 mesh
        hot_enter: 512,
        hot_exit: 64,
        min_dwell: 10,
        detour: true,
        mech_switch: false,
    })
    .unwrap();

    // Pile write-backs onto node 1's NI: region 0 (routers 0–3) heats at
    // the next decision epoch.
    for i in 0..48u64 {
        n.inject(PacketSpec::new(NodeId(1), NodeId(2), MessageClass::WbData).with_block(i * 64));
    }
    run(&mut n, 12);
    assert!(
        n.health().adaptive.hot_switches >= 1,
        "backlog must heat row 0: {}",
        n.health()
    );

    // A request across the hot row detours around it (and node 3's NI
    // records the reversed route for the reply).
    n.inject(PacketSpec::new(NodeId(0), NodeId(3), MessageClass::L1Request).with_block(0x40));
    run(&mut n, 100);
    assert_eq!(n.take_delivered(NodeId(3)).len(), 1);
    let detours = n.health().adaptive.congestion_detours;
    assert!(detours >= 1, "request must detour: {}", n.health());

    // Drain the backlog; the region cools, staling the recorded path.
    run(&mut n, 2_000);
    assert!(n.is_quiescent());
    assert!(
        n.health().adaptive.calm_switches >= 1,
        "row 0 must cool: {}",
        n.health()
    );

    let control_key = CircuitKey {
        requestor: NodeId(0),
        block: 0x999,
    };
    n.inject(
        PacketSpec::new(NodeId(3), NodeId(0), MessageClass::L2Reply)
            .with_block(0x999)
            .with_circuit_key(control_key),
    );
    run(&mut n, 100);
    let control = n.take_delivered(NodeId(0));
    assert_eq!(control.len(), 1);
    let dor_latency = control[0].delivered_at - control[0].injected_at;

    let key = CircuitKey {
        requestor: NodeId(0),
        block: 0x40,
    };
    n.inject(
        PacketSpec::new(NodeId(3), NodeId(0), MessageClass::L2Reply)
            .with_block(0x40)
            .with_circuit_key(key),
    );
    run(&mut n, 100);
    let d = n.take_delivered(NodeId(0));
    assert_eq!(d.len(), 1);
    assert_eq!(
        d[0].delivered_at - d[0].injected_at,
        dor_latency,
        "post-cool reply must match the control's DOR latency, \
         not retrace the recorded congestion detour"
    );
    assert_eq!(
        n.health().adaptive.congestion_detours,
        detours,
        "no congestion detour may be charged to the post-cool reply"
    );
    assert!(n.health().healthy());
}

#[test]
fn dead_fault_config_survives_serde_round_trip() {
    let f = dead_link(1, 2, 100, Some(50));
    let json = serde_json::to_string(&f).unwrap();
    let back: FaultConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back.dead_links.len(), 1);
    assert_eq!(back.dead_links[0].heals_at(), Some(150));
    // Configs serialised before the dead-resource fields existed (no
    // `dead_links` / `dead_routers` keys) still load via serde defaults.
    let mut v: serde_json::Value = serde_json::from_str(&json).unwrap();
    match &mut v {
        serde_json::Value::Map(entries) => {
            entries.retain(|(k, _)| k != "dead_links" && k != "dead_routers")
        }
        other => panic!("expected object, got {other:?}"),
    }
    let old: FaultConfig = serde_json::from_value(v).unwrap();
    assert!(old.dead_links.is_empty() && old.dead_routers.is_empty());
}

#[test]
fn retry_exhaustion_conserves_every_packet() {
    // A zero retry budget under an aggressive drop rate: every dropped
    // packet is abandoned on the spot, nothing is retransmitted, and the
    // packet ledger still balances — injected == delivered + abandoned.
    let faults = FaultConfig {
        seed: 0xABAD1,
        link_drop_rate: 0.20,
        max_retries: 0,
        ..FaultConfig::none()
    };
    let mut n = faulty_net(MechanismConfig::baseline(), faults);
    for i in 0..60u64 {
        let s = (i % 16) as u16;
        let d = (s + 5) % 16;
        n.inject(PacketSpec::new(NodeId(s), NodeId(d), MessageClass::WbData).with_block(i * 64));
        n.tick();
    }
    for _ in 0..10_000 {
        n.tick();
        if n.is_quiescent() {
            break;
        }
    }
    assert!(n.is_quiescent(), "exhausted traffic must drain, not linger");
    let h = n.health();
    assert!(h.faults.packets_abandoned > 0, "20% drop over 60 must hit");
    assert_eq!(h.faults.retransmissions, 0, "retry budget is zero");
    assert!(!h.healthy(), "abandonment must be visible in the report");
    let s = n.stats();
    assert!(s.total_delivered() > 0, "most packets still get through");
    assert_eq!(s.dropped_packets, h.faults.packets_abandoned);
    assert_eq!(
        s.total_injected(),
        s.total_delivered() + s.dropped_packets,
        "packet ledger out of balance: {h}"
    );
}

#[test]
fn health_report_caps_degraded_topology_lists() {
    // max_report_entries caps every list in the report, including the
    // dead-link and dead-router inventories of a badly degraded chip.
    let mut f = FaultConfig::none();
    for (a, b) in [(5u16, 6u16), (9, 10), (6, 7), (10, 11)] {
        f.dead_links.push(DeadLinkEvent {
            a: NodeId(a),
            b: NodeId(b),
            at: 0,
            duration: None,
        });
    }
    for r in [0u16, 3, 12] {
        f.dead_routers.push(DeadRouterEvent {
            node: NodeId(r),
            at: 0,
            duration: None,
        });
    }
    let mut n = faulty_net(MechanismConfig::baseline(), f);
    let mut wd = *n.watchdog();
    wd.max_report_entries = 2;
    n.set_watchdog(wd);
    run(&mut n, 10);
    let h = n.health();
    assert_eq!(h.dead_links.len(), 2, "dead-link list must be capped");
    assert_eq!(h.dead_routers.len(), 2, "dead-router list must be capped");
    // The caps are presentational only: the counters still see all faults.
    assert_eq!(
        h.dead_links,
        vec![(NodeId(5), NodeId(6)), (NodeId(6), NodeId(7))]
    );
    assert_eq!(h.dead_routers, vec![NodeId(0), NodeId(3)]);
}
